"""Process-per-shard backend: parity, lifecycle, and crash safety.

Everything here spawns real worker processes, so the module carries
the ``mp`` marker and runs via ``make mp``, outside tier-1.  The load
they exercise is deliberately small — the claims are correctness
claims (identical routing to the in-process sharded service, clean
teardown, crash containment), not throughput claims; those live in
``benchmarks/perf/test_mp_guard.py``.
"""

import multiprocessing
import time

import pytest

from repro.resilience import WORKER_CRASH, FaultPlan
from repro.service import (
    CacheService,
    MPCacheService,
    RemovalUnsupportedError,
    ServiceClosedError,
    ShardedCacheService,
    WorkerCrashedError,
)

pytestmark = pytest.mark.mp


def assert_no_orphans():
    """Every worker this test spawned must be gone."""
    deadline = time.monotonic() + 5.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.02)
    assert multiprocessing.active_children() == []


def workload(n=400, span=120, seed=3):
    keys = []
    state = seed
    for _ in range(n):
        state = (state * 1103515245 + 12345) % (2 ** 31)
        keys.append(state % span)
    return keys


def drive(svc, keys, batch=25):
    for i in range(0, len(keys), batch):
        chunk = keys[i:i + batch]
        values = svc.get_many(chunk)
        missed = [(k, k) for k, v in zip(chunk, values) if v is None]
        if missed:
            svc.set_many(missed)
    svc.delete_many(keys[::7])
    svc.get_many(keys[: len(keys) // 2])


class TestRoundtrip:
    def test_basic_ops(self):
        with MPCacheService(64, "s3fifo", num_workers=2) as svc:
            assert svc.set("a", {"rich": [1, 2]}) is True
            assert svc.get("a") == {"rich": [1, 2]}
            assert svc.get("missing", default="d") == "d"
            assert "a" in svc and "missing" not in svc
            assert len(svc) == 1
            assert svc.delete("a") is True
            assert svc.delete("a") is False
        assert_no_orphans()

    def test_handshake_surface(self):
        with MPCacheService(64, "s3fifo", num_workers=2) as svc:
            assert svc.policy_name == "s3fifo"
            assert svc.supports_removal is True
            assert len(svc.worker_pids) == 2
            assert len(set(svc.worker_pids)) == 2

    def test_ttl_across_the_pipe(self):
        """The _UNSET sentinel cannot survive pickling; the wire
        protocol must distinguish default-ttl from explicit ttl."""
        with MPCacheService(64, "s3fifo", num_workers=2,
                            default_ttl=60.0) as svc:
            svc.set("inherit", 1)            # takes the default ttl
            svc.set("explicit", 2, ttl=0.01)
            svc.set("never", 3, ttl=None)    # overrides to no-expiry
            assert svc.stats()["ttl_entries"] == 2
            time.sleep(0.03)
            assert svc.get("explicit") is None
            assert svc.get("never") == 3
            with pytest.raises(ValueError):
                svc.set("bad", 1, ttl=-2)
        assert_no_orphans()

    def test_sweep_check_len(self):
        with MPCacheService(64, "s3fifo", num_workers=2,
                            checked=True) as svc:
            svc.set_many([(k, k) for k in range(30)], ttl=0.01)
            time.sleep(0.03)
            assert svc.sweep() == 30
            svc.check()
            assert len(svc) == 0

    def test_removal_unsupported_crosses_the_pipe(self):
        with MPCacheService(64, "blru", num_workers=2) as svc:
            assert svc.supports_removal is False
            with pytest.raises(RemovalUnsupportedError):
                svc.delete("q")
            with pytest.raises(RemovalUnsupportedError):
                svc.delete_many([1, 2])

    def test_remote_errors_do_not_desync_the_channel(self):
        with MPCacheService(64, "s3fifo", num_workers=2) as svc:
            for _ in range(3):
                with pytest.raises(ValueError):
                    svc.set("k", 1, size=0)
            # The pipe must still be in lockstep after remote errors.
            assert svc.set("k", 1) is True
            assert svc.get("k") == 1


class TestParity:
    """Identical stable-hash routing => identical per-shard streams."""

    def test_single_worker_matches_cache_service(self):
        keys = workload()
        mp_svc = MPCacheService(48, "s3fifo", num_workers=1)
        ref = CacheService(48, "s3fifo")
        try:
            drive(mp_svc, keys)
            drive(ref, keys)
            mp_stats = mp_svc.stats()
            ref_stats = ref.stats()
            for field in ("gets", "hits", "misses", "sets", "deletes",
                          "evictions", "objects", "used", "hit_ratio"):
                assert mp_stats[field] == ref_stats[field], field
        finally:
            mp_svc.close()
        assert_no_orphans()

    @pytest.mark.parametrize("policy", ["s3fifo", "s3fifo-fast", "lru"])
    def test_workers_match_sharded_service(self, policy):
        keys = workload(n=600, span=150)
        mp_svc = MPCacheService(64, policy, num_workers=4)
        ref = ShardedCacheService(64, policy, num_shards=4)
        try:
            drive(mp_svc, keys)
            drive(ref, keys)
            mp_stats = mp_svc.stats()
            ref_stats = ref.stats()
            # Byte-identical per-shard breakdowns: same hash, same
            # shards, same request order within each shard.
            assert mp_stats["per_shard"] == ref_stats["per_shard"]
            assert mp_svc.ops_per_shard() == ref.ops_per_shard()
        finally:
            mp_svc.close()
        assert_no_orphans()

    def test_blru_rejections_cross_the_pipe(self):
        items = [(k, k) for k in range(60)]
        mp_svc = MPCacheService(16, "blru", num_workers=2)
        ref = ShardedCacheService(16, "blru", num_shards=2)
        try:
            assert mp_svc.set_many(items) == ref.set_many(items)
            assert mp_svc.stats()["rejected"] == ref.stats()["rejected"]
            assert mp_svc.stats()["rejected"] > 0
        finally:
            mp_svc.close()


class TestLifecycle:
    def test_close_is_idempotent(self):
        svc = MPCacheService(32, "s3fifo", num_workers=2)
        svc.set("a", 1)
        svc.close()
        svc.close()
        assert_no_orphans()

    def test_ops_after_close_raise(self):
        svc = MPCacheService(32, "s3fifo", num_workers=2)
        svc.close()
        with pytest.raises(ServiceClosedError):
            svc.get("a")
        with pytest.raises(ServiceClosedError):
            svc.stats()

    def test_context_manager_closes(self):
        with MPCacheService(32, "s3fifo", num_workers=2) as svc:
            svc.set("a", 1)
        assert_no_orphans()
        with pytest.raises(ServiceClosedError):
            svc.get("a")

    def test_constructor_failure_leaves_no_workers(self):
        with pytest.raises(Exception):
            MPCacheService(64, "definitely-not-a-policy", num_workers=2)
        assert_no_orphans()

    def test_workers_are_daemons(self):
        with MPCacheService(32, "s3fifo", num_workers=2) as svc:
            svc.set("a", 1)
            for proc in multiprocessing.active_children():
                assert proc.daemon


class _Stall:
    """A payload whose *deserialization* blocks for 30 s in the worker,
    wedging the request/response ping-pong mid-exchange."""

    def __reduce__(self):
        return (time.sleep, (30.0,))


class TestWedgedWorker:
    """Regression: close() once waited on a worker that would never
    reply — the join had no deadline and the zombie leaked."""

    @pytest.mark.parametrize("transport", ["pipe", "shm"])
    def test_close_terminates_wedged_worker(self, transport):
        import threading

        svc = MPCacheService(32, "s3fifo", num_workers=2,
                             transport=transport)
        svc.set("a", 1)

        def wedge():
            try:
                svc.set("stall", _Stall())
            except Exception:
                pass  # teardown surfaces as a crash/closed error here

        t = threading.Thread(target=wedge, daemon=True)
        t.start()
        time.sleep(0.3)  # let the worker start sleeping inside loads()
        start = time.monotonic()
        svc.close(timeout=1.0)
        elapsed = time.monotonic() - start
        # Bounded: lock acquire 0.1s + join 1s + terminate grace, never
        # the worker's 30s nap.
        assert elapsed < 10.0
        svc.close()  # still idempotent after the hard path
        t.join(timeout=10.0)
        assert not t.is_alive()
        assert_no_orphans()


class TestCrashSafety:
    def crash_plan(self, at=3):
        return FaultPlan().add(WORKER_CRASH, at, at + 1)

    def test_injected_crash_surfaces_and_cleans_up(self):
        svc = MPCacheService(
            64, "s3fifo", num_workers=2,
            fault_plans={0: self.crash_plan()},
        )
        crashed = None
        try:
            for i in range(500):
                try:
                    svc.set(f"k{i}", i)
                except WorkerCrashedError as exc:
                    crashed = exc
                    break
            assert crashed is not None, "worker-crash fault never fired"
            assert crashed.worker_id == 0
            assert crashed.exitcode == 13
        finally:
            svc.close()
        assert_no_orphans()

    def test_survivors_still_serve_after_peer_crash(self):
        svc = MPCacheService(
            64, "s3fifo", num_workers=2,
            fault_plans={0: self.crash_plan(at=1)},
        )
        try:
            survivors = []
            for i in range(500):
                try:
                    svc.set(f"k{i}", i)
                    survivors.append(f"k{i}")
                except WorkerCrashedError:
                    pass
            # Keys on the surviving worker still roundtrip.
            alive = [k for k in survivors if svc.shard_for(k) == 1]
            assert alive, "expected some keys on the surviving worker"
            assert svc.get(alive[-1]) is not None
        finally:
            svc.close()
        assert_no_orphans()

    def test_batch_spanning_crashed_worker_raises_crash(self):
        """A batch touching the dead worker must raise the crash, not
        hang and not return partial results silently."""
        svc = MPCacheService(
            64, "s3fifo", num_workers=2,
            fault_plans={0: self.crash_plan(at=1)},
        )
        try:
            with pytest.raises(WorkerCrashedError):
                for i in range(500):
                    svc.set_many([(f"k{i}", i), (f"j{i}", i)])
        finally:
            svc.close()
        assert_no_orphans()


class TestMetricsMerge:
    def test_worker_metrics_merge_into_one_registry(self):
        from repro.obs import MetricsRegistry, to_prometheus

        with MPCacheService(64, "s3fifo", num_workers=2,
                            collect_metrics=True) as svc:
            drive(svc, workload(n=200))
            registry = MetricsRegistry()
            merged_first = svc.merge_metrics(registry)
            merged_again = svc.merge_metrics(registry)
            assert merged_first == merged_again > 0  # replace, not double
            text = to_prometheus(registry)
            assert 'worker="0"' in text and 'worker="1"' in text
            # Worker series are also labelled by the transport that
            # carried them, so pipe and shm runs never collide.
            assert 'transport="pipe"' in text
            gets = sum(
                registry.get(
                    "repro_service_gets",
                    {"worker": str(i), "transport": "pipe"},
                ).collect_value()
                for i in range(2)
            )
            assert gets == svc.stats()["gets"]

    def test_merge_requires_collect_metrics(self):
        from repro.obs import MetricsRegistry

        with MPCacheService(64, "s3fifo", num_workers=2) as svc:
            with pytest.raises(ValueError):
                svc.merge_metrics(MetricsRegistry())


class TestLoadgenIntegration:
    def test_mp_scenario_row(self):
        from repro.service.loadgen import run_scenario
        from repro.traces.synthetic import zipf_trace

        trace = zipf_trace(
            num_objects=300, num_requests=3000, alpha=1.0, seed=11
        )
        row = run_scenario(
            trace, capacity=30, num_shards=2, num_threads=1,
            backend="mp", batch_size=16,
        )
        assert row["backend"] == "mp"
        assert row["workers"] == 2 and row["batch_size"] == 16
        assert row["ops"] == 3000
        assert row["hits"] + row["misses"] == row["ops"]
        assert len(row["shard_ops"]) == 2
        assert_no_orphans()

    def test_mp_matches_thread_backend_totals(self):
        """Same trace, same routing: the mp row's cache behaviour
        (hits, evictions) must equal the in-process sharded row's."""
        from repro.service.loadgen import run_scenario
        from repro.traces.synthetic import zipf_trace

        trace = zipf_trace(
            num_objects=300, num_requests=3000, alpha=1.0, seed=11
        )
        mp_row = run_scenario(
            trace, capacity=30, num_shards=2, num_threads=1, backend="mp"
        )
        th_row = run_scenario(
            trace, capacity=30, num_shards=2, num_threads=1
        )
        assert mp_row["hits"] == th_row["hits"]
        assert mp_row["evictions"] == th_row["evictions"]
        assert_no_orphans()
