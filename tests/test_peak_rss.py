"""`ru_maxrss` normalization: KiB on Linux, bytes on macOS/BSD."""

import resource
import sys
import types

import pytest

import repro.perf.bench as bench
import repro.sim.runner as runner


@pytest.mark.parametrize("module", [runner, bench], ids=["runner", "bench"])
class TestPeakRss:
    def test_positive_on_this_platform(self, module):
        assert module._peak_rss_kb() > 0

    def _with_fake(self, module, monkeypatch, platform, ru_maxrss):
        fake = types.SimpleNamespace(ru_maxrss=ru_maxrss)
        monkeypatch.setattr(
            module.resource, "getrusage", lambda who: fake
        )
        monkeypatch.setattr(module.sys, "platform", platform)
        return module._peak_rss_kb()

    def test_linux_passthrough(self, module, monkeypatch):
        assert self._with_fake(module, monkeypatch, "linux", 4096) == 4096

    def test_darwin_bytes_to_kib(self, module, monkeypatch):
        assert self._with_fake(module, monkeypatch, "darwin", 4096 * 1024) == 4096

    def test_bsd_bytes_to_kib(self, module, monkeypatch):
        assert (
            self._with_fake(module, monkeypatch, "freebsd14", 2048 * 1024)
            == 2048
        )

    def test_linux_value_is_plausible_kib(self, module):
        """On Linux a Python process is tens of MiB: the raw value read
        as KiB lands in a sane band, read as bytes it would not."""
        if not sys.platform.startswith("linux"):
            pytest.skip("Linux-only plausibility check")
        kib = module._peak_rss_kb()
        assert 1024 < kib < 64 * 1024 * 1024  # between 1 MiB and 64 GiB
