"""Cluster tier: placement, replication, failover, and rebalance.

Everything here spawns real node processes, so the module carries the
``cluster`` marker and runs via ``make cluster``, outside tier-1 (a
tiny deterministic smoke lives in ``tests/test_cluster_smoke.py``).
The load is deliberately small: these are correctness claims — R-way
placement on the ring, zero client-visible errors through a WORKER_CRASH
when R >= 2, deterministic degradation when R == 1, bounded key
movement on membership change — not throughput claims.
"""

import multiprocessing
import time

import pytest

from repro.cluster import ClusterCacheService, HashRing
from repro.resilience import WORKER_CRASH, FaultPlan
from repro.service import ServiceClosedError

pytestmark = pytest.mark.cluster


def assert_no_orphans():
    """Every node this test spawned must be gone."""
    deadline = time.monotonic() + 5.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.02)
    assert multiprocessing.active_children() == []


def workload(n=400, span=120, seed=3):
    keys = []
    state = seed
    for _ in range(n):
        state = (state * 1103515245 + 12345) % (2 ** 31)
        keys.append(state % span)
    return keys


def read_through(svc, keys):
    """Drive a read-through loop; returns (results, hits)."""
    results = []
    hits = 0
    for k in keys:
        value = svc.get(k)
        if value is None:
            svc.set(k, k)
            results.append(("miss", k))
        else:
            hits += 1
            results.append(("hit", k, value))
    return results, hits


class TestRoundtrip:
    def test_basic_ops(self):
        with ClusterCacheService(60, "s3fifo", num_nodes=3) as svc:
            assert svc.set("a", {"rich": [1, 2]}) is True
            assert svc.get("a") == {"rich": [1, 2]}
            assert svc.get("missing", default="d") == "d"
            assert "a" in svc and "missing" not in svc
            assert len(svc) >= 1  # replicas may each hold a copy
            assert svc.delete("a") is True
            assert svc.get("a") is None
        assert_no_orphans()

    def test_handshake_surface(self):
        with ClusterCacheService(60, "s3fifo", num_nodes=3,
                                 replication=2, vnodes=32) as svc:
            assert svc.policy_name == "s3fifo"
            assert svc.supports_removal is True
            assert svc.node_ids == [0, 1, 2]
            stats = svc.stats()
            assert stats["backend"] == "cluster"
            assert stats["num_nodes"] == stats["nodes_up"] == 3
            assert stats["replication"] == 2 and stats["vnodes"] == 32

    def test_values_land_on_all_replicas(self):
        with ClusterCacheService(90, "s3fifo", num_nodes=3,
                                 replication=2) as svc:
            keys = list(range(40))
            svc.set_many([(k, k) for k in keys])
            for k in keys:
                owners = svc.owners_for(k)
                assert len(owners) == 2 and len(set(owners)) == 2
            # Each key is stored once per replica.
            assert len(svc) == 2 * len(keys)
        assert_no_orphans()

    def test_replication_bounds_validated(self):
        with pytest.raises(ValueError):
            ClusterCacheService(60, "s3fifo", num_nodes=2, replication=3)
        with pytest.raises(ValueError):
            ClusterCacheService(60, "s3fifo", num_nodes=2, replication=0)
        assert_no_orphans()


class TestFailover:
    def crash_plan(self, at):
        return {1: FaultPlan().add(WORKER_CRASH, at, at + 1)}

    def run_with_crash(self, replication, at=30):
        svc = ClusterCacheService(
            120, "s3fifo", num_nodes=3, replication=replication,
            fault_plans=self.crash_plan(at),
        )
        try:
            keys = workload(n=120, span=60)
            svc.set_many([(k, k) for k in set(keys)])
            results, hits = read_through(svc, keys)
            stats = svc.stats()
        finally:
            svc.close()
        assert_no_orphans()
        return results, hits, stats

    def test_r2_zero_errors_and_deterministic(self):
        first, hits1, stats1 = self.run_with_crash(replication=2)
        second, hits2, stats2 = self.run_with_crash(replication=2)
        # The crash is absorbed: every read served, all from replicas.
        assert hits1 == len(first)
        assert stats1["nodes_up"] == 2
        assert stats1["failovers"] > 0
        assert stats1["degraded_ops"] == 0
        # Byte-identical across runs for a fixed seed and plan.
        assert first == second
        assert (hits1, stats1["failovers"]) == (hits2, stats2["failovers"])

    def test_r1_degrades_to_misses_never_hangs(self):
        first, hits1, stats1 = self.run_with_crash(replication=1)
        second, hits2, stats2 = self.run_with_crash(replication=1)
        # Without replicas, the dead node's keys are deterministic
        # misses — never stale reads, never an exception.
        assert hits1 < len(first)
        assert stats1["degraded_ops"] > 0
        assert first == second
        assert (hits1, stats1["degraded_ops"]) == (
            hits2, stats2["degraded_ops"]
        )

    def test_writes_survive_on_remaining_replica(self):
        # Capacity is sized for 60 keys x 2 replicas landing on the two
        # survivors — roomy enough that nothing is evicted.
        svc = ClusterCacheService(
            360, "s3fifo", num_nodes=3, replication=2,
            fault_plans=self.crash_plan(at=5),
        )
        try:
            for i in range(60):
                svc.set(f"k{i}", i)
            assert svc.stats()["nodes_up"] == 2
            # Every write is still readable from a surviving replica.
            for i in range(60):
                assert svc.get(f"k{i}") == i
        finally:
            svc.close()
        assert_no_orphans()

    def test_node_health_reports_the_dead_node(self):
        svc = ClusterCacheService(
            120, "s3fifo", num_nodes=3, replication=2,
            fault_plans=self.crash_plan(at=2),
        )
        try:
            for i in range(30):
                svc.set(f"k{i}", i)
            health = svc.node_health()
            assert health == {0: True, 1: False, 2: True}
        finally:
            svc.close()
        assert_no_orphans()


class TestReadRepair:
    def test_restarted_node_is_repaired_on_read(self):
        # Batched ops are ONE message per node, so the victim's logical
        # clock advances slowly; crash early so single-key reads (one
        # message per primary hit) reach the window.
        svc = ClusterCacheService(
            240, "s3fifo", num_nodes=3, replication=2,
            fault_plans={1: FaultPlan().add(WORKER_CRASH, 3, 4)},
        )
        try:
            keys = [f"k{i}" for i in range(40)]
            svc.set_many([(k, k) for k in keys])
            # Burn messages until the crash fires, then restart empty.
            for k in keys:
                svc.get(k)
            assert svc.stats()["nodes_up"] == 2
            svc.restart_node(1)
            assert svc.stats()["nodes_up"] == 3
            before = svc.stats()["read_repairs"]
            for k in keys:
                assert svc.get(k) == k
            repaired = svc.stats()["read_repairs"] - before
            # Keys whose primary is the empty node miss there, hit the
            # replica, and are copied back.
            assert repaired > 0
        finally:
            svc.close()
        assert_no_orphans()


class TestMembership:
    def test_rebalance_steady_state_moves_nothing(self):
        with ClusterCacheService(120, "s3fifo", num_nodes=3,
                                 replication=2) as svc:
            svc.set_many([(k, k) for k in range(40)])
            assert svc.rebalance() == 0

    def test_join_moves_bounded_fraction(self):
        # 120 keys x 2 replicas = 240 entries; capacity leaves headroom
        # so movement, not eviction, explains every relocation.
        with ClusterCacheService(480, "s3fifo", num_nodes=3,
                                 replication=2) as svc:
            keys = [f"k{i}" for i in range(120)]
            svc.set_many([(k, k) for k in keys])
            new_id = svc.join_node()
            assert new_id == 3
            moved = svc.rebalance()
            # ~R/(N+1) of keys gain the joiner as an owner; allow slack
            # for a small ring but reject wholesale reshuffles.
            assert 0 < moved < len(keys)
            assert moved / len(keys) < 0.5 + 0.25
            for k in keys:
                assert svc.get(k) == k
        assert_no_orphans()

    def test_remove_rehomes_and_keeps_serving(self):
        # After the removal two nodes hold every replica: 60 keys x 2
        # must fit in 2/3 of the cluster capacity.
        with ClusterCacheService(360, "s3fifo", num_nodes=3,
                                 replication=2) as svc:
            keys = [f"k{i}" for i in range(60)]
            svc.set_many([(k, k) for k in keys])
            svc.remove_node(2)
            assert svc.node_ids == [0, 1]
            for k in keys:
                assert svc.get(k) == k
        assert_no_orphans()

    def test_restart_requires_dead_node(self):
        with ClusterCacheService(120, "s3fifo", num_nodes=3) as svc:
            with pytest.raises(ValueError):
                svc.restart_node(0)  # still alive
            with pytest.raises(ValueError):
                svc.restart_node(99)  # never existed


class TestLifecycle:
    def test_close_is_idempotent(self):
        svc = ClusterCacheService(60, "s3fifo", num_nodes=2)
        svc.set("a", 1)
        svc.close()
        svc.close()
        assert_no_orphans()

    def test_ops_after_close_raise(self):
        svc = ClusterCacheService(60, "s3fifo", num_nodes=2)
        svc.close()
        with pytest.raises(ServiceClosedError):
            svc.get("a")
        with pytest.raises(ServiceClosedError):
            svc.stats()

    def test_constructor_failure_leaves_no_nodes(self):
        with pytest.raises(Exception):
            ClusterCacheService(60, "definitely-not-a-policy", num_nodes=2)
        assert_no_orphans()

    def test_drain_then_close(self):
        svc = ClusterCacheService(60, "s3fifo", num_nodes=2, replication=2)
        try:
            svc.set_many([(k, k) for k in range(20)], ttl=0.01)
            time.sleep(0.03)
            stats = svc.drain()
            assert stats["expired"] == 40  # both replicas swept
        finally:
            svc.close()
        assert_no_orphans()


class TestPlacementParity:
    def test_owners_match_a_standalone_ring(self):
        with ClusterCacheService(90, "s3fifo", num_nodes=3,
                                 replication=2, vnodes=32) as svc:
            ring = HashRing(range(3), vnodes=32)
            for k in workload(n=100):
                assert svc.owners_for(k) == ring.nodes_for(k, 2)


class TestMetrics:
    def test_cluster_metrics_exported(self):
        from repro.obs import MetricsRegistry, to_prometheus

        registry = MetricsRegistry()
        svc = ClusterCacheService(
            120, "s3fifo", num_nodes=3, replication=2, metrics=registry,
            fault_plans={1: FaultPlan().add(WORKER_CRASH, 10, 11)},
        )
        try:
            keys = workload(n=80, span=40)
            svc.set_many([(k, k) for k in set(keys)])
            read_through(svc, keys)
            text = to_prometheus(registry)
            assert "repro_cluster_nodes_up 2" in text
            assert 'repro_cluster_node_up{node="1"} 0' in text
            failovers = registry.get("repro_cluster_failovers")
            assert failovers.collect_value() == svc.stats()["failovers"]
            assert failovers.collect_value() > 0
        finally:
            svc.close()
        assert_no_orphans()


class TestLoadgenIntegration:
    def test_cluster_scenario_row(self):
        from repro.service.loadgen import run_scenario
        from repro.traces.synthetic import zipf_trace

        trace = zipf_trace(
            num_objects=300, num_requests=3000, alpha=1.0, seed=11
        )
        row = run_scenario(
            trace, capacity=30, num_shards=3, num_threads=1,
            backend="cluster", batch_size=16, replication=2,
        )
        assert row["backend"] == "cluster"
        assert row["workers"] == 3 and row["replication"] == 2
        assert row["ops"] == 3000
        assert row["errors"] == 0 and row["error_rate"] == 0.0
        assert row["nodes_up"] == 3
        assert_no_orphans()

    def test_cluster_scenario_tolerates_crash(self):
        from repro.service.loadgen import run_scenario
        from repro.traces.synthetic import zipf_trace

        trace = zipf_trace(
            num_objects=300, num_requests=3000, alpha=1.0, seed=11
        )
        row = run_scenario(
            trace, capacity=30, num_shards=3, num_threads=1,
            backend="cluster", batch_size=16, replication=2,
            fault_plans={1: FaultPlan().add(WORKER_CRASH, 50, 51)},
        )
        # R=2 absorbs the crash: the run completes with zero errors.
        assert row["error_rate"] == 0.0
        assert row["nodes_up"] == 2
        assert row["failovers"] > 0
        assert_no_orphans()
