"""Differential validation: every ``*-fast`` policy vs. its reference.

The fast policies promise *bit-identical decisions*, not approximate
ones: same hit/miss result per request, same eviction sequence with
the same (key, size, freq, insert_time, evict_time) tuples, same final
stats.  These tests drive both implementations over seeded Zipf and
SCAN traces at several cache sizes, through both the streaming and the
batched entry points, so neither path can drift from the reference.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.registry import create_policy
from repro.sim.request import Request
from repro.sim.simulator import simulate, windowed_miss_ratios
from repro.traces.compiled import compile_trace
from repro.traces.synthetic import scan_trace, zipf_trace

PAIRS = [
    ("fifo", "fifo-fast"),
    ("lru", "lru-fast"),
    ("sieve", "sieve-fast"),
    ("s3fifo", "s3fifo-fast"),
]

ZIPF = zipf_trace(num_objects=800, num_requests=12_000, alpha=1.0, seed=11)
SCAN = scan_trace(num_objects=600, repeats=15)
_rng = random.Random(99)
SIZED = [(key, _rng.randint(1, 40)) for key in ZIPF[:8_000]]


def _stats(policy):
    s = policy.stats
    return (
        s.requests, s.hits, s.misses, s.evictions,
        s.bytes_requested, s.bytes_missed,
    )


def _stream(policy, items):
    hits = []
    for item in items:
        req = (
            Request(item[0], size=item[1])
            if isinstance(item, tuple)
            else Request(item)
        )
        hits.append(policy.request(req))
    return hits


def _events(policy):
    log = []
    policy.add_eviction_listener(
        lambda e: log.append(
            (e.key, e.size, e.freq, e.insert_time, e.evict_time)
        )
    )
    return log


@pytest.mark.parametrize("ref_name,fast_name", PAIRS)
@pytest.mark.parametrize("capacity", [8, 64, 300])
class TestDifferentialZipf:
    def test_streaming_hit_sequences_identical(
        self, ref_name, fast_name, capacity
    ):
        ref = create_policy(ref_name, capacity)
        fast = create_policy(fast_name, capacity)
        assert _stream(ref, ZIPF) == _stream(fast, ZIPF)
        assert _stats(ref) == _stats(fast)

    def test_batched_stats_and_events_identical(
        self, ref_name, fast_name, capacity
    ):
        ref = create_policy(ref_name, capacity)
        ref_events = _events(ref)
        _stream(ref, ZIPF)

        fast = create_policy(fast_name, capacity)
        fast_events = _events(fast)
        fast.run_compiled(compile_trace(ZIPF))
        assert _stats(ref) == _stats(fast)
        assert ref_events == fast_events
        assert ref.clock == fast.clock

    def test_batched_no_listeners_stats_identical(
        self, ref_name, fast_name, capacity
    ):
        # No listeners: fast policies may take further-specialized
        # loops (e.g. s3fifo-fast's inlined unit path) — stats and
        # residency must still match exactly.
        ref = create_policy(ref_name, capacity)
        _stream(ref, ZIPF)
        fast = create_policy(fast_name, capacity)
        fast.run_compiled(compile_trace(ZIPF))
        assert _stats(ref) == _stats(fast)
        assert len(ref) == len(fast)
        for key in set(ZIPF):
            assert (key in ref) == (key in fast)


@pytest.mark.parametrize("ref_name,fast_name", PAIRS)
class TestDifferentialOther:
    def test_scan_trace(self, ref_name, fast_name):
        ref = create_policy(ref_name, 100)
        fast = create_policy(fast_name, 100)
        assert _stream(ref, SCAN) == _stream(fast, SCAN)
        assert _stats(ref) == _stats(fast)

    @pytest.mark.parametrize("capacity", [150, 1200])
    def test_sized_trace_events(self, ref_name, fast_name, capacity):
        ref = create_policy(ref_name, capacity)
        ref_events = _events(ref)
        _stream(ref, SIZED)

        fast = create_policy(fast_name, capacity)
        fast_events = _events(fast)
        fast.run_compiled(compile_trace(SIZED))
        assert _stats(ref) == _stats(fast)
        assert ref_events == fast_events

    def test_oversized_requests_counted_never_admitted(
        self, ref_name, fast_name
    ):
        items = [("big", 500), ("a", 1), ("big", 500), ("b", 2)]
        ref = create_policy(ref_name, 10)
        fast = create_policy(fast_name, 10)
        assert _stream(ref, items) == _stream(fast, items)
        assert _stats(ref) == _stats(fast)
        assert "big" not in fast

    def test_oversized_request_on_resident_key(self, ref_name, fast_name):
        # base.request rejects oversized requests before the residency
        # lookup: the key stays cached, untouched, and the request is a
        # miss.  The batch loops must preserve that exact order.
        items = [("a", 3), ("a", 50), ("a", 3)]
        ref = create_policy(ref_name, 10)
        assert _stream(ref, items) == [False, False, True]
        fast = create_policy(fast_name, 10)
        fast.run_compiled(compile_trace(items))
        assert _stats(ref) == _stats(fast)
        assert "a" in fast

    def test_simulate_with_warmup(self, ref_name, fast_name):
        ref_result = simulate(create_policy(ref_name, 60), ZIPF, warmup=0.3)
        fast_result = simulate(
            create_policy(fast_name, 60), compile_trace(ZIPF), warmup=0.3
        )
        for field in (
            "requests", "misses", "bytes_requested", "bytes_missed",
            "evictions", "warmup_requests", "warmup_evictions",
        ):
            assert getattr(ref_result, field) == getattr(fast_result, field)

    def test_windowed_miss_ratios(self, ref_name, fast_name):
        ref_ratios = windowed_miss_ratios(
            create_policy(ref_name, 60), ZIPF, window=700
        )
        fast_ratios = windowed_miss_ratios(
            create_policy(fast_name, 60), compile_trace(ZIPF), window=700
        )
        assert ref_ratios == fast_ratios

    def test_streaming_then_batch_then_streaming(self, ref_name, fast_name):
        """The two entry points interleave without state divergence."""
        ref = create_policy(ref_name, 40)
        fast = create_policy(fast_name, 40)
        head, mid, tail = ZIPF[:3000], ZIPF[3000:6000], ZIPF[6000:9000]
        assert _stream(ref, head) == _stream(fast, head)
        fast.run_compiled(compile_trace(mid))
        _stream(ref, mid)
        assert _stream(ref, tail) == _stream(fast, tail)
        assert _stats(ref) == _stats(fast)


class TestS3FifoFastSpecifics:
    def test_demotion_events_identical(self):
        ref = create_policy("s3fifo", 64)
        fast = create_policy("s3fifo-fast", 64)
        ref_log, fast_log = [], []
        ref.add_demotion_listener(
            lambda e: ref_log.append(
                (e.key, e.size, e.insert_time, e.demote_time, e.promoted)
            )
        )
        fast.add_demotion_listener(
            lambda e: fast_log.append(
                (e.key, e.size, e.insert_time, e.demote_time, e.promoted)
            )
        )
        _stream(ref, ZIPF)
        fast.run_compiled(compile_trace(ZIPF))
        assert ref_log == fast_log
        assert len(ref_log) > 0

    def test_queue_introspection_parity(self):
        ref = create_policy("s3fifo", 50)
        fast = create_policy("s3fifo-fast", 50)
        _stream(ref, ZIPF[:4000])
        fast.run_compiled(compile_trace(ZIPF[:4000]))
        assert fast.small_capacity == ref.small_capacity
        assert fast.main_capacity == ref.main_capacity
        assert fast.small_used == ref.small_used
        assert fast.main_used == ref.main_used
        assert fast.ghost_len == len(ref.ghost)
        assert fast.ghost_capacity == ref.ghost.capacity
        for key in set(ZIPF[:4000]):
            assert fast.in_small(key) == ref.in_small(key)
            assert fast.in_main(key) == ref.in_main(key)
            assert fast.in_ghost(key) == (key in ref.ghost)

    def test_freq_cap_must_fit_two_bits(self):
        with pytest.raises(ValueError):
            create_policy("s3fifo-fast", 10, freq_cap=4)
        with pytest.raises(ValueError):
            create_policy("s3fifo-fast", 10, freq_cap=0)

    def test_custom_parameters_match_reference(self):
        kwargs = dict(
            small_ratio=0.25, ghost_entries=30, move_to_main_threshold=1
        )
        ref = create_policy("s3fifo", 40, **kwargs)
        fast = create_policy("s3fifo-fast", 40, **kwargs)
        assert _stream(ref, ZIPF) == _stream(fast, ZIPF)
        assert _stats(ref) == _stats(fast)

    def test_zero_ghost_entries(self):
        ref = create_policy("s3fifo", 40, ghost_entries=0)
        fast = create_policy("s3fifo-fast", 40, ghost_entries=0)
        fast.run_compiled(compile_trace(ZIPF))
        _stream(ref, ZIPF)
        assert _stats(ref) == _stats(fast)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    capacity=st.integers(2, 120),
    alpha=st.floats(0.6, 1.4),
    pair=st.sampled_from(PAIRS),
)
def test_property_differential_zipf(seed, capacity, alpha, pair):
    ref_name, fast_name = pair
    items = zipf_trace(
        num_objects=300, num_requests=2_500, alpha=alpha, seed=seed
    )
    ref = create_policy(ref_name, capacity)
    fast = create_policy(fast_name, capacity)
    assert _stream(ref, items) == _stream(fast, items)
    fast_batch = create_policy(fast_name, capacity)
    fast_batch.run_compiled(compile_trace(items))
    assert _stats(ref) == _stats(fast) == _stats(fast_batch)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    capacity=st.integers(20, 400),
    pair=st.sampled_from(PAIRS),
)
def test_property_differential_sized(seed, capacity, pair):
    ref_name, fast_name = pair
    rng = random.Random(seed)
    keys = zipf_trace(num_objects=200, num_requests=1_500, alpha=1.0, seed=seed)
    items = [(k, rng.randint(1, 25)) for k in keys]
    ref = create_policy(ref_name, capacity)
    ref_events = _events(ref)
    _stream(ref, items)
    fast = create_policy(fast_name, capacity)
    fast_events = _events(fast)
    fast.run_compiled(compile_trace(items))
    assert _stats(ref) == _stats(fast)
    assert ref_events == fast_events
