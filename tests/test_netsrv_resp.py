"""RESP2 streaming parser + encoder conformance (no sockets, tier-1).

The parser contract under test: arbitrary chunk boundaries never change
what is parsed, payloads are binary-safe (a value containing ``\\r\\n``
must survive), pipelined streams yield every completed command per
feed, and malformed frames raise :class:`RespProtocolError` — the
server turns that into one ``-ERR Protocol error`` reply and a close,
which is Redis's behaviour.
"""

import pytest

from repro.netsrv import (
    NIL,
    RespParser,
    RespProtocolError,
    encode_array,
    encode_bulk,
    encode_error,
    encode_integer,
    encode_simple,
)


def cmd(*args: bytes) -> bytes:
    """Client-side RESP encoding: an array of bulk strings."""
    out = b"*%d\r\n" % len(args)
    for a in args:
        out += b"$%d\r\n%s\r\n" % (len(a), a)
    return out


class TestEncoders:
    def test_frames(self):
        assert encode_simple("OK") == b"+OK\r\n"
        assert encode_error("ERR boom") == b"-ERR boom\r\n"
        assert encode_integer(42) == b":42\r\n"
        assert encode_integer(-1) == b":-1\r\n"
        assert encode_bulk(b"hello") == b"$5\r\nhello\r\n"
        assert encode_bulk(b"") == b"$0\r\n\r\n"
        assert encode_bulk(None) == NIL == b"$-1\r\n"
        assert encode_array([encode_bulk(b"a"), NIL]) == (
            b"*2\r\n$1\r\na\r\n$-1\r\n"
        )

    def test_bulk_is_binary_safe(self):
        payload = b"a\r\nb\x00c"
        frame = encode_bulk(payload)
        assert RespParser().feed(cmd(b"ECHO", payload)) == [
            [b"ECHO", payload]
        ]
        assert frame == b"$6\r\na\r\nb\x00c\r\n"


class TestParser:
    def test_single_command(self):
        assert RespParser().feed(cmd(b"GET", b"k")) == [[b"GET", b"k"]]

    def test_pipelined_commands_in_one_feed(self):
        data = cmd(b"SET", b"k", b"v") + cmd(b"GET", b"k") + cmd(b"PING")
        assert RespParser().feed(data) == [
            [b"SET", b"k", b"v"], [b"GET", b"k"], [b"PING"],
        ]

    def test_byte_at_a_time(self):
        """Chunk boundaries are invisible: same commands, any split."""
        data = cmd(b"MSET", b"a", b"1", b"b", b"2") + cmd(b"PING")
        parser = RespParser()
        got = []
        for i in range(len(data)):
            got.extend(parser.feed(data[i:i + 1]))
        assert got == [[b"MSET", b"a", b"1", b"b", b"2"], [b"PING"]]
        assert parser.buffered == 0

    def test_split_inside_bulk_payload(self):
        parser = RespParser()
        frame = cmd(b"SET", b"k", b"a\r\nb")
        cut = frame.index(b"a\r\nb") + 2  # mid-payload, after the \r
        assert parser.feed(frame[:cut]) == []
        assert parser.feed(frame[cut:]) == [[b"SET", b"k", b"a\r\nb"]]

    def test_inline_commands(self):
        parser = RespParser()
        assert parser.feed(b"PING\r\n") == [[b"PING"]]
        assert parser.feed(b"GET  k1 \r\n") == [[b"GET", b"k1"]]
        # Blank inline lines are skipped, not commands.
        assert parser.feed(b"\r\n \r\nPING\r\n") == [[b"PING"]]

    def test_inline_mixed_with_arrays(self):
        data = b"PING\r\n" + cmd(b"GET", b"k") + b"QUIT\r\n"
        assert RespParser().feed(data) == [[b"PING"], [b"GET", b"k"],
                                           [b"QUIT"]]

    def test_empty_and_null_arrays_are_skipped(self):
        assert RespParser().feed(b"*0\r\n" + cmd(b"PING")) == [[b"PING"]]
        assert RespParser().feed(b"*-1\r\n" + cmd(b"PING")) == [[b"PING"]]

    def test_invalid_bulk_length(self):
        with pytest.raises(RespProtocolError, match="invalid bulk length"):
            RespParser().feed(b"*1\r\n$abc\r\n")
        with pytest.raises(RespProtocolError, match="invalid bulk length"):
            RespParser().feed(b"*1\r\n$-5\r\n")

    def test_oversized_bulk_rejected_before_payload_arrives(self):
        parser = RespParser(max_bulk=16)
        with pytest.raises(RespProtocolError, match="invalid bulk length"):
            parser.feed(b"*2\r\n$3\r\nSET\r\n$9999999\r\n")

    def test_bulk_payload_must_end_with_crlf(self):
        with pytest.raises(RespProtocolError, match="not CRLF-terminated"):
            RespParser().feed(b"*1\r\n$4\r\nPINGXX\r\n")

    def test_array_element_must_be_bulk(self):
        with pytest.raises(RespProtocolError, match="expected '\\$'"):
            RespParser().feed(b"*1\r\n:42\r\n")

    def test_invalid_multibulk_length(self):
        with pytest.raises(RespProtocolError, match="invalid multibulk"):
            RespParser().feed(b"*xyz\r\n")
        with pytest.raises(RespProtocolError, match="invalid multibulk"):
            RespParser(max_elements=4).feed(b"*5000\r\n")

    def test_unterminated_inline_line_hits_limit(self):
        parser = RespParser(max_inline=32)
        with pytest.raises(RespProtocolError, match="too big inline"):
            parser.feed(b"X" * 64)

    def test_buffered_counts_incomplete_frame(self):
        parser = RespParser()
        parser.feed(b"*2\r\n$3\r\nGET\r\n$5\r\nhel")
        assert parser.buffered > 0
        assert parser.feed(b"lo\r\n") == [[b"GET", b"hello"]]
        assert parser.buffered == 0

    def test_pending_array_state_survives_feeds(self):
        """The array header is consumed once; elements trickle in."""
        parser = RespParser()
        assert parser.feed(b"*3\r\n") == []
        assert parser.feed(b"$3\r\nSET\r\n") == []
        assert parser.feed(b"$1\r\nk\r\n$1\r\nv\r\n") == [
            [b"SET", b"k", b"v"]
        ]
