"""Tests for the adaptive S3-FIFO-D variant (Section 6.2.2)."""

import pytest

from repro.core.s3fifo import S3FifoCache
from repro.core.s3fifo_d import S3FifoDCache
from repro.sim.simulator import simulate
from repro.traces.synthetic import two_access_trace, zipf_trace


class TestConstruction:
    def test_defaults(self):
        cache = S3FifoDCache(1000)
        assert cache.small_capacity == 100
        assert cache.resizes == 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            S3FifoDCache(100, adapt_hits=0)
        with pytest.raises(ValueError):
            S3FifoDCache(100, imbalance=1.0)


class TestAdaptation:
    def test_resizes_on_imbalanced_ghost_hits(self):
        """A workload whose S victims keep returning should grow S."""
        cache = S3FifoDCache(200, adapt_hits=20)
        s_before = cache.small_capacity
        trace = two_access_trace(5000, gap=150, seed=0)
        for key in trace:
            cache.access(key)
        assert cache.resizes > 0
        assert cache.small_capacity != s_before

    def test_capacity_conserved_across_resizes(self):
        cache = S3FifoDCache(200, adapt_hits=20)
        for key in two_access_trace(3000, gap=150, seed=1):
            cache.access(key)
        assert cache.small_capacity + cache.main_capacity == 200

    def test_s_respects_min_bound(self):
        cache = S3FifoDCache(200, min_ratio=0.05, adapt_hits=10)
        # Zipf traffic: M victims get re-hit, shrinking S.
        for key in zipf_trace(500, 30_000, alpha=1.0, seed=2):
            cache.access(key)
        assert cache.small_capacity >= int(200 * 0.05)

    def test_used_never_exceeds_capacity(self):
        cache = S3FifoDCache(100, adapt_hits=10)
        for key in two_access_trace(3000, gap=80, seed=3):
            cache.access(key)
            assert cache.used <= 100


class TestPaperClaims:
    def test_close_to_static_on_normal_workloads(self, small_zipf):
        """Section 6.2.2: S3-FIFO beats S3-FIFO-D on most (normal)
        traces, but the gap is small."""
        static = simulate(S3FifoCache(50), list(small_zipf)).miss_ratio
        dynamic = simulate(S3FifoDCache(50), list(small_zipf)).miss_ratio
        assert abs(static - dynamic) < 0.05

    def test_adaptive_helps_on_adversarial(self):
        """On the two-access workload (second access outside S but
        inside the cache) growing S is the right move."""
        trace = two_access_trace(20_000, gap=700, seed=0)
        static = simulate(S3FifoCache(1000), list(trace)).miss_ratio
        dynamic = simulate(
            S3FifoDCache(
                1000, adapt_hits=50, adapt_step=0.01, adapt_ghost_ratio=0.5
            ),
            list(trace),
        ).miss_ratio
        assert dynamic < static - 0.05
