"""Tests for experiment-harness helpers (formatting, constants)."""

from repro.experiments.common import (
    FIG6_POLICIES,
    FIG7_POLICIES,
    LARGE_CACHE_RATIO,
    SMALL_CACHE_RATIO,
    format_rows,
)


class TestConstants:
    def test_cache_ratios_ordered(self):
        assert LARGE_CACHE_RATIO > SMALL_CACHE_RATIO > 0

    def test_policy_sets_registered(self):
        from repro.cache.registry import policy_names

        names = set(policy_names(include_offline=True))
        assert set(FIG6_POLICIES) <= names
        assert set(FIG7_POLICIES) <= names

    def test_s3fifo_in_both_sets(self):
        assert "s3fifo" in FIG6_POLICIES
        assert "s3fifo" in FIG7_POLICIES


class TestFormatRows:
    def test_alignment_and_header(self):
        rows = [
            {"name": "alpha", "value": 0.123456},
            {"name": "a-much-longer-name", "value": 2.0},
        ]
        text = format_rows(rows, columns=["name", "value"], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("name")
        assert set(lines[2]) <= {"-", " "}
        # All rows padded to equal column starts.
        assert lines[3].index("0.1235") == lines[4].index("2.0000")

    def test_float_format_applied(self):
        text = format_rows(
            [{"x": 0.5}], columns=["x"], float_fmt="{:+.1f}"
        )
        assert "+0.5" in text

    def test_missing_keys_blank(self):
        text = format_rows([{"a": 1}], columns=["a", "b"])
        assert text  # renders without KeyError

    def test_non_float_values_passthrough(self):
        text = format_rows(
            [{"a": "label", "n": 7}], columns=["a", "n"]
        )
        assert "label" in text and "7" in text

    def test_empty_rows(self):
        text = format_rows([], columns=["a"])
        assert "a" in text
