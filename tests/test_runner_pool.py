"""Sweep-runner fast path: trace cache, persistent pool, job metrics."""

import pytest

from repro.sim import runner
from repro.sim.runner import (
    SweepJob,
    _materialize_trace,
    _sweep_chunksize,
    execute_job,
    run_sweep,
    shutdown_pool,
)
from repro.traces.compiled import CompiledTrace
from repro.traces.synthetic import zipf_trace


def _trace_factory(n=2_000, seed=0):
    return zipf_trace(num_objects=150, num_requests=n, alpha=1.0, seed=seed)


def _job(policy="lru", n=2_000, seed=0, **kwargs):
    return SweepJob(
        trace_name="zipf",
        trace_factory=_trace_factory,
        trace_kwargs={"n": n, "seed": seed},
        policy=policy,
        cache_size=25,
        **kwargs,
    )


@pytest.fixture(autouse=True)
def _clean_worker_state():
    runner._trace_cache.clear()
    yield
    runner._trace_cache.clear()
    shutdown_pool()


class TestMaterializeTrace:
    def test_compiles_and_caches(self):
        trace = _materialize_trace(_job())
        assert isinstance(trace, CompiledTrace)
        assert len(runner._trace_cache) == 1
        assert _materialize_trace(_job()) is trace

    def test_distinct_kwargs_distinct_entries(self):
        a = _materialize_trace(_job(seed=0))
        b = _materialize_trace(_job(seed=1))
        assert a is not b
        assert len(runner._trace_cache) == 2

    def test_cache_bounded(self):
        for seed in range(runner._TRACE_CACHE_MAX + 3):
            _materialize_trace(_job(seed=seed))
        assert len(runner._trace_cache) == runner._TRACE_CACHE_MAX

    def test_unhashable_kwargs_fall_back_uncached(self):
        job = SweepJob(
            trace_name="zipf",
            trace_factory=lambda sizes: [("a", s) for s in sizes],
            trace_kwargs={"sizes": [1, 2, 3]},  # list: unhashable key
            policy="lru",
            cache_size=5,
        )
        trace = _materialize_trace(job)
        assert len(trace) == 3
        assert not runner._trace_cache

    def test_uncompilable_trace_regenerated_fresh(self):
        # A factory yielding items compile_trace rejects must fall back
        # to a *fresh* factory call, not a half-consumed iterator.
        job = SweepJob(
            trace_name="weird",
            trace_factory=lambda: iter([{"not": "hashable"}]),
            trace_kwargs={},
            policy="lru",
            cache_size=5,
        )
        trace = _materialize_trace(job)
        assert not isinstance(trace, CompiledTrace)
        assert not runner._trace_cache


class TestJobMetrics:
    def test_wall_time_and_rss_populated(self):
        result = execute_job(_job())
        assert result.ok
        assert result.wall_time > 0.0
        assert result.peak_rss_kb > 0

    def test_metrics_populated_on_failure(self):
        result = execute_job(_job(policy="does-not-exist"))
        assert not result.ok
        assert result.wall_time >= 0.0
        assert result.peak_rss_kb > 0

    def test_matches_uncached_result(self):
        # The compiled-cache fast path must not change the numbers.
        cached = execute_job(_job(policy="s3fifo"))
        runner._trace_cache.clear()
        fresh = execute_job(_job(policy="s3fifo"))
        assert cached.miss_ratio == fresh.miss_ratio
        assert cached.requests == fresh.requests


class TestChunksize:
    def test_small_sweeps_stay_fine_grained(self):
        assert _sweep_chunksize(1, 4) == 1
        assert _sweep_chunksize(8, 4) == 1

    def test_large_sweeps_batch_up(self):
        assert _sweep_chunksize(1_000, 4) == 62
        assert _sweep_chunksize(100_000, 4) == 64  # capped

    def test_never_zero(self):
        for jobs in (1, 2, 7, 63, 1_000):
            for procs in (1, 2, 8, 64):
                assert _sweep_chunksize(jobs, procs) >= 1


class TestPersistentPool:
    def test_pool_reused_across_sweeps(self):
        jobs = [_job(p) for p in ("lru", "fifo")]
        run_sweep(jobs, processes=2)
        pool = runner._pool
        assert pool is not None
        run_sweep(jobs, processes=2)
        assert runner._pool is pool

    def test_pool_recreated_on_resize(self):
        jobs = [_job(p) for p in ("lru", "fifo")]
        run_sweep(jobs, processes=2)
        pool = runner._pool
        run_sweep(jobs + [_job("sieve")], processes=3)
        assert runner._pool is not pool
        assert runner._pool_size == 3

    def test_shutdown_idempotent(self):
        run_sweep([_job(), _job("fifo")], processes=2)
        shutdown_pool()
        assert runner._pool is None
        shutdown_pool()  # second call is a no-op

    def test_fast_dispatch_report_complete_and_ordered(self):
        # timeout=None, max_attempts=1: the imap_unordered fast path.
        policies = ["lru", "fifo", "sieve", "s3fifo", "clock", "lru-fast"]
        jobs = [_job(p) for p in policies]
        report = run_sweep(jobs, processes=2)
        assert [r.policy for r in report] == policies
        assert all(r.ok for r in report)
        assert all(r.wall_time > 0 for r in report)

    def test_retry_path_still_works_with_pool(self):
        from repro.resilience.retry import RetryPolicy

        report = run_sweep(
            [_job(), _job(policy="does-not-exist")],
            processes=2,
            retry=RetryPolicy(max_attempts=2),
        )
        assert report[0].ok
        assert not report[1].ok

    def test_parallel_matches_sequential(self):
        jobs = [_job(p) for p in ("lru", "s3fifo", "s3fifo-fast")]
        seq = run_sweep(jobs, processes=1)
        par = run_sweep(jobs, processes=2)
        assert [r.miss_ratio for r in seq] == [r.miss_ratio for r in par]
