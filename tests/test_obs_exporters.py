"""Pinned-schema tests for the metrics exporters.

The Prometheus text and JSON layouts are a published interface (see
docs/OBSERVABILITY.md): dashboards and scrapers parse them, so the
exact rendering — names, suffixes, label ordering, bucket shape — is
pinned here, byte for byte where practical.
"""

import json
import math

import pytest

from repro.obs import (
    EXPORT_KIND,
    EXPORT_SCHEMA_VERSION,
    EventTracer,
    MetricsRegistry,
    export_dict,
    to_json,
    to_prometheus,
)
from repro.service.loadgen import build_service
from repro.traces.synthetic import zipf_trace


def small_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("repro_hits", "Cache hits.", {"shard": "0"}).inc(7)
    reg.counter("repro_hits", "Cache hits.", {"shard": "1"}).inc(3)
    reg.gauge("repro_depth", "Queue depth.").set(12)
    h = reg.histogram("repro_lat_us", "Latency.", buckets=(1, 5))
    h.observe(0.5)
    h.observe(2)
    h.observe(100)
    return reg


PINNED_PROMETHEUS = """\
# HELP repro_depth Queue depth.
# TYPE repro_depth gauge
repro_depth 12
# HELP repro_hits_total Cache hits.
# TYPE repro_hits_total counter
repro_hits_total{shard="0"} 7
repro_hits_total{shard="1"} 3
# HELP repro_lat_us Latency.
# TYPE repro_lat_us histogram
repro_lat_us_bucket{le="1"} 1
repro_lat_us_bucket{le="5"} 2
repro_lat_us_bucket{le="+Inf"} 3
repro_lat_us_sum 102.5
repro_lat_us_count 3
"""


class TestPrometheusText:
    def test_pinned_rendering(self):
        assert to_prometheus(small_registry()) == PINNED_PROMETHEUS

    def test_deterministic_across_collects(self):
        reg = small_registry()
        assert to_prometheus(reg) == to_prometheus(reg)

    def test_counter_families_get_total_suffix(self):
        text = to_prometheus(small_registry())
        assert "repro_hits_total{" in text
        assert "\nrepro_hits{" not in text

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c", labels={"path": 'a"b\\c\nd'}).inc()
        line = to_prometheus(reg).splitlines()[-1]
        assert line == 'c_total{path="a\\"b\\\\c\\nd"} 1'

    def test_special_float_values(self):
        reg = MetricsRegistry()
        reg.gauge("g_nan").set(float("nan"))
        reg.gauge("g_inf").set(math.inf)
        reg.gauge("g_frac").set(2.5)
        text = to_prometheus(reg)
        assert "g_nan NaN" in text
        assert "g_inf +Inf" in text
        assert "g_frac 2.5" in text

    def test_empty_registry_renders_empty(self):
        assert to_prometheus(MetricsRegistry()) == ""


class TestJsonExport:
    def test_pinned_document_shape(self):
        doc = export_dict(small_registry())
        assert doc["schema"] == EXPORT_SCHEMA_VERSION == 1
        assert doc["kind"] == EXPORT_KIND == "metrics-export"
        assert doc["namespace"] == "repro"
        by_name = {}
        for entry in doc["metrics"]:
            by_name.setdefault(entry["name"], []).append(entry)
        assert set(by_name) == {"repro_hits", "repro_depth", "repro_lat_us"}
        gauge = by_name["repro_depth"][0]
        assert gauge == {
            "name": "repro_depth",
            "type": "gauge",
            "labels": {},
            "value": 12,
            "help": "Queue depth.",
        }
        hist = by_name["repro_lat_us"][0]
        assert hist["buckets"] == [["1", 1], ["5", 2], ["+Inf", 3]]
        assert hist["sum"] == 102.5
        assert hist["count"] == 3

    def test_to_json_round_trips(self):
        text = to_json(small_registry())
        assert text.endswith("\n")
        doc = json.loads(text)
        assert doc == export_dict(small_registry())


#: The stable service/policy metric families (docs/OBSERVABILITY.md).
#: Renaming or dropping any of these is a breaking schema change.
SERVICE_FAMILIES = {
    "repro_service_gets",
    "repro_service_hits",
    "repro_service_misses",
    "repro_service_sets",
    "repro_service_deletes",
    "repro_service_expired",
    "repro_service_evictions",
    "repro_service_rejected",
    "repro_service_sweeps",
    "repro_service_sweep_checks",
    "repro_service_objects",
    "repro_service_used",
    "repro_service_capacity",
    "repro_service_ttl_entries",
    "repro_service_sweep_backlog",
    "repro_service_hit_ratio",
    "repro_service_op_latency_us",
}

POLICY_FAMILIES = {
    "repro_policy_requests",
    "repro_policy_hits",
    "repro_policy_misses",
    "repro_policy_admissions",
    "repro_policy_ghost_hits",
    "repro_policy_evictions",
    "repro_policy_eviction_freq",
    "repro_policy_demotions",
    "repro_policy_used",
    "repro_policy_objects",
    "repro_policy_small_used",
    "repro_policy_main_used",
    "repro_policy_small_capacity",
    "repro_policy_main_capacity",
    "repro_policy_ghost_entries",
}

SHARDED_FAMILIES = {"repro_shards", "repro_shard_imbalance"}


def drive(registry, num_shards=1, tracer=None):
    trace = zipf_trace(num_objects=300, num_requests=3000, alpha=1.0, seed=7)
    service = build_service(
        60, "s3fifo", num_shards,
        metrics=registry, tracer=tracer, instrument_policy=True,
    )
    for key in trace:
        if service.get(key) is None:
            service.set(key, key)
    return service


class TestStableServiceSchema:
    def test_single_shard_family_names_pinned(self):
        reg = MetricsRegistry()
        drive(reg)
        names = {name for name, _, _, _ in reg.families()}
        assert names == SERVICE_FAMILIES | POLICY_FAMILIES

    def test_sharded_family_names_pinned(self):
        reg = MetricsRegistry()
        drive(reg, num_shards=2)
        names = {name for name, _, _, _ in reg.families()}
        assert names == (
            SERVICE_FAMILIES | POLICY_FAMILIES | SHARDED_FAMILIES
        )

    def test_every_family_has_help_and_kind(self):
        reg = MetricsRegistry()
        drive(reg, num_shards=2)
        for name, kind, help_text, series in reg.families():
            assert kind in ("counter", "gauge", "histogram"), name
            assert help_text, f"{name} has no help text"
            assert series, name

    def test_counters_match_service_stats(self):
        reg = MetricsRegistry()
        service = drive(reg)
        stats = service.stats()
        for field in ("gets", "hits", "misses", "sets", "evictions"):
            metric = reg.get(f"repro_service_{field}")
            assert metric.collect_value() == stats[field], field

    def test_latency_histograms_cover_all_ops(self):
        reg = MetricsRegistry()
        drive(reg)
        for op in ("get", "set", "delete"):
            h = reg.get("repro_service_op_latency_us", {"op": op})
            assert h is not None, op
        gets = reg.get("repro_service_op_latency_us", {"op": "get"})
        assert gets.count == reg.get("repro_service_gets").collect_value()

    def test_tracer_populated_alongside_metrics(self):
        reg = MetricsRegistry()
        tracer = EventTracer(capacity=32)
        drive(reg, tracer=tracer)
        assert len(tracer) == 32
        outcomes = {e["outcome"] for e in tracer.events()}
        assert outcomes <= {"hit", "miss", "stored", "rejected"}

    def test_prometheus_parses_line_by_line(self):
        """Every non-comment line is `name{labels} value` with a float."""
        reg = MetricsRegistry()
        drive(reg, num_shards=2)
        for line in to_prometheus(reg).splitlines():
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            assert not line.startswith("#"), line
            name_part, _, value = line.rpartition(" ")
            assert name_part, line
            float(value)  # raises if the sample value is malformed
