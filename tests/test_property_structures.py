"""Property-based tests (hypothesis) for the substrate structures."""

from collections import Counter, deque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.bloom import BloomFilter, CountingBloomFilter
from repro.structures.cms import CountMinSketch
from repro.structures.dlist import DList, DListNode
from repro.structures.fifo_queue import RingBufferFifo
from repro.structures.ghost import GhostFifo

keys = st.integers(min_value=0, max_value=50)


class TestDListModel:
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["push_head", "push_tail", "pop_head",
                                       "pop_tail"]), keys),
            max_size=200,
        )
    )
    def test_matches_deque_model(self, ops):
        lst = DList()
        model: deque = deque()
        for op, value in ops:
            if op == "push_head":
                lst.push_head(DListNode(value))
                model.appendleft(value)
            elif op == "push_tail":
                lst.push_tail(DListNode(value))
                model.append(value)
            elif op == "pop_head":
                node = lst.pop_head()
                expected = model.popleft() if model else None
                assert (node.data if node else None) == expected
            else:
                node = lst.pop_tail()
                expected = model.pop() if model else None
                assert (node.data if node else None) == expected
            assert len(lst) == len(model)
            assert [n.data for n in lst] == list(model)


class TestRingBufferModel:
    @given(
        capacity=st.integers(min_value=1, max_value=8),
        ops=st.lists(
            st.tuples(st.sampled_from(["push", "pop"]), keys), max_size=200
        ),
    )
    def test_matches_fifo_model(self, capacity, ops):
        q = RingBufferFifo(capacity)
        model = deque()
        for op, value in ops:
            if op == "push":
                if len(model) < capacity:
                    q.push(value)
                    model.append(value)
            else:
                got = q.pop()
                expected = model.popleft() if model else None
                assert got == expected
            assert len(q) == len(model)
        assert list(q) == list(model)


class TestGhostFifoModel:
    @given(
        capacity=st.integers(min_value=1, max_value=10),
        ops=st.lists(
            st.tuples(st.sampled_from(["add", "remove", "check"]), keys),
            max_size=300,
        ),
    )
    def test_capacity_and_membership(self, capacity, ops):
        g = GhostFifo(capacity)
        # Model: ordered dict of keys by most recent add.
        model: dict = {}
        for op, key in ops:
            if op == "add":
                model.pop(key, None)
                model[key] = None
                while len(model) > capacity:
                    oldest = next(iter(model))
                    del model[oldest]
                g.add(key)
            elif op == "remove":
                expected = key in model
                model.pop(key, None)
                assert g.remove(key) == expected
            else:
                assert (key in g) == (key in model)
            assert len(g) == len(model)
            assert len(g) <= capacity


class TestBloomProperties:
    @given(st.lists(st.integers(), max_size=300, unique=True))
    @settings(max_examples=25)
    def test_no_false_negatives(self, items):
        bf = BloomFilter(expected_items=max(8, len(items)), fp_rate=0.01)
        for item in items:
            bf.add(item)
        assert all(item in bf for item in items)

    @given(
        st.lists(st.integers(min_value=0, max_value=20), max_size=200)
    )
    @settings(max_examples=25)
    def test_counting_bloom_multiset(self, items):
        cbf = CountingBloomFilter(expected_items=256, cap=255)
        counts = Counter(items)
        for item in items:
            cbf.add(item)
        for item, count in counts.items():
            assert cbf.estimate(item) >= min(count, 255)


class TestCmsProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=30), max_size=300)
    )
    @settings(max_examples=25)
    def test_never_underestimates_below_cap(self, items):
        cms = CountMinSketch(width=512, depth=4, cap=255)
        counts = Counter(items)
        for item in items:
            cms.add(item)
        for item, count in counts.items():
            assert cms.estimate(item) >= min(count, 255)
