"""Content-addressed compiled-trace disk cache (repro.traces.store)."""

import json
import random

import pytest

from repro.traces.compiled import compile_trace
from repro.traces.store import cached_compile, load_trace, store_trace

_rng = random.Random(3)
UNIT_INT = [_rng.randrange(50) for _ in range(2000)]
UNIT_STR = [f"key-{_rng.randrange(40)}" for _ in range(1000)]
SIZED = [(f"k{_rng.randrange(30)}", _rng.randrange(1, 9)) for _ in range(1500)]
TUPLE_KEYS = [(_rng.randrange(5), _rng.randrange(5)) for _ in range(400)]


@pytest.mark.parametrize(
    "items", [UNIT_INT, UNIT_STR, SIZED, TUPLE_KEYS],
    ids=["unit-int", "unit-str", "sized", "tuple-keys"],
)
def test_round_trip(tmp_path, items):
    """Store → load reproduces the exact trace: items, key table,
    checksum — so simulations on a cache hit are bit-identical."""
    original = compile_trace(items)
    path = store_trace(original, tmp_path)
    assert path is not None and path.suffix == ".npz"
    loaded = load_trace(original.checksum(), tmp_path)
    assert loaded is not None
    assert list(loaded) == items
    assert loaded.key_table == original.key_table
    assert loaded.checksum() == original.checksum()
    assert loaded.unit_size == original.unit_size


def test_cached_compile_skips_factory_on_hit(tmp_path):
    calls = []

    def factory():
        calls.append(1)
        return UNIT_INT

    first = cached_compile("spec", factory, tmp_path)
    second = cached_compile("spec", factory, tmp_path)
    assert len(calls) == 1
    assert list(second) == list(first) == UNIT_INT


def test_content_addressing_dedups_storage(tmp_path):
    """Two spec keys over identical content share one .npz."""
    cached_compile("spec-a", lambda: UNIT_INT, tmp_path)
    cached_compile("spec-b", lambda: list(UNIT_INT), tmp_path)
    npz = [p for p in tmp_path.iterdir() if p.suffix == ".npz"]
    assert len(npz) == 1
    index = json.loads((tmp_path / "index.json").read_text())
    assert index["spec-a"] == index["spec-b"]


def test_corrupt_entry_falls_back_to_factory(tmp_path):
    trace = cached_compile("spec", lambda: UNIT_INT, tmp_path)
    path = tmp_path / f"{trace.checksum()}.npz"
    path.write_bytes(b"not a real npz")
    assert load_trace(trace.checksum(), tmp_path) is None
    again = cached_compile("spec", lambda: UNIT_INT, tmp_path)
    assert list(again) == UNIT_INT


def test_unserializable_keys_degrade_gracefully(tmp_path):
    """Arbitrary-hashable keys that JSON can't encode simply skip the
    cache — the compile still succeeds, every time."""
    objects = [object() for _ in range(5)]
    for _ in range(2):
        trace = cached_compile("objs", lambda: list(objects), tmp_path)
        assert trace.num_requests == 5
    assert not any(p.suffix == ".npz" for p in tmp_path.iterdir())


def test_missing_checksum_returns_none(tmp_path):
    assert load_trace("deadbeef", tmp_path) is None


def test_simulation_identical_on_cache_hit(tmp_path):
    """End-to-end: a reloaded trace drives every engine to the same
    result as the in-memory original."""
    from repro.cache.registry import create_policy
    from repro.sim.simulator import simulate

    original = cached_compile("zipfish", lambda: UNIT_INT, tmp_path)
    reloaded = cached_compile("zipfish", lambda: UNIT_INT, tmp_path)
    for engine in ("scalar", "vector"):
        a = simulate(create_policy("s3fifo", 10), original, engine=engine)
        b = simulate(create_policy("s3fifo", 10), reloaded, engine=engine)
        assert a.misses == b.misses
        assert a.evictions == b.evictions
