"""Tests for trace analysis: one-hit wonders, annotation, evictions."""

import pytest

from repro.cache.fifo import FifoCache
from repro.cache.lru import LruCache
from repro.traces.analysis import (
    annotate_next_access,
    frequency_at_eviction,
    one_hit_wonder_curve,
    one_hit_wonder_ratio,
    subsequence_one_hit_wonder_ratio,
    unique_objects,
)
from repro.traces.synthetic import zipf_trace


class TestOneHitWonderRatio:
    def test_paper_toy_example(self):
        """Fig. 1's full-trace ratio is 20% (E only)."""
        trace = list("ABACBADABCBAECABD")
        assert one_hit_wonder_ratio(trace) == pytest.approx(0.2)

    def test_paper_toy_windows(self):
        trace = list("ABACBADABCBAECABD")
        assert one_hit_wonder_ratio(trace[:7]) == pytest.approx(0.5)
        assert one_hit_wonder_ratio(trace[:4]) == pytest.approx(2 / 3)

    def test_empty(self):
        assert one_hit_wonder_ratio([]) == 0.0

    def test_all_singles(self):
        assert one_hit_wonder_ratio([1, 2, 3]) == 1.0

    def test_no_singles(self):
        assert one_hit_wonder_ratio([1, 1, 2, 2]) == 0.0

    def test_sized_trace(self):
        assert one_hit_wonder_ratio([("a", 5), ("a", 5), ("b", 2)]) == 0.5


class TestSubsequenceRatio:
    def test_increases_for_shorter_sequences(self):
        """The paper's core observation (Section 3.1)."""
        trace = zipf_trace(2000, 60_000, alpha=1.0, seed=0)
        full = one_hit_wonder_ratio(trace)
        at_10 = subsequence_one_hit_wonder_ratio(trace, 0.1, seed=0)
        at_1 = subsequence_one_hit_wonder_ratio(trace, 0.01, seed=0)
        assert at_10 > full
        assert at_1 >= at_10 - 0.05

    def test_fraction_one_equals_full(self):
        trace = zipf_trace(200, 5000, seed=1)
        assert subsequence_one_hit_wonder_ratio(
            trace, 1.0
        ) == pytest.approx(one_hit_wonder_ratio(trace))

    def test_validation(self):
        with pytest.raises(ValueError):
            subsequence_one_hit_wonder_ratio([1], 0.0)
        with pytest.raises(ValueError):
            subsequence_one_hit_wonder_ratio([1], 0.5, num_samples=0)

    def test_empty_trace(self):
        assert subsequence_one_hit_wonder_ratio([], 0.5) == 0.0

    def test_deterministic(self):
        trace = zipf_trace(500, 10_000, seed=2)
        a = subsequence_one_hit_wonder_ratio(trace, 0.1, seed=3)
        b = subsequence_one_hit_wonder_ratio(trace, 0.1, seed=3)
        assert a == b

    def test_curve_shape(self):
        trace = zipf_trace(2000, 60_000, alpha=0.8, seed=0)
        curve = one_hit_wonder_curve(trace, (0.01, 0.1, 1.0), seed=0)
        fractions = [f for f, _ in curve]
        ratios = [r for _, r in curve]
        assert fractions == [0.01, 0.1, 1.0]
        assert ratios[0] >= ratios[-1]


class TestUniqueObjects:
    def test_counts(self):
        assert unique_objects([1, 1, 2, 3]) == 3

    def test_sized(self):
        assert unique_objects([("a", 1), ("a", 2)]) == 1


class TestAnnotation:
    def test_next_access_times(self):
        annotated = annotate_next_access(["a", "b", "a"])
        assert annotated[0].next_access == 3
        assert annotated[1].next_access is None
        assert annotated[2].next_access is None

    def test_times_are_one_based(self):
        annotated = annotate_next_access(["x"])
        assert annotated[0].time == 1

    def test_sizes_preserved(self):
        annotated = annotate_next_access([("a", 7)])
        assert annotated[0].size == 7

    def test_length(self):
        trace = zipf_trace(100, 1000, seed=0)
        assert len(annotate_next_access(trace)) == 1000


class TestFrequencyAtEviction:
    def test_one_hit_wonders_dominate_on_singles(self):
        cache = FifoCache(5)
        hist = frequency_at_eviction(
            cache, annotate_next_access(list(range(50)))
        )
        assert set(hist) == {0}
        assert hist[0] == 45

    def test_histogram_counts_match_evictions(self):
        trace = zipf_trace(300, 5000, seed=0)
        cache = LruCache(30)
        hist = frequency_at_eviction(cache, annotate_next_access(trace))
        assert sum(hist.values()) == cache.stats.evictions

    def test_popular_objects_higher_freq(self):
        trace = ["hot"] * 10 + list(range(20)) + ["hot"]
        cache = FifoCache(3)
        hist = frequency_at_eviction(cache, annotate_next_access(trace))
        assert any(freq > 0 for freq in hist)
