"""Documentation consistency checks.

Docs rot silently; these tests pin the claims that are cheap to
verify mechanically: referenced files exist, the benchmark files named
in EXPERIMENTS.md are real, every experiment module has a bench, and
the CLI surface matches the README.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (REPO / name).read_text()


class TestReferencedFilesExist:
    @pytest.mark.parametrize(
        "doc", ["README.md", "DESIGN.md", "EXPERIMENTS.md",
                "docs/ALGORITHMS.md", "docs/REPRODUCING.md",
                "docs/PERFORMANCE.md", "docs/RESILIENCE.md",
                "docs/SERVICE.md", "docs/OBSERVABILITY.md"]
    )
    def test_doc_exists(self, doc):
        assert (REPO / doc).is_file(), doc

    def test_experiments_md_bench_files_exist(self):
        text = read("EXPERIMENTS.md")
        for name in set(re.findall(r"`(test_\w+\.py)`", text)):
            assert (REPO / "benchmarks" / name).is_file(), name

    def test_design_md_bench_files_exist(self):
        text = read("DESIGN.md")
        for name in set(re.findall(r"benchmarks/(test_\w+\.py)", text)):
            assert (REPO / "benchmarks" / name).is_file(), name

    def test_readme_examples_exist(self):
        text = read("README.md")
        for name in set(re.findall(r"examples/(\w+\.py)", text)):
            assert (REPO / "examples" / name).is_file(), name


class TestStructuralClaims:
    def test_every_figure_experiment_has_bench(self):
        experiments = {
            p.stem
            for p in (REPO / "src/repro/experiments").glob("*.py")
            if p.stem not in {"__init__", "common"}
        }
        benches = {
            p.stem.replace("test_", "")
            for p in (REPO / "benchmarks").glob("test_*.py")
        }
        for exp in experiments:
            # fig10_demotion also backs table2; `ablations` is covered
            # by `ablation_s3fifo`.  Match on the singular prefix.
            prefix = exp.split("_")[0].rstrip("s")
            assert any(b.startswith(prefix) for b in benches), exp

    def test_cli_experiments_match_modules(self):
        from repro.cli import EXPERIMENTS
        import importlib

        for name, module_name in EXPERIMENTS.items():
            module = importlib.import_module(module_name)
            assert hasattr(module, "run"), name
            assert hasattr(module, "format_table"), name

    def test_readme_cli_commands_exist(self):
        from repro.cli import build_parser

        text = read("README.md")
        used = set(re.findall(r"s3fifo-repro (\w[\w-]*)", text))
        parser = build_parser()
        registered = set(
            parser._subparsers._group_actions[0].choices  # noqa: SLF001
        )
        assert used <= registered, used - registered

    def test_policy_count_claim(self):
        """README: 35 online policies = 27 baselines + s3 family + fast."""
        from repro.cache.registry import policy_names

        names = policy_names(include_offline=True)
        fast = {n for n in names if n.endswith("-fast")}
        s3_family = {n for n in names if n.startswith("s3")}
        baselines = set(names) - s3_family - fast
        assert len(baselines) == 27, sorted(baselines)
        assert fast == {"fifo-fast", "lru-fast", "sieve-fast", "s3fifo-fast"}
        assert len(policy_names()) == 35  # the README quickstart claim

    def test_examples_count_claim(self):
        scripts = list((REPO / "examples").glob("*.py"))
        assert len(scripts) == 8  # quickstart + seven scenarios
