"""Retry policy: backoff shape, jitter determinism, failure modes."""

import pytest

from repro.resilience.retry import RetryError, RetryPolicy

pytestmark = pytest.mark.resilience


class TestBackoff:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=1.0, multiplier=2.0, jitter=0.0
        )
        assert policy.delays() == [1.0, 2.0, 4.0, 8.0]

    def test_max_delay_caps(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=10.0, multiplier=10.0,
            max_delay=50.0, jitter=0.0,
        )
        assert max(policy.delays()) == 50.0

    def test_jitter_within_bounds(self):
        policy = RetryPolicy(
            max_attempts=20, base_delay=8.0, multiplier=1.0, jitter=0.5
        )
        for delay in policy.delays():
            assert 4.0 <= delay <= 8.0

    def test_jitter_is_seed_deterministic(self):
        a = RetryPolicy(max_attempts=8, jitter=0.9, seed=3).delays()
        b = RetryPolicy(max_attempts=8, jitter=0.9, seed=3).delays()
        c = RetryPolicy(max_attempts=8, jitter=0.9, seed=4).delays()
        assert a == b
        assert a != c

    def test_reset_rewinds_jitter_stream(self):
        policy = RetryPolicy(max_attempts=5, jitter=0.9, seed=0)
        first = policy.delays()
        policy.reset()
        assert policy.delays() == first

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(attempt_timeout=0)


class TestCall:
    def test_succeeds_first_try(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.call(lambda: 42, sleep=None) == 42

    def test_retries_until_success(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("transient")
            return "ok"

        policy = RetryPolicy(max_attempts=5, base_delay=0.0)
        assert policy.call(flaky, sleep=None) == "ok"
        assert len(attempts) == 3

    def test_gives_up_with_retry_error(self):
        def always_fails():
            raise OSError("down")

        policy = RetryPolicy(max_attempts=3, base_delay=0.0)
        with pytest.raises(RetryError) as info:
            policy.call(always_fails, sleep=None)
        assert info.value.attempts == 3
        assert isinstance(info.value.last_error, OSError)

    def test_retry_on_filters_exceptions(self):
        def fails():
            raise KeyError("not retryable")

        policy = RetryPolicy(max_attempts=3, base_delay=0.0)
        with pytest.raises(KeyError):
            policy.call(fails, retry_on=(OSError,), sleep=None)

    def test_on_retry_observes_attempts(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise OSError("x")
            return 1

        policy = RetryPolicy(max_attempts=4, base_delay=1.0, jitter=0.0)
        policy.call(
            flaky,
            sleep=None,
            on_retry=lambda attempt, exc, delay: seen.append(
                (attempt, type(exc).__name__, delay)
            ),
        )
        assert seen == [(1, "OSError", 1.0), (2, "OSError", 2.0)]

    def test_injected_sleep_receives_backoff(self):
        slept = []
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("x")
            return 1

        policy = RetryPolicy(max_attempts=3, base_delay=0.5, jitter=0.0)
        policy.call(flaky, sleep=slept.append)
        assert slept == [0.5, 1.0]


class TestElapsedBudget:
    def test_budget_aborts_before_exceeding(self):
        calls = []

        def always_fails():
            calls.append(1)
            raise OSError("x")

        # Delays without budget would be 1, 2, 4, ... — the budget of 2.5
        # admits the first retry (1.0) but not the second (1.0 + 2.0).
        policy = RetryPolicy(
            max_attempts=10, base_delay=1.0, jitter=0.0, max_elapsed=2.5
        )
        with pytest.raises(RetryError) as exc_info:
            policy.call(always_fails, sleep=None)
        assert len(calls) == 2
        err = exc_info.value
        assert err.elapsed == 1.0
        assert err.budget == 2.5
        assert "elapsed 1.000 of 2.500 budget" in str(err)

    def test_budget_reports_on_attempt_exhaustion_too(self):
        def always_fails():
            raise OSError("x")

        policy = RetryPolicy(
            max_attempts=3, base_delay=0.5, jitter=0.0, max_elapsed=100.0
        )
        with pytest.raises(RetryError) as exc_info:
            policy.call(always_fails, sleep=None)
        # Both retries ran (0.5 + 1.0); attempts, not the budget, ended it.
        assert exc_info.value.elapsed == 1.5
        assert exc_info.value.budget == 100.0

    def test_no_budget_keeps_legacy_message(self):
        def always_fails():
            raise OSError("x")

        policy = RetryPolicy(max_attempts=2, base_delay=0.0)
        with pytest.raises(RetryError) as exc_info:
            policy.call(always_fails, sleep=None)
        assert "budget" not in str(exc_info.value)
        assert exc_info.value.budget is None

    def test_success_within_budget_unaffected(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("x")
            return "ok"

        policy = RetryPolicy(
            max_attempts=5, base_delay=0.1, jitter=0.0, max_elapsed=10.0
        )
        assert policy.call(flaky, sleep=None) == "ok"

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_elapsed=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_elapsed=-1.0)
