"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.traces.synthetic import zipf_trace


@pytest.fixture(scope="session")
def small_zipf():
    """A small, deterministic Zipf trace shared by many tests."""
    return zipf_trace(num_objects=500, num_requests=10_000, alpha=1.0, seed=42)


@pytest.fixture(scope="session")
def skewed_zipf():
    """A more skewed trace (alpha=1.2) for ordering assertions."""
    return zipf_trace(num_objects=1_000, num_requests=20_000, alpha=1.2, seed=7)
