"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.traces.synthetic import zipf_trace


@pytest.fixture
def checked_policy():
    """Factory building registry policies wrapped in the invariant
    sanitizer (:class:`repro.resilience.sanitizer.CheckedPolicy`).

    Any test that exercises a policy through this fixture gets every
    access cross-checked against the interface contract for free —
    an :class:`~repro.resilience.sanitizer.InvariantViolation` failure
    points at the corruption site instead of a wrong miss ratio.
    """
    from repro.cache.registry import create_policy
    from repro.resilience.sanitizer import CheckedPolicy

    def make(name: str, capacity: int, deep_every: int = 256, **kwargs):
        return CheckedPolicy(
            create_policy(name, capacity=capacity, **kwargs),
            deep_every=deep_every,
        )

    return make


@pytest.fixture(scope="session")
def small_zipf():
    """A small, deterministic Zipf trace shared by many tests."""
    return zipf_trace(num_objects=500, num_requests=10_000, alpha=1.0, seed=42)


@pytest.fixture(scope="session")
def skewed_zipf():
    """A more skewed trace (alpha=1.2) for ordering assertions."""
    return zipf_trace(num_objects=1_000, num_requests=20_000, alpha=1.2, seed=7)
