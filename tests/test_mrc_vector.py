"""Vectorized SHARDS sampling and vector-engine MRC paths.

The compiled-trace branch of :func:`repro.sim.mrc.spatial_sample`
replicates CPython's tuple hash in uint64 NumPy; these tests pin it
*bit-identical* to the scalar fingerprint filter — same kept requests,
in order — across key types, rates, and seeds, because a sampler that
drifts by one key produces silently different (not wrong-looking)
curves.  The MRC engine selectors are pinned the same way: the
``"vector"`` paths must reproduce the exact per-size scalar curves.
"""

import random

import pytest

from repro.cache.registry import create_policy
from repro.sim.mrc import fifo_mrc, s3fifo_mrc, sampled_mrc, spatial_sample
from repro.sim.simulator import simulate
from repro.traces.compiled import compile_trace
from repro.traces.synthetic import zipf_trace

ZIPF = zipf_trace(num_objects=500, num_requests=8000, alpha=1.0, seed=5)
STR_TRACE = [f"obj:{k}" for k in ZIPF]
MIXED = [k if k % 3 else f"s{k}" for k in ZIPF]
_rng = random.Random(13)
SIZED = [(k, _rng.randint(1, 25)) for k in ZIPF]


@pytest.mark.parametrize(
    "items", [ZIPF, STR_TRACE, MIXED, SIZED],
    ids=["int-keys", "str-keys", "mixed-keys", "sized"],
)
@pytest.mark.parametrize("rate", [0.05, 0.25, 0.6, 1.0])
@pytest.mark.parametrize("seed", [0, 1, 97])
def test_spatial_sample_compiled_pinned_to_scalar(items, rate, seed):
    scalar = spatial_sample(items, rate, seed=seed)
    vector = spatial_sample(compile_trace(items), rate, seed=seed)
    assert vector == scalar


def test_spatial_sample_empty_compiled_trace():
    assert spatial_sample(compile_trace([]), 0.5) == []


def test_spatial_sample_rejects_bad_rate():
    with pytest.raises(ValueError):
        spatial_sample(compile_trace(ZIPF), 0.0)
    with pytest.raises(ValueError):
        spatial_sample(compile_trace(ZIPF), 1.5)


def test_fifo_mrc_vector_matches_multisim():
    sizes = [8, 32, 128, 500]
    for policy in ("fifo", "sfifo"):
        multi = fifo_mrc(ZIPF, sizes, policy=policy, engine="multisim")
        vector = fifo_mrc(ZIPF, sizes, policy=policy, engine="vector")
        assert vector.sizes == multi.sizes
        assert vector.miss_ratios == multi.miss_ratios


def test_fifo_mrc_rejects_unknown_engine():
    with pytest.raises(ValueError):
        fifo_mrc(ZIPF, [8, 32], engine="warp")


def test_s3fifo_mrc_vector_is_exact():
    """engine="vector" must equal exact per-size re-simulation — no
    sampling error at all."""
    sizes = [16, 64, 256]
    curve = s3fifo_mrc(ZIPF, sizes, engine="vector")
    compiled = compile_trace(ZIPF)
    for size, ratio in zip(curve.sizes, curve.miss_ratios):
        exact = simulate(
            create_policy("s3fifo", size), compiled, engine="scalar"
        )
        assert ratio == exact.miss_ratio, size


def test_s3fifo_mrc_rejects_unknown_engine():
    with pytest.raises(ValueError):
        s3fifo_mrc(ZIPF, [16], engine="warp")


def test_sampled_mrc_engine_passthrough():
    """The engine knob changes how each ensemble simulates, never what
    it computes: scalar and vector sampled curves are identical."""
    sizes = [16, 64, 256]
    scalar = sampled_mrc(
        "s3fifo", ZIPF, sizes, rate=0.3, seed=3, ensembles=2,
        engine="scalar",
    )
    vector = sampled_mrc(
        "s3fifo", ZIPF, sizes, rate=0.3, seed=3, ensembles=2,
        engine="vector",
    )
    assert scalar.sizes == vector.sizes
    assert scalar.miss_ratios == vector.miss_ratios
