"""Shared-memory transport: codec fidelity, differential parity with
pipe, ring/arena edge cases, and crash liveness.

The codec tests are pure functions and run in tier-1, as does one
two-worker smoke test — proof the shm path spawns and serves at all.
Everything else spawns worker processes under small adversarial
geometries (4-slot rings, 256-byte arenas) and carries the ``shm``
marker: ``make shm``.
"""

import multiprocessing
import pickle
import threading
import time

import pytest

from repro.resilience import WORKER_CRASH, FaultPlan
from repro.service import MPCacheService, WorkerCrashedError
from repro.service.shm import (
    _Arena,
    decode_reply,
    decode_request,
    encode_reply,
    encode_request,
)
from repro.service.transport import TransportClosedError, create_transport


def assert_no_orphans():
    deadline = time.monotonic() + 5.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.02)
    assert multiprocessing.active_children() == []


def make_arena(size=4096):
    return _Arena(memoryview(bytearray(size)))


class MyInt(int):
    """Module-level so it survives pickling in the codec fallback."""


class TestCodec:
    """Wire-format round-trips, no processes involved."""

    def roundtrip_request(self, msg, arena_size=4096):
        arena = make_arena(arena_size)
        data = encode_request(msg, arena)
        return decode_request(data, arena.view)

    def roundtrip_reply(self, msg, arena_size=4096):
        arena = make_arena(arena_size)
        data = encode_reply(msg, arena)
        return decode_reply(data, arena.view)

    def test_get_many_roundtrip(self):
        msg = ("get_many", [1, "k", b"raw", None, True, 2.5], "default")
        assert self.roundtrip_request(msg) == msg

    def test_set_many_roundtrip_mixed_values(self):
        items = [
            ("small", b"x" * 8),          # inline bytes (< arena min)
            ("big", b"y" * 500),          # arena bytes
            ("text", "z" * 500),          # arena str
            ("num", 123456789),
            ("neg", -5),
            ("pi", 3.25),
            ("flag", True),
            ("nothing", None),
            ("rich", {"nested": [1, 2]}),  # per-object pickle
        ]
        msg = ("set_many", True, 0.5, None, items)
        assert self.roundtrip_request(msg) == msg

    def test_delete_many_roundtrip(self):
        msg = ("delete_many", [0, 1, "x"])
        assert self.roundtrip_request(msg) == msg

    def test_control_ops_pickle_fallback(self):
        for msg in [("stats",), ("close",), ("handshake", {"a": 1})]:
            assert self.roundtrip_request(msg) == msg

    def test_exact_types_survive(self):
        """bool is an int subclass and custom subclasses masquerade as
        their base; the codec must hand back exactly what a pipe would."""

        huge = 1 << 80  # exceeds the i64 fast path
        msg = ("set_many", False, None, None,
               [("a", True), ("b", 1), ("c", MyInt(7)), ("d", huge)])
        decoded = self.roundtrip_request(msg)
        assert decoded == msg
        values = [v for _, v in decoded[4]]
        assert type(values[0]) is bool and type(values[1]) is int
        assert type(values[2]) is MyInt
        assert values[3] == huge

    def test_reply_bools_bitset(self):
        for payload in ([True], [False], [True, False] * 17):
            assert self.roundtrip_reply(("ok", payload)) == ("ok", payload)

    def test_reply_values_and_empty(self):
        assert self.roundtrip_reply(("ok", [])) == ("ok", [])
        payload = [None, 1, b"v" * 200, "s" * 200, False]
        got = self.roundtrip_reply(("ok", payload))
        assert got == ("ok", payload)
        # a lone bool inside a mixed list must stay bool, not bitset
        assert type(got[1][4]) is bool

    def test_reply_error_pickles(self):
        code, exc = self.roundtrip_reply(("error", ValueError("boom")))
        assert code == "error"
        assert type(exc) is ValueError and exc.args == ("boom",)

    def test_arena_full_falls_back_inline(self):
        """Values that don't fit the arena inline into ring slots; the
        ones that did fit are not disturbed."""
        items = [("a", b"A" * 100), ("b", b"B" * 100), ("c", b"C" * 100)]
        msg = ("set_many", False, None, None, items)
        arena = make_arena(150)  # room for one value, not three
        data = encode_request(msg, arena)
        assert decode_request(data, arena.view) == msg

    def test_zero_arena_still_works(self):
        msg = ("set_many", False, None, None, [("k", b"v" * 500)])
        assert self.roundtrip_request(msg, arena_size=0) == msg


class TestTransportFactory:
    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            create_transport("rdma", multiprocessing.get_context())
        with pytest.raises(ValueError):
            MPCacheService(32, "s3fifo", num_workers=1, transport="rdma")
        assert_no_orphans()

    def test_shm_transport_options_validated(self):
        ctx = multiprocessing.get_context()
        with pytest.raises(ValueError):
            create_transport("shm", ctx, {"slots": 1})
        with pytest.raises(ValueError):
            create_transport("shm", ctx, {"slot_size": 8})
        with pytest.raises(ValueError):
            create_transport("shm", ctx, {"arena_size": -1})


def test_shm_smoke_roundtrip():
    """Tier-1 smoke: the shm transport spawns, serves, and tears down."""
    with MPCacheService(64, "s3fifo", num_workers=2,
                        transport="shm") as svc:
        assert svc.transport == "shm"
        assert svc.set("a", {"rich": [1, 2]}) is True
        assert svc.get("a") == {"rich": [1, 2]}
        assert svc.get_many(["a", "missing"]) == [{"rich": [1, 2]}, None]
        assert len(svc.worker_pids) == 2
    assert_no_orphans()


def mixed_workload(svc, n=300, span=90):
    """Mixed types and batch ops, deterministic across transports."""
    state = 7
    for i in range(n):
        state = (state * 1103515245 + 12345) % (2 ** 31)
        key = state % span
        op = i % 6
        if op == 0:
            svc.set(key, b"v" * (state % 300))
        elif op == 1:
            svc.set(f"s{key}", "text" * (state % 40), ttl=None)
        elif op == 2:
            svc.set_many([(key, state), (key + span, state * 0.5),
                          (f"t{key}", (True, None))])
        elif op == 3:
            svc.get_many([key, f"s{key}", "nope"])
        elif op == 4:
            svc.delete_many([key + span])
        else:
            svc.get(key, default="fallback")


@pytest.mark.shm
class TestPipeParity:
    def test_stats_byte_identical_across_transports(self):
        """The acceptance differential: the same request stream through
        pipe and shm must produce byte-identical ``stats()`` documents —
        the transport may not change semantics, types, or counts."""
        docs = {}
        for transport in ("pipe", "shm"):
            with MPCacheService(48, "s3fifo", num_workers=3,
                                transport=transport) as svc:
                mixed_workload(svc)
                docs[transport] = pickle.dumps(svc.stats())
        assert docs["pipe"] == docs["shm"]
        assert_no_orphans()

    def test_value_fidelity_across_transports(self):
        values = [b"", b"x" * 5000, "ué" * 100, 0, -(1 << 70),
                  1.5, True, False, None, ("tu", ["ple"]), {"d": 1}]
        for transport in ("pipe", "shm"):
            with MPCacheService(64, "s3fifo", num_workers=2,
                                transport=transport) as svc:
                svc.set_many([(i, v) for i, v in enumerate(values)])
                got = svc.get_many(list(range(len(values))))
                assert got == values
                assert [type(v) for v in got] == [type(v) for v in values]
        assert_no_orphans()


@pytest.mark.shm
class TestSmallGeometries:
    """Adversarial ring/arena sizes: correctness may never depend on
    the segment being big enough, only speed may."""

    TINY = {"slots": 4, "slot_size": 128, "arena_size": 256}

    def test_ring_full_backpressure(self):
        """A burst far larger than the ring blocks-and-drains instead
        of dropping or overwriting."""
        with MPCacheService(800, "s3fifo", num_workers=2,
                            transport="shm",
                            transport_options=self.TINY) as svc:
            items = [(i, i * 3) for i in range(400)]
            svc.set_many(items)
            assert svc.get_many([k for k, _ in items]) == [v for _, v in items]
        assert_no_orphans()

    def test_oversized_values_fragment_without_corruption(self):
        """5 KB values through 128-byte slots and a 256-byte arena:
        every value inlines and fragments, neighbors stay intact."""
        with MPCacheService(64, "s3fifo", num_workers=2,
                            transport="shm",
                            transport_options=self.TINY) as svc:
            blobs = {i: bytes([i]) * 5000 for i in range(8)}
            svc.set_many(list(blobs.items()))
            for i, blob in blobs.items():
                assert svc.get(i) == blob
            svc.set(0, b"tiny")  # small after huge: arena reset is clean
            assert svc.get(0) == b"tiny"
            assert svc.get(1) == blobs[1]
        assert_no_orphans()

    def test_stats_parity_survives_tiny_geometry(self):
        with MPCacheService(48, "s3fifo", num_workers=2,
                            transport="pipe") as ref:
            mixed_workload(ref, n=150)
            want = pickle.dumps(ref.stats())
        with MPCacheService(48, "s3fifo", num_workers=2,
                            transport="shm",
                            transport_options=self.TINY) as svc:
            mixed_workload(svc, n=150)
            assert pickle.dumps(svc.stats()) == want
        assert_no_orphans()


@pytest.mark.shm
class TestShmCrashSafety:
    def test_worker_crash_surfaces_not_hangs(self):
        """Shared memory has no EOF; the liveness poll must convert a
        dead worker into WorkerCrashedError promptly."""
        svc = MPCacheService(
            64, "s3fifo", num_workers=2, transport="shm",
            fault_plans={0: FaultPlan().add(WORKER_CRASH, 3, 4)},
        )
        crashed = None
        start = time.monotonic()
        try:
            for i in range(500):
                try:
                    svc.set(f"k{i}", i)
                except WorkerCrashedError as exc:
                    crashed = exc
                    break
            elapsed = time.monotonic() - start
            assert crashed is not None, "worker-crash fault never fired"
            assert crashed.worker_id == 0
            assert crashed.exitcode == 13
            assert elapsed < 30.0  # surfaced via poll, not a hang
        finally:
            svc.close()
        assert_no_orphans()

    def test_survivors_still_serve_after_peer_crash(self):
        svc = MPCacheService(
            64, "s3fifo", num_workers=2, transport="shm",
            fault_plans={0: FaultPlan().add(WORKER_CRASH, 1, 2)},
        )
        try:
            survivors = []
            for i in range(500):
                try:
                    svc.set(f"k{i}", i)
                    survivors.append(f"k{i}")
                except WorkerCrashedError:
                    pass
            alive = [k for k in survivors if svc.shard_for(k) == 1]
            assert alive, "expected keys on the surviving worker"
            assert svc.get(alive[-1]) is not None
        finally:
            svc.close()
        assert_no_orphans()


@pytest.mark.shm
class TestShmLifecycle:
    def test_close_idempotent_and_unlinks_segment(self):
        from multiprocessing import shared_memory

        svc = MPCacheService(32, "s3fifo", num_workers=2, transport="shm")
        svc.set("a", 1)
        names = [chan._shm.name for chan in svc._channels]
        svc.close()
        svc.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        assert_no_orphans()

    def test_constructor_failure_leaves_no_segments(self):
        with pytest.raises(Exception):
            MPCacheService(64, "definitely-not-a-policy", num_workers=2,
                           transport="shm")
        assert_no_orphans()

    def test_heartbeat_advances_while_worker_lives(self):
        with MPCacheService(32, "s3fifo", num_workers=1,
                            transport="shm") as svc:
            chan = svc._channels[0]
            svc.set("a", 1)
            first = chan.heartbeat()
            svc.get("a")
            time.sleep(0.05)  # idle worker still beats while waiting
            assert chan.heartbeat() > 0
            assert chan.heartbeat() >= first

    def test_ops_after_close_raise(self):
        from repro.service import ServiceClosedError

        svc = MPCacheService(32, "s3fifo", num_workers=2, transport="shm")
        svc.close()
        with pytest.raises(ServiceClosedError):
            svc.get("a")
        with pytest.raises(TransportClosedError):
            svc._channels[0].send(("get", "a"))
