"""CheckedPolicy: the cross-policy invariant net.

The property test sweeps *every* registered policy through the
sanitizer on a 10k-request Zipf trace at three cache sizes; the
corruption tests prove the sanitizer actually catches broken internals
with a diagnostic naming the violated invariant.
"""

import pytest

from repro.cache.registry import policy_names
from repro.core.s3fifo import S3FifoCache
from repro.resilience.sanitizer import (
    CheckedPolicy,
    InvariantViolation,
    run_checked,
)
from repro.sim.request import Request
from repro.sim.simulator import simulate

pytestmark = pytest.mark.resilience

CACHE_SIZES = (10, 50, 250)


@pytest.mark.parametrize("name", policy_names())
def test_every_policy_passes_sanitizer(name, small_zipf, checked_policy):
    """Property: no registered policy violates an invariant on a clean
    Zipf trace at any of three cache sizes."""
    for capacity in CACHE_SIZES:
        checked = checked_policy(name, capacity)
        for key in small_zipf:
            checked.access(key)
        checked.check()
        assert checked.checks_run > len(small_zipf)


def test_checked_policy_is_transparent(small_zipf):
    """Wrapping must not change hits, misses, or eviction counts."""
    raw = simulate(S3FifoCache(capacity=100), small_zipf)
    wrapped = simulate(CheckedPolicy(S3FifoCache(capacity=100)), small_zipf)
    assert wrapped.miss_ratio == raw.miss_ratio
    assert wrapped.evictions == raw.evictions


def test_run_checked_returns_hits(small_zipf):
    checked, hits = run_checked(S3FifoCache(capacity=100), small_zipf[:1000])
    assert len(hits) == 1000
    assert any(hits)
    assert isinstance(checked.policy, S3FifoCache)


class TestCorruptionDetection:
    """Deliberately break internals; the sanitizer must name the crime."""

    def _warmed(self, deep_every=1):
        policy = S3FifoCache(capacity=50)
        checked = CheckedPolicy(policy, deep_every=deep_every)
        for key in range(200):
            checked.access(key % 80)
        return policy, checked

    def test_occupancy_overflow(self):
        policy, checked = self._warmed()
        policy.used = policy.capacity + 1
        with pytest.raises(InvariantViolation, match="occupancy"):
            checked.check()

    def test_byte_accounting_mismatch(self):
        policy, checked = self._warmed()
        policy._s_used += 7  # counter drifts from the actual S contents
        with pytest.raises(InvariantViolation, match="small-queue-accounting"):
            checked.check()

    def test_duplicate_key_across_queues(self):
        policy, checked = self._warmed()
        key, entry = next(iter(policy._small.items()))
        policy._main[key] = entry  # the S/M disjointness the paper relies on
        with pytest.raises(InvariantViolation, match="duplicate-key"):
            checked.check()

    def test_ghost_holds_resident_key(self):
        policy, checked = self._warmed()
        resident = next(iter(policy._small))
        policy._ghost.add(resident)
        with pytest.raises(InvariantViolation, match="ghost-consistency"):
            checked.check()

    def test_frequency_out_of_range(self):
        policy, checked = self._warmed()
        next(iter(policy._small.values())).freq = 99
        with pytest.raises(InvariantViolation, match="frequency-range"):
            checked.check()

    def test_stats_corruption(self):
        policy, checked = self._warmed()
        policy.stats.hits += 1  # hits + misses no longer equals requests
        with pytest.raises(InvariantViolation, match="stats"):
            checked.check()

    def test_violation_names_policy_and_values(self):
        policy, checked = self._warmed()
        policy.used = -5
        with pytest.raises(InvariantViolation) as info:
            checked.check()
        assert info.value.invariant == "occupancy"
        assert "S3FifoCache" in str(info.value)
        assert "-5" in str(info.value)


class TestDelegation:
    def test_introspection_passthrough(self):
        checked = CheckedPolicy(S3FifoCache(capacity=100))
        checked.access(1)
        assert checked.small_capacity == 10  # S3-FIFO property, delegated
        assert 1 in checked
        assert len(checked) == 1
        assert checked.stats.requests == 1

    def test_request_object_interface(self):
        checked = CheckedPolicy(S3FifoCache(capacity=100))
        assert checked.request(Request(5, size=2)) is False
        assert checked.request(Request(5, size=2)) is True

    def test_deep_every_validation(self):
        with pytest.raises(ValueError):
            CheckedPolicy(S3FifoCache(capacity=10), deep_every=0)
