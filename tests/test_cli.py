"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_choices(self):
        parser = build_parser()
        args = parser.parse_args(["experiment", "fig01"])
        assert args.name == "fig01"
        with pytest.raises(SystemExit):
            parser.parse_args(["experiment", "nope"])

    def test_all_experiments_registered(self):
        for exp in [
            "fig01", "fig02", "fig03", "fig04", "table1", "fig06",
            "fig07", "fig08", "fig09", "fig10", "fig11", "sec52",
            "sec523", "sec62", "sec63", "ablations",
        ]:
            assert exp in EXPERIMENTS


class TestCommands:
    def test_list_policies(self, capsys):
        assert main(["list-policies"]) == 0
        out = capsys.readouterr().out
        assert "s3fifo" in out
        assert "lru" in out

    def test_list_policies_groups_fast_twins(self, capsys):
        assert main(["list-policies"]) == 0
        lines = capsys.readouterr().out.splitlines()
        # A fast twin is indented directly under its reference policy,
        # not interleaved alphabetically at the top level.
        for ref in ("fifo", "lru", "sieve", "s3fifo"):
            twin = next(l for l in lines if l.lstrip().startswith(f"{ref}-fast"))
            assert twin.startswith("  ")
            assert "fast twin" in twin
            assert lines[lines.index(twin) - 1] == ref
        # Every registered policy still appears exactly once.
        from repro.cache.registry import policy_names

        printed = {line.split()[0] for line in lines}
        assert printed == set(policy_names(include_offline=True))

    def test_simulate_zipf(self, capsys):
        code = main(
            [
                "simulate",
                "--policy", "s3fifo",
                "--objects", "500",
                "--requests", "5000",
                "--cache-ratio", "0.1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "miss ratio" in out

    def test_simulate_dataset(self, capsys):
        code = main(
            [
                "simulate",
                "--policy", "lru",
                "--dataset", "msr",
                "--scale", "0.3",
            ]
        )
        assert code == 0
        assert "msr" in capsys.readouterr().out

    def test_experiment_fig01(self, capsys):
        assert main(["experiment", "fig01"]) == 0
        assert "Fig. 1" in capsys.readouterr().out

    def test_experiment_fig08(self, capsys):
        assert main(["experiment", "fig08"]) == 0
        assert "MQPS" in capsys.readouterr().out

    def test_analyze(self, capsys):
        code = main(["analyze", "--dataset", "twitter", "--scale", "0.3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ohw (full)" in out
        assert "zipf alpha" in out

    def test_compare(self, capsys):
        code = main(
            [
                "compare",
                "--policies", "s3fifo,lru,fifo",
                "--objects", "500",
                "--requests", "8000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1." in out and "s3fifo" in out

    def test_mrc_exact(self, capsys):
        code = main(
            [
                "mrc",
                "--policy", "lru",
                "--objects", "500",
                "--requests", "8000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "exact (Mattson)" in out

    def test_mrc_sampled(self, capsys):
        code = main(
            [
                "mrc",
                "--policy", "s3fifo",
                "--objects", "2000",
                "--requests", "20000",
                "--rate", "0.4",
                "--ensembles", "2",
            ]
        )
        assert code == 0
        assert "sampled" in capsys.readouterr().out

    def test_mrc_single_pass_fifo(self, capsys):
        """FIFO defaults to the exact single-pass multi-size engine."""
        code = main(
            [
                "mrc",
                "--policy", "fifo",
                "--objects", "500",
                "--requests", "8000",
            ]
        )
        assert code == 0
        assert "single-pass (exact, auto)" in capsys.readouterr().out

    def test_mrc_fifo_vector_engine(self, capsys):
        """--engine vector: per-size vectorized passes, same exact curve."""
        argv = [
            "mrc",
            "--policy", "fifo",
            "--objects", "500",
            "--requests", "8000",
        ]
        assert main(argv) == 0
        auto_out = capsys.readouterr().out
        assert main(argv + ["--engine", "vector"]) == 0
        vec_out = capsys.readouterr().out
        assert "single-pass (exact, vector)" in vec_out
        # Same curve rows, different method label only.
        auto_rows = [l for l in auto_out.splitlines() if l.lstrip()[:1].isdigit()]
        vec_rows = [l for l in vec_out.splitlines() if l.lstrip()[:1].isdigit()]
        assert auto_rows == vec_rows

    def test_mrc_s3fifo_vector_engine(self, capsys):
        """--engine vector on s3fifo computes the exact (unsampled) curve."""
        code = main(
            [
                "mrc",
                "--policy", "s3fifo",
                "--engine", "vector",
                "--objects", "500",
                "--requests", "8000",
            ]
        )
        assert code == 0
        assert "per-size vector (exact)" in capsys.readouterr().out

    def test_simulate_engine_flag(self, capsys):
        """--engine is wired through simulate and echoed in the output;
        the result is engine-invariant."""
        ratios = {}
        for engine in ("auto", "scalar", "vector"):
            code = main(
                [
                    "simulate",
                    "--policy", "sieve",
                    "--objects", "500",
                    "--requests", "5000",
                    "--cache-ratio", "0.1",
                    "--engine", engine,
                ]
            )
            assert code == 0
            out = capsys.readouterr().out
            assert f"engine:" in out
            ratios[engine] = next(
                l for l in out.splitlines() if "miss ratio" in l
            )
        assert len(set(ratios.values())) == 1

    def test_mrc_single_pass_s3fifo_sampled(self, capsys):
        """--method single-pass on s3fifo runs the sampled one-pass MRC."""
        code = main(
            [
                "mrc",
                "--policy", "s3fifo",
                "--method", "single-pass",
                "--objects", "2000",
                "--requests", "20000",
                "--rate", "0.4",
                "--ensembles", "2",
            ]
        )
        assert code == 0
        assert "single-pass sampled" in capsys.readouterr().out

    def test_mrc_single_pass_rejects_other_policies(self, capsys):
        code = main(
            [
                "mrc",
                "--policy", "lru",
                "--method", "single-pass",
                "--objects", "200",
                "--requests", "1000",
            ]
        )
        assert code == 2
        assert "single-pass" in capsys.readouterr().err

    def test_walkthrough_demo(self, capsys):
        assert main(["walkthrough"]) == 0
        out = capsys.readouterr().out
        assert "ghost" in out
        assert "hit" in out

    def test_walkthrough_custom_trace(self, capsys):
        code = main(["walkthrough", "--trace", "a,b,a", "--capacity", "4"])
        assert code == 0
        assert "a" in capsys.readouterr().out


class TestServiceCommands:
    def test_serve_reports_offline_parity(self, capsys):
        code = main(
            [
                "serve",
                "--objects", "500",
                "--requests", "5000",
                "--shards", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "live miss ratio" in out
        assert "offline miss" in out
        assert "imbalance" in out

    def test_serve_with_ttl(self, capsys):
        code = main(
            [
                "serve",
                "--objects", "300",
                "--requests", "3000",
                "--ttl", "0.001",
            ]
        )
        assert code == 0
        assert "expired" in capsys.readouterr().out

    def test_loadgen_writes_report(self, capsys, tmp_path):
        out_path = tmp_path / "BENCH_service.json"
        code = main(
            [
                "loadgen",
                "--objects", "300",
                "--requests", "2400",
                "--shards", "1,2",
                "--threads", "1,2",
                "--out", str(out_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ops/s" in out
        assert "calibrated" in out
        import json

        report = json.loads(out_path.read_text())
        assert report["schema"] == 4
        assert report["kind"] == "service-loadgen"
        assert len(report["scenarios"]) == 4
        assert all(row["backend"] == "thread" for row in report["scenarios"])
        assert all(row["transport"] == "inproc" for row in report["scenarios"])
        assert "calibration" in report

    def test_loadgen_rejects_bad_shards(self, capsys):
        assert main(["loadgen", "--shards", "one"]) == 2

    def test_loadgen_rejects_shm_without_mp(self, capsys):
        # shm is an mp-only transport; asking for it with the thread
        # backend alone must fail fast, not silently run inproc.
        assert main(["loadgen", "--transport", "shm"]) == 2
        assert main(["loadgen", "--transport", "sideways"]) == 2

    def test_serve_rejects_shm_without_mp(self, capsys):
        assert main(["serve", "--transport", "shm"]) == 2


class TestResilienceCommand:
    def test_resilience_demo(self, capsys):
        code = main(
            [
                "resilience",
                "--objects", "500",
                "--requests", "4000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "degraded requests" in out
        assert "warm-restart miss" in out
        assert "records salvaged" in out
        assert "sanitizer" in out

    def test_resilience_is_deterministic(self, capsys):
        args = ["resilience", "--objects", "300", "--requests", "3000"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first


class TestObservabilityCommands:
    def test_export_metrics_prometheus_to_stdout(self, capsys):
        code = main(
            [
                "export-metrics",
                "--objects", "300",
                "--requests", "3000",
                "--shards", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("# HELP ")
        assert out.endswith("\n")
        assert "repro_service_gets_total{" in out
        assert "repro_policy_small_used{" in out
        assert "repro_shard_imbalance " in out
        assert 'repro_service_op_latency_us_bucket{' in out

    def test_export_metrics_json_to_file(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "metrics.json"
        code = main(
            [
                "export-metrics",
                "--objects", "300",
                "--requests", "2000",
                "--format", "json",
                "--out", str(out_path),
            ]
        )
        assert code == 0
        assert str(out_path) in capsys.readouterr().out
        doc = json.loads(out_path.read_text())
        assert doc["schema"] == 1
        assert doc["kind"] == "metrics-export"
        names = {m["name"] for m in doc["metrics"]}
        assert "repro_service_hits" in names
        assert "repro_policy_ghost_entries" in names

    def test_stats_alias(self, capsys):
        code = main(
            ["stats", "--objects", "200", "--requests", "1000"]
        )
        assert code == 0
        assert "# TYPE" in capsys.readouterr().out

    def test_export_metrics_ttl_on_removal_policy(self, capsys):
        code = main(
            [
                "export-metrics",
                "--objects", "200",
                "--requests", "1000",
                "--ttl", "60",
            ]
        )
        assert code == 0
        assert "repro_service_ttl_entries " in capsys.readouterr().out


class TestRemovalUnsupportedHandling:
    """TTL flags on a policy without remove() exit with one clean line."""

    @pytest.mark.parametrize("argv", [
        ["serve", "--objects", "100", "--requests", "200",
         "--policy", "sieve", "--ttl", "1"],
        ["loadgen", "--objects", "100", "--requests", "200",
         "--shards", "1", "--threads", "1",
         "--policy", "sieve", "--ttl", "1"],
        ["export-metrics", "--objects", "100", "--requests", "200",
         "--policy", "sieve", "--ttl", "1"],
    ])
    def test_exits_2_with_one_line_error(self, capsys, argv):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: policy 'sieve'")
        assert err.count("\n") == 1  # one line, no traceback
        # The message tells the user which policies would work.
        assert "s3fifo" in err and "lru" in err


class TestServeWatch:
    def test_watch_rejects_nonpositive(self, capsys):
        code = main(
            ["serve", "--objects", "100", "--requests", "200",
             "--watch", "0"]
        )
        assert code == 2
        assert "--watch" in capsys.readouterr().err

    def test_watch_prints_snapshots(self, capsys):
        code = main(
            [
                "serve",
                "--objects", "2000",
                "--requests", "120000",
                "--watch", "0.05",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[watch +" in out
        assert "live miss ratio" in out
