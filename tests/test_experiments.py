"""Smoke + shape tests for every experiment module (tiny scales)."""

import pytest

from repro.experiments import (
    ablations,
    sec523_byte_missratio,
    fig01_toy,
    fig02_onehit_curves,
    fig03_onehit_distribution,
    fig04_eviction_frequency,
    fig06_missratio_percentiles,
    fig07_missratio_by_dataset,
    fig08_throughput,
    fig09_flash_admission,
    fig10_demotion,
    fig11_s_size_sweep,
    sec52_adversarial,
    sec62_adaptive,
    sec63_queue_type,
    table1_datasets,
)


class TestFig01:
    def test_matches_paper_exactly(self):
        rows = fig01_toy.run()
        by_window = {(r["start"], r["end"]): r for r in rows}
        assert by_window[(1, 17)]["ratio"] == pytest.approx(0.20)
        assert by_window[(1, 7)]["ratio"] == pytest.approx(0.50)
        assert by_window[(1, 4)]["ratio"] == pytest.approx(2 / 3, abs=0.01)
        assert by_window[(1, 17)]["one_hit_wonders"] == "E"
        assert by_window[(1, 7)]["one_hit_wonders"] == "C,D"

    def test_format(self):
        assert "Fig. 1" in fig01_toy.format_table()


class TestFig02:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig02_onehit_curves.run(
            alphas=(0.8, 1.2),
            num_objects=1500,
            num_requests=30_000,
            num_samples=4,
        )

    def test_curves_decrease(self, rows):
        for trace in ("zipf-0.8", "zipf-1.2", "msr", "twitter"):
            assert fig02_onehit_curves.monotonically_decreasing(
                rows, trace, tolerance=0.1
            ), trace

    def test_skew_lowers_curve(self, rows):
        def at(trace, frac):
            return next(
                r["ohw_ratio"]
                for r in rows
                if r["trace"] == trace and r["fraction"] == frac
            )

        assert at("zipf-1.2", 0.1) < at("zipf-0.8", 0.1)

    def test_format(self, rows):
        assert "Fig. 2" in fig02_onehit_curves.format_table(rows)


class TestFig03:
    def test_shorter_sequences_higher_median(self):
        rows = fig03_onehit_distribution.run(
            fractions=(1.0, 0.1),
            datasets=["msr", "twitter", "cdn1"],
            traces_per_dataset=2,
            scale=0.4,
            num_samples=3,
        )
        by_frac = {r["fraction"]: r for r in rows}
        assert by_frac[0.1]["median"] > by_frac[1.0]["median"]

    def test_row_counts(self):
        rows = fig03_onehit_distribution.run(
            fractions=(1.0,),
            datasets=["fiu"],
            traces_per_dataset=2,
            scale=0.3,
        )
        assert rows[0]["traces"] == 2


class TestFig04:
    def test_one_hit_wonders_at_eviction(self):
        rows = fig04_eviction_frequency.run(
            datasets=("msr",), policies=("lru", "belady"), scale=0.4
        )
        by_policy = {r["policy"]: r for r in rows}
        # MSR-like: the paper reports 82% (LRU) / 68% (Belady) freq-0.
        assert by_policy["lru"]["freq0"] > 0.5
        assert by_policy["belady"]["freq0"] > 0.3
        assert by_policy["lru"]["evictions"] > 0

    def test_cdf_monotone(self):
        rows = fig04_eviction_frequency.run(
            datasets=("twitter",), policies=("lru",), scale=0.4
        )
        row = rows[0]
        cdf = [row[f"freq<={k}"] for k in range(5)]
        assert all(cdf[i] <= cdf[i + 1] + 1e-12 for i in range(4))


class TestTable1:
    def test_all_datasets_reported(self):
        rows = table1_datasets.run(scale=0.3, traces_per_dataset=1)
        assert len(rows) == 14
        for row in rows:
            assert row["ohw_10pct"] >= row["ohw_full"] - 0.05


class TestFig06:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig06_missratio_percentiles.run(
            policies=["s3fifo", "lru", "clock", "tinylfu"],
            datasets=["msr", "twitter", "cdn1"],
            scale=0.3,
            traces_per_dataset=2,
            processes=1,
            cache_ratios=(0.1,),
        )

    def test_s3fifo_best_mean(self, rows):
        means = {r["policy"]: r["mean"] for r in rows}
        assert means["s3fifo"] == max(means.values())

    def test_all_beat_fifo_on_these_datasets(self, rows):
        for row in rows:
            assert row["mean"] > 0, row["policy"]

    def test_format(self, rows):
        assert "Fig. 6" in fig06_missratio_percentiles.format_table(rows)


class TestFig07:
    def test_winner_column(self):
        rows = fig07_missratio_by_dataset.run(
            policies=["s3fifo", "lru"],
            datasets=["msr"],
            scale=0.3,
            traces_per_dataset=2,
            processes=1,
        )
        assert rows[0]["best"] in {"s3fifo", "lru"}
        assert rows[0]["s3fifo_rank"] in {1, 2}

    def test_wins_helper(self):
        rows = [
            {"dataset": "a", "x": 0.5, "y": 0.2, "best": "x", "s3fifo_rank": 1},
            {"dataset": "b", "x": 0.1, "y": 0.4, "best": "y", "s3fifo_rank": 2},
        ]
        assert fig07_missratio_by_dataset.wins(rows, "x") == 1
        assert fig07_missratio_by_dataset.top_k_count(rows, "x", k=2) == 2


class TestFig08:
    def test_shapes(self):
        rows = fig08_throughput.run()
        assert fig08_throughput.speedup_at(
            rows, "large", "s3fifo", "lru-optimized", 16
        ) > 6
        strict = next(
            r for r in rows if r["cache"] == "large" and r["policy"] == "lru-strict"
        )
        assert strict["t16"] < 2 * strict["t1"]

    def test_simulation_mode(self):
        rows = fig08_throughput.run(
            policies=("s3fifo",), threads=(1, 2), use_simulation=True,
            requests=20_000,
        )
        assert rows[0]["t2"] > rows[0]["t1"]


class TestFig09:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig09_flash_admission.run(
            datasets=("wikimedia",), dram_ratios=(0.01, 0.1), scale=0.25
        )

    def test_admission_reduces_writes(self, rows):
        writes = {r["scheme"]: r["normalized_writes"] for r in rows}
        baseline = writes["fifo (no admission)"]
        s3_keys = [k for k in writes if k.startswith("s3fifo")]
        assert all(writes[k] < baseline for k in s3_keys)

    def test_s3_filter_good_miss_ratio(self, rows):
        by_scheme = {r["scheme"]: r for r in rows}
        prob = by_scheme["probabilistic-0.2"]["miss_ratio"]
        s3_best = min(
            r["miss_ratio"] for r in rows if r["scheme"].startswith("s3fifo")
        )
        assert s3_best <= prob + 0.05


class TestFig10:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig10_demotion.run(
            datasets=("twitter",),
            s_sizes=(0.4, 0.1, 0.02),
            cache_ratios=(0.1,),
            scale=0.3,
        )

    def test_smaller_s_faster(self, rows):
        s3 = {
            r["s_size"]: r["speed"]
            for r in rows
            if r["policy"] == "s3fifo" and r["s_size"]
        }
        assert s3[0.02] > s3[0.4]

    def test_table2_pivot(self, rows):
        table = fig10_demotion.table2_view(rows)
        policies = {r["policy"] for r in table}
        assert {"tinylfu", "s3fifo", "arc", "lru"} <= policies


class TestFig11:
    def test_sweep_rows(self):
        rows = fig11_s_size_sweep.run(
            s_sizes=(0.05, 0.2),
            datasets=["twitter", "msr"],
            cache_ratios=(0.1,),
            scale=0.3,
            traces_per_dataset=2,
            processes=1,
        )
        assert {r["s_size"] for r in rows} == {0.05, 0.2}
        assert all(r["mean"] > 0 for r in rows)


class TestSections:
    def test_sec52_partitioned_policies_lose(self):
        rows = sec52_adversarial.run(
            num_objects=4000, cache_size=500, gaps=(400,), seed=0
        )
        by_policy = {r["policy"]: r["miss_ratio"] for r in rows}
        assert by_policy["fifo"] < by_policy["s3fifo"]
        assert by_policy["fifo"] < by_policy["tinylfu"]

    def test_sec62_summary(self):
        rows = sec62_adaptive.run(
            datasets=["twitter"],
            scale=0.3,
            traces_per_dataset=2,
            processes=1,
        )
        summary = sec62_adaptive.summarize(rows)
        assert summary["traces"] == 2
        assert summary["adversarial_gain"] is not None

    def test_sec63_variants_close(self):
        rows = sec63_queue_type.run(
            datasets=["twitter", "msr"],
            scale=0.3,
            traces_per_dataset=1,
            processes=1,
        )
        means = [r["mean_reduction"] for r in rows]
        assert max(means) - min(means) < 0.1
        assert len(rows) == 5

    def test_sec523_byte_reduction_positive(self):
        rows = sec523_byte_missratio.run(
            policies=("s3fifo", "lru"),
            datasets=["wikimedia"],
            scale=0.25,
            traces_per_dataset=1,
            processes=1,
        )
        means = {r["policy"]: r["mean"] for r in rows}
        assert means["s3fifo"] > means["lru"]

    def test_ablations_default_competitive(self):
        rows = ablations.run(
            ablations={
                "default (ghost=|M|, cap=3, thr=2)": {},
                "move-threshold=1": {"move_to_main_threshold": 1},
            },
            datasets=["twitter"],
            scale=0.3,
            traces_per_dataset=2,
            processes=1,
        )
        by_label = {r["ablation"]: r["mean_reduction"] for r in rows}
        assert len(by_label) == 2
        assert all(v > 0 for v in by_label.values())
