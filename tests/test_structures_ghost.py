"""Unit tests for ghost queues (GhostFifo and the fingerprint table)."""

import pytest

from repro.structures.ghost import GhostCache, GhostFifo, fingerprint


class TestGhostFifo:
    def test_membership(self):
        g = GhostFifo(3)
        g.add("a")
        assert "a" in g
        assert "b" not in g

    def test_fifo_eviction(self):
        g = GhostFifo(2)
        g.add("a")
        g.add("b")
        g.add("c")
        assert "a" not in g
        assert "b" in g and "c" in g
        assert len(g) == 2

    def test_readd_refreshes_position(self):
        g = GhostFifo(2)
        g.add("a")
        g.add("b")
        g.add("a")  # refresh: "a" now newest
        g.add("c")  # evicts "b"
        assert "a" in g
        assert "b" not in g

    def test_remove(self):
        g = GhostFifo(3)
        g.add("a")
        assert g.remove("a")
        assert "a" not in g
        assert not g.remove("a")

    def test_remove_then_capacity_respected(self):
        g = GhostFifo(2)
        g.add("a")
        g.add("b")
        g.remove("a")
        g.add("c")
        g.add("d")
        assert len(g) == 2
        assert "b" not in g  # b was oldest live entry

    def test_zero_capacity(self):
        g = GhostFifo(0)
        g.add("a")
        assert "a" not in g
        assert len(g) == 0

    def test_negative_capacity_raises(self):
        with pytest.raises(ValueError):
            GhostFifo(-1)

    def test_clear(self):
        g = GhostFifo(4)
        for k in "abc":
            g.add(k)
        g.clear()
        assert len(g) == 0
        assert "a" not in g

    def test_many_readds_stay_bounded(self):
        g = GhostFifo(4)
        for i in range(1000):
            g.add(i % 3)
        assert len(g) <= 4

    def test_eviction_order_with_duplicates(self):
        g = GhostFifo(2)
        g.add("x")
        g.add("x")
        g.add("y")
        g.add("z")  # drops x (oldest live), then keeps y, z
        assert "x" not in g
        assert "y" in g and "z" in g


class TestFingerprint:
    def test_stable(self):
        assert fingerprint("abc") == fingerprint("abc")

    def test_bounded(self):
        for key in ["a", 123, ("x", 1)]:
            assert 0 <= fingerprint(key) < 2**32

    def test_custom_bits(self):
        assert 0 <= fingerprint("abc", bits=8) < 256


class TestGhostCache:
    def test_membership_and_expiry(self):
        g = GhostCache(capacity=4)
        g.add("a")
        assert "a" in g
        for i in range(5):
            g.add(f"k{i}")
        assert "a" not in g  # expired after > capacity insertions

    def test_remove(self):
        g = GhostCache(capacity=8)
        g.add("a")
        assert g.remove("a")
        assert "a" not in g
        assert not g.remove("a")

    def test_readding_refreshes(self):
        g = GhostCache(capacity=3)
        g.add("a")
        g.add("b")
        g.add("c")
        g.add("a")  # refresh a's timestamp
        g.add("d")
        g.add("e")
        assert "a" in g  # refreshed 3 insertions ago (d, e)

    def test_len_counts_live(self):
        g = GhostCache(capacity=3)
        for k in "abc":
            g.add(k)
        assert len(g) == 3

    def test_bucket_overflow_reclaims(self):
        # Tiny table forces collisions; must not grow unboundedly.
        g = GhostCache(capacity=4, bucket_size=2)
        for i in range(100):
            g.add(i)
        assert g.load_factor() <= 1.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GhostCache(0)
        with pytest.raises(ValueError):
            GhostCache(4, bucket_size=0)

    def test_insertions_clock(self):
        g = GhostCache(capacity=4)
        g.add("a")
        g.add("b")
        assert g.insertions == 2
