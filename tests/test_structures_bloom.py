"""Unit tests for Bloom filters."""

import pytest

from repro.structures.bloom import BloomFilter, CountingBloomFilter


class TestBloomFilter:
    def test_no_false_negatives(self):
        bf = BloomFilter(expected_items=1000, fp_rate=0.01)
        keys = [f"key-{i}" for i in range(500)]
        for k in keys:
            bf.add(k)
        assert all(k in bf for k in keys)

    def test_false_positive_rate_reasonable(self):
        bf = BloomFilter(expected_items=2000, fp_rate=0.01)
        for i in range(2000):
            bf.add(("in", i))
        fps = sum(1 for i in range(10_000) if ("out", i) in bf)
        assert fps / 10_000 < 0.05  # generous bound over the 1% target

    def test_add_returns_new(self):
        bf = BloomFilter(expected_items=100)
        assert bf.add("a") is True
        assert bf.add("a") is False

    def test_count(self):
        bf = BloomFilter(expected_items=100)
        bf.add("a")
        bf.add("a")
        bf.add("b")
        assert bf.count == 2

    def test_clear(self):
        bf = BloomFilter(expected_items=100)
        bf.add("a")
        bf.clear()
        assert "a" not in bf
        assert bf.count == 0

    def test_estimated_fp_rate_grows(self):
        bf = BloomFilter(expected_items=100, fp_rate=0.01)
        empty = bf.estimated_fp_rate()
        for i in range(100):
            bf.add(i)
        assert bf.estimated_fp_rate() > empty

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BloomFilter(0)
        with pytest.raises(ValueError):
            BloomFilter(10, fp_rate=0.0)
        with pytest.raises(ValueError):
            BloomFilter(10, fp_rate=1.5)

    def test_mixed_key_types(self):
        bf = BloomFilter(expected_items=100)
        bf.add(42)
        bf.add(("tuple", 1))
        assert 42 in bf
        assert ("tuple", 1) in bf


class TestCountingBloomFilter:
    def test_add_remove(self):
        cbf = CountingBloomFilter(expected_items=100)
        cbf.add("a")
        assert "a" in cbf
        cbf.remove("a")
        assert "a" not in cbf

    def test_remove_absent_is_noop(self):
        cbf = CountingBloomFilter(expected_items=100)
        cbf.add("a")
        cbf.remove("b")  # must not corrupt "a"
        assert "a" in cbf

    def test_multiset_semantics(self):
        cbf = CountingBloomFilter(expected_items=100)
        cbf.add("a")
        cbf.add("a")
        cbf.remove("a")
        assert "a" in cbf
        cbf.remove("a")
        assert "a" not in cbf

    def test_estimate_counts(self):
        cbf = CountingBloomFilter(expected_items=100)
        for _ in range(3):
            cbf.add("hot")
        assert cbf.estimate("hot") >= 3

    def test_saturation_cap(self):
        cbf = CountingBloomFilter(expected_items=100, cap=3)
        for _ in range(10):
            cbf.add("x")
        assert cbf.estimate("x") == 3

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            CountingBloomFilter(10, cap=0)
