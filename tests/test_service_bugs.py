"""Regression tests for two service-layer correctness bugs.

Bug 1 — **orphaned values**: ``CacheService.set`` used to store the
value unconditionally after ``policy.request()``.  A policy that
declines to retain the key (``blru``'s Bloom doorkeeper rejects every
first-touch key) left ``_values`` holding an entry the policy never
admitted; the next ``get`` tripped the residency assertion.  The fix
re-checks residency after the request and reports the set as rejected.

Bug 2 — **sweeper starvation**: ``sweep()`` used to rebuild its queue
from *all* resident keys, so a TTL'd key buried behind a large
immortal population waited ``O(total_keys / batch)`` sweeps for its
visit.  The queue now holds only keys that were ever given a TTL, so
the bound is ``O(ttl_keys / batch)``.
"""

import random

import pytest

from repro.service import CacheService


class TestAdmissionRejection:
    """Bug 1: the policy may decline the key the service just offered."""

    def test_blru_first_touch_set_is_rejected_not_orphaned(self):
        svc = CacheService(10, "blru")
        # blru's Bloom filter has never seen the key: the policy refuses
        # admission, so the service must not store the value.
        assert svc.set("k", "v") is False
        assert "k" not in svc
        assert svc.get("k") is None  # pre-fix: AssertionError here
        assert svc.counters.rejected == 1
        svc.check()

    def test_blru_second_touch_is_admitted(self):
        svc = CacheService(10, "blru")
        assert svc.set("k", "v1") is False
        assert svc.set("k", "v2") is True
        assert svc.get("k") == "v2"
        svc.check()

    def test_blru_read_through_loop_stays_consistent(self):
        """The realistic reproducer: a read-through loop over more keys
        than the capacity.  Pre-fix this died on the residency assert
        within the first few iterations."""
        svc = CacheService(10, "blru")
        rng = random.Random(7)
        for _ in range(2000):
            key = rng.randrange(50)
            if svc.get(key) is None:
                svc.set(key, key)
        svc.check()
        assert svc.counters.rejected > 0
        assert svc.counters.hits > 0

    @pytest.mark.parametrize("policy", ["s3fifo", "s3fifo-fast"])
    def test_near_capacity_sized_hammer(self, policy):
        """Byte-sized entries sized near the S/M partition boundaries:
        residency must hold after every operation mix."""
        for seed in range(8):
            rng = random.Random(seed)
            capacity = 100
            svc = CacheService(capacity, policy, checked=True)
            sizes = [1, 2, 5, 9, 10, 11, 45, 89, 90, 91, 99, 100]
            for _ in range(1500):
                key = rng.randrange(40)
                op = rng.random()
                if op < 0.5:
                    value = svc.get(key)
                    if value is None:
                        svc.set(key, key, size=rng.choice(sizes))
                elif op < 0.8:
                    svc.set(key, key, size=rng.choice(sizes))
                else:
                    svc.delete(key)
            svc.check()
            for key in list(svc._values):
                assert key in svc.policy, (policy, seed, key)

    def test_oversized_set_still_counts_rejected(self):
        svc = CacheService(10, "s3fifo")
        assert svc.set("big", "v", size=11) is False
        assert svc.counters.rejected == 1
        assert "big" not in svc


class TestSweeperStarvation:
    """Bug 2: the sweeper's work is bounded by TTL'd keys, not all keys."""

    def make_service(self, **kwargs):
        self.now = [0.0]
        kwargs.setdefault("sweep_interval", 0)
        return CacheService(
            kwargs.pop("capacity", 50_000),
            kwargs.pop("policy", "s3fifo"),
            clock=lambda: self.now[0],
            **kwargs,
        )

    def test_ttl_key_buried_under_immortal_population(self):
        """One TTL'd key set *before* 5000 immortal keys must be purged
        by the very first sweep batch.  Pre-fix the sweeper walked the
        whole key population tail-first, so this key — at the head of
        the rebuilt queue — was reached only after ~78 batches."""
        svc = self.make_service()
        svc.set("mortal", 1, ttl=5)
        for i in range(5000):
            svc.set(i, i)
        self.now[0] = 10.0
        assert svc.sweep(max_checks=64) == 1
        assert svc.counters.sweep_checks == 1
        assert "mortal" not in svc
        assert len(svc) == 5000

    def test_sweep_bound_is_queue_len_over_batch(self):
        """200 expired TTL'd keys, batch 50: exactly 4 sweeps drain them
        regardless of 2000 immortal cohabitants."""
        svc = self.make_service()
        for i in range(2000):
            svc.set(("immortal", i), i)
        for i in range(200):
            svc.set(("mortal", i), i, ttl=1)
        self.now[0] = 2.0
        drained = [svc.sweep(max_checks=50) for _ in range(4)]
        assert drained == [50, 50, 50, 50]
        assert svc.sweep(max_checks=50) == 0
        assert svc.stats()["sweep_backlog"] == 0
        assert svc.counters.sweep_checks == 200

    def test_live_ttl_keys_recycle_to_tail(self):
        svc = self.make_service()
        for i in range(10):
            svc.set(i, i, ttl=100)
        assert svc.sweep(max_checks=10) == 0
        assert svc.stats()["sweep_backlog"] == 10  # still tracked
        self.now[0] = 200.0
        assert svc.sweep(max_checks=10) == 10
        assert svc.stats()["sweep_backlog"] == 0

    def test_departed_keys_dropped_on_sight(self):
        svc = self.make_service()
        svc.set("gone", 1, ttl=50)
        svc.delete("gone")
        assert svc.sweep() == 0
        assert svc.stats()["sweep_backlog"] == 0
        svc.check()

    def test_reset_without_ttl_leaves_the_queue(self):
        svc = self.make_service()
        svc.set("k", 1, ttl=50)
        svc.set("k", 2)  # TTL removed: now immortal
        assert svc.stats()["ttl_entries"] == 0
        assert svc.sweep() == 0
        assert svc.stats()["sweep_backlog"] == 0
        assert svc.get("k") == 2

    def test_stale_queue_slot_serves_the_reincarnation(self):
        """Lazy expiry purges a key but leaves its queue slot; a re-set
        with a new TTL reuses that slot instead of duplicating it."""
        svc = self.make_service()
        svc.set("k", 1, ttl=5)
        self.now[0] = 10.0
        assert svc.get("k") is None  # lazy expiry purges the entry
        svc.set("k", 2, ttl=5)
        assert svc.stats()["sweep_backlog"] == 1
        self.now[0] = 20.0
        assert svc.sweep() == 1
        assert svc.stats()["sweep_backlog"] == 0
        svc.check()

    def test_automatic_sweeps_still_fire_on_cadence(self):
        svc = self.make_service(sweep_interval=10, sweep_batch=8)
        for i in range(50):
            svc.set(i, i, ttl=1)
        self.now[0] = 2.0
        for i in range(100):
            svc.get(("probe", i))
        assert svc.counters.sweeps > 0
        assert svc.counters.expired >= 50
