"""Tests for windowed miss-ratio measurement."""

import pytest

from repro.cache.fifo import FifoCache
from repro.cache.lru import LruCache
from repro.core.s3fifo import S3FifoCache
from repro.sim.simulator import windowed_miss_ratios
from repro.traces.synthetic import zipf_trace, zipf_with_scans


class TestWindowedMissRatios:
    def test_window_count(self):
        ratios = windowed_miss_ratios(FifoCache(10), list(range(25)), 10)
        assert len(ratios) == 3  # 10 + 10 + 5

    def test_all_misses_on_distinct_keys(self):
        ratios = windowed_miss_ratios(FifoCache(10), list(range(30)), 10)
        assert ratios == [1.0, 1.0, 1.0]

    def test_warmup_converges(self):
        trace = zipf_trace(500, 20_000, alpha=1.0, seed=0)
        ratios = windowed_miss_ratios(S3FifoCache(100), trace, 2000)
        assert ratios[0] > ratios[-1]  # cold start is the worst window

    def test_scan_shows_as_spike(self):
        trace = zipf_with_scans(
            500, 20_000, alpha=1.1, scan_length=1500, scan_every=10_000,
            seed=1,
        )
        ratios = windowed_miss_ratios(LruCache(100), trace, 1000)
        steady = min(ratios[1:])
        spike = max(ratios[2:])
        assert spike > steady + 0.2

    def test_aggregate_matches_simulate(self):
        from repro.sim.simulator import simulate

        trace = zipf_trace(200, 5000, seed=2)
        windowed = windowed_miss_ratios(FifoCache(20), list(trace), 500)
        total = simulate(FifoCache(20), list(trace)).miss_ratio
        assert sum(windowed) / len(windowed) == pytest.approx(total, abs=0.02)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            windowed_miss_ratios(FifoCache(10), [1], 0)

    def test_empty_trace(self):
        assert windowed_miss_ratios(FifoCache(10), [], 5) == []

    def test_accepts_tuples(self):
        ratios = windowed_miss_ratios(
            FifoCache(100), [("a", 10), ("a", 10)], 1
        )
        assert ratios == [1.0, 0.0]
