"""Concurrent hammer: mixed get/set/delete/sweep under the sanitizer.

Several threads drive one service with a seeded mix of operations
(including TTL'd sets against an injected-but-advancing clock) while
the :class:`~repro.resilience.sanitizer.CheckedPolicy` cross-checks
every policy access.  At the end the service's value map and the
policy must agree key-for-key — the invariant the bug-1 fix protects.
"""

import random
import threading

import pytest

from repro.service import CacheService, ShardedCacheService

POLICIES = ["s3fifo", "s3fifo-fast"]

NUM_THREADS = 4
OPS_PER_THREAD = 2000
KEYSPACE = 200
CAPACITY = 64


def hammer(service, seed: int, errors: list) -> None:
    rng = random.Random(seed)
    try:
        for _ in range(OPS_PER_THREAD):
            key = rng.randrange(KEYSPACE)
            op = rng.random()
            if op < 0.55:
                if service.get(key) is None:
                    service.set(key, key)
            elif op < 0.75:
                size = rng.choice((1, 2, 3))
                if rng.random() < 0.3:
                    service.set(key, key, ttl=rng.choice((0.0005, 0.002)),
                                size=size)
                else:
                    service.set(key, key, size=size)
            elif op < 0.9:
                service.delete(key)
            else:
                service.sweep(max_checks=16)
    except BaseException as exc:  # propagate to the main thread
        errors.append(exc)


def assert_residency_agreement(shard: CacheService) -> None:
    shard.check()  # sanitizer invariants + used-bytes agreement
    values = shard._values
    policy = shard.policy
    for key in list(values):
        assert key in policy, f"service holds {key!r}, policy does not"
    assert len(policy) == len(values)


def run_hammer(service) -> None:
    errors: list = []
    threads = [
        threading.Thread(target=hammer, args=(service, seed, errors))
        for seed in range(NUM_THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    # Drain whatever TTL backlog remains, then verify agreement.
    for _ in range(64):
        if not service.sweep(max_checks=64):
            break


@pytest.mark.parametrize("policy", POLICIES)
def test_single_shard_hammer(policy):
    service = CacheService(CAPACITY, policy, checked=True)
    run_hammer(service)
    assert_residency_agreement(service)
    counters = service.counters
    assert counters.gets + counters.sets + counters.deletes > 0
    assert counters.evictions > 0


@pytest.mark.parametrize("policy", POLICIES)
def test_sharded_hammer(policy):
    service = ShardedCacheService(
        CAPACITY, policy, num_shards=4, checked=True
    )
    run_hammer(service)
    for shard in service.shards:
        assert_residency_agreement(shard)
    stats = service.stats()
    assert stats["evictions"] > 0
    assert len(stats["per_shard"]) == 4


def test_stats_consistent_while_writers_run():
    """``stats()`` snapshots must never tear: each shard snapshot is
    taken under that shard's lock, so ``hits + misses == gets`` holds
    per shard and in the aggregate even while writers are mid-storm —
    a reader polling stats concurrently with the hammer sees only
    internally-consistent numbers."""
    service = ShardedCacheService(CAPACITY, "s3fifo", num_shards=4)
    errors: list = []
    stop = threading.Event()

    def poll_stats() -> None:
        try:
            while not stop.is_set():
                stats = service.stats()
                assert stats["hits"] + stats["misses"] == stats["gets"], stats
                for shard_stats in stats["per_shard"]:
                    assert (
                        shard_stats["hits"] + shard_stats["misses"]
                        == shard_stats["gets"]
                    ), shard_stats
        except BaseException as exc:  # propagate to the main thread
            errors.append(exc)

    writers = [
        threading.Thread(target=hammer, args=(service, seed, errors))
        for seed in range(NUM_THREADS)
    ]
    readers = [
        threading.Thread(target=poll_stats, daemon=True) for _ in range(2)
    ]
    for t in writers + readers:
        t.start()
    for t in writers:
        t.join()
    stop.set()
    for t in readers:
        t.join()
    assert not errors, errors
    final = service.stats()
    assert final["hits"] + final["misses"] == final["gets"]
    assert final["gets"] > 0


@pytest.mark.parametrize("policy", POLICIES)
def test_hammer_with_observability_attached(policy):
    """The metrics/tracer hot path must not perturb correctness."""
    from repro.obs import EventTracer, MetricsRegistry

    registry = MetricsRegistry()
    tracer = EventTracer(capacity=128, sample_every=17)
    service = ShardedCacheService(
        CAPACITY, policy, num_shards=2, checked=True,
        metrics=registry, tracer=tracer, instrument_policy=True,
    )
    run_hammer(service)
    for shard in service.shards:
        assert_residency_agreement(shard)
    gets = sum(
        registry.get("repro_service_gets", {"shard": str(i)}).collect_value()
        for i in range(2)
    )
    assert gets == service.stats()["gets"]
    assert tracer.seen > 0
