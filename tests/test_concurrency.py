"""Tests for the throughput/scalability models (Fig. 8 substrate)."""

import pytest

from repro.concurrency.costs import CostProfile, PROFILES, profile_for
from repro.concurrency.model import (
    analytic_throughput,
    simulate_throughput,
    speedup_over,
    throughput_curve,
)


class TestCostProfiles:
    def test_all_fig8_policies_present(self):
        for name in [
            "lru-strict",
            "lru-optimized",
            "tinylfu",
            "twoq",
            "s3fifo",
            "segcache",
        ]:
            assert name in PROFILES

    def test_profile_for_unknown(self):
        with pytest.raises(KeyError):
            profile_for("nope")

    def test_expected_work_interpolates(self):
        p = CostProfile("t", 100, 10, 200, 50)
        assert p.parallel_ns(0.0) == 100
        assert p.parallel_ns(1.0) == 200
        assert p.critical_ns(0.5) == 30

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            CostProfile("t", -1, 0, 0, 0)

    def test_s3fifo_has_minimal_critical_work(self):
        s3 = profile_for("s3fifo")
        lru = profile_for("lru-strict")
        assert s3.critical_ns(0.02) < lru.critical_ns(0.02) / 10


class TestAnalyticModel:
    def test_single_thread_positive(self):
        mqps = analytic_throughput(profile_for("lru-strict"), 1, 0.02)
        assert mqps > 0

    def test_validation(self):
        p = profile_for("s3fifo")
        with pytest.raises(ValueError):
            analytic_throughput(p, 0, 0.02)
        with pytest.raises(ValueError):
            analytic_throughput(p, 1, 1.5)

    def test_s3fifo_scales_nearly_linearly(self):
        p = profile_for("s3fifo")
        x1 = analytic_throughput(p, 1, 0.02)
        x16 = analytic_throughput(p, 16, 0.02)
        assert x16 > 12 * x1

    def test_strict_lru_does_not_scale(self):
        p = profile_for("lru-strict")
        x1 = analytic_throughput(p, 1, 0.02)
        x16 = analytic_throughput(p, 16, 0.02)
        assert x16 < 2 * x1

    def test_optimized_lru_plateaus_early(self):
        """The Fig. 8 shape: scaling stops around a handful of cores
        and bends down slightly after."""
        p = profile_for("lru-optimized")
        curve = [analytic_throughput(p, n, 0.02) for n in (1, 2, 4, 8, 16)]
        assert curve[1] > 1.5 * curve[0]  # 2 threads still help
        assert curve[4] <= curve[2]  # 16 threads no better than 4

    def test_paper_headline_6x(self):
        """S3-FIFO >6x optimized LRU at 16 threads, both cache sizes."""
        for miss_ratio in (0.02, 0.21):
            s3 = analytic_throughput(profile_for("s3fifo"), 16, miss_ratio)
            lru = analytic_throughput(
                profile_for("lru-optimized"), 16, miss_ratio
            )
            assert s3 / lru > 6.0

    def test_tinylfu_below_lru(self):
        for n in (1, 2, 4):
            tiny = analytic_throughput(profile_for("tinylfu"), n, 0.02)
            lru = analytic_throughput(profile_for("lru-optimized"), n, 0.02)
            assert tiny < lru

    def test_segcache_slower_single_thread_than_s3fifo(self):
        seg = analytic_throughput(profile_for("segcache"), 1, 0.02)
        s3 = analytic_throughput(profile_for("s3fifo"), 1, 0.02)
        assert seg < s3


class TestSimulationModel:
    def test_matches_analytic_unsaturated(self):
        p = profile_for("s3fifo")
        sim = simulate_throughput(p, 4, 0.02, requests=50_000, seed=0)
        ana = analytic_throughput(p, 4, 0.02)
        assert sim == pytest.approx(ana, rel=0.2)

    def test_matches_analytic_saturated(self):
        p = profile_for("lru-strict")
        sim = simulate_throughput(p, 8, 0.02, requests=50_000, seed=0)
        ana = analytic_throughput(p, 8, 0.02)
        assert sim == pytest.approx(ana, rel=0.35)

    def test_validation(self):
        p = profile_for("s3fifo")
        with pytest.raises(ValueError):
            simulate_throughput(p, 0, 0.02)
        with pytest.raises(ValueError):
            simulate_throughput(p, 10, 0.02, requests=5)

    def test_deterministic(self):
        p = profile_for("twoq")
        a = simulate_throughput(p, 4, 0.1, requests=20_000, seed=3)
        b = simulate_throughput(p, 4, 0.1, requests=20_000, seed=3)
        assert a == b


class TestCurveHelpers:
    def test_throughput_curve(self):
        curve = throughput_curve(profile_for("s3fifo"), [1, 2, 4], 0.02)
        assert [p.threads for p in curve] == [1, 2, 4]
        assert all(p.mqps > 0 for p in curve)

    def test_speedup_over(self):
        a = throughput_curve(profile_for("s3fifo"), [16], 0.02)
        b = throughput_curve(profile_for("lru-optimized"), [16], 0.02)
        assert speedup_over(a, b, 16) > 6

    def test_speedup_missing_threads(self):
        a = throughput_curve(profile_for("s3fifo"), [1], 0.02)
        with pytest.raises(KeyError):
            speedup_over(a, a, 99)


class TestGilHarness:
    def test_gil_prevents_scaling(self):
        """The documentation test: real Python threads do not scale."""
        from repro.concurrency.threads import gil_bound_throughput

        from repro.traces.synthetic import zipf_trace

        trace = zipf_trace(200, 2000, seed=0)
        stats = gil_bound_throughput(
            "s3fifo", 50, trace, threads=2, duration=0.1
        )
        assert stats["single_thread_ops"] > 0
        assert stats["scaling_efficiency"] < 0.95

    def test_validation(self):
        from repro.concurrency.threads import gil_bound_throughput

        with pytest.raises(ValueError):
            gil_bound_throughput("lru", 10, [], threads=1)
        with pytest.raises(ValueError):
            gil_bound_throughput("lru", 10, [1], threads=0)
