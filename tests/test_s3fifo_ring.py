"""Tests for the ring-buffer S3-FIFO implementation (Section 4.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.s3fifo import S3FifoCache
from repro.core.s3fifo_ring import S3FifoRingCache
from repro.sim.request import Request
from repro.sim.simulator import simulate
from repro.traces.synthetic import zipf_trace


class TestConstruction:
    def test_split(self):
        cache = S3FifoRingCache(100)
        assert cache.small_capacity == 10
        assert cache.main_capacity == 90

    def test_invalid(self):
        with pytest.raises(ValueError):
            S3FifoRingCache(1)
        with pytest.raises(ValueError):
            S3FifoRingCache(100, small_ratio=1.5)


class TestBasicBehaviour:
    def test_hit_miss(self):
        cache = S3FifoRingCache(10)
        assert cache.access("a") is False
        assert cache.access("a") is True

    def test_capacity_invariant(self):
        cache = S3FifoRingCache(20)
        for i in range(2000):
            cache.access(i % 100)
            assert cache.used <= 20

    def test_ghost_routing(self):
        cache = S3FifoRingCache(20, small_ratio=0.1)
        for i in range(30):
            cache.access(i)
        assert 0 in cache.ghost
        cache.access(0)
        assert 0 in cache  # re-admitted via the fingerprint table


class TestCrossValidation:
    """The linked-list and ring implementations agree on unit-size
    workloads without deletions, up to ghost-queue approximation: the
    ring version uses the Section 4.2 fingerprint table whose entries
    expire by insertion count (and may be dropped early under bucket
    pressure), while the list version keeps an exact FIFO key set.
    Decisions therefore match almost everywhere but not bit-for-bit."""

    def test_near_identical_on_zipf(self):
        trace = zipf_trace(500, 15_000, alpha=1.0, seed=11)
        a = simulate(S3FifoCache(60), list(trace))
        b = simulate(S3FifoRingCache(60), list(trace))
        assert abs(a.miss_ratio - b.miss_ratio) < 0.01

    @given(
        trace=st.lists(
            st.integers(min_value=0, max_value=40), min_size=1, max_size=400
        ),
        capacity=st.integers(min_value=10, max_value=30),
    )
    @settings(max_examples=40, deadline=None)
    def test_decision_sequences_nearly_identical(self, trace, capacity):
        """Per-request decisions diverge on at most a small fraction of
        requests (property test).  Capacities below ~10 are excluded:
        a 1-2 entry fingerprint-table ghost is all approximation."""
        list_impl = S3FifoCache(capacity)
        ring_impl = S3FifoRingCache(capacity)
        diffs = 0
        for key in trace:
            a = list_impl.request(Request(key))
            b = ring_impl.request(Request(key))
            diffs += a != b
        assert diffs <= max(2, len(trace) // 20)


class TestDeletion:
    def test_delete_removes_visibility(self):
        cache = S3FifoRingCache(10)
        cache.access("a")
        assert cache.delete("a")
        assert "a" not in cache
        assert not cache.delete("a")

    def test_delete_frees_logical_space(self):
        cache = S3FifoRingCache(10)
        for i in range(10):
            cache.access(i)
        cache.delete(3)
        assert cache.used == 9
        cache.access("new")
        assert cache.used == 10

    def test_deleted_key_reinsertable(self):
        cache = S3FifoRingCache(10)
        cache.access("a")
        cache.delete("a")
        assert cache.access("a") is False
        assert "a" in cache

    def test_heavy_deletion_churn(self):
        """Section 4.2: deletions arriving soon after insertion reuse
        their slots quickly because they sit in the small queue."""
        cache = S3FifoRingCache(50)
        for i in range(5000):
            cache.access(i)
            if i % 2 == 0:
                cache.delete(i)
            assert cache.used <= 50

    def test_delete_then_eviction_consistency(self):
        cache = S3FifoRingCache(20)
        for i in range(100):
            cache.access(i)
            if i % 3 == 0 and (i - 5) in cache:
                cache.delete(i - 5)
        assert len(cache) == cache.used <= 20


class TestStatsParity:
    def test_evictions_counted(self):
        cache = S3FifoRingCache(10)
        for i in range(50):
            cache.access(i)
        assert cache.stats.evictions > 0
        assert cache.stats.misses == 50
