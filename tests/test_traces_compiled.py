"""CompiledTrace: interning, round-trips, annotation, checksums."""

import pytest

from repro.sim.request import Request
from repro.traces.compiled import CompiledTrace, compile_trace


class TestCompileTrace:
    def test_bare_keys(self):
        ct = compile_trace(["a", "b", "a", "c"])
        assert len(ct) == 4
        assert ct.num_requests == 4
        assert ct.num_objects == 3
        assert ct.unit_size
        assert ct.sizes is None
        assert list(ct.keys) == [0, 1, 0, 2]  # first-appearance order
        assert ct.key_table == ["a", "b", "c"]

    def test_tuples_materialize_sizes_lazily(self):
        ct = compile_trace([("a", 1), ("b", 5), ("a", 1)])
        assert not ct.unit_size
        assert list(ct.sizes) == [1, 5, 1]
        # all-unit tuples never allocate a sizes buffer
        assert compile_trace([("a", 1), ("b", 1)]).sizes is None

    def test_requests_preserve_next_access(self):
        reqs = [Request("a", next_access=3), Request("b"), Request("a")]
        ct = compile_trace(reqs)
        assert list(ct.next_access) == [3, -1, -1]

    def test_integer_and_mixed_keys(self):
        ct = compile_trace([10, "ten", 10])
        assert ct.num_objects == 2
        assert list(ct) == [10, "ten", 10]

    def test_compile_idempotent(self):
        ct = compile_trace(["a", "b"])
        assert compile_trace(ct) is ct

    def test_iter_round_trip(self):
        items = ["a", "b", "a", "c", "b"]
        assert list(compile_trace(items)) == items
        sized = [("a", 2), ("b", 7)]
        assert list(compile_trace(sized)) == sized

    def test_len_set_footprint_compat(self):
        ct = compile_trace(["x", "y", "x"])
        assert len(set(ct)) == 2  # analysis helpers rely on this


class TestIterRequests:
    def test_fresh_objects(self):
        ct = compile_trace([("a", 2), ("b", 3)])
        reqs = list(ct.iter_requests())
        assert [(r.key, r.size) for r in reqs] == [("a", 2), ("b", 3)]
        assert reqs[0] is not reqs[1]

    def test_reuse_yields_single_object(self):
        ct = compile_trace(["a", "b"])
        seen = set()
        for req in ct.iter_requests(reuse=True):
            seen.add(id(req))
            assert req.size == 1
        assert len(seen) == 1

    def test_request_at(self):
        ct = compile_trace([("a", 2), ("b", 3)])
        req = ct.request_at(1)
        assert (req.key, req.size, req.time) == ("b", 3, 2)


class TestAnnotate:
    def test_next_access_times(self):
        ct = compile_trace(["a", "b", "a", "b", "c"]).annotate()
        # 1-based times of the next access; -1 = never again
        assert list(ct.next_access) == [3, 4, -1, -1, -1]

    def test_annotate_idempotent(self):
        ct = compile_trace(["a", "a"]).annotate()
        buf = ct.next_access
        assert ct.annotate().next_access is buf

    def test_matches_analysis_helper(self):
        from repro.traces.analysis import annotate_next_access

        items = ["a", "b", "a", "c", "b", "a"]
        ct = compile_trace(items).annotate()
        expected = [
            -1 if r.next_access is None else r.next_access
            for r in annotate_next_access([Request(k) for k in items])
        ]
        assert list(ct.next_access) == expected


class TestBuffers:
    def test_key_ids_cached_and_shared(self):
        ct = compile_trace(["a", "b", "a"])
        ids = ct.key_ids()
        assert ids == [0, 1, 0]
        assert ct.key_ids() is ids
        assert ids[0] is ids[2]  # shared canonical ints, not fresh ones

    def test_checksum_stable_and_discriminating(self):
        a = compile_trace(["a", "b", "a"])
        b = compile_trace(["x", "y", "x"])  # same id structure
        c = compile_trace(["a", "a", "b"])
        assert a.checksum() == b.checksum()
        assert a.checksum() != c.checksum()

    def test_nbytes(self):
        ct = compile_trace(["a"] * 10)
        assert ct.nbytes() == 10 * ct.keys.itemsize

    def test_misaligned_buffers_rejected(self):
        from array import array

        with pytest.raises(ValueError):
            CompiledTrace(array("q", [0, 0]), ["a"], sizes=array("q", [1]))

    def test_empty_trace(self):
        ct = compile_trace([])
        assert len(ct) == 0
        assert ct.num_objects == 0
        assert list(ct) == []
