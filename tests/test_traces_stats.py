"""Tests for workload characterization statistics."""

import pytest

from repro.traces.stats import (
    estimate_zipf_alpha,
    footprint_over_time,
    popularity_counts,
    reuse_distance_histogram,
    summarize,
    working_set_curve,
)
from repro.traces.synthetic import loop_trace, zipf_trace


class TestPopularity:
    def test_counts_sorted(self):
        counts = popularity_counts(["a", "b", "a", "a", "b", "c"])
        assert counts == [3, 2, 1]

    def test_empty(self):
        assert popularity_counts([]) == []


class TestZipfAlpha:
    @pytest.mark.parametrize("alpha", [0.7, 1.0, 1.3])
    def test_recovers_generator_skew(self, alpha):
        trace = zipf_trace(3000, 150_000, alpha=alpha, seed=0)
        estimate = estimate_zipf_alpha(trace)
        assert estimate == pytest.approx(alpha, abs=0.2)

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            estimate_zipf_alpha(["a", "b"])

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            estimate_zipf_alpha(zipf_trace(100, 1000), head_fraction=0.0)


class TestReuseHistogram:
    def test_first_accesses_are_inf(self):
        hist = reuse_distance_histogram([1, 2, 3])
        assert hist["inf"] == 3

    def test_buckets_power_of_two(self):
        hist = reuse_distance_histogram(["a", "a", "b", "c", "a"])
        # a reused at distance 1 (<2) and 3 (<4)
        assert hist["inf"] == 3
        assert hist.get("<2", 0) == 1
        assert hist.get("<4", 0) == 1

    def test_total_matches_requests(self):
        trace = zipf_trace(200, 5000, seed=1)
        hist = reuse_distance_histogram(trace)
        assert sum(hist.values()) == len(trace)

    def test_invalid_buckets(self):
        with pytest.raises(ValueError):
            reuse_distance_histogram([1], num_buckets=0)


class TestWorkingSet:
    def test_loop_working_set(self):
        trace = loop_trace(50, 500)
        sizes = working_set_curve(trace, window=100)
        assert all(s == 50 for s in sizes)

    def test_window_larger_than_trace(self):
        assert working_set_curve([1, 1, 2], window=100) == [2]

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            working_set_curve([1], window=0)


class TestFootprint:
    def test_monotone_growth(self):
        trace = zipf_trace(500, 5000, seed=2)
        curve = footprint_over_time(trace, points=20)
        uniques = [u for _, u in curve]
        assert all(uniques[i] <= uniques[i + 1] for i in range(len(uniques) - 1))
        assert curve[-1] == (len(trace), len(set(trace)))

    def test_invalid_points(self):
        with pytest.raises(ValueError):
            footprint_over_time([1], points=0)


class TestSummary:
    def test_summary_fields(self):
        trace = zipf_trace(1000, 30_000, alpha=1.0, seed=0)
        summary = summarize(trace)
        assert summary["requests"] == 30_000
        assert summary["objects"] == len(set(trace))
        assert 0.0 <= summary["one_hit_wonder_ratio"] <= 1.0
        assert summary["zipf_alpha"] == pytest.approx(1.0, abs=0.25)

    def test_tiny_trace_alpha_nan(self):
        import math

        summary = summarize(["a", "b", "a"])
        assert math.isnan(summary["zipf_alpha"])
