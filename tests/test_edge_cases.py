"""Edge-case sweep: every policy against degenerate workloads.

These are the inputs that break cache implementations in practice:
capacity-1 caches, single-key traces, all-unique streams, objects as
large as the cache, and empty traces.  Every registered online policy
must survive all of them with consistent accounting.
"""

import pytest

from repro.cache.registry import create_policy, policy_names
from repro.sim.request import Request
from repro.sim.simulator import simulate

ONLINE = policy_names(include_offline=False)

#: Policies that are object-count based (ring buffers) and document
#: unit-size-only operation.
UNIT_ONLY = {"s3fifo-ring"}


@pytest.mark.parametrize("policy_name", ONLINE)
class TestDegenerateWorkloads:
    def test_capacity_two_cache(self, policy_name):
        cache = create_policy(policy_name, capacity=2)
        for i in range(200):
            cache.request(Request(i % 5))
        assert cache.used <= 2
        assert cache.stats.requests == 200

    def test_single_key_trace(self, policy_name):
        cache = create_policy(policy_name, capacity=8)
        result = simulate(cache, ["k"] * 100)
        # First access misses; B-LRU also misses the second.
        assert result.misses <= 2
        assert result.requests - result.misses >= 98

    def test_all_unique_trace(self, policy_name):
        cache = create_policy(policy_name, capacity=8)
        result = simulate(cache, list(range(500)))
        assert result.miss_ratio == 1.0
        assert cache.used <= 8

    def test_empty_trace(self, policy_name):
        cache = create_policy(policy_name, capacity=8)
        result = simulate(cache, [])
        assert result.requests == 0
        assert result.miss_ratio == 0.0

    def test_object_equal_to_capacity(self, policy_name):
        if policy_name in UNIT_ONLY:
            pytest.skip("object-slot policy: unit sizes only")
        cache = create_policy(policy_name, capacity=10)
        cache.request(Request("big", size=10))
        assert cache.used <= 10
        # Everything else must be evicted to fit it on re-insert.
        cache.request(Request("other", size=1))
        cache.request(Request("big", size=10))
        assert cache.used <= 10

    def test_object_larger_than_capacity_rejected(self, policy_name):
        cache = create_policy(policy_name, capacity=10)
        assert cache.request(Request("huge", size=11)) is False
        assert "huge" not in cache
        assert cache.used == 0 or cache.used <= 10

    def test_alternating_two_keys(self, policy_name):
        cache = create_policy(policy_name, capacity=4)
        result = simulate(cache, ["a", "b"] * 200)
        hits = result.requests - result.misses
        assert hits >= 200  # both fit comfortably

    def test_mixed_key_types(self, policy_name):
        cache = create_policy(policy_name, capacity=8)
        for key in ["str", 42, ("tuple", 1), "str", 42]:
            cache.request(Request(key))
        expected_hits = 0 if policy_name == "blru" else 2
        assert cache.stats.hits == expected_hits

    def test_stats_never_negative(self, policy_name):
        cache = create_policy(policy_name, capacity=4)
        for i in range(300):
            cache.request(Request(i % 9))
        stats = cache.stats
        assert stats.hits >= 0 and stats.misses >= 0
        assert stats.evictions >= 0
        assert cache.used >= 0


class TestListenerRobustness:
    def test_multiple_listeners_all_called(self):
        cache = create_policy("s3fifo", capacity=4)
        calls = []
        cache.add_eviction_listener(lambda e: calls.append(("a", e.key)))
        cache.add_eviction_listener(lambda e: calls.append(("b", e.key)))
        for i in range(20):
            cache.request(Request(i))
        assert calls
        assert len([c for c in calls if c[0] == "a"]) == len(
            [c for c in calls if c[0] == "b"]
        )

    def test_listener_sees_consistent_event(self):
        cache = create_policy("lru", capacity=3)

        def check(event):
            assert event.evict_time >= event.insert_time
            assert event.size >= 1
            assert event.freq >= 0

        cache.add_eviction_listener(check)
        for i in range(100):
            cache.request(Request(i % 10))


class TestRunnerFailureInjection:
    def test_factory_exception_isolated(self):
        from repro.sim.runner import SweepJob, run_sweep

        def boom(**kwargs):
            raise RuntimeError("trace generation failed")

        jobs = [
            SweepJob("bad", boom, {}, "lru", 10),
            SweepJob(
                "good",
                _good_factory,
                {"n": 500},
                "lru",
                10,
            ),
        ]
        results = run_sweep(jobs, processes=1)
        by_name = {r.trace_name: r for r in results}
        assert not by_name["bad"].ok
        assert "trace generation failed" in by_name["bad"].error
        assert by_name["good"].ok

    def test_bad_policy_kwargs_isolated(self):
        from repro.sim.runner import SweepJob, run_sweep

        jobs = [
            SweepJob(
                "t",
                _good_factory,
                {"n": 100},
                "s3fifo",
                10,
                policy_kwargs={"small_ratio": 7.0},  # invalid
            )
        ]
        results = run_sweep(jobs, processes=1)
        assert not results[0].ok
        assert "small_ratio" in results[0].error


def _good_factory(n):
    from repro.traces.synthetic import zipf_trace

    return zipf_trace(50, n, seed=0)
