"""Behavioural tests for LeCaR, CACHEUS, LHD, FIFO-Merge, B-LRU, Belady."""

import pytest

from repro.cache.belady import BeladyCache
from repro.cache.blru import BloomLruCache
from repro.cache.cacheus import CacheusCache
from repro.cache.fifomerge import FifoMergeCache
from repro.cache.lecar import LeCaRCache
from repro.cache.lhd import LhdCache
from repro.sim.request import Request
from repro.sim.simulator import simulate
from repro.traces.analysis import annotate_next_access


class TestLeCaR:
    def test_weights_start_balanced(self):
        cache = LeCaRCache(10)
        assert cache.weights == (0.5, 0.5)

    def test_ghost_hit_updates_weights(self):
        cache = LeCaRCache(4, seed=0)
        for i in range(50):
            cache.access(i)
        w_before = cache.weights
        # Request something recently evicted: one history must hit.
        hit_key = None
        for k in list(cache._h_lru) + list(cache._h_lfu):
            hit_key = k
            break
        assert hit_key is not None
        cache.access(hit_key)
        assert cache.weights != w_before

    def test_weights_normalized(self):
        cache = LeCaRCache(8, seed=1)
        for i in range(2000):
            cache.access(i % 50)
        w_lru, w_lfu = cache.weights
        assert w_lru + w_lfu == pytest.approx(1.0)
        assert 0 < w_lru < 1

    def test_capacity_invariant(self):
        cache = LeCaRCache(10, seed=0)
        for i in range(1000):
            cache.access(i % 60)
        assert len(cache) <= 10

    def test_deterministic_with_seed(self, small_zipf):
        r1 = simulate(LeCaRCache(50, seed=3), small_zipf).miss_ratio
        r2 = simulate(LeCaRCache(50, seed=3), small_zipf).miss_ratio
        assert r1 == r2

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            LeCaRCache(10, learning_rate=0.0)

    def test_freq_memory_bounded(self):
        cache = LeCaRCache(16, seed=0)
        for i in range(100_000):
            cache.access(i)
        assert len(cache._freqs) <= 8 * max(64, 16) + 16


class TestCacheus:
    def test_learning_rate_adapts(self):
        cache = CacheusCache(32, seed=0)
        initial_lr = cache.learning_rate
        for i in range(5000):
            cache.access(i % 100)
        # After many windows the LR should have moved at least once.
        assert cache.learning_rate != initial_lr

    def test_capacity_invariant(self):
        cache = CacheusCache(10, seed=0)
        for i in range(1000):
            cache.access(i % 70)
        assert len(cache) <= 10

    def test_weights_normalized(self):
        cache = CacheusCache(8, seed=0)
        for i in range(2000):
            cache.access(i % 40)
        w_lru, w_lfu = cache.weights
        assert w_lru + w_lfu == pytest.approx(1.0)

    def test_reasonable_on_zipf(self, small_zipf):
        from repro.cache.fifo import FifoCache

        cacheus = simulate(CacheusCache(50, seed=0), small_zipf).miss_ratio
        fifo = simulate(FifoCache(50), small_zipf).miss_ratio
        assert cacheus < fifo


class TestLhd:
    def test_capacity_invariant(self):
        cache = LhdCache(10, seed=0)
        for i in range(1000):
            cache.access(i % 50)
        assert len(cache) <= 10

    def test_protects_hot_objects(self):
        cache = LhdCache(20, samples=16, reconfig_interval=200, seed=0)
        for _ in range(50):
            for k in range(5):
                cache.access(f"hot{k}")
        for i in range(300):
            cache.access(f"cold{i}")
            for k in range(5):
                cache.access(f"hot{k}")
        hits = sum(cache.access(f"hot{k}") for k in range(5))
        assert hits == 5

    def test_deterministic_with_seed(self, small_zipf):
        r1 = simulate(LhdCache(50, seed=2), small_zipf).miss_ratio
        r2 = simulate(LhdCache(50, seed=2), small_zipf).miss_ratio
        assert r1 == r2

    def test_beats_fifo_on_zipf(self, small_zipf):
        from repro.cache.fifo import FifoCache

        lhd = simulate(LhdCache(50, seed=0), small_zipf).miss_ratio
        fifo = simulate(FifoCache(50), small_zipf).miss_ratio
        assert lhd < fifo

    def test_invalid_samples(self):
        with pytest.raises(ValueError):
            LhdCache(10, samples=0)


class TestFifoMerge:
    def test_capacity_invariant(self):
        cache = FifoMergeCache(30, nsegments=6)
        for i in range(2000):
            cache.access(i % 100)
        assert cache.used <= 30

    def test_popular_objects_survive_merge(self):
        cache = FifoMergeCache(30, nsegments=6, merge_ratio=3)
        for _ in range(10):
            for k in range(3):
                cache.access(f"hot{k}")
        for i in range(100):
            cache.access(f"cold{i}")
            for k in range(3):
                cache.access(f"hot{k}")
        hits = sum(cache.access(f"hot{k}") for k in range(3))
        assert hits == 3

    def test_one_hit_wonders_evicted(self):
        cache = FifoMergeCache(20, nsegments=4)
        for i in range(200):
            cache.access(i)
        assert 0 not in cache

    def test_invalid_merge_ratio(self):
        with pytest.raises(ValueError):
            FifoMergeCache(10, merge_ratio=1)

    def test_hits_recorded(self):
        cache = FifoMergeCache(10)
        cache.access("a")
        assert cache.access("a") is True


class TestBloomLru:
    def test_first_request_rejected(self):
        cache = BloomLruCache(10)
        assert cache.access("a") is False
        assert "a" not in cache

    def test_second_request_admits(self):
        cache = BloomLruCache(10)
        cache.access("a")
        assert cache.access("a") is False  # still a miss, but admitted
        assert "a" in cache
        assert cache.access("a") is True

    def test_one_hit_wonders_never_enter(self):
        cache = BloomLruCache(10)
        for i in range(100):
            cache.access(f"one-{i}")
        assert len(cache) == 0

    def test_capacity_invariant(self):
        cache = BloomLruCache(5)
        for i in range(500):
            cache.access(i % 20)
        assert len(cache) <= 5

    def test_worse_than_lru_generally(self, small_zipf):
        """The paper: B-LRU is worse than LRU in most cases because
        every object's second request is a miss."""
        from repro.cache.lru import LruCache

        blru = simulate(BloomLruCache(50), small_zipf).miss_ratio
        lru = simulate(LruCache(50), small_zipf).miss_ratio
        assert blru > lru - 0.02


class TestBelady:
    def _annotated(self, keys):
        return annotate_next_access(keys)

    def test_optimal_on_simple_pattern(self):
        # a b c a b d a b: with capacity 2, OPT keeps a and b.
        trace = self._annotated(["a", "b", "c", "a", "b", "d", "a", "b"])
        cache = BeladyCache(2)
        hits = [cache.request(r) for r in trace]
        assert hits == [False, False, False, True, True, False, True, True]

    def test_never_requested_again_not_cached_under_pressure(self):
        trace = self._annotated(["a", "b", "x", "a", "b"])
        cache = BeladyCache(2)
        for req in trace[:3]:
            cache.request(req)
        assert "x" not in cache  # x has no future use once cache is full

    def test_belady_lower_bounds_all_online_policies(self, small_zipf):
        from repro.cache.registry import create_policy, policy_names

        annotated = self._annotated(small_zipf)
        opt = simulate(BeladyCache(50), annotated).miss_ratio
        for name in ["lru", "fifo", "arc", "s3fifo", "tinylfu", "lirs"]:
            policy = create_policy(name, capacity=50)
            online = simulate(policy, list(small_zipf)).miss_ratio
            assert opt <= online + 1e-9, name

    def test_requires_annotation_for_optimality(self):
        """Without next_access everything looks 'never again' and the
        cache still behaves (admits while there is room)."""
        cache = BeladyCache(2)
        assert cache.access("a") is False
        assert cache.access("a") is True

    def test_capacity_invariant(self, small_zipf):
        annotated = self._annotated(small_zipf)
        cache = BeladyCache(30)
        for req in annotated:
            cache.request(req)
        assert len(cache) <= 30
