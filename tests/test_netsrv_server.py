"""Network front-end conformance: byte goldens, limits, drain, faults.

Two tiers in one module:

* The unmarked classes are the tier-1 smoke — raw-socket byte-for-byte
  goldens for both protocols against a thread-backend server on
  ephemeral ports, plus the failure modes a server must survive
  (malformed frames, oversized values, mid-command disconnects) and
  the lifecycle claims (drain loses nothing, limits enforced, bind
  failures surface).  Everything here binds ``127.0.0.1:0`` and runs
  in well under a second per test.
* ``TestBackendMatrix`` carries the ``net`` marker (``make net``): the
  same client round-trips against every backend tier — thread,
  sharded, mp over pipe and shm, cluster — because the server's
  contract is "any backend behind the same bytes".

Goldens are exact: if a reply byte changes, a stock client somewhere
breaks, so the test should break first.
"""

import socket
import time

import pytest

from repro.netsrv import (
    McClient,
    RespClient,
    RespError,
    SERVER_VERSION,
    ServerThread,
)
from repro.obs import MetricsRegistry
from repro.resilience import CONN_RESET, SLOW_CLIENT, FaultPlan
from repro.service import CacheService, MPCacheService, ShardedCacheService


# ----------------------------------------------------------------------
# Raw-socket helpers: the goldens must not depend on our own client.
# ----------------------------------------------------------------------
def connect(port: int) -> socket.socket:
    sock = socket.create_connection(("127.0.0.1", port), timeout=5.0)
    sock.settimeout(5.0)
    return sock


def recv_until(sock: socket.socket, suffix: bytes) -> bytes:
    buf = b""
    while not buf.endswith(suffix):
        chunk = sock.recv(4096)
        if not chunk:
            break
        buf += chunk
    return buf


def recv_eof(sock: socket.socket) -> bytes:
    buf = b""
    while True:
        chunk = sock.recv(4096)
        if not chunk:
            return buf
        buf += chunk


def exchange(sock: socket.socket, request: bytes, suffix: bytes) -> bytes:
    sock.sendall(request)
    return recv_until(sock, suffix)


@pytest.fixture()
def server():
    service = CacheService(256, "s3fifo")
    with ServerThread(service, resp_port=0, memcached_port=0) as st:
        yield st


class TestRespGoldens:
    def test_session(self, server):
        sock = connect(server.resp_port)
        try:
            assert exchange(sock, b"*1\r\n$4\r\nPING\r\n", b"\r\n") == \
                b"+PONG\r\n"
            assert exchange(
                sock, b"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nhello\r\n",
                b"\r\n") == b"+OK\r\n"
            assert exchange(sock, b"*2\r\n$3\r\nGET\r\n$1\r\nk\r\n",
                            b"\r\n") == b"$5\r\nhello\r\n"
            assert exchange(sock, b"*2\r\n$3\r\nGET\r\n$4\r\ngone\r\n",
                            b"\r\n") == b"$-1\r\n"
            assert exchange(
                sock, b"*3\r\n$4\r\nMGET\r\n$1\r\nk\r\n$4\r\ngone\r\n",
                b"\r\n") == b"*2\r\n$5\r\nhello\r\n$-1\r\n"
            assert exchange(sock, b"*2\r\n$6\r\nEXISTS\r\n$1\r\nk\r\n",
                            b"\r\n") == b":1\r\n"
            assert exchange(sock, b"*2\r\n$3\r\nDEL\r\n$1\r\nk\r\n",
                            b"\r\n") == b":1\r\n"
            assert exchange(sock, b"*2\r\n$3\r\nDEL\r\n$1\r\nk\r\n",
                            b"\r\n") == b":0\r\n"
            # Inline commands work alongside arrays (redis-cli uses both).
            assert exchange(sock, b"PING\r\n", b"\r\n") == b"+PONG\r\n"
            assert exchange(sock, b"*1\r\n$10\r\nFROBNICATE\r\n", b"\r\n") \
                == b"-ERR unknown command 'frobnicate'\r\n"
            # QUIT answers then closes.
            sock.sendall(b"*1\r\n$4\r\nQUIT\r\n")
            assert recv_eof(sock) == b"+OK\r\n"
        finally:
            sock.close()

    def test_pipelined_batch_one_write(self, server):
        sock = connect(server.resp_port)
        try:
            batch = (b"*3\r\n$3\r\nSET\r\n$1\r\na\r\n$1\r\n1\r\n"
                     b"*3\r\n$3\r\nSET\r\n$1\r\nb\r\n$1\r\n2\r\n"
                     b"*3\r\n$4\r\nMSET\r\n$1\r\nc\r\n$1\r\n3\r\n"
                     b"*2\r\n$3\r\nGET\r\n$1\r\na\r\n"
                     b"*2\r\n$3\r\nGET\r\n$1\r\nb\r\n"
                     b"*2\r\n$3\r\nGET\r\n$1\r\nc\r\n")
            expected = (b"+OK\r\n+OK\r\n+OK\r\n"
                        b"$1\r\n1\r\n$1\r\n2\r\n$1\r\n3\r\n")
            assert exchange(sock, batch, expected[-8:]) == expected
        finally:
            sock.close()

    def test_malformed_bulk_length_errors_and_closes(self, server):
        sock = connect(server.resp_port)
        try:
            sock.sendall(b"*1\r\n$abc\r\n")
            assert recv_eof(sock) == \
                b"-ERR Protocol error: invalid bulk length\r\n"
        finally:
            sock.close()

    def test_oversized_value_errors_and_closes(self):
        service = CacheService(64, "s3fifo")
        with ServerThread(service, resp_port=0,
                          max_value_size=64) as st:
            sock = connect(st.resp_port)
            try:
                sock.sendall(b"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1000\r\n")
                reply = recv_eof(sock)
                assert reply == \
                    b"-ERR Protocol error: invalid bulk length\r\n"
            finally:
                sock.close()

    def test_set_ex_golden_and_expiry(self, server):
        sock = connect(server.resp_port)
        try:
            assert exchange(
                sock,
                b"*5\r\n$3\r\nSET\r\n$1\r\nt\r\n$1\r\nv\r\n"
                b"$2\r\nPX\r\n$2\r\n50\r\n",
                b"\r\n") == b"+OK\r\n"
            assert exchange(sock, b"*2\r\n$3\r\nGET\r\n$1\r\nt\r\n",
                            b"\r\n") == b"$1\r\nv\r\n"
            time.sleep(0.08)
            assert exchange(sock, b"*2\r\n$3\r\nGET\r\n$1\r\nt\r\n",
                            b"\r\n") == b"$-1\r\n"
            assert exchange(
                sock,
                b"*5\r\n$3\r\nSET\r\n$1\r\nt\r\n$1\r\nv\r\n"
                b"$2\r\nEX\r\n$2\r\n-1\r\n",
                b"\r\n") == b"-ERR invalid expire time in 'set' command\r\n"
        finally:
            sock.close()

    def test_info_reflects_backend_stats(self, server):
        sock = connect(server.resp_port)
        try:
            sock.sendall(b"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n"
                         b"*2\r\n$3\r\nGET\r\n$1\r\nk\r\n")
            recv_until(sock, b"$1\r\nv\r\n")
            sock.sendall(b"*1\r\n$4\r\nINFO\r\n")
            # INFO is one bulk string; its payload ends with the only
            # blank line in the stream.
            text = recv_until(sock, b"\r\n\r\n").decode()
            assert "# Server" in text and "# Cache" in text
            assert f"repro_version:{SERVER_VERSION}" in text
            stats = server.server.service.stats()
            assert "hits" in stats
            assert f"hits:{stats['hits']}" in text
        finally:
            sock.close()


class TestMemcachedGoldens:
    def test_session(self, server):
        sock = connect(server.memcached_port)
        try:
            assert exchange(sock, b"set k 7 0 5\r\nhello\r\n", b"\r\n") == \
                b"STORED\r\n"
            assert exchange(sock, b"get k\r\n", b"END\r\n") == \
                b"VALUE k 7 5\r\nhello\r\nEND\r\n"
            assert exchange(sock, b"get k gone\r\n", b"END\r\n") == \
                b"VALUE k 7 5\r\nhello\r\nEND\r\n"
            assert exchange(sock, b"delete k\r\n", b"\r\n") == b"DELETED\r\n"
            assert exchange(sock, b"delete k\r\n", b"\r\n") == \
                b"NOT_FOUND\r\n"
            assert exchange(sock, b"version\r\n", b"\r\n") == \
                f"VERSION {SERVER_VERSION}\r\n".encode()
            assert exchange(sock, b"frobnicate\r\n", b"\r\n") == b"ERROR\r\n"
            assert exchange(sock, b"set k 0 0\r\n", b"\r\n") == \
                b"CLIENT_ERROR bad command line format\r\n"
            sock.sendall(b"quit\r\n")
            assert recv_eof(sock) == b""
        finally:
            sock.close()

    def test_noreply_and_binary_value(self, server):
        sock = connect(server.memcached_port)
        try:
            payload = b"a\r\nEND\r\nb\x00"
            sock.sendall(b"set bin 0 0 %d noreply\r\n%s\r\n"
                         % (len(payload), payload))
            # noreply: no reply bytes; the next command's reply is first.
            assert exchange(sock, b"get bin\r\n", b"END\r\n") == (
                b"VALUE bin 0 %d\r\n%s\r\nEND\r\n"
                % (len(payload), payload)
            )
        finally:
            sock.close()

    def test_gets_cas_token_is_stable_per_value(self, server):
        sock = connect(server.memcached_port)
        try:
            exchange(sock, b"set k 0 0 1\r\nx\r\n", b"\r\n")
            first = exchange(sock, b"gets k\r\n", b"END\r\n")
            again = exchange(sock, b"gets k\r\n", b"END\r\n")
            assert first == again
            assert first.startswith(b"VALUE k 0 1 ")
            exchange(sock, b"set k 0 0 1\r\ny\r\n", b"\r\n")
            changed = exchange(sock, b"gets k\r\n", b"END\r\n")
            assert changed != first
        finally:
            sock.close()

    def test_oversized_value_swallowed_connection_survives(self):
        service = CacheService(64, "s3fifo")
        with ServerThread(service, memcached_port=0,
                          max_value_size=32) as st:
            sock = connect(st.memcached_port)
            try:
                big = b"Z" * 1000
                assert exchange(sock, b"set k 0 0 1000\r\n" + big + b"\r\n",
                                b"\r\n") == \
                    b"SERVER_ERROR object too large for cache\r\n"
                # The stream resynced: the connection still works.
                assert exchange(sock, b"version\r\n", b"\r\n") == \
                    f"VERSION {SERVER_VERSION}\r\n".encode()
                assert len(service) == 0
            finally:
                sock.close()

    def test_bad_data_chunk_errors_and_closes(self, server):
        sock = connect(server.memcached_port)
        try:
            sock.sendall(b"set k 0 0 5\r\nhelloXXXXX\r\n")
            assert recv_eof(sock) == b"CLIENT_ERROR bad data chunk\r\n"
        finally:
            sock.close()

    def test_stats_reflects_backend_stats(self, server):
        sock = connect(server.memcached_port)
        try:
            exchange(sock, b"set k 0 0 1\r\nx\r\n", b"\r\n")
            exchange(sock, b"get k\r\n", b"END\r\n")
            reply = exchange(sock, b"stats\r\n", b"END\r\n")
            lines = reply.decode().splitlines()
            assert "STAT curr_connections 1" in lines
            stats = server.server.service.stats()
            for name in ("hits", "misses", "sets"):
                assert f"STAT {name} {stats[name]}" in lines
        finally:
            sock.close()


class TestLifecycle:
    def test_mid_command_disconnect_leaves_server_healthy(self, server):
        for port, partial in (
            (server.resp_port, b"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$500\r\nhal"),
            (server.memcached_port, b"set k 0 0 100\r\nonly-some-bytes"),
        ):
            sock = connect(port)
            sock.sendall(partial)
            sock.close()
        # Both listeners still answer on fresh connections.
        sock = connect(server.resp_port)
        try:
            assert exchange(sock, b"PING\r\n", b"\r\n") == b"+PONG\r\n"
        finally:
            sock.close()

    def test_drain_under_load_loses_no_accepted_commands(self):
        service = CacheService(1024, "s3fifo")
        st = ServerThread(service, resp_port=0).start()
        sock = connect(st.resp_port)
        try:
            # The drain contract covers *accepted* connections: complete
            # one round-trip so the accept is certain before the burst
            # (a connect still in the kernel backlog when the listener
            # closes is legitimately dropped, like any TCP server).
            assert exchange(sock, b"PING\r\n", b"\r\n") == b"+PONG\r\n"
            n = 200
            batch = b"".join(
                b"*3\r\n$3\r\nSET\r\n$4\r\nk%03d\r\n$1\r\nv\r\n" % i
                for i in range(n)
            )
            sock.sendall(batch)
            # Drain while the burst is still in flight: every accepted
            # command must be answered before the close.
            st.stop()
            replies = recv_eof(sock)
            assert replies.count(b"+OK\r\n") == n
        finally:
            sock.close()

    def test_max_connections_rejects_excess(self):
        service = CacheService(64, "s3fifo")
        with ServerThread(service, resp_port=0, max_connections=2) as st:
            first = connect(st.resp_port)
            second = connect(st.resp_port)
            third = connect(st.resp_port)
            try:
                assert exchange(first, b"PING\r\n", b"\r\n") == b"+PONG\r\n"
                assert exchange(second, b"PING\r\n", b"\r\n") == b"+PONG\r\n"
                assert recv_eof(third) == b""  # closed without service
                assert exchange(first, b"PING\r\n", b"\r\n") == b"+PONG\r\n"
            finally:
                for sock in (first, second, third):
                    sock.close()

    def test_idle_timeout_closes_quiet_connections(self):
        service = CacheService(64, "s3fifo")
        with ServerThread(service, resp_port=0, idle_timeout=0.15) as st:
            sock = connect(st.resp_port)
            try:
                assert exchange(sock, b"PING\r\n", b"\r\n") == b"+PONG\r\n"
                start = time.monotonic()
                assert recv_eof(sock) == b""
                assert time.monotonic() - start < 4.0
            finally:
                sock.close()

    def test_bind_failure_raises_in_caller(self):
        squatter = socket.socket()
        squatter.bind(("127.0.0.1", 0))
        squatter.listen(1)
        port = squatter.getsockname()[1]
        try:
            service = CacheService(64, "s3fifo")
            with pytest.raises(OSError):
                ServerThread(service, resp_port=port).start()
        finally:
            squatter.close()


class TestFaultsAndMetrics:
    def test_conn_reset_fault_answers_then_resets(self):
        service = CacheService(64, "s3fifo")
        plan = FaultPlan().add(CONN_RESET, 4, 5)
        with ServerThread(service, resp_port=0, fault_plan=plan) as st:
            client = RespClient("127.0.0.1", st.resp_port)
            try:
                # Commands 1-3 of the server-wide clock succeed...
                assert client.ping()
                client.set("a", b"1")
                assert client.get("a") == b"1"
                # ...command 4 lands in the reset window: RST.
                with pytest.raises((ConnectionError, OSError)):
                    client.ping()
                    client.ping()
            finally:
                client.close()
            # Past the window, fresh connections are unaffected.
            client = RespClient("127.0.0.1", st.resp_port)
            try:
                assert client.get("a") == b"1"
            finally:
                client.close()

    def test_slow_client_fault_stalls_the_window(self):
        service = CacheService(64, "s3fifo")
        plan = FaultPlan().add(SLOW_CLIENT, 1, 2, magnitude=0.3)
        with ServerThread(service, resp_port=0, fault_plan=plan) as st:
            client = RespClient("127.0.0.1", st.resp_port)
            try:
                start = time.monotonic()
                assert client.ping()
                stalled = time.monotonic() - start
                start = time.monotonic()
                assert client.ping()
                fast = time.monotonic() - start
                assert stalled >= 0.25
                assert fast < 0.25
            finally:
                client.close()

    def test_per_protocol_metrics(self):
        service = CacheService(64, "s3fifo")
        registry = MetricsRegistry()
        with ServerThread(service, resp_port=0, memcached_port=0,
                          metrics=registry) as st:
            resp = RespClient("127.0.0.1", st.resp_port)
            mc = McClient("127.0.0.1", st.memcached_port)
            try:
                resp.set("k", b"v")
                resp.get("k")
                mc.get_many(["k"])
            finally:
                resp.close()
                mc.close()
            for protocol in ("resp", "memcached"):
                accepted = registry.counter(
                    "repro_net_accepted",
                    labels={"protocol": protocol})
                assert accepted.collect_value() == 1
            resp_gets = registry.counter(
                "repro_net_commands",
                labels={"protocol": "resp", "command": "get"})
            mc_gets = registry.counter(
                "repro_net_commands",
                labels={"protocol": "memcached", "command": "get"})
            assert resp_gets.collect_value() == 1
            assert mc_gets.collect_value() == 1
            latency = registry.histogram(
                "repro_net_command_latency_us",
                labels={"protocol": "resp", "command": "set"})
            assert latency.count == 1


# ----------------------------------------------------------------------
# Full backend matrix: same bytes over every tier (make net).
# ----------------------------------------------------------------------
def _thread_service():
    return CacheService(512, "s3fifo")


def _sharded_service():
    return ShardedCacheService(512, "s3fifo", num_shards=4)


def _mp_pipe_service():
    return MPCacheService(512, "s3fifo", num_workers=2)


def _mp_shm_service():
    return MPCacheService(512, "s3fifo", num_workers=2, transport="shm")


def _cluster_service():
    from repro.cluster import ClusterCacheService
    return ClusterCacheService(512, "s3fifo", num_nodes=2, replication=2)


@pytest.mark.net
@pytest.mark.parametrize("factory", [
    _thread_service, _sharded_service, _mp_pipe_service,
    _mp_shm_service, _cluster_service,
], ids=["thread", "sharded", "mp-pipe", "mp-shm", "cluster"])
class TestBackendMatrix:
    def test_both_protocols_roundtrip(self, factory):
        service = factory()
        try:
            with ServerThread(service, resp_port=0,
                              memcached_port=0) as st:
                resp = RespClient("127.0.0.1", st.resp_port)
                mc = McClient("127.0.0.1", st.memcached_port)
                try:
                    # RESP write, RESP read.
                    assert resp.set("r1", b"alpha")
                    assert resp.get("r1") == b"alpha"
                    assert resp.execute("MGET", "r1", "nope") == \
                        [b"alpha", None]
                    # memcached write, memcached read (flags survive).
                    assert mc.set("m1", b"beta", flags=9)
                    assert mc.get_many(["m1"]) == {"m1": (9, b"beta")}
                    # Cross-protocol: one keyspace behind both ports.
                    assert mc.get_many(["r1"]) == {"r1": (0, b"alpha")}
                    assert resp.get("m1") == b"beta"
                    assert resp.delete("m1") == 1
                    assert mc.get_many(["m1"]) == {}
                    # Pipelined RESP batch over this backend.
                    replies = resp.pipeline(
                        [["SET", f"p{i}", f"{i}"] for i in range(20)]
                        + [["GET", f"p{i}"] for i in range(20)]
                    )
                    assert replies[:20] == ["OK"] * 20
                    assert replies[20:] == [b"%d" % i for i in range(20)]
                    # stats/INFO reflect the backend's real counters.
                    stats = service.stats()
                    mc_stats = mc.stats()
                    info = resp.info()
                    for name in ("hits", "misses", "sets"):
                        assert mc_stats[name] == str(stats[name])
                        assert info[name] == str(stats[name])
                finally:
                    resp.close()
                    mc.close()
        finally:
            if hasattr(service, "close"):
                service.close()
