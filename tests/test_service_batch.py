"""Batch-API parity: ``*_many`` must be the per-key loop, exactly.

The batched operations exist to amortize lock (and, on the mp backend,
pipe) overhead — they must never change *what* the cache does.  The
differential here drives one service with per-key calls and a twin
with batched calls, on the same workload, and requires byte-identical
``stats()`` dictionaries at the end: same counters, same evictions,
same per-shard breakdowns.  Runs across removal-capable and
removal-free policies, reference and fast variants, single-shard and
sharded services.  (The process-backed twin has the same differential
in ``test_service_mp.py``, under the ``mp`` marker.)
"""

import pytest

from repro.service import (
    CacheService,
    RemovalUnsupportedError,
    ShardedCacheService,
)

POLICIES = ("s3fifo", "s3fifo-fast", "lru", "blru")
REMOVAL_POLICIES = ("s3fifo", "s3fifo-fast", "lru")


def workload(n=600, span=150, seed=9):
    """A deterministic mixed key stream with repeats and clustering."""
    keys = []
    state = seed
    for _ in range(n):
        state = (state * 1103515245 + 12345) % (2 ** 31)
        keys.append(state % span)
    return keys


def drive_per_key(svc, keys, deletes, batch=32):
    """Chunked read-through, one service call per key.

    Chunk structure mirrors the batched twin — all of a chunk's gets,
    then its misses' sets — because THAT is the equivalence the batch
    API promises: ``get_many(chunk)`` is a get loop, ``set_many`` a
    set loop.  (An interleaved get/set loop is a different operation
    sequence: a key repeated within a chunk hits from its second
    occurrence there, misses twice here.)
    """
    for i in range(0, len(keys), batch):
        chunk = keys[i:i + batch]
        missed = [key for key in chunk if svc.get(key) is None]
        for key in missed:
            svc.set(key, key)
    for i in range(0, len(deletes), batch):
        for key in deletes[i:i + batch]:
            svc.delete(key)
    half = keys[: len(keys) // 2]
    for i in range(0, len(half), batch):
        for key in half[i:i + batch]:
            svc.get(key)


def drive_batched(svc, keys, deletes, batch=32):
    """The same chunk structure through the batch API."""
    for i in range(0, len(keys), batch):
        chunk = keys[i:i + batch]
        values = svc.get_many(chunk)
        missed = [key for key, v in zip(chunk, values) if v is None]
        if missed:
            svc.set_many([(key, key) for key in missed])
    for i in range(0, len(deletes), batch):
        svc.delete_many(deletes[i:i + batch])
    half = keys[: len(keys) // 2]
    for i in range(0, len(half), batch):
        svc.get_many(half[i:i + batch])


class TestBatchSemantics:
    def test_get_many_orders_and_defaults(self):
        svc = CacheService(16, "s3fifo")
        svc.set("a", 1)
        svc.set("b", 2)
        assert svc.get_many(["b", "missing", "a"]) == [2, None, 1]
        assert svc.get_many(["missing"], default=-1) == [-1]
        assert svc.get_many([]) == []

    def test_set_many_returns_per_key_outcomes(self):
        svc = CacheService(16, "s3fifo")
        assert svc.set_many([("a", 1), ("b", 2)]) == [True, True]
        assert svc.set_many([]) == []
        with pytest.raises(ValueError):
            svc.set_many([("a", 1)], size=0)
        with pytest.raises(ValueError):
            svc.set_many([("a", 1)], ttl=-1)

    def test_set_many_rejection_outcomes(self):
        """blru admits probabilistically: set_many must report the
        per-key reject decisions, exactly as per-key set does."""
        ref = CacheService(8, "blru")
        bat = CacheService(8, "blru")
        items = [(k, k) for k in range(50)]
        per_key = [ref.set(k, v) for k, v in items]
        batched = bat.set_many(items)
        assert per_key == batched
        assert False in batched  # the policy really did reject some

    def test_delete_many(self):
        svc = CacheService(16, "lru")
        svc.set_many([(k, k) for k in range(5)])
        assert svc.delete_many([0, 99, 4]) == [True, False, True]
        assert svc.delete_many([]) == []

    def test_delete_many_requires_removal(self):
        svc = CacheService(16, "blru")
        with pytest.raises(RemovalUnsupportedError):
            svc.delete_many([1, 2])
        sharded = ShardedCacheService(16, "blru", num_shards=2)
        with pytest.raises(RemovalUnsupportedError):
            sharded.delete_many([1, 2])

    def test_ttl_forwarding(self):
        svc = CacheService(16, "s3fifo", default_ttl=60.0)
        svc.set_many([("d", 1)])              # inherits the default
        svc.set_many([("n", 2)], ttl=None)    # explicit no-expiry
        stats = svc.stats()
        assert stats["ttl_entries"] == 1

    def test_sharded_batches_preserve_input_order(self):
        svc = ShardedCacheService(200, "s3fifo", num_shards=4)
        keys = [f"k{i}" for i in range(40)]
        svc.set_many([(k, i) for i, k in enumerate(keys)])
        assert svc.get_many(keys) == list(range(40))


class TestBatchParity:
    """stats() equality between the per-key and batched twins."""

    @pytest.mark.parametrize("policy", POLICIES)
    def test_single_shard_parity(self, policy):
        keys = workload()
        deletes = (
            [k for k in range(0, 150, 3)]
            if policy in REMOVAL_POLICIES else []
        )
        ref = CacheService(48, policy)
        bat = CacheService(48, policy)
        drive_per_key(ref, keys, deletes)
        drive_batched(bat, keys, deletes)
        assert ref.stats() == bat.stats()

    @pytest.mark.parametrize("policy", POLICIES)
    def test_sharded_parity(self, policy):
        keys = workload(n=800, span=200)
        deletes = (
            [k for k in range(0, 200, 3)]
            if policy in REMOVAL_POLICIES else []
        )
        ref = ShardedCacheService(64, policy, num_shards=4)
        bat = ShardedCacheService(64, policy, num_shards=4)
        drive_per_key(ref, keys, deletes)
        drive_batched(bat, keys, deletes)
        # Full dict equality covers the per-shard breakdowns too.
        assert ref.stats() == bat.stats()

    def test_sharded_vs_single_batch_routing(self):
        """Batched ops on the sharded service must produce the same
        per-shard request streams as per-key routing."""
        keys = workload(n=500, span=120)
        per_key = ShardedCacheService(48, "s3fifo", num_shards=3)
        batched = ShardedCacheService(48, "s3fifo", num_shards=3)
        for i in range(0, len(keys), 25):
            chunk = keys[i:i + 25]
            missed = [key for key in chunk if per_key.get(key) is None]
            for key in missed:
                per_key.set(key, key)
            values = batched.get_many(chunk)
            batch_missed = [
                key for key, v in zip(chunk, values) if v is None
            ]
            assert batch_missed == missed
            if batch_missed:
                batched.set_many([(key, key) for key in batch_missed])
        assert per_key.stats() == batched.stats()
