"""Observability overhead measurement (perf tier, run via ``make obs``).

Pins the contract docs/OBSERVABILITY.md makes: with no registry and no
tracer the service runs its pre-existing code path (the default build
must not regress), and with full instrumentation attached the closed-
loop throughput cost stays moderate.
"""

import pytest

from repro.obs import EventTracer, MetricsRegistry
from repro.service.loadgen import run_scenario
from repro.traces.synthetic import zipf_trace

pytestmark = pytest.mark.perf

NUM_OBJECTS = 10_000
NUM_REQUESTS = 200_000


@pytest.fixture(scope="module")
def trace():
    return zipf_trace(
        num_objects=NUM_OBJECTS, num_requests=NUM_REQUESTS,
        alpha=1.0, seed=42,
    )


def throughput(trace, **kwargs) -> float:
    best = 0.0
    for _ in range(3):
        row = run_scenario(
            trace, capacity=NUM_OBJECTS // 10, policy="s3fifo",
            num_shards=1, num_threads=1, **kwargs,
        )
        best = max(best, row["ops_per_sec"])
    return best


def test_full_instrumentation_overhead_is_moderate(trace):
    baseline = throughput(trace)
    instrumented = throughput(
        trace,
        metrics=MetricsRegistry(),
        tracer=EventTracer(capacity=256, sample_every=64),
        instrument_policy=True,
    )
    ratio = instrumented / baseline
    print(
        f"\nbaseline {baseline:,.0f} ops/s, instrumented "
        f"{instrumented:,.0f} ops/s ({ratio:.1%})"
    )
    # Latency histograms + policy wrapper cost real work per op; the
    # guard is against pathological regressions, not noise.
    assert ratio > 0.5


def test_metrics_only_overhead_is_small(trace):
    baseline = throughput(trace)
    metered = throughput(trace, metrics=MetricsRegistry())
    ratio = metered / baseline
    print(
        f"\nbaseline {baseline:,.0f} ops/s, metrics-only "
        f"{metered:,.0f} ops/s ({ratio:.1%})"
    )
    assert ratio > 0.6
