"""Public API surface tests: what `import repro` promises."""

import repro


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_snippet(self):
        """The README's quickstart must keep working verbatim."""
        from repro import S3FifoCache, simulate, zipf_trace

        trace = zipf_trace(num_objects=2000, num_requests=30_000, alpha=1.0)
        cache = S3FifoCache(capacity=200)
        result = simulate(cache, trace)
        assert 0.2 < result.miss_ratio < 0.45

    def test_core_variants_exported(self):
        assert repro.S3FifoRingCache.name == "s3fifo-ring"
        assert repro.S3SieveCache.name == "s3sieve"
        assert repro.S3FifoDCache.name == "s3fifo-d"

    def test_registry_roundtrip(self):
        for name in repro.policy_names(include_offline=True):
            cache = repro.create_policy(name, capacity=16)
            assert cache.capacity == 16


class TestSubpackageImports:
    def test_all_subpackages_importable(self):
        import importlib

        for module in [
            "repro.cache",
            "repro.core",
            "repro.structures",
            "repro.sim",
            "repro.sim.mrc",
            "repro.traces",
            "repro.traces.stats",
            "repro.traces.multitenant",
            "repro.flash",
            "repro.concurrency",
            "repro.hierarchy",
            "repro.experiments.common",
            "repro.cli",
        ]:
            importlib.import_module(module)

    def test_every_policy_has_docstring(self):
        from repro.cache.registry import POLICIES, _register_core

        _register_core()
        for name, cls in POLICIES.items():
            assert cls.__doc__, f"{name} lacks a class docstring"
            module = __import__(
                cls.__module__, fromlist=["__doc__"]
            )
            assert module.__doc__, f"{cls.__module__} lacks a module docstring"
