"""Tests for the metrics substrate: counters, gauges, histograms, registry."""

import math

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS_US,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("ops")
        assert c.collect_value() == 0
        c.inc()
        c.inc(5)
        assert c.collect_value() == 6

    def test_negative_increment_rejected(self):
        c = Counter("ops")
        with pytest.raises(ValueError):
            c.inc(-1)
        assert c.collect_value() == 0

    def test_collect_time_callback_wins(self):
        c = Counter("ops")
        c.inc(3)
        c.set_function(lambda: 42)
        assert c.collect_value() == 42


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.collect_value() == 7

    def test_collect_time_callback(self):
        backing = [1, 2, 3]
        g = Gauge("len").set_function(lambda: len(backing))
        assert g.collect_value() == 3
        backing.pop()
        assert g.collect_value() == 2


class TestHistogram:
    def test_observe_respects_inclusive_upper_bounds(self):
        h = Histogram("lat", buckets=(1, 2, 5))
        for v in (0.5, 1.0, 1.5, 2.0, 4.9, 5.0, 5.1):
            h.observe(v)
        # le=1: 0.5, 1.0; le=2: 1.5, 2.0; le=5: 4.9, 5.0; +Inf: 5.1
        assert h.counts == [2, 2, 2, 1]
        assert h.count == 7
        assert h.sum == pytest.approx(20.0)

    def test_cumulative_buckets_end_with_inf(self):
        h = Histogram("lat", buckets=(1, 2))
        h.observe(0.5)
        h.observe(1.5)
        h.observe(99)
        cum = h.cumulative_buckets()
        assert cum == [(1.0, 1), (2.0, 2), (math.inf, 3)]

    def test_bounds_sorted_and_deduplicated_input_rejected(self):
        h = Histogram("lat", buckets=(5, 1, 2))
        assert h.buckets == (1.0, 2.0, 5.0)
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(1, 1, 2))
        with pytest.raises(ValueError):
            Histogram("lat", buckets=())

    def test_default_buckets_are_the_latency_ladder(self):
        h = Histogram("lat")
        assert h.buckets == tuple(float(b) for b in DEFAULT_LATENCY_BUCKETS_US)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        a = reg.counter("hits", "help", {"shard": "0"})
        b = reg.counter("hits", labels={"shard": "0"})
        assert a is b
        assert len(reg) == 1

    def test_label_identity_is_order_insensitive(self):
        reg = MetricsRegistry()
        a = reg.gauge("g", labels={"a": "1", "b": "2"})
        b = reg.gauge("g", labels={"b": "2", "a": "1"})
        assert a is b

    def test_distinct_labels_make_distinct_series(self):
        reg = MetricsRegistry()
        a = reg.counter("hits", labels={"shard": "0"})
        b = reg.counter("hits", labels={"shard": "1"})
        assert a is not b
        assert len(reg) == 2

    def test_name_bound_to_first_kind(self):
        reg = MetricsRegistry()
        reg.counter("ops")
        with pytest.raises(ValueError):
            reg.gauge("ops", labels={"shard": "1"})
        with pytest.raises(ValueError):
            reg.histogram("ops")

    def test_families_sorted_and_grouped(self):
        reg = MetricsRegistry()
        reg.counter("zeta")
        reg.counter("alpha", "first help", {"shard": "1"})
        reg.counter("alpha", labels={"shard": "0"})
        fams = reg.families()
        assert [name for name, _, _, _ in fams] == ["alpha", "zeta"]
        name, kind, help_text, series = fams[0]
        assert kind == "counter"
        assert help_text == "first help"
        assert [m.labels["shard"] for m in series] == ["0", "1"]

    def test_get_and_namespace(self):
        reg = MetricsRegistry(namespace="test")
        assert reg.namespace == "test"
        reg.gauge("depth", labels={"q": "s"})
        assert reg.get("depth", {"q": "s"}) is not None
        assert reg.get("depth", {"q": "m"}) is None
        assert reg.get("missing") is None
