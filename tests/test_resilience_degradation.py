"""Graceful degradation: flash bypass and hierarchy level outages."""

import pytest

from repro.cache.lru import LruCache
from repro.core.s3fifo import S3FifoCache
from repro.flash.admission import NoAdmission, S3FifoAdmission
from repro.flash.flashcache import HybridFlashCache
from repro.hierarchy.multilevel import MultiLevelCache
from repro.resilience.faults import (
    FLASH_READ,
    FLASH_WRITE,
    LATENCY,
    LEVEL_OUTAGE,
    FaultPlan,
)
from repro.resilience.retry import RetryPolicy
from repro.traces.synthetic import zipf_trace

pytestmark = pytest.mark.resilience


def _hybrid(plan, retry=None, admission=None):
    return HybridFlashCache(
        dram_capacity=50,
        flash_capacity=500,
        admission=admission or S3FifoAdmission(ghost_entries=200),
        faults=plan,
        retry=retry,
    )


class TestFlashOutage:
    """Acceptance: flash outage under S3FifoAdmission degrades to
    DRAM-only serving, with degraded/dropped counts reported."""

    def test_outage_degrades_without_crash(self):
        trace = zipf_trace(1_000, 10_000, alpha=1.0, seed=5)
        plan = FaultPlan().add(FLASH_WRITE, 2_000, 6_000)
        cache = _hybrid(plan)
        result = cache.run(trace)  # must not raise
        assert result.requests == 10_000
        assert result.degraded_requests > 0
        assert result.dropped_writes > 0
        assert result.bypass_entries >= 1

    def test_recovery_reenables_flash(self):
        trace = zipf_trace(1_000, 10_000, alpha=1.0, seed=5)
        plan = FaultPlan().add(FLASH_WRITE, 2_000, 6_000)
        cache = _hybrid(plan)
        cache.run(trace)
        assert not cache.bypassed
        # Writes resumed after the window: flash is populated again.
        assert cache.flash_used > 0

    def test_dram_hits_unaffected_during_bypass(self):
        plan = FaultPlan().add(FLASH_WRITE, 0, 1_000_000)
        cache = _hybrid(plan, admission=NoAdmission())
        cache.request(1)
        assert cache.request(1)  # DRAM hit still served
        assert cache.result.dram_hits == 1

    def test_no_flash_writes_inside_outage(self):
        plan = FaultPlan().add(FLASH_WRITE, 0, 1_000_000)
        cache = _hybrid(plan, admission=NoAdmission())
        for key in range(500):  # DRAM (50) overflows; all victims dropped
            cache.request(key)
        assert cache.result.flash_bytes_written == 0
        assert cache.result.dropped_writes > 0
        assert cache.bypassed

    def test_retry_rides_out_window_edge(self):
        """A write failing at the window's last tick succeeds on a
        backoff retry that lands past the window."""
        plan = FaultPlan().add(FLASH_WRITE, 1, 3)
        retry = RetryPolicy(max_attempts=3, base_delay=4.0, jitter=0.0)
        cache = _hybrid(plan, retry=retry, admission=NoAdmission())
        cache.request(1, size=60)  # too big for DRAM(50): straight to flash
        assert cache.result.flash_write_retries >= 1
        assert cache.result.flash_bytes_written == 60
        assert cache.result.dropped_writes == 0

    def test_read_failure_served_as_miss(self):
        plan = FaultPlan().add(FLASH_READ, 3, 4)
        cache = _hybrid(plan, admission=NoAdmission())
        cache.request(1, size=60)  # to flash (oversized for DRAM)
        assert cache.request(1, size=60)  # request 2: flash hit
        assert not cache.request(1, size=60)  # request 3: read fails
        assert cache.result.failed_flash_reads == 1
        assert cache.result.degraded_requests == 1
        assert cache.request(1, size=60)  # request 4: healthy again

    def test_latency_spike_times_out_attempts(self):
        plan = FaultPlan().add(LATENCY, 0, 100, magnitude=50)
        retry = RetryPolicy(
            max_attempts=2, base_delay=1.0, jitter=0.0, attempt_timeout=10.0
        )
        cache = _hybrid(plan, retry=retry, admission=NoAdmission())
        cache.request(1, size=60)
        assert cache.result.dropped_writes == 1

    def test_no_faults_no_counters(self):
        trace = zipf_trace(500, 5_000, alpha=1.0, seed=2)
        cache = HybridFlashCache(
            dram_capacity=50,
            flash_capacity=500,
            admission=S3FifoAdmission(ghost_entries=200),
        )
        result = cache.run(trace)
        assert result.degraded_requests == 0
        assert result.dropped_writes == 0
        assert result.bypass_entries == 0


class TestHierarchyOutage:
    def _hierarchy(self, plan=None, mode="exclusive"):
        return MultiLevelCache(
            [LruCache(20), S3FifoCache(200)], mode=mode, faults=plan
        )

    def test_manual_fail_and_recover(self):
        cache = self._hierarchy()
        for key in range(50):
            cache.request(key)
        cache.fail_level(1)
        assert cache.level_down(1)
        hit = cache.request(0)
        assert isinstance(hit, bool)  # served, not crashed
        assert cache.result.degraded_requests >= 1
        assert cache.result.level_outages == [0, 1]
        cache.recover_level(1)
        assert not cache.level_down(1)

    def test_planned_outage_and_recovery(self):
        trace = zipf_trace(300, 6_000, alpha=1.0, seed=9)
        plan = FaultPlan().add(LEVEL_OUTAGE, 1_000, 3_000, target=1)
        cache = self._hierarchy(plan)
        result = cache.run(trace)
        assert result.requests == 6_000
        assert result.level_outages == [0, 1]
        assert result.degraded_requests > 0
        assert not cache.level_down(1)  # recovered after the window

    def test_outage_of_l1_serves_from_l2(self):
        plan = FaultPlan().add(LEVEL_OUTAGE, 0, 1_000_000, target=0)
        cache = self._hierarchy(plan)
        cache.request(7)
        assert cache.request(7)  # L2 hit: L1 is dark but L2 absorbed the fill
        assert cache.result.level_hits == [0, 1]

    def test_demotion_dropped_when_lower_level_dark(self):
        plan = FaultPlan().add(LEVEL_OUTAGE, 0, 1_000_000, target=1)
        cache = self._hierarchy(plan)
        for key in range(100):  # overflow L1 (20): victims have nowhere to go
            cache.request(key)
        assert cache.result.dropped_demotions > 0
        assert cache.result.demotions == 0

    def test_inclusive_fill_skips_dark_level(self):
        plan = FaultPlan().add(LEVEL_OUTAGE, 0, 1_000_000, target=0)
        cache = self._hierarchy(plan, mode="inclusive")
        cache.request(3)
        assert 3 in cache._levels[1]
        assert 3 not in cache._levels[0]

    def test_degradation_is_deterministic(self):
        trace = zipf_trace(300, 6_000, alpha=1.0, seed=9)
        plan = FaultPlan.generate(
            horizon=6_000,
            kinds=(LEVEL_OUTAGE,),
            count=3,
            mean_duration=500,
            seed=13,
            targets=(0, 1),
        )
        runs = []
        for _ in range(2):
            cache = self._hierarchy(plan)
            result = cache.run(trace)
            runs.append(
                (
                    result.misses,
                    result.degraded_requests,
                    result.dropped_demotions,
                    tuple(result.level_outages),
                    tuple(result.level_hits),
                )
            )
        assert runs[0] == runs[1]
