"""Behavioural tests for FIFO, LRU, CLOCK, SIEVE, LFU, and Random."""

import pytest

from repro.cache.clock import ClockCache
from repro.cache.fifo import FifoCache
from repro.cache.lfu import LfuCache
from repro.cache.lru import LruCache
from repro.cache.random_ import RandomCache
from repro.cache.sieve import SieveCache


class TestFifo:
    def test_eviction_in_insertion_order(self):
        cache = FifoCache(3)
        for key in "abc":
            cache.access(key)
        cache.access("a")  # hit must NOT reorder
        cache.access("d")  # evicts a (oldest inserted)
        assert "a" not in cache
        assert all(k in cache for k in "bcd")

    def test_hit_ratio_on_repeats(self):
        cache = FifoCache(2)
        for key in ["x", "y", "x", "y"]:
            cache.access(key)
        assert cache.stats.hits == 2

    def test_size_aware_eviction(self):
        cache = FifoCache(10)
        cache.access("a", size=4)
        cache.access("b", size=4)
        cache.access("c", size=6)  # evicts a; b + c fit exactly
        assert "a" not in cache
        assert "b" in cache and "c" in cache
        assert cache.used == 10
        cache.access("d", size=9)  # evicts both b and c
        assert "b" not in cache and "c" not in cache
        assert cache.used == 9

    def test_len(self):
        cache = FifoCache(3)
        for key in "ab":
            cache.access(key)
        assert len(cache) == 2


class TestLru:
    def test_promotion_protects_recent(self):
        cache = LruCache(3)
        for key in "abc":
            cache.access(key)
        cache.access("a")  # promote a
        cache.access("d")  # evicts b (LRU)
        assert "a" in cache
        assert "b" not in cache

    def test_strict_lru_order(self):
        cache = LruCache(2)
        cache.access("a")
        cache.access("b")
        cache.access("a")
        cache.access("c")  # evicts b
        assert "b" not in cache
        assert "a" in cache and "c" in cache

    def test_used_tracks_sizes(self):
        cache = LruCache(100)
        cache.access("a", size=30)
        cache.access("b", size=50)
        assert cache.used == 80
        cache.access("c", size=40)  # evicts a
        assert cache.used == 90

    def test_lru_beats_fifo_on_skewed(self, small_zipf):
        from repro.sim.simulator import simulate

        lru = simulate(LruCache(50), small_zipf).miss_ratio
        fifo = simulate(FifoCache(50), small_zipf).miss_ratio
        assert lru < fifo


class TestClock:
    def test_second_chance(self):
        cache = ClockCache(3)
        for key in "abc":
            cache.access(key)
        cache.access("a")  # set a's ref bit
        cache.access("d")  # b evicted: a reinserted with bit cleared
        assert "a" in cache
        assert "b" not in cache

    def test_unreferenced_evicted_in_fifo_order(self):
        cache = ClockCache(2)
        cache.access("a")
        cache.access("b")
        cache.access("c")
        assert "a" not in cache

    def test_multi_bit_counter(self):
        cache = ClockCache(2, nbits=2)
        cache.access("a")
        for _ in range(5):
            cache.access("a")  # saturates at 3
        cache.access("b")
        # a survives 3 eviction scans
        for key in ["c", "d", "e"]:
            cache.access(key)
        assert "a" in cache

    def test_invalid_nbits(self):
        with pytest.raises(ValueError):
            ClockCache(4, nbits=0)

    def test_matches_fifo_without_hits(self):
        """With no re-references CLOCK degenerates to FIFO."""
        from repro.sim.simulator import simulate

        trace = list(range(100))
        clock = simulate(ClockCache(10), list(trace)).miss_ratio
        fifo = simulate(FifoCache(10), list(trace)).miss_ratio
        assert clock == fifo == 1.0


class TestSieve:
    def test_visited_objects_survive(self):
        cache = SieveCache(3)
        for key in "abc":
            cache.access(key)
        cache.access("a")
        cache.access("d")  # hand starts at tail (a): visited -> keep; b evicted
        assert "a" in cache
        assert "b" not in cache

    def test_retained_objects_not_moved(self):
        """SIEVE keeps survivors in place: the hand resumes from where
        it stopped, so the same survivor is not rescanned first."""
        cache = SieveCache(3)
        for key in "abc":
            cache.access(key)
        cache.access("a")
        cache.access("d")  # evicts b, hand now past a
        cache.access("e")  # evicts c without touching a again
        assert "a" in cache
        assert "c" not in cache

    def test_full_scan_then_oldest_evicted(self):
        """When everything is visited, the scan clears all bits and the
        oldest objects are then evicted in FIFO order."""
        cache = SieveCache(4)
        for key in "abcd":
            cache.access(key)
        for key in "abcd":
            cache.access(key)  # all visited
        for key in ["x", "y", "z"]:
            cache.access(key)  # evicts a, then b, then c
        assert "d" in cache
        assert {"x", "y", "z"} <= {k for k in "abcdxyz" if k in cache}
        assert all(k not in cache for k in "abc")

    def test_wraparound_scan(self):
        cache = SieveCache(2)
        cache.access("a")
        cache.access("b")
        cache.access("a")
        cache.access("b")
        cache.access("c")  # all visited: full scan clears bits, evicts a
        assert "c" in cache
        assert len(cache) == 2


class TestLfu:
    def test_evicts_least_frequent(self):
        cache = LfuCache(2)
        cache.access("a")
        cache.access("a")
        cache.access("b")
        cache.access("c")  # b (freq 0) evicted, not a (freq 1)
        assert "a" in cache
        assert "b" not in cache

    def test_lru_tie_break(self):
        cache = LfuCache(2)
        cache.access("a")
        cache.access("b")
        cache.access("c")  # a and b tie at freq 0; a is older
        assert "a" not in cache
        assert "b" in cache

    def test_freq_increases_protection(self):
        cache = LfuCache(3)
        for _ in range(3):
            cache.access("hot")
        for key in ["w1", "w2", "w3", "w4"]:
            cache.access(key)
        assert "hot" in cache

    def test_min_freq_resets_on_insert(self):
        cache = LfuCache(2)
        cache.access("a")
        cache.access("a")
        cache.access("b")
        cache.access("b")
        cache.access("c")  # evicts one of the freq-1s, c enters at 0
        cache.access("d")  # evicts c (freq 0)
        assert "c" not in cache


class TestRandom:
    def test_deterministic_with_seed(self):
        from repro.sim.simulator import simulate

        trace = [i % 50 for i in range(1000)]
        r1 = simulate(RandomCache(10, seed=1), list(trace)).miss_ratio
        r2 = simulate(RandomCache(10, seed=1), list(trace)).miss_ratio
        assert r1 == r2

    def test_capacity_respected(self):
        cache = RandomCache(5, seed=0)
        for i in range(100):
            cache.access(i)
        assert len(cache) == 5
        assert cache.used == 5

    def test_hits_recorded(self):
        cache = RandomCache(10, seed=0)
        cache.access("a")
        assert cache.access("a") is True
