"""Differential tests for the single-pass multi-size engine.

The whole value of :mod:`repro.sim.multisim` is the *exactness* claim:
one pass must reproduce per-size :func:`repro.sim.simulate` runs
bit-for-bit for FIFO and S-FIFO, at every size, on unit and sized
traces alike — including oversized requests, which the reference
counts as misses even for resident keys.  Everything here is a
differential against the reference policies, plus the pinned error
bound for the sampled S3-FIFO estimator.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.registry import create_policy
from repro.sim.mrc import MissRatioCurve, fifo_mrc, mrc_error, s3fifo_mrc
from repro.sim.multisim import (
    MULTISIM_POLICIES,
    S3FIFO_MRC_ERROR_BOUND,
    MultiSimResult,
    fifo_multisim,
    multisim,
    s3fifo_multisim_sampled,
    sfifo_multisim,
)
from repro.sim.runner import (
    SweepJob,
    coalesce_jobs,
    run_multisize_sweep,
    run_sweep,
)
from repro.sim.simulator import simulate
from repro.traces.compiled import compile_trace
from repro.traces.synthetic import zipf_trace, zipf_sizes

pytestmark = pytest.mark.mrc

#: The classic Belady-anomaly trace: 9 misses at size 3, 10 at size 4.
BELADY = [1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5]


def assert_bit_identical(policy, trace, sizes, **kwargs):
    """One multisim pass == per-size simulate(), field for field."""
    ct = compile_trace(trace)
    result = multisim(policy, ct, sizes, **kwargs)
    for size in sorted(set(sizes)):
        cache = create_policy(policy, capacity=size, **kwargs)
        ref = simulate(cache, ct)
        mine = result.result_for(size)
        assert mine.misses == ref.misses, (policy, size)
        assert mine.bytes_missed == ref.bytes_missed, (policy, size)
        assert mine.evictions == ref.evictions, (policy, size)
        assert mine.requests == ref.requests, (policy, size)
        assert mine.bytes_requested == ref.bytes_requested, (policy, size)
        assert mine.miss_ratio == ref.miss_ratio, (policy, size)
    return result


@pytest.fixture(scope="module")
def unit_trace():
    return compile_trace(zipf_trace(300, 8000, alpha=1.0, seed=5))


@pytest.fixture(scope="module")
def sized_trace():
    rng = random.Random(0)
    # Sizes up to 8 against capacities as small as 4: oversized
    # requests (miss-even-when-resident) are exercised, not skirted.
    return compile_trace(
        [(rng.randrange(50), rng.choice([1, 1, 2, 3, 8]))
         for _ in range(4000)]
    )


class TestFifoMultisim:
    def test_belady_anomaly_pinned(self):
        """FIFO is not a stack algorithm: the docstring's inclusion
        caveat, pinned on the textbook counterexample."""
        result = fifo_multisim(BELADY, [3, 4])
        assert result.misses == [9, 10]  # more misses at the BIGGER size

    def test_unit_trace_differential(self, unit_trace):
        assert_bit_identical(
            "fifo", unit_trace, [1, 2, 5, 10, 33, 64, 150, 400]
        )

    def test_fast_twin_differential(self, unit_trace):
        assert_bit_identical("fifo-fast", unit_trace, [4, 16, 50])

    def test_sized_trace_differential(self, sized_trace):
        assert_bit_identical("fifo", sized_trace, [4, 7, 16, 40, 120])

    def test_sizes_beyond_every_capacity(self):
        """A size larger than even the biggest cache is a pure miss
        stream at every size — for resident keys too."""
        rng = random.Random(7)
        trace = [(rng.randrange(30), rng.choice([1, 2, 4, 50]))
                 for _ in range(2500)]
        assert_bit_identical("fifo", trace, [3, 10, 25])

    def test_lognormal_sized_differential(self):
        keys = zipf_trace(200, 5000, alpha=0.9, seed=11)
        trace = zipf_sizes(keys, mean_size=64, sigma=1.2, seed=11)
        assert_bit_identical("fifo", trace, [200, 1000, 5000])

    def test_duplicate_and_unsorted_sizes(self, unit_trace):
        result = fifo_multisim(unit_trace, [10, 5, 10, 2])
        assert result.sizes == [2, 5, 10]

    def test_result_for_unknown_size(self, unit_trace):
        result = fifo_multisim(unit_trace, [5])
        with pytest.raises(KeyError):
            result.result_for(6)

    def test_validation(self):
        with pytest.raises(ValueError):
            fifo_multisim([1, 2], [])
        with pytest.raises(ValueError):
            fifo_multisim([1, 2], [0, 5])

    @given(
        trace=st.lists(st.integers(0, 30), min_size=1, max_size=300),
        sizes=st.lists(st.integers(1, 40), min_size=1, max_size=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_unit(self, trace, sizes):
        assert_bit_identical("fifo", trace, sizes)

    @given(
        trace=st.lists(
            st.tuples(st.integers(0, 15), st.integers(1, 12)),
            min_size=1,
            max_size=200,
        ),
        sizes=st.lists(st.integers(1, 20), min_size=1, max_size=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_sized(self, trace, sizes):
        assert_bit_identical("fifo", trace, sizes)


class TestSfifoMultisim:
    def test_unit_trace_differential(self, unit_trace):
        assert_bit_identical("sfifo", unit_trace, [1, 2, 5, 10, 33, 150])

    @pytest.mark.parametrize("ratio", [0.1, 0.3, 0.6, 0.9])
    def test_primary_ratio_sweep(self, unit_trace, ratio):
        assert_bit_identical(
            "sfifo", unit_trace, [7, 29, 80], primary_ratio=ratio
        )

    def test_sized_trace_differential(self, sized_trace):
        assert_bit_identical("sfifo", sized_trace, [4, 7, 16, 40, 120])

    def test_sized_nondefault_ratio(self, sized_trace):
        assert_bit_identical(
            "sfifo", sized_trace, [5, 19, 77], primary_ratio=0.15
        )

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            sfifo_multisim([1, 2], [4], primary_ratio=1.5)

    @given(
        trace=st.lists(
            st.tuples(st.integers(0, 15), st.integers(1, 12)),
            min_size=1,
            max_size=150,
        ),
        sizes=st.lists(st.integers(1, 20), min_size=1, max_size=3),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_sized(self, trace, sizes):
        assert_bit_identical("sfifo", trace, sizes)


class TestDispatch:
    def test_policy_names(self):
        assert set(MULTISIM_POLICIES) == {"fifo", "fifo-fast", "sfifo"}

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            multisim("lru", [1, 2], [4])

    def test_fifo_rejects_kwargs(self):
        with pytest.raises(TypeError):
            multisim("fifo", [1, 2], [4], primary_ratio=0.3)

    def test_repr(self, unit_trace):
        result = fifo_multisim(unit_trace, [5])
        assert "exact" in repr(result)
        assert isinstance(result, MultiSimResult)


class TestMrcApi:
    def test_fifo_mrc_matches_engine(self, unit_trace):
        sizes = [10, 40, 160]
        curve = fifo_mrc(unit_trace, sizes=sizes)
        engine = fifo_multisim(unit_trace, sizes)
        assert curve.sizes == engine.sizes
        assert curve.miss_ratios == engine.miss_ratios

    def test_fifo_mrc_default_sizes(self, unit_trace):
        curve = fifo_mrc(unit_trace)
        assert curve.sizes[-1] == unit_trace.num_objects

    def test_fifo_mrc_empty_trace(self):
        with pytest.raises(ValueError):
            fifo_mrc([])

    def test_fifo_not_monotone_on_belady(self):
        assert not fifo_mrc(BELADY, sizes=[3, 4]).is_monotone()


class TestS3FifoSampled:
    @pytest.fixture(scope="class")
    def big_trace(self):
        return compile_trace(
            zipf_trace(20_000, 150_000, alpha=0.9, seed=0)
        )

    def test_error_bound_vs_exact(self, big_trace):
        """The headline accuracy claim: sampled one-pass S3-FIFO MRC
        within S3FIFO_MRC_ERROR_BOUND of exact re-simulation."""
        sizes = [500, 1000, 2000, 4000, 8000, 16000]
        approx = s3fifo_multisim_sampled(
            big_trace, sizes, rate=0.25, seed=0, ensembles=3
        )
        assert approx.exact is False
        exact_mrs = []
        for size in sizes:
            cache = create_policy("s3fifo", capacity=size)
            result = simulate(cache, big_trace)
            exact_mrs.append(result.miss_ratio)
        exact = MissRatioCurve(sizes, exact_mrs)
        error = mrc_error(approx.to_curve(), exact)
        assert error <= S3FIFO_MRC_ERROR_BOUND, error

    def test_s3fifo_mrc_wrapper(self, big_trace):
        curve = s3fifo_mrc(
            big_trace, [1000, 8000], rate=0.25, seed=0, ensembles=2
        )
        assert curve.miss_ratios[0] > curve.miss_ratios[1]

    def test_validation(self):
        with pytest.raises(ValueError):
            s3fifo_multisim_sampled([1, 2], [4], rate=0.0)
        with pytest.raises(ValueError):
            s3fifo_multisim_sampled([1, 2], [4], ensembles=0)


class TestRunnerCoalescing:
    TRACE_KWARGS = {
        "num_objects": 1000,
        "num_requests": 15_000,
        "alpha": 1.0,
        "seed": 3,
    }

    def _jobs(self):
        jobs = []
        for policy in ("fifo", "sfifo", "lru"):
            for cap in (20, 80, 300):
                jobs.append(
                    SweepJob(
                        trace_name="z",
                        trace_factory=zipf_trace,
                        trace_kwargs=self.TRACE_KWARGS,
                        policy=policy,
                        cache_size=cap,
                        tags={"policy": policy, "cap": cap},
                    )
                )
        return jobs

    def test_coalesce_groups_fifo_family_only(self):
        groups, singles = coalesce_jobs(self._jobs())
        assert [mjob.policy for _, mjob in groups] == ["fifo", "sfifo"]
        assert all(mjob.cache_sizes == [20, 80, 300] for _, mjob in groups)
        assert [job.policy for _, job in singles] == ["lru"] * 3
        # Original indices survive so results reassemble in order.
        assert [idx for idx, _ in singles] == [6, 7, 8]

    def test_lone_sizes_stay_single(self):
        jobs = self._jobs()[:1]
        groups, singles = coalesce_jobs(jobs)
        assert not groups
        assert len(singles) == 1

    def test_matches_run_sweep_sequential(self):
        jobs = self._jobs()
        baseline = run_sweep(jobs, processes=1)
        coalesced = run_multisize_sweep(jobs, processes=1)
        assert len(coalesced) == len(baseline)
        for mine, ref in zip(coalesced, baseline):
            assert (mine.policy, mine.cache_size) == (
                ref.policy, ref.cache_size
            )
            assert mine.miss_ratio == ref.miss_ratio
            assert mine.byte_miss_ratio == ref.byte_miss_ratio
            assert mine.tags["policy"] == ref.tags["policy"]

    def test_coalesced_tag_and_attempts(self):
        report = run_multisize_sweep(self._jobs(), processes=1)
        for result in report:
            assert result.tags["attempts"] == 1
            if result.policy in ("fifo", "sfifo"):
                assert result.tags["coalesced"] == 3
            else:
                assert "coalesced" not in result.tags

    def test_failed_group_degrades_to_error_results(self):
        def bad_factory(**_kwargs):
            raise RuntimeError("no trace for you")

        jobs = [
            SweepJob(
                trace_name="bad",
                trace_factory=bad_factory,
                trace_kwargs={},
                policy="fifo",
                cache_size=cap,
            )
            for cap in (10, 20)
        ]
        report = run_multisize_sweep(jobs, processes=1)
        assert len(report) == 2
        assert all(not r.ok for r in report)
        assert all("RuntimeError" in r.error for r in report)
