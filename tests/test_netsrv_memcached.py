"""memcached text-protocol streaming parser conformance (tier-1).

The contract: data blocks are consumed by byte count (a payload
containing ``\\r\\n`` or even ``get foo\\r\\n`` must never be read as a
command), chunk boundaries are invisible, oversized values are
swallowed without buffering, and a data block whose terminator is not
CRLF raises :class:`McProtocolError` — stream sync is unrecoverable
once the byte count was wrong, so the server closes.

Malformed-but-parseable lines do NOT raise: real memcached answers
``ERROR`` / ``CLIENT_ERROR`` and keeps the connection; the parser
mirrors that by emitting ``("error",)`` / ``("client_error", msg)``
events for the server to answer.
"""

import pytest

from repro.netsrv import McParser, McProtocolError


def set_frame(key: bytes, data: bytes, flags: int = 0, exptime: int = 0,
              noreply: bool = False) -> bytes:
    tail = b" noreply" if noreply else b""
    return (b"set %s %d %d %d%s\r\n" % (key, flags, exptime, len(data), tail)
            + data + b"\r\n")


class TestCommands:
    def test_set_roundtrip_event(self):
        events = McParser().feed(set_frame(b"k", b"hello", flags=7,
                                           exptime=60))
        assert events == [("set", "k", 7, 60, b"hello", False)]

    def test_set_noreply(self):
        events = McParser().feed(set_frame(b"k", b"v", noreply=True))
        assert events == [("set", "k", 0, 0, b"v", True)]

    def test_data_block_is_binary_safe(self):
        """A payload that LOOKS like commands is still just bytes."""
        payload = b"get other\r\nEND\r\n"
        frame = set_frame(b"k", payload)
        events = McParser().feed(frame + b"version\r\n")
        assert events == [("set", "k", 0, 0, payload, False), ("version",)]

    def test_get_and_gets(self):
        parser = McParser()
        assert parser.feed(b"get a b c\r\n") == [("get", ["a", "b", "c"],
                                                  False)]
        assert parser.feed(b"gets a\r\n") == [("get", ["a"], True)]

    def test_delete(self):
        parser = McParser()
        assert parser.feed(b"delete k\r\n") == [("delete", "k", False)]
        assert parser.feed(b"delete k noreply\r\n") == [("delete", "k",
                                                         True)]

    def test_admin_verbs(self):
        assert McParser().feed(b"stats\r\nversion\r\nquit\r\n") == [
            ("stats",), ("version",), ("quit",),
        ]

    def test_unknown_verb_is_error_event(self):
        assert McParser().feed(b"frobnicate\r\n") == [("error",)]

    def test_bare_crlf_skipped(self):
        assert McParser().feed(b"\r\nversion\r\n") == [("version",)]


class TestClientErrors:
    @pytest.mark.parametrize("line", [
        b"get\r\n",                       # no keys
        b"set k 0 0\r\n",                 # missing byte count
        b"set k a b c\r\n",               # non-integer fields
        b"set k 0 0 -1\r\n",              # negative byte count
        b"delete\r\n",                    # no key
        b"delete a b\r\n",                # too many keys
    ])
    def test_malformed_known_commands(self, line):
        events = McParser().feed(line)
        assert events == [("client_error", "bad command line format")]

    def test_too_many_keys(self):
        parser = McParser(max_keys=4)
        events = parser.feed(b"get a b c d e\r\n")
        assert events == [("client_error", "bad command line format")]


class TestStreaming:
    def test_byte_at_a_time(self):
        data = set_frame(b"k", b"a\r\nb") + b"get k\r\n"
        parser = McParser()
        got = []
        for i in range(len(data)):
            got.extend(parser.feed(data[i:i + 1]))
        assert got == [("set", "k", 0, 0, b"a\r\nb", False),
                       ("get", ["k"], False)]
        assert parser.buffered == 0

    def test_split_inside_data_block(self):
        parser = McParser()
        assert parser.feed(b"set k 0 0 5\r\nhel") == []
        assert parser.feed(b"lo\r\n") == [("set", "k", 0, 0, b"hello",
                                           False)]

    def test_bad_data_chunk_terminator_raises(self):
        parser = McParser()
        with pytest.raises(McProtocolError, match="bad data chunk"):
            parser.feed(b"set k 0 0 5\r\nhelloXXget k\r\n")

    def test_command_line_too_long_raises(self):
        parser = McParser(max_line=64)
        with pytest.raises(McProtocolError, match="too long"):
            parser.feed(b"get " + b"k" * 128)


class TestOversized:
    def test_oversized_set_swallowed_not_buffered(self):
        parser = McParser(max_value_size=16)
        big = b"X" * 1024
        events = parser.feed(b"set k 0 0 1024\r\n")
        assert events == []
        # Feed the payload in chunks: the parser must discard eagerly,
        # never holding the oversized bytes.
        for i in range(0, 1024, 64):
            events = parser.feed(big[i:i + 64])
            assert parser.buffered <= 64
        assert events == []
        assert parser.feed(b"\r\n") == [("too_large", "k", 1024, False)]

    def test_stream_resyncs_after_oversized_value(self):
        parser = McParser(max_value_size=4)
        data = (b"set k 0 0 10\r\n" + b"Y" * 10 + b"\r\n" + b"version\r\n")
        assert parser.feed(data) == [("too_large", "k", 10, False),
                                     ("version",)]
