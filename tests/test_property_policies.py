"""Property-based invariants that every eviction policy must satisfy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.registry import create_policy, policy_names
from repro.sim.request import Request

ONLINE_POLICIES = policy_names(include_offline=False)

key_lists = st.lists(
    st.integers(min_value=0, max_value=60), min_size=1, max_size=300
)

sized_requests = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=1, max_value=12),
    ),
    min_size=1,
    max_size=200,
)


@pytest.mark.parametrize("policy_name", ONLINE_POLICIES)
class TestUniversalInvariants:
    @given(trace=key_lists, capacity=st.integers(min_value=2, max_value=30))
    @settings(max_examples=20, deadline=None)
    def test_capacity_and_consistency(self, policy_name, trace, capacity):
        """After every request: used <= capacity, repeated access hits,
        and membership agrees with the hit result."""
        cache = create_policy(policy_name, capacity=capacity)
        for key in trace:
            was_resident = key in cache
            hit = cache.request(Request(key))
            assert hit == was_resident, (policy_name, key)
            assert cache.used <= capacity
            if policy_name != "blru":  # B-LRU rejects first insertions
                assert key in cache or len(cache) > 0

    @given(trace=key_lists)
    @settings(max_examples=10, deadline=None)
    def test_stats_add_up(self, policy_name, trace):
        cache = create_policy(policy_name, capacity=10)
        for key in trace:
            cache.request(Request(key))
        assert cache.stats.hits + cache.stats.misses == len(trace)
        assert 0.0 <= cache.stats.miss_ratio <= 1.0

    @given(requests=sized_requests)
    @settings(max_examples=10, deadline=None)
    def test_sized_objects_capacity(self, policy_name, requests):
        """Byte-mode: a per-key stable size must never break capacity."""
        sizes = {}
        cache = create_policy(policy_name, capacity=40)
        for key, size in requests:
            size = sizes.setdefault(key, size)
            cache.request(Request(key, size=size))
            assert cache.used <= 40, policy_name


@pytest.mark.parametrize("policy_name", ONLINE_POLICIES)
def test_full_cache_keeps_working(policy_name):
    """Deterministic churn far beyond capacity."""
    cache = create_policy(policy_name, capacity=8)
    for i in range(4000):
        cache.request(Request(i % 100))
    assert cache.used <= 8
    assert cache.stats.requests == 4000


class TestS3FifoSpecificProperties:
    @given(
        trace=key_lists,
        small_ratio=st.sampled_from([0.05, 0.1, 0.3]),
    )
    @settings(max_examples=20, deadline=None)
    def test_queue_accounting(self, trace, small_ratio):
        from repro.core.s3fifo import S3FifoCache

        cache = S3FifoCache(20, small_ratio=small_ratio)
        for key in trace:
            cache.request(Request(key))
            assert cache.small_used + cache.main_used == cache.used
            assert len(cache) == len(cache._small) + len(cache._main)
            # An object is never in both queues.
            assert not (cache.in_small(key) and cache.in_main(key))

    @given(trace=key_lists)
    @settings(max_examples=20, deadline=None)
    def test_ghost_disjoint_from_resident(self, trace):
        from repro.core.s3fifo import S3FifoCache

        cache = S3FifoCache(15)
        for key in trace:
            cache.request(Request(key))
        for key in set(trace):
            if key in cache:
                assert key not in cache.ghost


class TestDeterminismAcrossPolicies:
    @given(seed=st.integers(min_value=0, max_value=10))
    @settings(max_examples=5, deadline=None)
    def test_same_trace_same_result(self, seed):
        from repro.sim.simulator import simulate
        from repro.traces.synthetic import zipf_trace

        trace = zipf_trace(100, 2000, alpha=1.0, seed=seed)
        for name in ["s3fifo", "lru", "arc", "tinylfu"]:
            a = simulate(create_policy(name, capacity=20), list(trace))
            b = simulate(create_policy(name, capacity=20), list(trace))
            assert a.miss_ratio == b.miss_ratio, name
