"""Fault plans: validation, scheduling, and end-to-end determinism."""

import pytest

from repro.flash.admission import S3FifoAdmission
from repro.flash.flashcache import HybridFlashCache
from repro.resilience.faults import (
    FLASH_READ,
    FLASH_WRITE,
    LATENCY,
    TRACE_CORRUPTION,
    FaultEvent,
    FaultPlan,
    corrupt_binary_trace,
)
from repro.resilience.retry import RetryPolicy
from repro.traces.readers import SkippedRecords, read_binary_trace, write_binary_trace
from repro.traces.synthetic import zipf_trace

pytestmark = pytest.mark.resilience


class TestFaultEvent:
    def test_window_semantics(self):
        event = FaultEvent(FLASH_READ, 10, 20)
        assert not event.active(9)
        assert event.active(10)
        assert event.active(19)
        assert not event.active(20)

    def test_target_scoping(self):
        event = FaultEvent("level-outage", 0, 5, target=1)
        assert event.active(0, target=1)
        assert not event.active(0, target=0)
        assert event.active(0)  # untargeted query matches any target

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent("bit-flip", 0, 1)

    def test_rejects_empty_window(self):
        with pytest.raises(ValueError):
            FaultEvent(FLASH_READ, 5, 5)


class TestFaultPlan:
    def test_add_chains(self):
        plan = FaultPlan().add(FLASH_READ, 0, 10).add(FLASH_WRITE, 5, 15)
        assert len(plan) == 2
        assert plan.active(FLASH_READ, 3)
        assert not plan.active(FLASH_READ, 12)
        assert plan.active(FLASH_WRITE, 12)

    def test_window_lookup(self):
        plan = FaultPlan().add(FLASH_READ, 10, 20)
        assert plan.window(FLASH_READ, 15).start == 10
        assert plan.window(FLASH_READ, 25) is None

    def test_latency_accumulates(self):
        plan = (
            FaultPlan()
            .add(LATENCY, 0, 10, magnitude=5)
            .add(LATENCY, 5, 10, magnitude=3)
        )
        assert plan.latency(2) == 5
        assert plan.latency(7) == 8
        assert plan.latency(12) == 0

    def test_generate_is_deterministic(self):
        a = FaultPlan.generate(horizon=10_000, seed=7, count=5)
        b = FaultPlan.generate(horizon=10_000, seed=7, count=5)
        assert [
            (e.kind, e.start, e.stop, e.target) for e in a.events
        ] == [(e.kind, e.start, e.stop, e.target) for e in b.events]

    def test_generate_seed_changes_schedule(self):
        a = FaultPlan.generate(horizon=10_000, seed=1, count=5)
        b = FaultPlan.generate(horizon=10_000, seed=2, count=5)
        assert [(e.kind, e.start) for e in a.events] != [
            (e.kind, e.start) for e in b.events
        ]

    def test_generate_respects_horizon(self):
        plan = FaultPlan.generate(horizon=100, seed=0, count=20)
        assert all(e.stop <= 100 for e in plan.events)


class TestTraceCorruption:
    def test_corruption_is_deterministic_and_detectable(self, tmp_path):
        trace = zipf_trace(100, 1000, seed=3)
        clean = tmp_path / "clean.bin"
        write_binary_trace(clean, trace)
        plan = FaultPlan().add(TRACE_CORRUPTION, 100, 150)
        first, second = tmp_path / "a.bin", tmp_path / "b.bin"
        assert corrupt_binary_trace(clean, first, plan) == 50
        assert corrupt_binary_trace(clean, second, plan) == 50
        assert first.read_bytes() == second.read_bytes()
        skipped = SkippedRecords()
        kept = [r.key for r in read_binary_trace(first, strict=False, skipped=skipped)]
        assert skipped.count == 50
        assert len(kept) == 950
        # Records outside the window are untouched.
        assert kept[:99] == trace[:99]


def _degraded_run(seed: int):
    """One full fault-injected hybrid run; returns the fault counters."""
    trace = zipf_trace(num_objects=1_000, num_requests=10_000, alpha=1.0, seed=5)
    plan = FaultPlan.generate(
        horizon=10_000,
        kinds=(FLASH_READ, FLASH_WRITE),
        count=4,
        mean_duration=400,
        seed=seed,
    )
    cache = HybridFlashCache(
        dram_capacity=50,
        flash_capacity=500,
        admission=S3FifoAdmission(ghost_entries=200),
        faults=plan,
        retry=RetryPolicy(max_attempts=3, base_delay=2.0, seed=seed),
    )
    result = cache.run(trace)
    return (
        result.misses,
        result.degraded_requests,
        result.dropped_writes,
        result.failed_flash_reads,
        result.flash_write_retries,
        result.bypass_entries,
        result.flash_bytes_written,
    )


class TestDeterminism:
    """Acceptance: same FaultPlan seed => byte-identical fault behaviour."""

    def test_identical_runs(self):
        assert _degraded_run(seed=11) == _degraded_run(seed=11)

    def test_runs_actually_degrade(self):
        counters = _degraded_run(seed=11)
        assert counters[1] > 0  # degraded requests observed
        assert counters[2] > 0  # dropped writes observed

    def test_different_seed_different_faults(self):
        assert _degraded_run(seed=11) != _degraded_run(seed=12)


class TestPlanValidation:
    def test_unknown_kind_rejected_at_event_construction(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent("definitely-not-a-fault", 0, 10)

    def test_unknown_kind_named_in_ctor_error(self):
        event = FaultEvent(FLASH_READ, 0, 10)
        event.kind = "mutated-after-the-fact"
        with pytest.raises(ValueError) as exc_info:
            FaultPlan([event])
        assert "mutated-after-the-fact" in str(exc_info.value)
        assert FLASH_READ in str(exc_info.value)  # known kinds listed

    def test_overlapping_windows_rejected_with_both_windows_named(self):
        plan = FaultPlan().add(FLASH_READ, 0, 10)
        with pytest.raises(ValueError) as exc_info:
            plan.add(FLASH_READ, 5, 15)
        msg = str(exc_info.value)
        assert "[0, 10)" in msg and "[5, 15)" in msg
        assert FLASH_READ in msg

    def test_same_kind_different_targets_do_not_conflict(self):
        plan = (
            FaultPlan()
            .add(FLASH_READ, 0, 10, target=0)
            .add(FLASH_READ, 5, 15, target=1)
        )
        assert len(plan) == 2

    def test_adjacent_windows_do_not_conflict(self):
        plan = FaultPlan().add(FLASH_READ, 0, 10).add(FLASH_READ, 10, 20)
        assert len(plan) == 2

    def test_latency_windows_may_overlap(self):
        plan = (
            FaultPlan()
            .add(LATENCY, 0, 10, magnitude=5)
            .add(LATENCY, 5, 10, magnitude=3)
        )
        assert plan.latency(7) == 8

    def test_generate_never_emits_conflicting_windows(self):
        # A crowded horizon forces redraws; the result must still be
        # valid, deterministic, and bounded.
        a = FaultPlan.generate(horizon=50, seed=3, count=30)
        b = FaultPlan.generate(horizon=50, seed=3, count=30)
        assert len(a) <= 30
        assert [(e.kind, e.start, e.stop) for e in a.events] == [
            (e.kind, e.start, e.stop) for e in b.events
        ]
        # Round-trips through the validating constructor.
        FaultPlan(a.events)
