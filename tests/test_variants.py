"""Tests for the queue-type ablation variants (Section 6.3)."""

import pytest

from repro.core.s3fifo import S3FifoCache
from repro.core.variants import QueueType, S3QueueVariantCache
from repro.sim.simulator import simulate


class TestConstruction:
    def test_variant_name(self):
        cache = S3QueueVariantCache(
            100, small_type=QueueType.LRU, main_type=QueueType.FIFO
        )
        assert cache.variant_name == "S3(S=lru,M=fifo)"

    def test_hit_promote_tag(self):
        cache = S3QueueVariantCache(100, promote_on_hit=True)
        assert "hit-promote" in cache.variant_name

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            S3QueueVariantCache(100, small_ratio=0.0)


class TestFifoFifoMatchesS3Fifo:
    def test_identical_miss_ratio(self, small_zipf):
        """The FIFO/FIFO variant without hit-promotion IS S3-FIFO."""
        variant = simulate(
            S3QueueVariantCache(50), list(small_zipf)
        ).miss_ratio
        original = simulate(S3FifoCache(50), list(small_zipf)).miss_ratio
        assert variant == pytest.approx(original, abs=1e-12)


class TestLruVariants:
    def test_lru_small_reorders_on_hit(self):
        cache = S3QueueVariantCache(100, small_type=QueueType.LRU)
        for i in range(5):
            cache.access(i)
        cache.access(0)
        assert list(cache._small)[-1] == 0  # moved to MRU end

    def test_fifo_small_does_not_reorder(self):
        cache = S3QueueVariantCache(100, small_type=QueueType.FIFO)
        for i in range(5):
            cache.access(i)
        cache.access(0)
        assert list(cache._small)[0] == 0

    def test_all_variants_capacity_safe(self, small_zipf):
        for small in QueueType:
            for main in QueueType:
                cache = S3QueueVariantCache(
                    50, small_type=small, main_type=main
                )
                for key in small_zipf[:3000]:
                    cache.access(key)
                assert cache.used <= 50, (small, main)

    def test_queue_type_does_not_matter_much(self, skewed_zipf):
        """Section 6.3's conclusion: with quick demotion in place, LRU
        queues do not meaningfully improve efficiency."""
        results = {}
        for small in QueueType:
            for main in QueueType:
                cache = S3QueueVariantCache(
                    100, small_type=small, main_type=main
                )
                results[(small, main)] = simulate(
                    cache, list(skewed_zipf)
                ).miss_ratio
        spread = max(results.values()) - min(results.values())
        assert spread < 0.03


class TestPromoteOnHit:
    def test_hit_promotion_moves_to_main(self):
        cache = S3QueueVariantCache(
            100, promote_on_hit=True, move_to_main_threshold=2
        )
        cache.access("a")
        cache.access("a")
        cache.access("a")  # freq reaches 2 -> immediately to M
        assert "a" in cache._main
        assert "a" not in cache._small

    def test_below_threshold_stays_in_small(self):
        cache = S3QueueVariantCache(
            100, promote_on_hit=True, move_to_main_threshold=2
        )
        cache.access("a")
        cache.access("a")
        assert "a" in cache._small
