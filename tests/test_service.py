"""Tests for the live cache service core and the remove() protocol."""

import pytest

from repro.cache.registry import create_policy
from repro.service import CacheService, RemovalUnsupportedError
from repro.sim.request import Request
from repro.sim.simulator import simulate
from repro.traces.synthetic import zipf_trace

REMOVABLE = ["fifo", "lru", "lru-fast", "s3fifo", "s3fifo-fast"]


class TestRemoveProtocol:
    @pytest.mark.parametrize("name", REMOVABLE)
    def test_remove_resident_key(self, name):
        policy = create_policy(name, capacity=10)
        assert policy.supports_removal
        for key in range(5):
            policy.request(Request(key))
        assert policy.remove(3)
        assert 3 not in policy
        assert len(policy) == 4
        assert policy.used == 4

    @pytest.mark.parametrize("name", REMOVABLE)
    def test_remove_absent_key(self, name):
        policy = create_policy(name, capacity=10)
        policy.request(Request("a"))
        assert not policy.remove("nope")
        assert policy.remove("a")
        assert not policy.remove("a")  # second remove: already gone
        assert len(policy) == 0

    @pytest.mark.parametrize("name", REMOVABLE)
    def test_remove_fires_no_eviction_event(self, name):
        policy = create_policy(name, capacity=10)
        events = []
        policy.add_eviction_listener(events.append)
        for key in range(5):
            policy.request(Request(key))
        policy.remove(2)
        assert events == []
        assert policy.stats.evictions == 0

    def test_remove_does_not_feed_ghost(self):
        policy = create_policy("s3fifo", capacity=10)
        policy.request(Request("a"))
        assert policy.in_small("a")
        policy.remove("a")
        # A deleted key re-enters through S like a brand-new key; an
        # evicted key would have re-entered M via the ghost queue.
        policy.request(Request("a"))
        assert policy.in_small("a")

    def test_unsupported_policy_raises(self):
        policy = create_policy("arc", capacity=10)
        assert not policy.supports_removal
        policy.request(Request("a"))
        with pytest.raises(NotImplementedError):
            policy.remove("a")

    def test_fast_s3fifo_matches_reference_under_removal(self):
        """Interleave requests and removes; the twins must stay
        bit-identical (the removal path must preserve queue order)."""
        import random

        rng = random.Random(7)
        ref = create_policy("s3fifo", capacity=50)
        fast = create_policy("s3fifo-fast", capacity=50)
        keys = zipf_trace(num_objects=300, num_requests=4000, seed=7)
        for i, key in enumerate(keys):
            assert ref.request(Request(key)) == fast.request(Request(key))
            if i % 7 == 0:
                victim = rng.randrange(300)
                assert ref.remove(victim) == fast.remove(victim)
        assert len(ref) == len(fast)
        assert ref.used == fast.used


class TestCacheService:
    def test_get_set_roundtrip(self):
        svc = CacheService(10)
        assert svc.get("a") is None
        assert svc.get("a", default=-1) == -1
        assert svc.set("a", 1)
        assert svc.get("a") == 1
        assert "a" in svc
        assert len(svc) == 1

    def test_counters(self):
        svc = CacheService(10)
        svc.get("a")
        svc.set("a", 1)
        svc.get("a")
        c = svc.counters
        assert (c.gets, c.hits, c.misses, c.sets) == (2, 1, 1, 1)
        assert c.hit_ratio == 0.5

    def test_delete(self):
        svc = CacheService(10)
        svc.set("a", 1)
        assert svc.delete("a")
        assert not svc.delete("a")
        assert svc.get("a") is None
        assert len(svc) == 0
        svc.check()

    def test_eviction_drops_value(self):
        svc = CacheService(4, policy="fifo")
        for key in range(6):
            svc.set(key, key)
        assert len(svc) == 4
        assert svc.counters.evictions == 2
        assert svc.get(0) is None  # FIFO evicted the oldest
        svc.check()

    def test_overwrite_updates_value(self):
        svc = CacheService(10)
        svc.set("a", 1)
        svc.set("a", 2)
        assert svc.get("a") == 2
        assert len(svc) == 1

    def test_sized_entries(self):
        svc = CacheService(100, policy="lru")
        svc.set("big", "x", size=60)
        svc.set("small", "y", size=30)
        assert svc.stats()["used"] == 90
        # Re-set with a different size replaces the residency charge.
        svc.set("big", "x2", size=10)
        assert svc.get("big") == "x2"
        assert svc.stats()["used"] == 40
        svc.check()

    def test_oversized_set_rejected(self):
        svc = CacheService(10)
        assert not svc.set("huge", "x", size=11)
        assert svc.counters.rejected == 1
        assert "huge" not in svc
        svc.check()

    def test_invalid_sizes_and_ttls(self):
        svc = CacheService(10)
        with pytest.raises(ValueError):
            svc.set("a", 1, size=0)
        with pytest.raises(ValueError):
            svc.set("a", 1, ttl=-1)
        with pytest.raises(ValueError):
            CacheService(10, default_ttl=-1)

    def test_removal_gates(self):
        svc = CacheService(10, policy="arc")
        assert not svc.supports_removal
        svc.set("a", 1)
        with pytest.raises(RemovalUnsupportedError):
            svc.delete("a")
        with pytest.raises(RemovalUnsupportedError):
            svc.set("b", 2, ttl=5)
        with pytest.raises(RemovalUnsupportedError):
            CacheService(10, policy="arc", default_ttl=5)
        # ttl=None is always fine.
        assert svc.set("c", 3, ttl=None)

    def test_stats_snapshot(self):
        svc = CacheService(10)
        svc.set("a", 1)
        svc.get("a")
        svc.get("b")
        stats = svc.stats()
        assert stats["policy"] == "s3fifo"
        assert stats["capacity"] == 10
        assert stats["objects"] == 1
        assert stats["hit_ratio"] == 0.5
        assert stats["policy_requests"] == 2  # set + hit get; missed get: 0

    def test_miss_does_not_touch_policy(self):
        """A get on an absent key must not admit it (read-through caches
        admit on set, not on lookup)."""
        svc = CacheService(10)
        svc.get("ghost")
        assert svc.policy.stats.requests == 0
        assert len(svc.policy) == 0

    @pytest.mark.parametrize("policy", ["s3fifo", "s3fifo-fast"])
    def test_single_shard_offline_parity_exact(self, policy):
        """Read-through replay == offline simulation, request for
        request: identical miss ratio, not merely close."""
        trace = zipf_trace(num_objects=2000, num_requests=30000, seed=42)
        capacity = 200
        svc = CacheService(capacity, policy)
        for key in trace:
            if svc.get(key) is None:
                svc.set(key, key)
        offline = simulate(create_policy(policy, capacity=capacity), trace)
        live_miss = 1.0 - svc.counters.hit_ratio
        assert live_miss == pytest.approx(offline.miss_ratio, abs=1e-12)
        svc.check()

    def test_checked_mode_runs_sanitizer(self):
        svc = CacheService(50, checked=True)
        trace = zipf_trace(num_objects=500, num_requests=5000, seed=1)
        for key in trace:
            if svc.get(key) is None:
                svc.set(key, key)
        svc.check()
        assert svc.policy.checks_run > 0
