"""Golden regression values: exact miss ratios on a pinned workload.

Every policy's miss ratio on one fixed trace (Zipf(1.0), 1000 objects,
25k requests, seed 1234, cache 100) is pinned to six decimals.  Any
refactor that changes a policy's *decisions* — not just its speed —
fails here, which is the point: eviction-algorithm behaviour changes
must be deliberate and reviewed, never incidental.

If a change is intentional, regenerate the table with::

    python - <<'PY'
    from repro.cache.registry import create_policy, policy_names
    from repro.sim.simulator import simulate
    from repro.traces.analysis import annotate_next_access
    from repro.traces.synthetic import zipf_trace
    trace = zipf_trace(1000, 25_000, alpha=1.0, seed=1234)
    annotated = annotate_next_access(trace)
    for name in policy_names(include_offline=True):
        tr = annotated if name == "belady" else list(trace)
        r = simulate(create_policy(name, capacity=100), tr)
        print(f'    "{name}": {r.miss_ratio:.6f},')
    PY
"""

import pytest

from repro.cache.registry import create_policy
from repro.sim.simulator import simulate
from repro.traces.analysis import annotate_next_access
from repro.traces.synthetic import zipf_trace

GOLDEN = {
    "arc": 0.357480,
    "belady": 0.244520,
    "blru": 0.420720,
    "cacheus": 0.414080,
    "car": 0.353120,
    "clock": 0.407480,
    "clockpro": 0.345040,
    "eelru": 0.420560,
    "fifo": 0.477000,
    "fifo-fast": 0.477000,
    "fifomerge": 0.476400,
    "gdsf": 0.360440,
    "hyperbolic": 0.391840,
    "lecar": 0.420560,
    "lfu": 0.340840,
    "lhd": 0.342600,
    "lirs": 0.358840,
    "lrfu": 0.333040,
    "lru": 0.420560,
    "lru-fast": 0.420560,
    "lruk": 0.353160,
    "mq": 0.320560,
    "random": 0.476560,
    "s3fifo": 0.344640,
    "s3fifo-d": 0.344480,
    "s3fifo-fast": 0.344640,
    "s3fifo-ring": 0.343360,
    "s3sieve": 0.334360,
    "s3variant": 0.344640,
    "sfifo": 0.422440,
    "sieve": 0.329400,
    "sieve-fast": 0.329400,
    "slru": 0.349080,
    "tinylfu": 0.362160,
    "tinylfu-0.1": 0.370080,
    "twoq": 0.365640,
}


@pytest.fixture(scope="module")
def golden_trace():
    return zipf_trace(num_objects=1000, num_requests=25_000, alpha=1.0,
                      seed=1234)


@pytest.mark.parametrize("policy_name", sorted(GOLDEN))
def test_golden_miss_ratio(policy_name, golden_trace):
    if policy_name == "belady":
        trace = annotate_next_access(golden_trace)
    else:
        trace = list(golden_trace)
    policy = create_policy(policy_name, capacity=100)
    result = simulate(policy, trace)
    assert result.miss_ratio == pytest.approx(
        GOLDEN[policy_name], abs=1e-9
    ), (
        f"{policy_name} decisions changed: {result.miss_ratio:.6f} != "
        f"{GOLDEN[policy_name]:.6f} (regenerate GOLDEN if intentional)"
    )


def test_golden_covers_every_registered_policy():
    from repro.cache.registry import policy_names

    assert set(GOLDEN) == set(policy_names(include_offline=True))


def test_golden_orderings():
    """Structural facts the table must keep exhibiting."""
    assert GOLDEN["belady"] == min(GOLDEN.values())
    assert GOLDEN["s3fifo"] < GOLDEN["lru"]
    assert GOLDEN["s3fifo"] < GOLDEN["fifo"]
    assert GOLDEN["s3sieve"] <= GOLDEN["s3fifo"]
    assert GOLDEN["fifo"] == max(GOLDEN.values())


def test_fast_twins_match_references():
    """The ``*-fast`` rewrites are decision-identical, not just close."""
    for ref in ("fifo", "lru", "sieve", "s3fifo"):
        assert GOLDEN[f"{ref}-fast"] == GOLDEN[ref]
