"""Unit tests for the ring-buffer FIFO queue."""

import pytest

from repro.structures.fifo_queue import RingBufferFifo


class TestBasics:
    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RingBufferFifo(0)

    def test_push_pop_fifo_order(self):
        q = RingBufferFifo(4)
        for v in ["a", "b", "c"]:
            q.push(v)
        assert q.pop() == "a"
        assert q.pop() == "b"
        assert q.pop() == "c"
        assert q.pop() is None

    def test_len_counts_live(self):
        q = RingBufferFifo(4)
        q.push(1)
        q.push(2)
        assert len(q) == 2
        q.pop()
        assert len(q) == 1

    def test_push_none_rejected(self):
        q = RingBufferFifo(2)
        with pytest.raises(ValueError):
            q.push(None)

    def test_overflow_raises(self):
        q = RingBufferFifo(2)
        q.push(1)
        q.push(2)
        with pytest.raises(OverflowError):
            q.push(3)

    def test_full_property(self):
        q = RingBufferFifo(2)
        assert not q.full
        q.push(1)
        q.push(2)
        assert q.full
        q.pop()
        assert not q.full

    def test_wraparound(self):
        q = RingBufferFifo(3)
        for i in range(10):
            q.push(i)
            assert q.pop() == i

    def test_peek(self):
        q = RingBufferFifo(3)
        assert q.peek() is None
        q.push("x")
        q.push("y")
        assert q.peek() == "x"
        assert len(q) == 2  # peek does not remove


class TestTombstones:
    def test_delete_marks_slot(self):
        q = RingBufferFifo(4)
        slot = q.push("a")
        q.push("b")
        q.delete(slot)
        assert len(q) == 1
        assert q.pop() == "b"

    def test_deleted_slot_not_reusable_until_tail_passes(self):
        q = RingBufferFifo(2)
        slot = q.push("a")
        q.push("b")
        q.delete(slot)
        # Still physically full: slots not reclaimed until pop.
        with pytest.raises(OverflowError):
            q.push("c")
        assert q.pop() == "b"  # skips the tombstone, reclaiming it
        q.push("c")
        assert list(q) == ["c"]

    def test_delete_invalid_slot(self):
        q = RingBufferFifo(2)
        with pytest.raises(IndexError):
            q.delete(5)

    def test_delete_empty_slot(self):
        q = RingBufferFifo(2)
        with pytest.raises(KeyError):
            q.delete(0)

    def test_double_delete(self):
        q = RingBufferFifo(2)
        slot = q.push("a")
        q.delete(slot)
        with pytest.raises(KeyError):
            q.delete(slot)

    def test_peek_skips_tombstones(self):
        q = RingBufferFifo(4)
        slot = q.push("a")
        q.push("b")
        q.delete(slot)
        assert q.peek() == "b"

    def test_iter_skips_tombstones(self):
        q = RingBufferFifo(4)
        slots = [q.push(v) for v in ["a", "b", "c"]]
        q.delete(slots[1])
        assert list(q) == ["a", "c"]

    def test_slots_used_includes_tombstones(self):
        q = RingBufferFifo(4)
        slot = q.push("a")
        q.push("b")
        q.delete(slot)
        assert q.slots_used == 2
        assert len(q) == 1


class TestStress:
    def test_interleaved_operations(self):
        q = RingBufferFifo(8)
        import random

        rng = random.Random(0)
        model = []
        for _ in range(2000):
            if model and rng.random() < 0.5:
                assert q.pop() == model.pop(0)
            elif not q.full:
                v = rng.randrange(1000)
                q.push(v)
                model.append(v)
        assert list(q) == model
