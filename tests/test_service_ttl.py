"""TTL edge cases: expiry timing, ttl=0, extension, and frequency-bit
isolation (an expired entry must look like a brand-new key to S3-FIFO).
"""

import pytest

from repro.service import CacheService


class FakeClock:
    """Deterministic monotonic clock the tests advance by hand."""

    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


def make_service(clock, **kwargs):
    kwargs.setdefault("sweep_interval", 0)  # expiry timing tests drive
    return CacheService(10, clock=clock, **kwargs)  # sweeps explicitly


class TestExpiry:
    def test_live_until_deadline_expired_at_deadline(self, clock):
        svc = make_service(clock)
        svc.set("a", 1, ttl=10)
        clock.advance(9.999)
        assert svc.get("a") == 1
        clock.advance(0.001)  # exactly at the deadline
        assert svc.get("a") is None
        assert svc.counters.expired == 1
        assert "a" not in svc

    def test_ttl_zero_expires_immediately(self, clock):
        svc = make_service(clock)
        assert not svc.set("a", 1, ttl=0)
        assert svc.get("a") is None
        assert len(svc) == 0
        assert len(svc.policy) == 0
        svc.check()

    def test_ttl_zero_purges_live_predecessor(self, clock):
        svc = make_service(clock)
        svc.set("a", 1)
        assert not svc.set("a", 2, ttl=0)
        assert svc.get("a") is None
        assert len(svc) == 0
        svc.check()

    def test_reset_extends_live_entry(self, clock):
        svc = make_service(clock)
        svc.set("a", 1, ttl=10)
        clock.advance(8)
        svc.set("a", 2, ttl=10)  # re-set restarts the deadline
        clock.advance(8)  # 16s after first set, 8s after second
        assert svc.get("a") == 2
        clock.advance(2)  # now at the second deadline
        assert svc.get("a") is None

    def test_reset_can_drop_ttl(self, clock):
        svc = make_service(clock)
        svc.set("a", 1, ttl=10)
        svc.set("a", 1, ttl=None)
        clock.advance(100)
        assert svc.get("a") == 1
        assert svc.stats()["ttl_entries"] == 0

    def test_default_ttl_applies_and_overrides(self, clock):
        svc = make_service(clock, default_ttl=5)
        svc.set("short", 1)  # inherits default_ttl=5
        svc.set("long", 2, ttl=50)
        svc.set("forever", 3, ttl=None)
        clock.advance(5)
        assert svc.get("short") is None
        assert svc.get("long") == 2
        clock.advance(45)
        assert svc.get("long") is None
        assert svc.get("forever") == 3

    def test_expired_entry_is_not_a_hit(self, clock):
        svc = make_service(clock)
        svc.set("a", 1, ttl=1)
        clock.advance(2)
        svc.get("a")
        assert svc.counters.hits == 0
        assert svc.counters.misses == 1
        assert svc.counters.expired == 1

    def test_contains_is_expiry_aware_and_non_mutating(self, clock):
        svc = make_service(clock)
        svc.set("a", 1, ttl=1)
        clock.advance(2)
        assert "a" not in svc
        assert svc.counters.gets == 0  # __contains__ is not a get


class TestFrequencyIsolation:
    def test_expired_entry_does_not_feed_s3fifo_freq_bits(self, clock):
        """Hot-then-expired keys must re-enter S with freq 0: surviving
        frequency bits would promote dead keys into the main queue."""
        svc = make_service(clock)
        svc.set("a", 1, ttl=10)
        for _ in range(5):  # make "a" hot: freq saturates at 3
            assert svc.get("a") == 1
        assert svc.policy._small["a"].freq == 3
        clock.advance(10)
        assert svc.get("a") is None  # expired: purged, not evicted
        assert svc.set("a", 2, ttl=10)
        entry = svc.policy._small["a"]
        assert entry.freq == 0
        assert "a" not in svc.policy.ghost

    def test_expired_set_purges_before_admission(self, clock):
        svc = make_service(clock)
        svc.set("a", 1, ttl=1)
        svc.get("a")  # freq bump while live
        clock.advance(5)
        svc.set("a", 2, ttl=1)  # predecessor already dead
        assert svc.counters.expired == 1
        assert svc.policy._small["a"].freq == 0
        assert svc.get("a") == 2


class TestSweeper:
    def test_manual_sweep_collects_expired(self, clock):
        svc = make_service(clock)
        for key in range(8):
            svc.set(key, key, ttl=1)
        svc.set("keep", 1, ttl=100)
        clock.advance(2)
        assert len(svc) == 9  # lazy: nothing collected yet
        collected = svc.sweep(max_checks=100)
        assert collected == 8
        assert len(svc) == 1
        assert svc.counters.expired == 8
        svc.check()

    def test_sweep_is_incremental(self, clock):
        svc = make_service(clock)
        for key in range(10):
            svc.set(key, key, ttl=1)
        clock.advance(2)
        first = svc.sweep(max_checks=4)
        assert first == 4
        assert len(svc) == 6
        while svc.sweep(max_checks=4):
            pass
        assert len(svc) == 0

    def test_auto_sweep_triggers_on_cadence(self, clock):
        svc = CacheService(
            10, clock=clock, sweep_interval=10, sweep_batch=64
        )
        for key in range(5):
            svc.set(key, key, ttl=1)
        clock.advance(5)
        for _ in range(20):  # cadence passes -> sweeper fires
            svc.get("absent")
        assert svc.counters.sweeps >= 1
        assert len(svc) == 0

    def test_sweep_skips_when_no_ttl_entries(self, clock):
        svc = make_service(clock)
        svc.set("a", 1)
        assert svc.sweep() == 0
        assert svc.counters.sweep_checks == 0
