"""Hypothesis properties for the hierarchy and MRC subsystems."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.fifo import FifoCache
from repro.cache.lru import LruCache
from repro.core.s3fifo_ring import S3FifoRingCache
from repro.hierarchy.multilevel import MultiLevelCache
from repro.sim.mrc import lru_mrc, reuse_distances

keys = st.integers(min_value=0, max_value=30)
traces = st.lists(keys, min_size=1, max_size=250)


class TestHierarchyProperties:
    @given(trace=traces, l1=st.integers(2, 8), l2=st.integers(4, 16))
    @settings(max_examples=25, deadline=None)
    def test_stats_always_consistent(self, trace, l1, l2):
        h = MultiLevelCache([FifoCache(l1), FifoCache(l2)], mode="exclusive")
        for key in trace:
            h.request(key)
        assert h.result.misses + sum(h.result.level_hits) == len(trace)
        assert h.result.level_hits[0] + h.result.level_hits[1] >= 0
        assert h.levels[0].used <= l1
        assert h.levels[1].used <= l2

    @given(trace=traces, l1=st.integers(4, 10), l2=st.integers(8, 20))
    @settings(max_examples=25, deadline=None)
    def test_ring_hierarchy_exclusive_invariant(self, trace, l1, l2):
        """With delete-capable levels, no key lives in two levels."""
        h = MultiLevelCache(
            [S3FifoRingCache(l1), S3FifoRingCache(l2)], mode="exclusive"
        )
        for key in trace:
            h.request(key)
            for k in set(trace):
                assert not (k in h.levels[0] and k in h.levels[1]), k

    @given(trace=traces, l1=st.integers(2, 6))
    @settings(max_examples=25, deadline=None)
    def test_inclusive_l1_subset_of_l2(self, trace, l1):
        """Inclusive mode with a large L2 keeps L1 a subset of L2."""
        h = MultiLevelCache(
            [LruCache(l1), LruCache(1000)], mode="inclusive"
        )
        for key in trace:
            h.request(key)
        for k in set(trace):
            if k in h.levels[0]:
                assert k in h.levels[1], k

    @given(trace=traces, capacity=st.integers(2, 10))
    @settings(max_examples=20, deadline=None)
    def test_hierarchy_never_worse_than_l1_alone(self, trace, capacity):
        """Adding a victim L2 can only help (exclusive, same L1)."""
        from repro.sim.simulator import simulate

        alone = simulate(FifoCache(capacity), list(trace)).miss_ratio
        h = MultiLevelCache(
            [FifoCache(capacity), FifoCache(capacity * 2)],
            mode="exclusive",
        )
        for key in trace:
            h.request(key)
        assert h.result.miss_ratio <= alone + 1e-9


def _naive_reuse_distances(trace):
    """O(n^2) reference model: distinct keys since previous access."""
    out = []
    for i, key in enumerate(trace):
        prev = None
        for j in range(i - 1, -1, -1):
            if trace[j] == key:
                prev = j
                break
        if prev is None:
            out.append(None)
        else:
            out.append(len(set(trace[prev + 1 : i])) + 1)
    return out


class TestMrcProperties:
    @given(trace=traces)
    @settings(max_examples=40, deadline=None)
    def test_reuse_distances_match_naive_model(self, trace):
        assert reuse_distances(trace) == _naive_reuse_distances(trace)

    @given(trace=traces)
    @settings(max_examples=25, deadline=None)
    def test_lru_mrc_monotone_and_bounded(self, trace):
        curve = lru_mrc(trace)
        assert curve.is_monotone()
        assert all(0.0 <= mr <= 1.0 for mr in curve.miss_ratios)

    @given(trace=traces, capacity=st.integers(1, 40))
    @settings(max_examples=25, deadline=None)
    def test_mrc_agrees_with_lru_simulation(self, trace, capacity):
        from repro.sim.simulator import simulate

        curve = lru_mrc(trace, sizes=[capacity])
        direct = simulate(LruCache(capacity), list(trace)).miss_ratio
        assert abs(curve.miss_ratios[0] - direct) < 1e-9


class TestGhostCapacityProperty:
    @given(
        ops=st.lists(st.tuples(st.booleans(), keys), max_size=200),
        cap1=st.integers(1, 10),
        cap2=st.integers(1, 10),
    )
    @settings(max_examples=25, deadline=None)
    def test_set_capacity_keeps_newest(self, ops, cap1, cap2):
        """Shrinking a ghost keeps the most recently added keys."""
        from repro.structures.ghost import GhostFifo

        g = GhostFifo(cap1)
        model = OrderedDict()
        for add, key in ops:
            if add:
                g.add(key)
                model.pop(key, None)
                model[key] = None
                while len(model) > cap1:
                    model.popitem(last=False)
            else:
                g.remove(key)
                model.pop(key, None)
        g.set_capacity(cap2)
        while len(model) > cap2:
            model.popitem(last=False)
        assert len(g) == len(model)
        for key in model:
            assert key in g
