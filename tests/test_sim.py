"""Tests for the simulator, metrics, and the sweep runner."""

import pytest

from repro.cache.fifo import FifoCache
from repro.cache.lru import LruCache
from repro.cache.registry import POLICIES, create_policy, policy_names
from repro.sim.metrics import (
    mean,
    miss_ratio_reduction,
    percentile,
    percentile_summary,
)
from repro.sim.request import Request
from repro.sim.runner import SweepJob, execute_job, run_sweep
from repro.sim.simulator import simulate
from repro.traces.synthetic import zipf_trace


class TestSimulate:
    def test_accepts_bare_keys(self):
        result = simulate(FifoCache(2), ["a", "b", "a"])
        assert result.requests == 3
        assert result.misses == 2

    def test_accepts_tuples(self):
        result = simulate(FifoCache(100), [("a", 10), ("a", 10)])
        assert result.bytes_requested == 20
        assert result.bytes_missed == 10

    def test_accepts_requests(self):
        result = simulate(FifoCache(2), [Request("a"), Request("a")])
        assert result.miss_ratio == 0.5

    def test_warmup_fraction(self):
        trace = ["a", "b", "a", "b", "a", "b"]
        result = simulate(FifoCache(2), trace, warmup=0.5)
        assert result.requests == 3
        assert result.misses == 0  # post-warmup everything hits

    def test_warmup_requests(self):
        trace = ["a", "b", "a", "b"]
        result = simulate(FifoCache(2), trace, warmup_requests=2)
        assert result.requests == 2

    def test_fractional_warmup_needs_sized_trace(self):
        with pytest.raises(ValueError):
            simulate(FifoCache(2), iter(["a"]), warmup=0.5)

    def test_invalid_warmup(self):
        with pytest.raises(ValueError):
            simulate(FifoCache(2), ["a"], warmup=1.5)

    def test_result_repr(self):
        result = simulate(FifoCache(2), ["a"])
        assert "miss_ratio" in repr(result)

    def test_byte_miss_ratio_zero_requests(self):
        result = simulate(FifoCache(2), [])
        assert result.miss_ratio == 0.0
        assert result.byte_miss_ratio == 0.0


class TestMetrics:
    def test_reduction_positive(self):
        assert miss_ratio_reduction(0.4, 0.2) == pytest.approx(0.5)

    def test_reduction_negative(self):
        assert miss_ratio_reduction(0.2, 0.4) == pytest.approx(-0.5)

    def test_reduction_bounded(self):
        assert -1.0 <= miss_ratio_reduction(0.001, 0.999) <= 1.0
        assert -1.0 <= miss_ratio_reduction(0.999, 0.001) <= 1.0

    def test_reduction_equal(self):
        assert miss_ratio_reduction(0.3, 0.3) == 0.0

    def test_reduction_zero_fifo(self):
        assert miss_ratio_reduction(0.0, 0.0) == 0.0

    def test_reduction_validation(self):
        with pytest.raises(ValueError):
            miss_ratio_reduction(1.5, 0.5)
        with pytest.raises(ValueError):
            miss_ratio_reduction(0.5, -0.1)

    def test_percentile_basics(self):
        data = [1, 2, 3, 4, 5]
        assert percentile(data, 0) == 1
        assert percentile(data, 50) == 3
        assert percentile(data, 100) == 5

    def test_percentile_interpolates(self):
        assert percentile([0, 10], 25) == pytest.approx(2.5)

    def test_percentile_single_value(self):
        assert percentile([7], 90) == 7

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_percentile_matches_numpy(self):
        import numpy as np

        data = [0.3, 0.1, 0.9, 0.5, 0.2, 0.7]
        for q in (10, 25, 50, 75, 90):
            assert percentile(data, q) == pytest.approx(
                float(np.percentile(data, q))
            )

    def test_summary_keys(self):
        summary = percentile_summary([1.0, 2.0, 3.0])
        assert set(summary) == {"mean", "p10", "p25", "p50", "p75", "p90"}

    def test_summary_empty(self):
        with pytest.raises(ValueError):
            percentile_summary([])

    def test_mean(self):
        assert mean([1, 2, 3]) == 2
        with pytest.raises(ValueError):
            mean([])


class TestRegistry:
    def test_known_policy_names(self):
        names = policy_names(include_offline=True)
        for expected in [
            "fifo", "lru", "clock", "sieve", "slru", "arc", "twoq",
            "lirs", "tinylfu", "tinylfu-0.1", "lruk", "lfu", "lecar",
            "cacheus", "lhd", "fifomerge", "blru", "sfifo", "random",
            "belady", "s3fifo", "s3fifo-d", "s3variant",
        ]:
            assert expected in names, expected

    def test_belady_excluded_by_default(self):
        assert "belady" not in policy_names()

    def test_create_policy(self):
        cache = create_policy("s3fifo", capacity=100)
        assert cache.capacity == 100
        assert cache.name == "s3fifo"

    def test_create_with_kwargs(self):
        cache = create_policy("s3fifo", capacity=100, small_ratio=0.25)
        assert cache.small_capacity == 25

    def test_unknown_policy(self):
        with pytest.raises(KeyError):
            create_policy("nope", capacity=10)

    def test_every_registered_policy_runs(self, small_zipf):
        from repro.traces.analysis import annotate_next_access

        annotated = annotate_next_access(small_zipf[:2000])
        for name in policy_names(include_offline=True):
            policy = create_policy(name, capacity=40)
            trace = annotated if name == "belady" else small_zipf[:2000]
            result = simulate(policy, list(trace))
            assert 0.0 < result.miss_ratio <= 1.0, name
            assert len(policy) <= 40 or policy.used <= 40, name


def _trace_factory(n):
    return zipf_trace(num_objects=200, num_requests=n, alpha=1.0, seed=0)


class TestRunner:
    def _job(self, policy="lru"):
        return SweepJob(
            trace_name="t",
            trace_factory=_trace_factory,
            trace_kwargs={"n": 3000},
            policy=policy,
            cache_size=20,
        )

    def test_execute_job(self):
        result = execute_job(self._job())
        assert result.ok
        assert 0 < result.miss_ratio < 1
        assert result.requests == 3000

    def test_job_failure_captured(self):
        result = execute_job(self._job(policy="does-not-exist"))
        assert not result.ok
        assert "does-not-exist" in result.error

    def test_sequential_sweep(self):
        results = run_sweep([self._job(), self._job("s3fifo")], processes=1)
        assert len(results) == 2
        assert all(r.ok for r in results)

    def test_parallel_sweep(self):
        jobs = [self._job(p) for p in ["lru", "fifo", "s3fifo", "clock"]]
        results = run_sweep(jobs, processes=2)
        assert len(results) == 4
        assert all(r.ok for r in results)

    def test_s3fifo_wins_in_sweep(self):
        results = run_sweep(
            [self._job("fifo"), self._job("s3fifo")], processes=1
        )
        by_policy = {r.policy: r.miss_ratio for r in results}
        assert by_policy["s3fifo"] < by_policy["fifo"]

    def test_empty_sweep(self):
        assert run_sweep([]) == []

    def test_tags_propagate(self):
        job = self._job()
        job.tags["dataset"] = "x"
        result = execute_job(job)
        assert result.tags == {"dataset": "x"}

    def test_repr(self):
        assert "SweepJob" in repr(self._job())
        assert "SweepResult" in repr(execute_job(self._job()))


class TestSweepReport:
    def _job(self, policy="lru", n=2000):
        return SweepJob(
            trace_name="t",
            trace_factory=_trace_factory,
            trace_kwargs={"n": n},
            policy=policy,
            cache_size=20,
        )

    def test_failures_grouped_by_exception(self):
        jobs = [
            self._job(),
            self._job(policy="missing-a"),
            self._job(policy="missing-b"),
        ]
        report = run_sweep(jobs, processes=1)
        assert len(report.ok_results) == 1
        assert len(report.failed) == 2
        assert len(report.failures) == 1  # both are KeyError
        summary = report.failures[0]
        assert summary.exception == "KeyError"
        assert summary.count == 2
        assert "missing-a" in summary.first_traceback
        assert summary.first_job == "t/missing-a/20"

    def test_failures_sorted_by_count(self):
        from repro.sim.runner import SweepReport, SweepResult

        report = SweepReport(
            [
                SweepResult("t", "p", 1, error="ValueError: x\n"),
                SweepResult("t", "q", 1, error="KeyError: 'y'\n"),
                SweepResult("t", "r", 1, error="KeyError: 'z'\n"),
            ]
        )
        assert [s.exception for s in report.failures] == [
            "KeyError",
            "ValueError",
        ]
        assert [s.count for s in report.failures] == [2, 1]

    def test_timeout_errors_classified(self):
        from repro.sim.runner import SweepReport, SweepResult

        report = SweepReport(
            [
                SweepResult(
                    "t", "p", 1,
                    error="SweepTimeout: job exceeded 5s (attempt 1)\n",
                )
            ]
        )
        assert report.failures[0].exception == "SweepTimeout"

    def test_clean_sweep_has_no_failures(self):
        report = run_sweep([self._job()], processes=1)
        assert report.failed == []
        assert report.failures == []

    def test_failures_logged_as_warning(self, caplog):
        import logging

        with caplog.at_level(logging.WARNING, logger="repro.sim.runner"):
            run_sweep([self._job(policy="missing")], processes=1)
        assert "sweep lost 1 job(s) to KeyError" in caplog.text

    def test_retry_records_attempts(self):
        from repro.resilience.retry import RetryPolicy

        report = run_sweep(
            [self._job(policy="missing")],
            processes=1,
            retry=RetryPolicy(max_attempts=3, base_delay=0.001),
        )
        assert report[0].tags["attempts"] == 3  # exhausted every attempt
        ok = run_sweep(
            [self._job()],
            processes=1,
            retry=RetryPolicy(max_attempts=3, base_delay=0.001),
        )
        assert ok[0].tags["attempts"] == 1  # first try succeeded

    def test_report_is_a_list(self):
        report = run_sweep([self._job()], processes=1)
        assert isinstance(report, list)
        assert report == list(report)
