"""simulate() over compiled traces: routing, warmup split, windows."""

import pytest

from repro.cache.registry import create_policy
from repro.sim.request import Request, as_request
from repro.sim.simulator import (
    SimulationResult,
    simulate,
    simulate_compiled,
    windowed_miss_ratios,
)
from repro.traces.compiled import compile_trace
from repro.traces.synthetic import zipf_trace

ZIPF = zipf_trace(num_objects=400, num_requests=6_000, alpha=1.0, seed=21)


class TestAsRequest:
    def test_passthrough(self):
        req = Request("k", size=3)
        assert as_request(req) is req

    def test_tuple_and_bare(self):
        req = as_request(("k", 7))
        assert (req.key, req.size) == ("k", 7)
        assert (as_request("k").key, as_request("k").size) == ("k", 1)


class TestRouting:
    def test_simulate_routes_compiled_to_fast_engine(self):
        raw = simulate(create_policy("s3fifo", 50), ZIPF)
        via_simulate = simulate(create_policy("s3fifo-fast", 50), compile_trace(ZIPF))
        direct = simulate_compiled(
            create_policy("s3fifo-fast", 50), compile_trace(ZIPF)
        )
        assert raw.misses == via_simulate.misses == direct.misses
        assert raw.evictions == via_simulate.evictions == direct.evictions

    def test_non_fast_policy_on_compiled_trace(self):
        # Policies without the batch protocol run through the
        # reused-Request fallback and must report identical results.
        raw = simulate(create_policy("lfu", 50), ZIPF)
        compiled = simulate(create_policy("lfu", 50), compile_trace(ZIPF))
        assert raw.misses == compiled.misses
        assert raw.evictions == compiled.evictions
        assert raw.bytes_missed == compiled.bytes_missed

    def test_compiled_sized_trace(self):
        items = [(k, (hash(k) % 9) + 1) for k in ZIPF]
        raw = simulate(create_policy("s3fifo", 300), items)
        compiled = simulate(
            create_policy("s3fifo-fast", 300), compile_trace(items)
        )
        assert raw.bytes_requested == compiled.bytes_requested
        assert raw.bytes_missed == compiled.bytes_missed
        assert raw.byte_miss_ratio == compiled.byte_miss_ratio


class TestWarmupEvictionSplit:
    def test_evictions_are_steady_state_only(self):
        policy = create_policy("fifo", 30)
        result = simulate(policy, ZIPF, warmup=0.5)
        assert result.warmup_requests == 3_000
        assert result.requests == 3_000
        assert result.warmup_evictions > 0
        assert result.evictions > 0
        assert (
            result.total_evictions
            == result.evictions + result.warmup_evictions
            == policy.stats.evictions
        )

    def test_compiled_split_matches_streaming(self):
        stream = simulate(create_policy("s3fifo", 40), ZIPF, warmup=0.25)
        batch = simulate(
            create_policy("s3fifo-fast", 40), compile_trace(ZIPF), warmup=0.25
        )
        assert stream.warmup_evictions == batch.warmup_evictions
        assert stream.evictions == batch.evictions
        assert stream.misses == batch.misses

    def test_preused_policy_evictions_excluded(self):
        # Evictions performed before this run never leak into either
        # bucket of the result.
        policy = create_policy("fifo", 30)
        simulate(policy, ZIPF[:2_000])
        prior = policy.stats.evictions
        assert prior > 0
        result = simulate(policy, ZIPF[2_000:], warmup_requests=500)
        assert result.total_evictions == policy.stats.evictions - prior

    def test_zero_warmup(self):
        result = simulate(create_policy("fifo", 30), ZIPF)
        assert result.warmup_requests == 0
        assert result.warmup_evictions == 0
        assert result.total_evictions == result.evictions

    def test_warmup_full_trace_leaves_no_steady_state(self):
        result = simulate(
            create_policy("fifo", 30),
            compile_trace(ZIPF),
            warmup_requests=len(ZIPF),
        )
        assert result.requests == 0
        assert result.evictions == 0
        assert result.warmup_evictions > 0
        assert result.miss_ratio == 0.0

    def test_fractional_warmup_validation(self):
        with pytest.raises(ValueError):
            simulate(create_policy("fifo", 10), compile_trace(ZIPF), warmup=1.0)
        with pytest.raises(ValueError):
            simulate(create_policy("fifo", 10), ZIPF, warmup=-0.1)
        with pytest.raises(ValueError):
            # unsized iterable cannot take a fractional warmup
            simulate(create_policy("fifo", 10), iter(ZIPF), warmup=0.5)


class TestWindowedCompiled:
    def test_fast_policy_matches_streaming_windows(self):
        for window in (512, 6_000, 7_000):
            raw = windowed_miss_ratios(
                create_policy("s3fifo", 60), ZIPF, window=window
            )
            fast = windowed_miss_ratios(
                create_policy("s3fifo-fast", 60),
                compile_trace(ZIPF),
                window=window,
            )
            assert raw == fast, f"window={window}"

    def test_partial_trailing_window(self):
        ratios = windowed_miss_ratios(
            create_policy("fifo-fast", 60), compile_trace(ZIPF), window=3_500
        )
        assert len(ratios) == 2  # 3500 + 2500

    def test_non_fast_policy_windows(self):
        raw = windowed_miss_ratios(create_policy("lfu", 60), ZIPF, window=1_000)
        compiled = windowed_miss_ratios(
            create_policy("lfu", 60), compile_trace(ZIPF), window=1_000
        )
        assert raw == compiled

    def test_window_validation(self):
        with pytest.raises(ValueError):
            windowed_miss_ratios(
                create_policy("fifo", 10), compile_trace(ZIPF), window=0
            )


class TestSimulationResult:
    def test_total_evictions_property(self):
        r = SimulationResult(
            "fifo", 10, requests=100, misses=40, bytes_requested=100,
            bytes_missed=40, evictions=25, warmup_requests=50,
            warmup_evictions=12,
        )
        assert r.total_evictions == 37
        assert r.hits == 60
        assert r.miss_ratio == 0.4
