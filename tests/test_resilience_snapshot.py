"""Snapshots, warm restart, stats round-trips, crash recovery."""

import pytest

from repro.cache.base import CacheStats
from repro.cache.lru import LruCache
from repro.core.s3fifo import S3FifoCache
from repro.core.s3sieve import S3SieveCache
from repro.resilience.faults import CRASH, FaultPlan
from repro.resilience.snapshot import (
    CrashRecoveryResult,
    SnapshotError,
    crash_recovery_experiment,
    load_snapshot,
    restore_policy,
    save_snapshot,
    snapshot_policy,
)
from repro.sim.simulator import simulate
from repro.traces.synthetic import zipf_trace

pytestmark = pytest.mark.resilience


class TestCacheStatsRoundtrip:
    def test_as_dict_covers_all_slots(self):
        stats = CacheStats()
        stats.requests = 10
        stats.hits = 4
        stats.misses = 6
        assert set(stats.as_dict()) == set(CacheStats.__slots__)
        assert stats.as_dict()["hits"] == 4

    def test_from_dict_roundtrip(self):
        stats = CacheStats()
        stats.requests, stats.hits, stats.misses = 10, 4, 6
        stats.bytes_requested, stats.bytes_missed = 1000, 600
        back = CacheStats.from_dict(stats.as_dict())
        assert back.as_dict() == stats.as_dict()
        assert back.miss_ratio == stats.miss_ratio

    def test_checksum_detects_tamper(self):
        stats = CacheStats()
        stats.requests = stats.hits = 100
        digest = stats.checksum()
        assert stats.checksum() == digest  # stable
        stats.hits -= 1
        assert stats.checksum() != digest


def _warm(policy, n=5_000):
    trace = zipf_trace(500, n, alpha=1.0, seed=21)
    simulate(policy, trace)
    return policy, trace


class TestSnapshotRoundtrip:
    @pytest.mark.parametrize("factory", [
        lambda: S3FifoCache(capacity=100),
        lambda: LruCache(capacity=100),
    ])
    def test_restored_cache_behaves_identically(self, factory):
        policy, _trace = _warm(factory())
        clone = restore_policy(snapshot_policy(policy))
        probe = zipf_trace(500, 2_000, alpha=1.0, seed=22)
        a = simulate(policy, list(probe))
        b = simulate(clone, list(probe))
        assert a.miss_ratio == b.miss_ratio
        assert a.evictions == b.evictions

    def test_s3fifo_structure_preserved(self):
        policy, _ = _warm(S3FifoCache(capacity=100))
        clone = restore_policy(snapshot_policy(policy))
        assert list(clone._small) == list(policy._small)
        assert list(clone._main) == list(policy._main)
        assert clone.small_used == policy.small_used
        assert clone.main_used == policy.main_used
        assert clone.used == policy.used
        assert clone.clock == policy.clock
        freqs = lambda p: [e.freq for e in p._main.values()]  # noqa: E731
        assert freqs(clone) == freqs(policy)

    def test_stats_survive_with_checksum(self):
        policy, _ = _warm(S3FifoCache(capacity=100))
        snap = snapshot_policy(policy)
        clone = restore_policy(snap)
        assert clone.stats.checksum() == policy.stats.checksum()
        assert clone.stats.as_dict() == policy.stats.as_dict()

    def test_tampered_snapshot_rejected(self):
        policy, _ = _warm(S3FifoCache(capacity=100))
        snap = snapshot_policy(policy)
        snap["stats"]["hits"] += 1
        with pytest.raises(SnapshotError, match="checksum"):
            restore_policy(snap)

    def test_file_roundtrip(self, tmp_path):
        policy, _ = _warm(LruCache(capacity=100))
        path = tmp_path / "cache.snap"
        save_snapshot(path, snapshot_policy(policy))
        clone = restore_policy(load_snapshot(path))
        assert len(clone) == len(policy)
        assert clone.used == policy.used

    def test_unsupported_policy_errors(self):
        with pytest.raises(SnapshotError, match="not supported"):
            snapshot_policy(S3SieveCache(capacity=50))

    def test_bad_version_rejected(self):
        policy, _ = _warm(S3FifoCache(capacity=100))
        snap = snapshot_policy(policy)
        snap["version"] = 99
        with pytest.raises(SnapshotError, match="version"):
            restore_policy(snap)


class TestCrashRecovery:
    def test_warm_restart_beats_cold(self):
        trace = zipf_trace(1_000, 20_000, alpha=1.0, seed=3)
        plan = FaultPlan().add(CRASH, 10_000, 10_001)
        result = crash_recovery_experiment(
            trace, capacity=100, policy="s3fifo", plan=plan
        )
        assert isinstance(result, CrashRecoveryResult)
        assert result.crash_at == 10_000
        assert result.post_requests == 10_000
        # A warm cache skips the refill misses a cold restart pays.
        assert result.warm_miss_ratio < result.cold_miss_ratio
        assert result.recovery_benefit > 0

    def test_deterministic_across_runs(self):
        trace = zipf_trace(500, 8_000, alpha=1.0, seed=4)
        kwargs = dict(capacity=64, policy="lru", crash_at=4_000)
        a = crash_recovery_experiment(trace, **kwargs)
        b = crash_recovery_experiment(trace, **kwargs)
        assert (a.cold_miss_ratio, a.warm_miss_ratio) == (
            b.cold_miss_ratio,
            b.warm_miss_ratio,
        )

    def test_requires_crash_point(self):
        trace = zipf_trace(100, 1_000, seed=0)
        with pytest.raises(ValueError, match="crash"):
            crash_recovery_experiment(trace, capacity=10, plan=FaultPlan())
        with pytest.raises(ValueError):
            crash_recovery_experiment(trace, capacity=10, crash_at=5_000)

    def test_unsupported_policy(self):
        trace = zipf_trace(100, 1_000, seed=0)
        with pytest.raises(SnapshotError):
            crash_recovery_experiment(
                trace, capacity=10, policy="clock", crash_at=500
            )
