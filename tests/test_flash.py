"""Tests for the DRAM+flash hybrid cache and admission policies."""

import pytest

from repro.cache.base import CacheEntry
from repro.flash.admission import (
    FlashieldAdmission,
    NoAdmission,
    ProbabilisticAdmission,
    S3FifoAdmission,
)
from repro.flash.flashcache import HybridFlashCache
from repro.flash.flashield import LogisticModel
from repro.traces.synthetic import zipf_trace


def entry(key, size=1, freq=0, t=0):
    e = CacheEntry(key, size, t)
    e.freq = freq
    return e


class TestAdmissionPolicies:
    def test_no_admission_admits_all(self):
        policy = NoAdmission()
        assert policy.should_admit(entry("a"), 1)

    def test_probabilistic_rate(self):
        policy = ProbabilisticAdmission(0.2, seed=0)
        admitted = sum(
            policy.should_admit(entry(i), i) for i in range(10_000)
        )
        assert 0.15 < admitted / 10_000 < 0.25

    def test_probabilistic_bounds(self):
        with pytest.raises(ValueError):
            ProbabilisticAdmission(1.5)

    def test_s3fifo_admits_on_freq(self):
        policy = S3FifoAdmission(ghost_entries=10)
        assert policy.should_admit(entry("hot", freq=1), 1)
        assert not policy.should_admit(entry("cold", freq=0), 1)

    def test_s3fifo_cold_goes_to_ghost(self):
        policy = S3FifoAdmission(ghost_entries=10)
        policy.should_admit(entry("cold", freq=0), 1)
        assert policy.was_ghosted("cold")
        assert not policy.was_ghosted("cold")  # consumed

    def test_s3fifo_min_freq_param(self):
        policy = S3FifoAdmission(ghost_entries=10, min_freq=2)
        assert not policy.should_admit(entry("x", freq=1), 1)
        assert policy.should_admit(entry("y", freq=2), 1)
        with pytest.raises(ValueError):
            S3FifoAdmission(ghost_entries=10, min_freq=0)

    def test_flashield_warmup_admits(self):
        policy = FlashieldAdmission(warmup_admits=5, seed=0)
        assert policy.should_admit(entry("a", freq=0, t=0), 10)

    def test_flashield_learns_labels(self):
        policy = FlashieldAdmission(
            warmup_admits=0, batch_size=4, seed=0
        )
        # Manually feed lifetimes: freq>0 objects get reads on flash.
        for i in range(64):
            hot = entry(f"h{i}", freq=3, t=0)
            if policy.should_admit(hot, 10):
                policy.on_flash_hit(hot.key, 11)
                policy.on_flash_evict(hot.key, 20)
            cold = entry(f"c{i}", freq=0, t=0)
            if policy.should_admit(cold, 10):
                policy.on_flash_evict(cold.key, 20)
        assert policy._model.samples_seen > 0

    def test_flashield_invalid_threshold(self):
        with pytest.raises(ValueError):
            FlashieldAdmission(threshold=1.0)


class TestLogisticModel:
    def test_learns_separable_data(self):
        model = LogisticModel(num_features=2, learning_rate=0.5, seed=0)
        import numpy as np

        rng = np.random.default_rng(0)
        for _ in range(200):
            x = rng.normal(0, 1, size=(32, 2))
            y = (x[:, 0] > 0).astype(int)
            model.partial_fit(x.tolist(), y.tolist())
        assert model.predict_proba([3.0, 0.0]) > 0.9
        assert model.predict_proba([-3.0, 0.0]) < 0.1

    def test_shape_validation(self):
        model = LogisticModel(num_features=2)
        with pytest.raises(ValueError):
            model.partial_fit([[1.0, 2.0]], [1, 0])

    def test_empty_batch_noop(self):
        model = LogisticModel(num_features=2)
        model.partial_fit([], [])
        assert model.samples_seen == 0

    def test_invalid_features(self):
        with pytest.raises(ValueError):
            LogisticModel(num_features=0)


class TestHybridCache:
    def test_miss_then_dram_hit(self):
        cache = HybridFlashCache(10, 100, NoAdmission())
        assert cache.request("a") is False
        assert cache.request("a") is True
        assert cache.result.dram_hits == 1

    def test_dram_eviction_writes_flash(self):
        cache = HybridFlashCache(2, 100, NoAdmission())
        for key in ["a", "b", "c"]:
            cache.request(key)
        assert cache.in_flash("a")
        assert cache.result.flash_bytes_written == 1

    def test_flash_hit(self):
        cache = HybridFlashCache(2, 100, NoAdmission())
        for key in ["a", "b", "c"]:
            cache.request(key)
        assert cache.request("a") is True
        assert cache.result.flash_hits == 1

    def test_flash_fifo_eviction(self):
        cache = HybridFlashCache(1, 2, NoAdmission())
        for key in ["a", "b", "c", "d"]:
            cache.request(key)
        # a, b, c evicted from DRAM into flash (capacity 2): a evicted.
        assert not cache.in_flash("a")
        assert cache.flash_used <= 2

    def test_rejected_objects_not_written(self):
        cache = HybridFlashCache(2, 100, ProbabilisticAdmission(0.0, seed=0))
        for i in range(50):
            cache.request(i)
        assert cache.result.flash_bytes_written == 0

    def test_s3fifo_ghost_path_writes_direct(self):
        admission = S3FifoAdmission(ghost_entries=100)
        cache = HybridFlashCache(2, 100, admission, dram_policy="fifo")
        cache.request("x")       # into DRAM
        cache.request("f1")
        cache.request("f2")      # x evicted cold -> ghost
        assert not cache.in_flash("x")
        cache.request("x")       # ghost hit -> straight to flash
        assert cache.in_flash("x")

    def test_s3fifo_freq_path(self):
        admission = S3FifoAdmission(ghost_entries=100)
        cache = HybridFlashCache(2, 100, admission, dram_policy="fifo")
        cache.request("x")
        cache.request("x")  # freq 1 in DRAM
        cache.request("f1")
        cache.request("f2")  # x evicted with freq>=1 -> flash
        assert cache.in_flash("x")

    def test_normalized_writes(self):
        cache = HybridFlashCache(2, 100, NoAdmission())
        for key in ["a", "b", "c"]:
            cache.request(key)
        assert cache.result.normalized_writes(3) == pytest.approx(1 / 3)
        with pytest.raises(ValueError):
            cache.result.normalized_writes(0)

    def test_sized_requests(self):
        cache = HybridFlashCache(100, 1000, NoAdmission())
        trace = [("a", 60), ("b", 60), ("a", 60)]
        cache.run(trace)
        assert cache.result.bytes_requested == 180

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            HybridFlashCache(0, 10, NoAdmission())
        with pytest.raises(ValueError):
            HybridFlashCache(10, 0, NoAdmission())
        with pytest.raises(ValueError):
            HybridFlashCache(10, 10, NoAdmission(), dram_policy="weird")

    def test_no_rewrite_of_resident(self):
        cache = HybridFlashCache(1, 100, NoAdmission())
        cache.request("a")
        cache.request("b")  # a -> flash
        cache.request("c")  # b -> flash
        writes_before = cache.result.flash_bytes_written
        cache.request("a")  # flash hit; no rewrite
        assert cache.result.flash_bytes_written == writes_before


class TestFig9Shape:
    """The Fig. 9 qualitative result on a small Zipf workload."""

    @pytest.fixture(scope="class")
    def trace(self):
        return zipf_trace(2000, 40_000, alpha=0.9, seed=4)

    def _run(self, admission, dram, flash, trace, dram_policy="lru"):
        cache = HybridFlashCache(dram, flash, admission, dram_policy)
        cache.run(list(trace))
        return cache.result

    def test_admission_reduces_writes(self, trace):
        flash = 200
        none = self._run(NoAdmission(), 20, flash, trace)
        s3 = self._run(
            S3FifoAdmission(ghost_entries=200), 20, flash, trace, "fifo"
        )
        assert s3.flash_bytes_written < none.flash_bytes_written

    def test_s3_filter_beats_probabilistic_on_miss_ratio(self, trace):
        flash = 200
        prob = self._run(ProbabilisticAdmission(0.2, seed=0), 20, flash, trace)
        s3 = self._run(
            S3FifoAdmission(ghost_entries=200), 20, flash, trace, "fifo"
        )
        assert s3.miss_ratio <= prob.miss_ratio + 0.02


class TestFlashReinsertion:
    def test_invalid_flash_policy(self):
        with pytest.raises(ValueError):
            HybridFlashCache(2, 10, NoAdmission(), flash_policy="weird")

    def test_referenced_objects_survive_one_round(self):
        cache = HybridFlashCache(
            1, 3, NoAdmission(), flash_policy="fifo-reinsertion"
        )
        for key in ["a", "b", "c", "d"]:
            cache.request(key)  # a,b,c on flash
        cache.request("a")  # flash hit: set a's ref bit
        cache.request("e")
        cache.request("f")  # d,e evicted from DRAM -> flash pressure
        # a was reinserted instead of evicted on its first scan.
        assert cache.in_flash("a")

    def test_reinsertion_costs_extra_writes(self):
        plain = HybridFlashCache(1, 3, NoAdmission(), flash_policy="fifo")
        reins = HybridFlashCache(
            1, 3, NoAdmission(), flash_policy="fifo-reinsertion"
        )
        trace = ["a", "b", "c", "a", "d", "e", "f", "a", "g", "h"]
        for cache in (plain, reins):
            for key in trace:
                cache.request(key)
        assert (
            reins.result.flash_bytes_written
            >= plain.result.flash_bytes_written
        )

    def test_capacity_respected_with_reinsertion(self):
        cache = HybridFlashCache(
            2, 10, NoAdmission(), flash_policy="fifo-reinsertion"
        )
        for i in range(200):
            cache.request(i % 30)
        assert cache.flash_used <= 10
