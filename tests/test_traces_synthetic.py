"""Tests for the synthetic trace generators."""

import pytest

from collections import Counter

from repro.traces.synthetic import (
    loop_trace,
    mixed_trace,
    scan_trace,
    two_access_trace,
    zipf_probabilities,
    zipf_sizes,
    zipf_trace,
    zipf_with_churn,
    zipf_with_scans,
)


class TestZipf:
    def test_probabilities_sum_to_one(self):
        probs = zipf_probabilities(1000, 1.0)
        assert probs.sum() == pytest.approx(1.0)

    def test_probabilities_decreasing(self):
        probs = zipf_probabilities(100, 0.8)
        assert all(probs[i] >= probs[i + 1] for i in range(99))

    def test_alpha_zero_is_uniform(self):
        probs = zipf_probabilities(10, 0.0)
        assert probs[0] == pytest.approx(probs[-1])

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            zipf_probabilities(0, 1.0)
        with pytest.raises(ValueError):
            zipf_probabilities(10, -1.0)
        with pytest.raises(ValueError):
            zipf_trace(10, 0)

    def test_trace_length_and_keyspace(self):
        trace = zipf_trace(100, 5000, alpha=1.0, seed=0)
        assert len(trace) == 5000
        assert all(0 <= k < 100 for k in trace)

    def test_deterministic(self):
        assert zipf_trace(50, 1000, seed=5) == zipf_trace(50, 1000, seed=5)

    def test_seeds_differ(self):
        assert zipf_trace(50, 1000, seed=1) != zipf_trace(50, 1000, seed=2)

    def test_key_base_offsets(self):
        trace = zipf_trace(10, 100, seed=0, key_base=1000)
        assert all(k >= 1000 for k in trace)

    def test_skew_increases_top_share(self):
        low = zipf_trace(1000, 50_000, alpha=0.6, seed=0)
        high = zipf_trace(1000, 50_000, alpha=1.2, seed=0)

        def top_share(trace):
            counts = Counter(trace)
            top = sum(c for _, c in counts.most_common(10))
            return top / len(trace)

        assert top_share(high) > top_share(low)

    def test_rank_shuffle_changes_keys_not_distribution(self):
        raw = zipf_trace(100, 10_000, alpha=1.0, seed=0, shuffle_ranks=False)
        shuffled = zipf_trace(100, 10_000, alpha=1.0, seed=0)
        assert sorted(Counter(raw).values()) == sorted(
            Counter(shuffled).values()
        )


class TestScanAndLoop:
    def test_scan_sequential(self):
        assert scan_trace(4) == [0, 1, 2, 3]

    def test_scan_repeats(self):
        assert scan_trace(2, repeats=3) == [0, 1, 0, 1, 0, 1]

    def test_scan_start(self):
        assert scan_trace(3, start=10) == [10, 11, 12]

    def test_loop(self):
        assert loop_trace(3, 7) == [0, 1, 2, 0, 1, 2, 0]

    def test_invalid(self):
        with pytest.raises(ValueError):
            scan_trace(0)
        with pytest.raises(ValueError):
            scan_trace(2, repeats=0)
        with pytest.raises(ValueError):
            loop_trace(0, 5)


class TestTwoAccess:
    def test_every_key_exactly_twice(self):
        trace = two_access_trace(500, gap=50, seed=0)
        counts = Counter(trace)
        assert all(c == 2 for c in counts.values())
        assert len(counts) == 500

    def test_gap_roughly_respected(self):
        trace = two_access_trace(2000, gap=100, seed=0)
        first = {}
        gaps = []
        for i, key in enumerate(trace):
            if key in first:
                gaps.append(i - first[key])
            else:
                first[key] = i
        avg = sum(gaps) / len(gaps)
        assert 100 <= avg <= 500

    def test_invalid(self):
        with pytest.raises(ValueError):
            two_access_trace(0, gap=10)
        with pytest.raises(ValueError):
            two_access_trace(10, gap=0)


class TestComposites:
    def test_zipf_with_scans_adds_cold_keys(self):
        base_objects = 500
        trace = zipf_with_scans(
            base_objects, 20_000, scan_length=100, scan_every=5000, seed=0
        )
        scan_keys = [k for k in trace if k >= base_objects + 1_000_000]
        assert scan_keys
        assert all(Counter(scan_keys)[k] == 1 for k in set(scan_keys))

    def test_zipf_with_scans_disabled(self):
        trace = zipf_with_scans(100, 1000, scan_length=0, seed=0)
        assert len(trace) == 1000

    def test_churn_adds_new_keys(self):
        trace = zipf_with_churn(500, 20_000, churn_fraction=0.2, seed=0)
        churn_keys = {k for k in trace if k >= 500 + 10_000_000}
        assert churn_keys

    def test_churn_zero_is_plain_zipf(self):
        a = zipf_with_churn(100, 1000, churn_fraction=0.0, seed=1)
        b = zipf_trace(100, 1000, seed=1)
        assert a == b

    def test_churn_invalid(self):
        with pytest.raises(ValueError):
            zipf_with_churn(10, 100, churn_fraction=1.0)

    def test_mixed_concat(self):
        assert mixed_trace([[1, 2], [3]]) == [1, 2, 3]

    def test_mixed_interleave_preserves_order(self):
        merged = mixed_trace([[1, 2, 3], [10, 20]], interleave=True, seed=0)
        assert [x for x in merged if x < 10] == [1, 2, 3]
        assert [x for x in merged if x >= 10] == [10, 20]
        assert len(merged) == 5

    def test_mixed_empty(self):
        assert mixed_trace([]) == []


class TestSizes:
    def test_sizes_stable_per_key(self):
        sized = zipf_sizes([1, 2, 1, 2, 1], mean_size=1000, seed=0)
        by_key = {}
        for key, size in sized:
            by_key.setdefault(key, set()).add(size)
        assert all(len(s) == 1 for s in by_key.values())

    def test_mean_size_approximate(self):
        keys = list(range(2000))
        sized = zipf_sizes(keys, mean_size=4096, seed=0)
        mean = sum(s for _, s in sized) / len(sized)
        assert 0.5 * 4096 < mean < 2 * 4096

    def test_sizes_positive(self):
        sized = zipf_sizes(list(range(100)), mean_size=10, sigma=2.0, seed=0)
        assert all(s >= 1 for _, s in sized)

    def test_invalid_mean(self):
        with pytest.raises(ValueError):
            zipf_sizes([1], mean_size=0)
