"""Load-generator report schema, concurrent hammering under the
invariant sanitizer, and the Amdahl calibration path.

Tier-1 keeps the runs tiny; the full-size sweeps carry the ``service``
marker and run via ``make loadgen``.
"""

import threading

import pytest

from repro.concurrency.calibrate import (
    calibrate_profile,
    parallel_fraction,
    profile_from_loadgen,
)
from repro.service import CacheService, ShardedCacheService
from repro.service.loadgen import (
    REPORT_KIND,
    SCHEMA_VERSION,
    find_scenario,
    format_report,
    latency_summary_us,
    run_loadgen,
    run_scenario,
)

#: Keys every BENCH_service.json consumer relies on; bump
#: loadgen.SCHEMA_VERSION when changing them.
SCENARIO_KEYS = {
    "shards", "threads", "backend", "workers", "batch_size", "transport",
    "frontend", "connections", "pipeline_depth",
    "mode", "policy", "ops", "wall_time_s",
    "ops_per_sec", "hit_ratio", "hits", "misses", "errors", "error_rate",
    "latency_us",
    "hit_ns_mean", "miss_ns_mean", "shard_ops", "imbalance",
    "evictions", "expired", "objects",
}
LATENCY_KEYS = {"p50", "p90", "p99", "p999", "mean", "max"}


def tiny_report(**kwargs):
    defaults = dict(
        shard_counts=(1, 2),
        thread_counts=(1, 2),
        num_objects=300,
        num_requests=2400,
        seed=42,
    )
    defaults.update(kwargs)
    return run_loadgen(**defaults)


class TestReportSchema:
    def test_schema_pinned(self):
        report = tiny_report()
        assert report["schema"] == SCHEMA_VERSION == 4
        assert report["kind"] == REPORT_KIND == "service-loadgen"
        assert set(report["config"]) >= {
            "num_objects", "num_requests", "alpha", "cache_ratio",
            "capacity", "seed", "policy", "mode", "backend", "batch_size",
            "transport", "frontend", "connections", "pipeline_depth",
        }
        assert len(report["scenarios"]) == 4
        for row in report["scenarios"]:
            assert set(row) == SCENARIO_KEYS
            assert set(row["latency_us"]) == LATENCY_KEYS
            assert row["ops"] == row["hits"] + row["misses"]
            assert row["ops_per_sec"] > 0
            assert len(row["shard_ops"]) == row["shards"]

    def test_scenarios_cover_requested_matrix(self):
        report = tiny_report()
        for shards in (1, 2):
            for threads in (1, 2):
                row = find_scenario(report, shards, threads)
                assert row is not None
                assert row["threads"] == threads
        assert find_scenario(report, 16, 1) is None

    def test_same_trace_across_rows(self):
        """Every scenario replays the same seeded workload, so hit
        ratios agree across thread counts (same requests, same total
        capacity) up to slice-boundary effects."""
        report = tiny_report(shard_counts=(1,))
        ratios = [r["hit_ratio"] for r in report["scenarios"]]
        assert max(ratios) - min(ratios) < 0.05

    def test_format_report_is_printable(self):
        report = tiny_report()
        text = format_report(report)
        assert "shards" in text and "p99us" in text
        assert len(text.splitlines()) == 2 + len(report["scenarios"])

    def test_latency_summary(self):
        summary = latency_summary_us([1000] * 99 + [100_000])
        assert summary["p50"] == 1.0
        assert summary["max"] == 100.0
        assert summary["p999"] == 100.0
        assert latency_summary_us([])["p99"] == 0.0

    def test_percentile_nearest_rank_pins(self):
        """The nearest-rank convention on the cases that expose
        off-by-one bugs: rank = ceil(q*n), 1-indexed, no interpolation."""
        from repro.service.loadgen import _percentile

        # n=1: every percentile is the sample.
        assert _percentile([7], 0.5) == 7.0
        assert _percentile([7], 0.999) == 7.0
        # n=2: 1 of 2 samples already covers 50%, so p50 is the LOWER.
        assert _percentile([1, 2], 0.5) == 1.0
        assert _percentile([1, 2], 0.51) == 2.0
        # n=4, q=0.5: ceil(2)=2nd value.  The old round(q*(n-1))
        # formula picked the 3rd — a 75th percentile.
        assert _percentile([10, 20, 30, 40], 0.5) == 20.0
        # q=0.999 tail: 999 of 1000 samples cover exactly 99.9%.
        thousand = list(range(1, 1001))
        assert _percentile(thousand, 0.999) == 999.0
        assert _percentile(thousand, 0.99) == 990.0
        assert _percentile([], 0.5) == 0.0

    def test_open_loop_mode(self):
        report = tiny_report(
            shard_counts=(1,), thread_counts=(1,),
            num_requests=500, mode="open", open_rate=100_000,
        )
        row = report["scenarios"][0]
        assert row["mode"] == "open"
        assert row["ops"] == 500

    def test_run_scenario_rejects_bad_args(self):
        with pytest.raises(ValueError):
            run_scenario([1, 2, 3], capacity=10, mode="nope")
        with pytest.raises(ValueError):
            run_scenario([1, 2, 3], capacity=10, num_threads=0)
        with pytest.raises(ValueError):
            run_scenario([1, 2, 3], capacity=10, mode="open", open_rate=0)
        with pytest.raises(ValueError):
            run_scenario([1, 2, 3], capacity=10, backend="rdma")
        with pytest.raises(ValueError):
            run_scenario([1, 2, 3], capacity=10, batch_size=0)
        with pytest.raises(ValueError):
            run_scenario([1, 2, 3], capacity=10, backend="mp",
                         instrument_policy=True)


class TestBatchedRows:
    def test_batched_thread_rows_report_batch_size(self):
        report = tiny_report(
            shard_counts=(1, 2), thread_counts=(1,), batch_size=16,
        )
        for row in report["scenarios"]:
            assert row["backend"] == "thread"
            assert row["batch_size"] == 16
            assert row["workers"] == 0
            assert row["ops"] == row["hits"] + row["misses"]
            # per-op latency in batched mode is the batch's latency
            assert row["latency_us"]["p50"] > 0

    def test_batched_and_unbatched_same_total_ops(self):
        plain = tiny_report(shard_counts=(2,), thread_counts=(1,))
        batched = tiny_report(
            shard_counts=(2,), thread_counts=(1,), batch_size=8,
        )
        assert plain["scenarios"][0]["ops"] == batched["scenarios"][0]["ops"]

    def test_open_loop_batched(self):
        report = tiny_report(
            shard_counts=(1,), thread_counts=(1,), num_requests=600,
            mode="open", open_rate=200_000, batch_size=32,
        )
        row = report["scenarios"][0]
        assert row["ops"] == 600 and row["batch_size"] == 32


class TestCombineReports:
    def test_combine_merges_scenarios(self):
        from repro.service.loadgen import combine_reports

        a = tiny_report(shard_counts=(1,), thread_counts=(1,))
        b = tiny_report(shard_counts=(2,), thread_counts=(1,), batch_size=4)
        combined = combine_reports([a, b])
        assert combined["schema"] == SCHEMA_VERSION
        assert len(combined["scenarios"]) == 2
        assert combined["config"]["backend"] == ["thread", "thread"]
        assert find_scenario(combined, 2, 1, batch_size=4) is not None
        assert find_scenario(combined, 2, 1, batch_size=9) is None

    def test_combine_rejects_foreign_documents(self):
        from repro.service.loadgen import combine_reports

        with pytest.raises(ValueError):
            combine_reports([])
        with pytest.raises(ValueError):
            combine_reports([{"kind": "metrics-export", "schema": 2}])
        with pytest.raises(ValueError):
            combine_reports([{"kind": REPORT_KIND, "schema": 1,
                              "config": {}, "scenarios": []}])

    def test_combine_rejects_mixed_schemas(self):
        """A schema-2 document (pre-transport rows) must not be
        silently concatenated with a schema-3 one — the older rows
        would masquerade as current under consumers' defaults."""
        from repro.service.loadgen import combine_reports

        current = tiny_report(shard_counts=(1,), thread_counts=(1,))
        stale = {"kind": REPORT_KIND, "schema": 2,
                 "config": {}, "scenarios": []}
        with pytest.raises(ValueError, match="mixed schemas"):
            combine_reports([current, stale])
        with pytest.raises(ValueError, match="mixed schemas"):
            combine_reports([stale, current])

    def test_combine_error_names_offending_sources(self):
        """The mixed-schema refusal must say WHICH file carries which
        schema — a regression test for the error that used to print
        only the schema set and left the caller bisecting documents."""
        from repro.service.loadgen import combine_reports

        current = tiny_report(shard_counts=(1,), thread_counts=(1,))
        stale = {"kind": REPORT_KIND, "schema": 3,
                 "config": {}, "scenarios": []}
        with pytest.raises(ValueError) as excinfo:
            combine_reports([current, stale],
                            sources=["new.json", "old.json"])
        message = str(excinfo.value)
        assert "old.json" in message and "schema 3" in message
        assert "new.json" in message and f"schema {SCHEMA_VERSION}" in message
        # Unnamed reports still get positional labels.
        with pytest.raises(ValueError, match=r"reports\[1\]"):
            combine_reports([current, stale])
        # The kind check names its source too.
        with pytest.raises(ValueError, match="bogus.json"):
            combine_reports([{"kind": "metrics-export"}],
                            sources=["bogus.json"])
        # sources must cover every report.
        with pytest.raises(ValueError, match="sources"):
            combine_reports([current, stale], sources=["only-one.json"])

    def test_find_scenario_transport_filter(self):
        """Transport filtering, including the legacy default: rows
        predating the field read as the transport their backend used
        (mp => pipe, thread => inproc)."""
        def row(backend, transport=None):
            r = {"shards": 1, "threads": 1, "backend": backend,
                 "batch_size": 1, "ops_per_sec": 1.0}
            if transport is not None:
                r["transport"] = transport
            return r

        report = {
            "schema": SCHEMA_VERSION, "kind": REPORT_KIND, "config": {},
            "scenarios": [
                row("mp", "shm"),
                row("mp", "pipe"),
                row("mp"),          # legacy schema-2 row: reads as pipe
                row("thread"),      # legacy row: reads as inproc
            ],
        }
        assert find_scenario(report, 1, 1, transport="shm")["transport"] == "shm"
        pipe = find_scenario(report, 1, 1, backend="mp", transport="pipe")
        assert pipe["transport"] == "pipe"
        legacy = find_scenario(report, 1, 1, backend="thread",
                               transport="inproc")
        assert legacy is not None and "transport" not in legacy
        assert find_scenario(report, 1, 1, transport="rdma") is None


class TestNetRows:
    """Schema-4 socket-mode rows (the full matrix lives behind the
    ``net`` marker in tests/test_netsrv_server.py; these pin the
    report plumbing on one tiny run per concern)."""

    def test_socket_row_axes_and_accounting(self):
        from repro.service.loadgen import run_net_loadgen

        report = run_net_loadgen(
            frontends=("resp",), connection_counts=(2,),
            pipeline_depths=(8,), num_objects=200, num_requests=2000,
        )
        assert report["schema"] == SCHEMA_VERSION
        assert report["config"]["frontend"] == ["resp"]
        row = report["scenarios"][0]
        assert set(row) == SCENARIO_KEYS
        assert row["frontend"] == "resp"
        assert row["connections"] == 2 and row["pipeline_depth"] == 8
        assert row["threads"] == 2  # one driver thread per connection
        assert row["backend"] == "thread" and row["transport"] == "inproc"
        assert row["ops"] == 2000 and row["errors"] == 0
        assert row["ops"] == row["hits"] + row["misses"]
        assert row["latency_us"]["p50"] > 0

    def test_inproc_rows_record_zero_net_axes(self):
        row = tiny_report(shard_counts=(1,),
                          thread_counts=(1,))["scenarios"][0]
        assert row["frontend"] == "inproc"
        assert row["connections"] == 0 and row["pipeline_depth"] == 0

    def test_find_scenario_net_filters(self):
        def row(frontend=None, connections=None, depth=None):
            r = {"shards": 1, "threads": 1, "backend": "thread"}
            if frontend is not None:
                r.update(frontend=frontend, connections=connections,
                         pipeline_depth=depth)
            return r

        report = {
            "schema": SCHEMA_VERSION, "kind": REPORT_KIND, "config": {},
            "scenarios": [
                row("resp", 4, 16),
                row("memcached", 4, 1),
                row(),  # legacy schema-3 row: reads as inproc/0/0
            ],
        }
        hit = find_scenario(report, 1, 1, frontend="resp",
                            connections=4, pipeline_depth=16)
        assert hit is not None and hit["frontend"] == "resp"
        assert find_scenario(report, 1, 1, frontend="resp",
                             pipeline_depth=1) is None
        legacy = find_scenario(report, 1, 1, frontend="inproc",
                               connections=0, pipeline_depth=0)
        assert legacy is not None and "frontend" not in legacy

    def test_socket_frontend_validation(self):
        with pytest.raises(ValueError):
            run_scenario([1, 2, 3], capacity=10, frontend="http")
        with pytest.raises(ValueError):
            run_scenario([1, 2, 3], capacity=10, frontend="resp",
                         connections=0)
        with pytest.raises(ValueError):
            run_scenario([1, 2, 3], capacity=10, frontend="resp",
                         pipeline_depth=0)
        with pytest.raises(ValueError):
            run_scenario([1, 2, 3], capacity=10, frontend="resp",
                         mode="open")
        with pytest.raises(ValueError):
            run_scenario([1, 2, 3], capacity=10, frontend="resp",
                         num_threads=2)
        with pytest.raises(ValueError):
            run_scenario([1, 2, 3], capacity=10, frontend="resp",
                         batch_size=8)
        with pytest.raises(ValueError):
            run_scenario([1, 2, 3], capacity=10, frontend="resp",
                         instrument_policy=True)

    def test_calibration_ignores_socket_rows(self):
        """A socket row at the same (shards, threads) axes must not be
        picked as a scaling endpoint — its per-op cost includes the
        protocol stack."""
        def row(threads, frontend="inproc", ops_per_sec=100_000):
            return {
                "shards": 1, "threads": threads, "backend": "thread",
                "frontend": frontend, "ops_per_sec": ops_per_sec,
                "hit_ratio": 0.8, "hit_ns_mean": 2000,
                "miss_ns_mean": 5000, "batch_size": 1,
            }

        report = {
            "schema": SCHEMA_VERSION, "kind": REPORT_KIND,
            "config": {"policy": "s3fifo"},
            "scenarios": [row(1), row(4, ops_per_sec=150_000),
                          row(8, frontend="resp", ops_per_sec=10_000)],
        }
        from repro.concurrency.calibrate import _scaling_rows

        single, multi, n = _scaling_rows(report, shards=1, axis="threads")
        assert multi["threads"] == 4 and n == 4  # not the resp row


class TestConcurrentHammer:
    def hammer(self, svc, num_threads=4, ops=1500):
        """Mixed get/set/delete storm from many threads."""
        errors = []
        barrier = threading.Barrier(num_threads)

        def worker(tid):
            try:
                barrier.wait()
                for i in range(ops):
                    key = (tid * 31 + i * 7) % 400
                    op = i % 5
                    if op == 0:
                        svc.set(key, i, ttl=0.05 if i % 2 else None)
                    elif op == 4:
                        svc.delete(key)
                    else:
                        svc.get(key)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,), daemon=True)
            for t in range(num_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []

    def test_hammer_single_shard_checked(self):
        """The acceptance hammer: concurrent mixed ops with the
        CheckedPolicy sanitizer verifying every access."""
        svc = CacheService(64, "s3fifo", checked=True)
        self.hammer(svc)
        svc.check()
        assert svc.policy.checks_run > 0

    def test_hammer_sharded_checked(self):
        svc = ShardedCacheService(64, "s3fifo", num_shards=4, checked=True)
        self.hammer(svc)
        svc.sweep(10_000)
        svc.check()

    @pytest.mark.service
    def test_hammer_fast_policy_long(self):
        svc = CacheService(256, "s3fifo-fast", checked=True)
        self.hammer(svc, num_threads=8, ops=20_000)
        svc.check()


class TestCalibration:
    def test_parallel_fraction_endpoints(self):
        assert parallel_fraction(100, 100, 4) == 0.0  # no speedup
        assert parallel_fraction(100, 50, 4) == 0.0  # slowdown
        assert parallel_fraction(100, 400, 4) == 1.0  # linear
        assert parallel_fraction(100, 1000, 4) == 1.0  # super-linear clamps

    def test_parallel_fraction_amdahl_inversion(self):
        # p=0.5 at n=4 gives speedup 1/(0.5 + 0.125) = 1.6
        p = parallel_fraction(100, 160, 4)
        assert p == pytest.approx(0.5)

    def test_parallel_fraction_validation(self):
        with pytest.raises(ValueError):
            parallel_fraction(100, 200, 1)
        with pytest.raises(ValueError):
            parallel_fraction(0, 200, 4)

    def test_calibrate_profile_splits_costs(self):
        profile = calibrate_profile(
            "x", hit_ns=100, miss_ns=400,
            single_ops_per_sec=100, multi_ops_per_sec=160, threads=4,
        )
        assert profile.hit_parallel + profile.hit_critical == pytest.approx(100)
        assert profile.miss_parallel + profile.miss_critical == pytest.approx(400)
        assert profile.hit_parallel == pytest.approx(50)

    def test_profile_from_loadgen_report(self):
        report = tiny_report(shard_counts=(1,))
        profile = profile_from_loadgen(report)
        assert profile.name == "s3fifo-measured"
        single = find_scenario(report, 1, 1)
        total = profile.hit_parallel + profile.hit_critical
        assert total == pytest.approx(single["hit_ns_mean"])

    def test_profile_from_loadgen_needs_scaling_pair(self):
        report = tiny_report(shard_counts=(1,), thread_counts=(1,))
        with pytest.raises(ValueError):
            profile_from_loadgen(report)

    @staticmethod
    def synthetic_mp_report(mqps_1w=0.1, mqps_4w=0.3):
        """A hand-built schema-2 report with a workers-axis pair, so
        the calibration unit tests need no real worker processes."""
        def row(shards, threads, backend, ops_per_sec, batch_size=64):
            return {
                "shards": shards, "threads": threads, "backend": backend,
                "workers": shards if backend == "mp" else 0,
                "batch_size": batch_size if backend == "mp" else 1,
                "ops_per_sec": ops_per_sec, "hit_ratio": 0.8,
                "hit_ns_mean": 2000, "miss_ns_mean": 5000,
            }

        return {
            "schema": 2, "kind": REPORT_KIND,
            "config": {"policy": "s3fifo"},
            "scenarios": [
                row(1, 1, "thread", 300_000),
                row(1, 1, "mp", mqps_1w * 1e6),
                row(4, 1, "mp", mqps_4w * 1e6),
            ],
        }

    def test_workers_axis_calibration(self):
        from repro.concurrency.calibrate import calibration_summary

        report = self.synthetic_mp_report(mqps_1w=0.1, mqps_4w=0.25)
        summary = calibration_summary(report, axis="workers")
        assert summary["axis"] == "workers"
        assert summary["profile"] == "s3fifo-measured-mp"
        assert summary["workers"] == 4 and summary["batch_size"] == 64
        # speedup 2.5 at n=4: p = (1 - 1/2.5) / (1 - 1/4) = 0.8
        assert summary["parallel_fraction"] == pytest.approx(0.8)
        # The thread row must NOT leak into the workers axis.
        profile = profile_from_loadgen(report, axis="workers")
        assert profile.name == "s3fifo-measured-mp"

    def test_workers_axis_requires_mp_pair(self):
        report = tiny_report(shard_counts=(1, 2))  # thread rows only
        with pytest.raises(ValueError):
            profile_from_loadgen(report, axis="workers")
        with pytest.raises(ValueError):
            profile_from_loadgen(report, axis="sideways")

    def test_threads_axis_ignores_mp_rows(self):
        report = self.synthetic_mp_report()
        # Only one thread-backend row at shards=1: no scaling pair.
        with pytest.raises(ValueError):
            profile_from_loadgen(report, axis="threads")


@pytest.mark.service
class TestFullScale:
    """The acceptance-size sweep (make loadgen runs these)."""

    def test_acceptance_matrix(self):
        report = run_loadgen(
            shard_counts=(1, 4),
            thread_counts=(1, 4),
            num_objects=10_000,
            num_requests=100_000,
            seed=42,
        )
        for shards in (1, 4):
            row = find_scenario(report, shards, 1)
            assert row["ops_per_sec"] > 0
            assert row["latency_us"]["p50"] > 0
            assert row["latency_us"]["p99"] >= row["latency_us"]["p50"]
        four = find_scenario(report, 4, 1)
        assert four["imbalance"] < 2.0
