"""Load-generator report schema, concurrent hammering under the
invariant sanitizer, and the Amdahl calibration path.

Tier-1 keeps the runs tiny; the full-size sweeps carry the ``service``
marker and run via ``make loadgen``.
"""

import threading

import pytest

from repro.concurrency.calibrate import (
    calibrate_profile,
    parallel_fraction,
    profile_from_loadgen,
)
from repro.service import CacheService, ShardedCacheService
from repro.service.loadgen import (
    REPORT_KIND,
    SCHEMA_VERSION,
    find_scenario,
    format_report,
    latency_summary_us,
    run_loadgen,
    run_scenario,
)

#: Keys every BENCH_service.json consumer relies on; bump
#: loadgen.SCHEMA_VERSION when changing them.
SCENARIO_KEYS = {
    "shards", "threads", "mode", "policy", "ops", "wall_time_s",
    "ops_per_sec", "hit_ratio", "hits", "misses", "latency_us",
    "hit_ns_mean", "miss_ns_mean", "shard_ops", "imbalance",
    "evictions", "expired", "objects",
}
LATENCY_KEYS = {"p50", "p90", "p99", "p999", "mean", "max"}


def tiny_report(**kwargs):
    defaults = dict(
        shard_counts=(1, 2),
        thread_counts=(1, 2),
        num_objects=300,
        num_requests=2400,
        seed=42,
    )
    defaults.update(kwargs)
    return run_loadgen(**defaults)


class TestReportSchema:
    def test_schema_pinned(self):
        report = tiny_report()
        assert report["schema"] == SCHEMA_VERSION == 1
        assert report["kind"] == REPORT_KIND == "service-loadgen"
        assert set(report["config"]) >= {
            "num_objects", "num_requests", "alpha", "cache_ratio",
            "capacity", "seed", "policy", "mode",
        }
        assert len(report["scenarios"]) == 4
        for row in report["scenarios"]:
            assert set(row) == SCENARIO_KEYS
            assert set(row["latency_us"]) == LATENCY_KEYS
            assert row["ops"] == row["hits"] + row["misses"]
            assert row["ops_per_sec"] > 0
            assert len(row["shard_ops"]) == row["shards"]

    def test_scenarios_cover_requested_matrix(self):
        report = tiny_report()
        for shards in (1, 2):
            for threads in (1, 2):
                row = find_scenario(report, shards, threads)
                assert row is not None
                assert row["threads"] == threads
        assert find_scenario(report, 16, 1) is None

    def test_same_trace_across_rows(self):
        """Every scenario replays the same seeded workload, so hit
        ratios agree across thread counts (same requests, same total
        capacity) up to slice-boundary effects."""
        report = tiny_report(shard_counts=(1,))
        ratios = [r["hit_ratio"] for r in report["scenarios"]]
        assert max(ratios) - min(ratios) < 0.05

    def test_format_report_is_printable(self):
        report = tiny_report()
        text = format_report(report)
        assert "shards" in text and "p99us" in text
        assert len(text.splitlines()) == 2 + len(report["scenarios"])

    def test_latency_summary(self):
        summary = latency_summary_us([1000] * 99 + [100_000])
        assert summary["p50"] == 1.0
        assert summary["max"] == 100.0
        assert summary["p999"] == 100.0
        assert latency_summary_us([])["p99"] == 0.0

    def test_open_loop_mode(self):
        report = tiny_report(
            shard_counts=(1,), thread_counts=(1,),
            num_requests=500, mode="open", open_rate=100_000,
        )
        row = report["scenarios"][0]
        assert row["mode"] == "open"
        assert row["ops"] == 500

    def test_run_scenario_rejects_bad_args(self):
        with pytest.raises(ValueError):
            run_scenario([1, 2, 3], capacity=10, mode="nope")
        with pytest.raises(ValueError):
            run_scenario([1, 2, 3], capacity=10, num_threads=0)
        with pytest.raises(ValueError):
            run_scenario([1, 2, 3], capacity=10, mode="open", open_rate=0)


class TestConcurrentHammer:
    def hammer(self, svc, num_threads=4, ops=1500):
        """Mixed get/set/delete storm from many threads."""
        errors = []
        barrier = threading.Barrier(num_threads)

        def worker(tid):
            try:
                barrier.wait()
                for i in range(ops):
                    key = (tid * 31 + i * 7) % 400
                    op = i % 5
                    if op == 0:
                        svc.set(key, i, ttl=0.05 if i % 2 else None)
                    elif op == 4:
                        svc.delete(key)
                    else:
                        svc.get(key)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,), daemon=True)
            for t in range(num_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []

    def test_hammer_single_shard_checked(self):
        """The acceptance hammer: concurrent mixed ops with the
        CheckedPolicy sanitizer verifying every access."""
        svc = CacheService(64, "s3fifo", checked=True)
        self.hammer(svc)
        svc.check()
        assert svc.policy.checks_run > 0

    def test_hammer_sharded_checked(self):
        svc = ShardedCacheService(64, "s3fifo", num_shards=4, checked=True)
        self.hammer(svc)
        svc.sweep(10_000)
        svc.check()

    @pytest.mark.service
    def test_hammer_fast_policy_long(self):
        svc = CacheService(256, "s3fifo-fast", checked=True)
        self.hammer(svc, num_threads=8, ops=20_000)
        svc.check()


class TestCalibration:
    def test_parallel_fraction_endpoints(self):
        assert parallel_fraction(100, 100, 4) == 0.0  # no speedup
        assert parallel_fraction(100, 50, 4) == 0.0  # slowdown
        assert parallel_fraction(100, 400, 4) == 1.0  # linear
        assert parallel_fraction(100, 1000, 4) == 1.0  # super-linear clamps

    def test_parallel_fraction_amdahl_inversion(self):
        # p=0.5 at n=4 gives speedup 1/(0.5 + 0.125) = 1.6
        p = parallel_fraction(100, 160, 4)
        assert p == pytest.approx(0.5)

    def test_parallel_fraction_validation(self):
        with pytest.raises(ValueError):
            parallel_fraction(100, 200, 1)
        with pytest.raises(ValueError):
            parallel_fraction(0, 200, 4)

    def test_calibrate_profile_splits_costs(self):
        profile = calibrate_profile(
            "x", hit_ns=100, miss_ns=400,
            single_ops_per_sec=100, multi_ops_per_sec=160, threads=4,
        )
        assert profile.hit_parallel + profile.hit_critical == pytest.approx(100)
        assert profile.miss_parallel + profile.miss_critical == pytest.approx(400)
        assert profile.hit_parallel == pytest.approx(50)

    def test_profile_from_loadgen_report(self):
        report = tiny_report(shard_counts=(1,))
        profile = profile_from_loadgen(report)
        assert profile.name == "s3fifo-measured"
        single = find_scenario(report, 1, 1)
        total = profile.hit_parallel + profile.hit_critical
        assert total == pytest.approx(single["hit_ns_mean"])

    def test_profile_from_loadgen_needs_scaling_pair(self):
        report = tiny_report(shard_counts=(1,), thread_counts=(1,))
        with pytest.raises(ValueError):
            profile_from_loadgen(report)


@pytest.mark.service
class TestFullScale:
    """The acceptance-size sweep (make loadgen runs these)."""

    def test_acceptance_matrix(self):
        report = run_loadgen(
            shard_counts=(1, 4),
            thread_counts=(1, 4),
            num_objects=10_000,
            num_requests=100_000,
            seed=42,
        )
        for shards in (1, 4):
            row = find_scenario(report, shards, 1)
            assert row["ops_per_sec"] > 0
            assert row["latency_us"]["p50"] > 0
            assert row["latency_us"]["p99"] >= row["latency_us"]["p50"]
        four = find_scenario(report, 4, 1)
        assert four["imbalance"] < 2.0
