"""Behavioural tests for SLRU, ARC, 2Q, LIRS, TinyLFU, LRU-K, and
Segmented FIFO."""

import pytest

from repro.cache.arc import ArcCache
from repro.cache.lirs import LirsCache
from repro.cache.lruk import LrukCache
from repro.cache.sfifo import SegmentedFifoCache
from repro.cache.slru import SlruCache
from repro.cache.tinylfu import TinyLfu10Cache, TinyLfuCache
from repro.cache.twoq import TwoQCache
from repro.sim.simulator import simulate


class TestSlru:
    def test_new_objects_start_in_lowest_segment(self):
        cache = SlruCache(8, nsegments=2)
        cache.access("a")
        assert cache._where["a"][0] == 0

    def test_hit_promotes_one_segment(self):
        cache = SlruCache(8, nsegments=4)
        cache.access("a")
        cache.access("a")
        assert cache._where["a"][0] == 1
        cache.access("a")
        assert cache._where["a"][0] == 2

    def test_promotion_capped_at_top(self):
        cache = SlruCache(8, nsegments=2)
        for _ in range(5):
            cache.access("a")
        assert cache._where["a"][0] == 1

    def test_one_hit_wonders_evicted_from_probation(self):
        cache = SlruCache(8, nsegments=4)
        cache.access("hot")
        cache.access("hot")  # promote out of probation
        for i in range(20):
            cache.access(f"cold{i}")
        assert "hot" in cache

    def test_demotion_cascade(self):
        cache = SlruCache(4, nsegments=2)
        cache.access("a")
        cache.access("a")
        cache.access("b")
        cache.access("b")
        cache.access("c")
        cache.access("c")  # top segment (cap 2) overflows: a demoted
        assert all(k in cache for k in "abc")
        assert len(cache) == 3

    def test_capacity_invariant(self):
        cache = SlruCache(10, nsegments=4)
        for i in range(200):
            cache.access(i % 30)
        assert len(cache) <= 10

    def test_tiny_capacity_degrades_to_fewer_segments(self):
        cache = SlruCache(2, nsegments=4)
        cache.access("a")
        cache.access("b")
        cache.access("c")
        assert len(cache) <= 2

    def test_invalid_segments(self):
        with pytest.raises(ValueError):
            SlruCache(8, nsegments=1)


class TestArc:
    def test_recency_then_frequency(self):
        cache = ArcCache(4)
        cache.access("a")
        assert "a" in cache._t1
        cache.access("a")
        assert "a" in cache._t2
        assert "a" not in cache._t1

    def test_ghost_hit_grows_p(self):
        cache = ArcCache(4)
        for i in range(10):
            cache.access(f"x{i}")  # flood T1, pushing entries to B1
        assert cache._b1
        ghost_key = next(iter(cache._b1))
        p_before = cache.target_t1
        cache.access(ghost_key)
        assert cache.target_t1 >= p_before
        assert ghost_key in cache._t2

    def test_capacity_invariant(self):
        cache = ArcCache(8)
        for i in range(500):
            cache.access(i % 40)
        assert cache.used <= 8

    def test_directory_bounded(self):
        cache = ArcCache(8)
        for i in range(2000):
            cache.access(i)
        total_dir = (
            len(cache._t1) + len(cache._t2) + len(cache._b1) + len(cache._b2)
        )
        assert total_dir <= 2 * 8 + 2

    def test_scan_resistance(self):
        """A scan of cold keys must not flush the frequent set."""
        cache = ArcCache(20)
        for _ in range(5):
            for k in range(5):
                cache.access(f"hot{k}")
        for i in range(100):
            cache.access(f"scan{i}")
        hot_hits = sum(cache.access(f"hot{k}") for k in range(5))
        assert hot_hits >= 3

    def test_beats_lru_on_mixed(self, small_zipf):
        from repro.cache.lru import LruCache

        arc = simulate(ArcCache(50), small_zipf).miss_ratio
        lru = simulate(LruCache(50), small_zipf).miss_ratio
        assert arc <= lru


class TestTwoQ:
    def test_a1in_hit_does_not_promote(self):
        cache = TwoQCache(10)
        cache.access("a")
        cache.access("a")
        assert "a" in cache._a1in
        assert "a" not in cache._am

    def test_ghost_hit_promotes_to_am(self):
        cache = TwoQCache(8, kin=0.25, kout=1.0)
        for i in range(12):
            cache.access(f"x{i}")
        # x0 should have passed through A1in into A1out.
        assert "x0" not in cache
        cache.access("x0")
        assert "x0" in cache._am

    def test_capacity_invariant(self):
        cache = TwoQCache(10)
        for i in range(500):
            cache.access(i % 50)
        assert cache.used <= 10

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TwoQCache(10, kin=0.0)
        with pytest.raises(ValueError):
            TwoQCache(10, kout=0.0)

    def test_am_is_lru(self):
        cache = TwoQCache(8, kin=0.25, kout=2.0)
        for i in range(12):
            cache.access(f"x{i}")
        cache.access("x0")  # ghost hit -> Am
        cache.access("x1")  # ghost hit -> Am
        cache.access("x0")  # promote x0 within Am
        # Fill Am until eviction: x1 should go before x0.
        for i in range(20, 40):
            cache.access(f"y{i}")
            cache.access(f"y{i}")
        if "x0" in cache or "x1" in cache:
            assert not ("x1" in cache._am and "x0" not in cache._am)


class TestLirs:
    def test_cold_start_fills_lir(self):
        cache = LirsCache(10, hir_ratio=0.1)
        for k in "abcdefgh":
            cache.access(k)
        assert all(k in cache for k in "abcdefgh")

    def test_capacity_invariant(self):
        cache = LirsCache(20, hir_ratio=0.1)
        for i in range(2000):
            cache.access(i % 100)
        assert cache.used <= 20

    def test_hir_promotion_on_stack_hit(self):
        cache = LirsCache(10, hir_ratio=0.2)
        for i in range(8):
            cache.access(f"lir{i}")  # fill LIR partition
        cache.access("h")  # resident HIR, on stack
        cache.access("h")  # re-reference quickly -> becomes LIR
        record = cache._records["h"]
        assert record.status == 0  # _LIR

    def test_one_hit_wonders_cycle_through_q(self):
        cache = LirsCache(50, hir_ratio=0.02)
        for i in range(10):
            cache.access(f"hot{i}")
        for _ in range(3):
            for i in range(10):
                cache.access(f"hot{i}")
        for i in range(200):
            cache.access(f"cold{i}")
        hits = sum(cache.access(f"hot{i}") for i in range(10))
        assert hits >= 8  # scan resistance

    def test_nonresident_metadata_bounded(self):
        cache = LirsCache(10, hir_ratio=0.1, nonresident_factor=2)
        for i in range(100_000):
            cache.access(i)
        assert len(cache._records) < 50_000

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LirsCache(10, hir_ratio=0.0)
        with pytest.raises(ValueError):
            LirsCache(10, nonresident_factor=0)


class TestTinyLfu:
    def test_window_then_main(self):
        cache = TinyLfuCache(100, window_ratio=0.1)
        cache.access("a")
        assert "a" in cache._window

    def test_window_overflow_moves_to_probation(self):
        cache = TinyLfuCache(100, window_ratio=0.02)
        for i in range(10):
            cache.access(f"x{i}")
        assert len(cache._probation) > 0

    def test_probation_hit_promotes_to_protected(self):
        cache = TinyLfuCache(100, window_ratio=0.02)
        for i in range(10):
            cache.access(f"x{i}")
        key = next(iter(cache._probation))
        cache.access(key)
        assert key in cache._protected

    def test_duel_rejects_unpopular_candidate(self):
        cache = TinyLfuCache(50, window_ratio=0.04)
        # Build a popular main cache.
        for _ in range(10):
            for i in range(40):
                cache.access(f"hot{i}")
        evicted_hot = 0
        for i in range(100):
            cache.access(f"one-hit-{i}")
        hits = sum(cache.access(f"hot{i}") for i in range(40))
        assert hits >= 30  # the sketch defended the hot set

    def test_capacity_invariant(self):
        cache = TinyLfuCache(30)
        for i in range(2000):
            cache.access(i % 100)
        assert cache.used <= 30

    def test_tinylfu_01_has_larger_window(self):
        small = TinyLfuCache(1000)
        large = TinyLfu10Cache(1000)
        assert large._window_cap > small._window_cap

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TinyLfuCache(100, window_ratio=0.0)
        with pytest.raises(ValueError):
            TinyLfuCache(100, protected_ratio=1.5)


class TestLruk:
    def test_single_access_objects_evicted_first(self):
        cache = LrukCache(3, k=2)
        cache.access("a")
        cache.access("a")  # a has 2 accesses
        cache.access("b")
        cache.access("c")
        cache.access("d")  # b or c (1 access) evicted, never a
        assert "a" in cache

    def test_k1_degenerates_to_lru(self, small_zipf):
        from repro.cache.lru import LruCache

        lruk = simulate(LrukCache(50, k=1), small_zipf).miss_ratio
        lru = simulate(LruCache(50), small_zipf).miss_ratio
        assert lruk == pytest.approx(lru, abs=0.01)

    def test_history_survives_eviction(self):
        cache = LrukCache(2, k=2, history_factor=8)
        cache.access("a")
        cache.access("a")
        cache.access("b")
        cache.access("c")  # evicts b or c's competitor; a protected
        cache.access("a")  # back or still resident; K-distance intact
        assert len(cache._history["a"]) == 2

    def test_capacity_invariant(self):
        cache = LrukCache(10, k=2)
        for i in range(1000):
            cache.access(i % 60)
        assert len(cache) <= 10

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            LrukCache(10, k=0)


class TestSegmentedFifo:
    def test_secondary_hit_returns_to_primary(self):
        cache = SegmentedFifoCache(10, primary_ratio=0.3)
        for i in range(8):
            cache.access(f"x{i}")
        # x0 demoted to secondary by now.
        assert "x0" in cache._secondary
        cache.access("x0")
        assert "x0" in cache._primary

    def test_eviction_from_secondary_first(self):
        cache = SegmentedFifoCache(4, primary_ratio=0.5)
        for i in range(6):
            cache.access(i)
        assert len(cache) <= 4

    def test_capacity_invariant(self):
        cache = SegmentedFifoCache(10)
        for i in range(500):
            cache.access(i % 30)
        assert cache.used <= 10

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            SegmentedFifoCache(10, primary_ratio=1.0)
