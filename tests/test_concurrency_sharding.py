"""Tests for the sharded-cache scalability model (Section 7)."""

import pytest

from repro.concurrency.costs import profile_for
from repro.concurrency.model import analytic_throughput
from repro.concurrency.sharding import (
    imbalance_factor,
    shard_load_shares,
    sharded_throughput,
    sharding_scaling_curve,
)


class TestLoadShares:
    def test_shares_sum_to_one(self):
        shares = shard_load_shares(10_000, 8, alpha=1.0, seed=0)
        assert sum(shares) == pytest.approx(1.0)
        assert len(shares) == 8

    def test_uniform_workload_balances(self):
        shares = shard_load_shares(100_000, 8, alpha=0.0, seed=0)
        assert imbalance_factor(shares) < 1.1

    def test_skew_increases_imbalance(self):
        mild = shard_load_shares(100_000, 16, alpha=0.6, seed=0)
        hot = shard_load_shares(100_000, 16, alpha=1.2, seed=0)
        assert imbalance_factor(hot) > imbalance_factor(mild)

    def test_invalid_shards(self):
        with pytest.raises(ValueError):
            shard_load_shares(100, 0, alpha=1.0)


class TestThroughput:
    def test_balanced_scales_linearly(self):
        shares = [0.25] * 4
        assert sharded_throughput(4, 5.0, shares) == pytest.approx(20.0)

    def test_hot_shard_caps_throughput(self):
        shares = [0.7, 0.1, 0.1, 0.1]
        assert sharded_throughput(4, 5.0, shares) == pytest.approx(5.0 / 0.7)

    def test_validation(self):
        with pytest.raises(ValueError):
            sharded_throughput(2, 0.0, [0.5, 0.5])
        with pytest.raises(ValueError):
            sharded_throughput(2, 5.0, [1.0])

    def test_imbalance_factor_validation(self):
        with pytest.raises(ValueError):
            imbalance_factor([])


class TestPaperArgument:
    def test_sharding_sublinear_on_zipf(self):
        """Section 7: Zipf load imbalance limits sharded throughput."""
        curve = sharding_scaling_curve(
            [1, 16], num_objects=1_000_000, alpha=1.0, per_core_mqps=5.0
        )
        speedup = curve[16] / curve[1]
        assert speedup < 14  # visibly below the 16x ideal

    def test_s3fifo_shared_cache_beats_sharding_at_high_skew(self):
        """With very hot keys, a lock-free shared cache out-scales
        hash sharding."""
        curve = sharding_scaling_curve(
            [16], num_objects=10_000, alpha=1.3, per_core_mqps=5.0
        )
        s3 = analytic_throughput(profile_for("s3fifo"), 16, 0.02)
        assert s3 > curve[16]
