"""Unit tests for the intrusive doubly-linked list."""

import pytest

from repro.structures.dlist import DList, DListNode


def make_list(values):
    lst = DList()
    nodes = [lst.push_tail(DListNode(v)) for v in values]
    return lst, nodes


class TestBasics:
    def test_empty_list(self):
        lst = DList()
        assert len(lst) == 0
        assert not lst
        assert lst.head is None
        assert lst.tail is None
        assert lst.pop_tail() is None
        assert lst.pop_head() is None

    def test_push_head_order(self):
        lst = DList()
        for v in [1, 2, 3]:
            lst.push_head(DListNode(v))
        assert [n.data for n in lst] == [3, 2, 1]

    def test_push_tail_order(self):
        lst, _ = make_list([1, 2, 3])
        assert [n.data for n in lst] == [1, 2, 3]

    def test_head_and_tail(self):
        lst, _ = make_list(["a", "b", "c"])
        assert lst.head.data == "a"
        assert lst.tail.data == "c"

    def test_len_tracks_changes(self):
        lst, nodes = make_list([1, 2, 3])
        assert len(lst) == 3
        lst.unlink(nodes[1])
        assert len(lst) == 2
        lst.pop_tail()
        assert len(lst) == 1

    def test_bool(self):
        lst, _ = make_list([1])
        assert lst
        lst.pop_head()
        assert not lst


class TestUnlink:
    def test_unlink_middle(self):
        lst, nodes = make_list([1, 2, 3])
        lst.unlink(nodes[1])
        assert [n.data for n in lst] == [1, 3]

    def test_unlink_head(self):
        lst, nodes = make_list([1, 2, 3])
        lst.unlink(nodes[0])
        assert lst.head.data == 2

    def test_unlink_tail(self):
        lst, nodes = make_list([1, 2, 3])
        lst.unlink(nodes[2])
        assert lst.tail.data == 2

    def test_unlink_only_node(self):
        lst, nodes = make_list([1])
        lst.unlink(nodes[0])
        assert len(lst) == 0
        assert lst.head is None

    def test_unlink_foreign_node_raises(self):
        lst, _ = make_list([1])
        other = DListNode(99)
        with pytest.raises(ValueError):
            lst.unlink(other)

    def test_unlink_from_wrong_list_raises(self):
        lst1, nodes1 = make_list([1])
        lst2, _ = make_list([2])
        with pytest.raises(ValueError):
            lst2.unlink(nodes1[0])

    def test_unlinked_node_is_not_linked(self):
        lst, nodes = make_list([1, 2])
        node = lst.unlink(nodes[0])
        assert not node.linked

    def test_double_push_raises(self):
        lst, nodes = make_list([1])
        with pytest.raises(ValueError):
            lst.push_head(nodes[0])


class TestMoves:
    def test_move_to_head(self):
        lst, nodes = make_list([1, 2, 3])
        lst.move_to_head(nodes[2])
        assert [n.data for n in lst] == [3, 1, 2]

    def test_move_to_tail(self):
        lst, nodes = make_list([1, 2, 3])
        lst.move_to_tail(nodes[0])
        assert [n.data for n in lst] == [2, 3, 1]

    def test_move_head_to_head_is_noop_in_effect(self):
        lst, nodes = make_list([1, 2])
        lst.move_to_head(nodes[1])
        lst.move_to_head(nodes[1])
        assert [n.data for n in lst] == [2, 1]

    def test_reuse_after_pop(self):
        lst, _ = make_list([1, 2])
        node = lst.pop_tail()
        lst.push_head(node)
        assert [n.data for n in lst] == [2, 1]


class TestIteration:
    def test_iter_from_tail(self):
        lst, _ = make_list([1, 2, 3])
        assert [n.data for n in lst.iter_from_tail()] == [3, 2, 1]

    def test_iter_allows_unlinking_current(self):
        lst, _ = make_list([1, 2, 3, 4])
        for node in lst:
            if node.data % 2 == 0:
                lst.unlink(node)
        assert [n.data for n in lst] == [1, 3]

    def test_iter_empty(self):
        assert list(DList()) == []

    def test_lru_usage_pattern(self):
        """Simulate an LRU: repeated promotion keeps order correct."""
        lst, nodes = make_list(list(range(5)))
        index = {n.data: n for n in nodes}
        for key in [0, 2, 4, 0]:
            lst.move_to_head(index[key])
        assert [n.data for n in lst] == [0, 4, 2, 1, 3]
