"""Differential + property validation of the vectorized hit-run engine.

The vector engine (:mod:`repro.sim.vector`) promises results
*bit-identical* to the scalar engines for the whole FIFO family — same
misses, bytes, eviction split, warmup accounting — on unit, sized, and
oversized-object traces, invariant to the chunk width.  These tests
pin every clause of that promise:

* a differential sweep of every vector-capable policy (with
  non-default constructor knobs) against the scalar engine across
  trace shapes, capacities, and warmups;
* chunk-width invariance, both on fixed adversarial widths (1, 2, odd,
  larger than the trace) and via hypothesis-generated traces — the
  latter deliberately aims chunk boundaries into miss runs and at
  repeated keys whose first touch in a chunk is a miss, the two places
  where forced-candidate bookkeeping could drift;
* engine wiring: ``simulate_compiled`` routing, eligibility rules,
  and the no-mutation guarantee (the policy object stays pristine).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.registry import create_policy
from repro.sim.request import Request
from repro.sim.simulator import simulate, simulate_compiled
from repro.sim.vector import (
    VECTOR_POLICIES,
    vector_eligible,
    vector_simulate,
)
from repro.traces.compiled import compile_trace
from repro.traces.synthetic import zipf_trace

ZIPF = zipf_trace(num_objects=300, num_requests=4000, alpha=1.0, seed=21)
SCAN = [f"s{i}" for i in range(400)]
MIX = ZIPF[:1500] + SCAN + ZIPF[1500:3000] + SCAN + ZIPF[3000:]
_rng = random.Random(7)
SIZED = [(k, _rng.randint(1, 40)) for k in ZIPF]
_rng = random.Random(7)
# Sizes 200/999 exceed the smallest capacities below: every kernel
# must take the oversized path (miss, no policy access) exactly where
# the scalar engine does — including for keys already resident.
OVER = [(k, _rng.choice([1, 5, 200, 999])) for k in ZIPF[:2000]]

TRACES = {
    "zipf": (compile_trace(ZIPF, name="zipf"), (60, 7, 1, 350)),
    "mix": (compile_trace(MIX, name="mix"), (60, 350)),
    "sized": (compile_trace(SIZED, name="sized"), (2000, 150, 3)),
    "over": (compile_trace(OVER, name="over"), (2000, 150, 3)),
}

FIELDS = (
    "requests", "misses", "bytes_requested", "bytes_missed",
    "evictions", "warmup_requests", "warmup_evictions",
)

POLICY_CONFIGS = [
    ("fifo", {}),
    ("fifo-fast", {}),
    ("sfifo", {}),
    ("sfifo", {"primary_ratio": 0.5}),
    ("sieve", {}),
    ("sieve-fast", {}),
    ("s3fifo", {}),
    ("s3fifo", {"small_ratio": 0.25, "ghost_entries": 40,
                "move_to_main_threshold": 1, "freq_cap": 7}),
    ("s3fifo-fast", {}),
    ("s3fifo-fast", {"small_ratio": 0.25, "ghost_entries": 40,
                     "move_to_main_threshold": 1, "freq_cap": 3}),
]


def _assert_identical(ref, vec, ctx):
    for field in FIELDS:
        rv, vv = getattr(ref, field), getattr(vec, field)
        assert rv == vv, (*ctx, field, rv, vv)


def _config_id(config):
    name, kwargs = config
    return name if not kwargs else f"{name}-{'-'.join(map(str, kwargs.values()))}"


@pytest.mark.parametrize(
    "name,kwargs", POLICY_CONFIGS, ids=[_config_id(c) for c in POLICY_CONFIGS]
)
def test_vector_matches_scalar(name, kwargs):
    """Full differential sweep at the default chunk width."""
    for tname, (trace, caps) in TRACES.items():
        for cap in caps:
            for warm in (0.0, 0.3):
                ref = simulate_compiled(
                    create_policy(name, cap, **kwargs), trace,
                    warmup=warm, engine="scalar",
                )
                vec = simulate_compiled(
                    create_policy(name, cap, **kwargs), trace,
                    warmup=warm, engine="vector",
                )
                _assert_identical(ref, vec, (name, kwargs, tname, cap, warm))


@pytest.mark.parametrize("chunk", [1, 2, 7, 10 ** 9])
def test_chunk_invariance_fixed_widths(chunk):
    """Adversarial chunk widths: 1 (every request its own probe), 2,
    odd (boundaries land mid-run everywhere), larger than the trace."""
    for name, kwargs in (("fifo", {}), ("sieve", {}), ("s3fifo", {})):
        for tname in ("mix", "over"):
            trace, caps = TRACES[tname]
            cap = caps[0]
            ref = simulate_compiled(
                create_policy(name, cap, **kwargs), trace, engine="scalar"
            )
            vec = vector_simulate(
                create_policy(name, cap, **kwargs), trace, chunk=chunk
            )
            _assert_identical(ref, vec, (name, tname, cap, chunk))


def test_chunk_splits_miss_run():
    """A run of cold misses crossing a chunk boundary: positions after
    the split must still be consumed as scalar events, not probed
    against the stale chunk-start mask."""
    trace = compile_trace(list(range(10)) + list(range(10)))
    for name in ("fifo", "sieve", "s3fifo", "sfifo"):
        ref = simulate_compiled(
            create_policy(name, 4), trace, engine="scalar"
        )
        for chunk in (3, 4, 5):
            vec = vector_simulate(create_policy(name, 4), trace, chunk=chunk)
            _assert_identical(ref, vec, (name, chunk))


def test_repeated_key_first_chunk_touch_is_miss():
    """A key evicted earlier returns several times inside one chunk:
    its first touch is a (forced or probed) miss, and the repeats must
    come from the post-insert state, not the chunk-start snapshot."""
    trace = compile_trace([0, 1, 2, 3, 0, 0, 0, 1, 1, 2, 0])
    for name in ("fifo", "sieve", "s3fifo", "sfifo"):
        for cap in (2, 3):
            ref = simulate_compiled(
                create_policy(name, cap), trace, engine="scalar"
            )
            for chunk in (4, 6, 11):
                vec = vector_simulate(
                    create_policy(name, cap), trace, chunk=chunk
                )
                _assert_identical(ref, vec, (name, cap, chunk))


@given(
    keys=st.lists(
        st.integers(min_value=0, max_value=25), min_size=1, max_size=120
    ),
    capacity=st.integers(min_value=1, max_value=12),
    chunk=st.integers(min_value=1, max_value=130),
    policy_index=st.integers(min_value=0, max_value=len(POLICY_CONFIGS) - 1),
)
@settings(max_examples=60, deadline=None)
def test_vector_chunk_property_unit(keys, capacity, chunk, policy_index):
    """Hypothesis: any trace, any capacity, any chunk width — the
    vector engine is bit-identical to the scalar one."""
    name, kwargs = POLICY_CONFIGS[policy_index]
    trace = compile_trace(keys)
    ref = simulate_compiled(
        create_policy(name, capacity, **kwargs), trace, engine="scalar"
    )
    vec = vector_simulate(
        create_policy(name, capacity, **kwargs), trace, chunk=chunk
    )
    _assert_identical(ref, vec, (name, kwargs, capacity, chunk, keys))


@given(
    items=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=15),
            st.integers(min_value=1, max_value=30),
        ),
        min_size=1,
        max_size=80,
    ),
    capacity=st.integers(min_value=1, max_value=20),
    chunk=st.integers(min_value=1, max_value=90),
)
@settings(max_examples=40, deadline=None)
def test_vector_chunk_property_sized(items, capacity, chunk):
    """Sized variant: sizes routinely exceed capacity, so the
    oversized path is exercised under arbitrary chunking too."""
    trace = compile_trace(items)
    for name in ("fifo", "sfifo", "sieve", "s3fifo"):
        ref = simulate_compiled(
            create_policy(name, capacity), trace, engine="scalar"
        )
        vec = vector_simulate(
            create_policy(name, capacity), trace, chunk=chunk
        )
        _assert_identical(ref, vec, (name, capacity, chunk, items))


# ----------------------------------------------------------------------
# Engine wiring
# ----------------------------------------------------------------------

def test_vector_does_not_mutate_policy():
    trace, _ = TRACES["zipf"]
    policy = create_policy("s3fifo", 60)
    vector_simulate(policy, trace)
    assert policy.stats.requests == 0
    assert policy.clock == 0
    assert len(policy) == 0
    # Still pristine, so the same object can run again.
    again = vector_simulate(policy, trace)
    assert again.requests == len(trace)


def test_auto_routes_eligible_policies_to_vector():
    """With engine="auto" the policy stays untouched — proof the
    vector path (which never mutates) handled it."""
    trace, _ = TRACES["zipf"]
    for name in VECTOR_POLICIES:
        policy = create_policy(name, 60)
        assert vector_eligible(policy, trace), name
        simulate(policy, trace, engine="auto")
        assert policy.stats.requests == 0, name


def test_scalar_engine_still_mutates():
    trace, _ = TRACES["zipf"]
    policy = create_policy("fifo", 60)
    result = simulate(policy, trace, engine="scalar")
    assert policy.stats.requests == len(trace)
    assert result.requests == len(trace)


def test_engine_equivalence_through_simulate():
    trace, _ = TRACES["mix"]
    results = [
        simulate(create_policy("sieve", 60), trace, engine=engine)
        for engine in ("auto", "scalar", "vector")
    ]
    for other in results[1:]:
        _assert_identical(results[0], other, ("sieve",))


def test_vector_rejects_ineligible():
    trace, _ = TRACES["zipf"]
    # LRU promotes on hit: excluded from the engine by design.
    lru = create_policy("lru", 60)
    assert not vector_eligible(lru, trace)
    with pytest.raises(ValueError):
        simulate_compiled(lru, trace, engine="vector")
    # A warmed-up policy is no longer pristine.
    warm = create_policy("fifo", 60)
    warm.request(Request(1))
    assert not vector_eligible(warm, trace)
    with pytest.raises(ValueError):
        vector_simulate(warm, trace)
    # Raw (uncompiled) traces never qualify.
    assert not vector_eligible(create_policy("fifo", 60), ZIPF)


def test_unknown_engine_rejected():
    trace, _ = TRACES["zipf"]
    with pytest.raises(ValueError):
        simulate_compiled(create_policy("fifo", 60), trace, engine="turbo")


def test_bad_chunk_rejected():
    trace, _ = TRACES["zipf"]
    with pytest.raises(ValueError):
        vector_simulate(create_policy("fifo", 60), trace, chunk=0)


def test_sweep_job_engine_pinning():
    from repro.sim.runner import SweepJob, coalesce_jobs, execute_job

    def factory(**kwargs):
        return TRACES["zipf"][0]

    jobs = {
        engine: SweepJob("zipf", factory, {}, "fifo", 60, engine=engine)
        for engine in ("auto", "scalar", "vector")
    }
    ratios = {
        engine: execute_job(job) for engine, job in jobs.items()
    }
    for engine, res in ratios.items():
        assert res.error is None, (engine, res.error)
    assert (
        ratios["auto"].miss_ratio
        == ratios["scalar"].miss_ratio
        == ratios["vector"].miss_ratio
    )
    # Engine-pinned jobs must not be coalesced into a multisim batch
    # (which would override the explicit engine choice).
    pinned = [
        SweepJob("zipf", factory, {}, "fifo", size, engine="scalar")
        for size in (10, 20, 30)
    ]
    groups, singles = coalesce_jobs(pinned)
    assert not groups and len(singles) == len(pinned)
    unpinned = [
        SweepJob("zipf", factory, {}, "fifo", size) for size in (10, 20, 30)
    ]
    groups, singles = coalesce_jobs(unpinned)
    assert groups and not singles
