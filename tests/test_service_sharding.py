"""Shard routing: hash stability, uniformity, capacity partitioning,
and miss-ratio parity between the sharded service and the offline
simulator (the acceptance criterion for the service layer).
"""

import pytest

from repro.cache.registry import create_policy
from repro.service import (
    ShardedCacheService,
    partition_capacity,
    stable_key_hash,
)
from repro.sim.simulator import simulate
from repro.traces.synthetic import zipf_trace

#: Absolute miss-ratio tolerance for the 4-shard parity check, see
#: docs/SERVICE.md ("Sharding and offline parity").  Splitting one
#: Zipf(1.0) working set across 4 S3-FIFO shards perturbs the steady
#: state by well under a point of miss ratio; measured deltas on the
#: canonical trace are ~0.002.
SHARDED_PARITY_TOLERANCE = 0.02


class TestStableKeyHash:
    def test_pinned_values(self):
        """Literal digests: any change to the hash breaks every
        persisted key->shard mapping, so it must fail loudly here."""
        assert stable_key_hash("hello") == 15768710110751428397
        assert stable_key_hash(12345) == 8769597870082714884
        assert stable_key_hash(b"k") == 15248517266848299910

    def test_types_do_not_collide(self):
        values = [
            stable_key_hash("1"),
            stable_key_hash(1),
            stable_key_hash(b"1"),
            stable_key_hash(True),
        ]
        assert len(set(values)) == len(values)

    def test_deterministic_across_calls(self):
        assert stable_key_hash("x") == stable_key_hash("x")
        assert stable_key_hash(("a", 1)) == stable_key_hash(("a", 1))

    def test_chi_square_uniformity(self):
        """1e5 sequential keys over 8 shards: chi-square with dof=7
        must stay under 24.32 (p=0.001)."""
        num_shards = 8
        n = 100_000
        counts = [0] * num_shards
        for key in range(n):
            counts[stable_key_hash(key) % num_shards] += 1
        expected = n / num_shards
        chi2 = sum((c - expected) ** 2 / expected for c in counts)
        assert chi2 < 24.32, f"chi2={chi2:.2f}, counts={counts}"

    def test_string_keys_chi_square(self):
        num_shards = 8
        n = 100_000
        counts = [0] * num_shards
        for i in range(n):
            counts[stable_key_hash(f"object:{i}") % num_shards] += 1
        expected = n / num_shards
        chi2 = sum((c - expected) ** 2 / expected for c in counts)
        assert chi2 < 24.32, f"chi2={chi2:.2f}, counts={counts}"


class TestPartitionCapacity:
    def test_exact_sum_and_near_equality(self):
        parts = partition_capacity(103, 4)
        assert sum(parts) == 103
        assert parts == [26, 26, 26, 25]

    def test_single_shard(self):
        assert partition_capacity(7, 1) == [7]

    def test_rejects_impossible_splits(self):
        with pytest.raises(ValueError):
            partition_capacity(3, 4)
        with pytest.raises(ValueError):
            partition_capacity(10, 0)


class TestShardedService:
    def test_routing_is_stable_and_exhaustive(self):
        svc = ShardedCacheService(40, num_shards=4)
        for key in range(200):
            idx = svc.shard_for(key)
            assert idx == stable_key_hash(key) % 4
            assert idx == svc.shard_for(key)

    def test_keys_land_on_their_shard(self):
        svc = ShardedCacheService(40, num_shards=4)
        for key in range(30):
            svc.set(key, key)
        for key in range(30):
            home = svc.shard(svc.shard_for(key))
            if svc.get(key) is not None:
                assert key in home
        assert len(svc) == sum(len(s) for s in svc.shards)

    def test_capacity_partitioned_exactly(self):
        svc = ShardedCacheService(103, num_shards=4)
        assert [s.capacity for s in svc.shards] == [26, 26, 26, 25]
        assert svc.capacity == 103

    def test_aggregate_stats(self):
        svc = ShardedCacheService(40, num_shards=4)
        for key in range(20):
            svc.get(key)
            svc.set(key, key)
        stats = svc.stats()
        assert stats["gets"] == 20
        assert stats["sets"] == 20
        assert stats["num_shards"] == 4
        assert len(stats["per_shard"]) == 4
        assert stats["gets"] == sum(s["gets"] for s in stats["per_shard"])
        assert sum(svc.ops_per_shard()) == 40

    def test_delete_routes(self):
        svc = ShardedCacheService(40, num_shards=4)
        svc.set("a", 1)
        assert svc.delete("a")
        assert svc.get("a") is None
        svc.check()

    def test_sharded_parity_with_offline_simulator(self):
        """Acceptance criterion: a 4-shard service over s3fifo on the
        canonical Zipf(1.0) stream matches the offline simulator's
        steady-state miss ratio within the documented tolerance."""
        trace = zipf_trace(num_objects=2000, num_requests=50000, seed=42)
        capacity = 200
        svc = ShardedCacheService(capacity, "s3fifo", num_shards=4)
        for key in trace:
            if svc.get(key) is None:
                svc.set(key, key)
        offline = simulate(create_policy("s3fifo", capacity=capacity), trace)
        live_miss = 1.0 - svc.stats()["hit_ratio"]
        assert live_miss == pytest.approx(
            offline.miss_ratio, abs=SHARDED_PARITY_TOLERANCE
        )
        svc.check()

    def test_single_shard_matches_plain_service_exactly(self):
        from repro.service import CacheService

        trace = zipf_trace(num_objects=500, num_requests=8000, seed=3)
        sharded = ShardedCacheService(50, num_shards=1)
        plain = CacheService(50)
        for key in trace:
            if sharded.get(key) is None:
                sharded.set(key, key)
            if plain.get(key) is None:
                plain.set(key, key)
        assert sharded.stats()["hit_ratio"] == plain.counters.hit_ratio
