"""Tests for the EvictionPolicy base class contract."""

import pytest

from repro.cache.base import CacheStats, EvictionPolicy
from repro.cache.fifo import FifoCache
from repro.cache.lru import LruCache
from repro.sim.request import Request


class TestRequestModel:
    def test_defaults(self):
        req = Request("k")
        assert req.size == 1
        assert req.time == 0
        assert req.next_access is None

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Request("k", size=0)

    def test_equality_and_hash(self):
        assert Request("k", 2, 3) == Request("k", 2, 3)
        assert Request("k") != Request("j")
        assert hash(Request("k", 2)) == hash(Request("k", 2))

    def test_repr(self):
        assert "k" in repr(Request("k"))


class TestCacheStats:
    def test_miss_ratio(self):
        stats = CacheStats()
        stats.record(Request("a"), hit=False)
        stats.record(Request("a"), hit=True)
        assert stats.miss_ratio == 0.5

    def test_empty_ratios(self):
        stats = CacheStats()
        assert stats.miss_ratio == 0.0
        assert stats.byte_miss_ratio == 0.0

    def test_byte_miss_ratio(self):
        stats = CacheStats()
        stats.record(Request("a", size=100), hit=False)
        stats.record(Request("b", size=300), hit=True)
        assert stats.byte_miss_ratio == 0.25


class TestBaseContract:
    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            FifoCache(0)
        with pytest.raises(ValueError):
            LruCache(-5)

    def test_oversized_object_never_admitted(self):
        cache = FifoCache(10)
        assert cache.access("big", size=100) is False
        assert "big" not in cache
        assert cache.stats.misses == 1
        assert len(cache) == 0

    def test_access_convenience(self):
        cache = LruCache(4)
        assert cache.access("a") is False
        assert cache.access("a") is True

    def test_clock_advances(self):
        cache = FifoCache(4)
        cache.access("a")
        cache.access("b")
        assert cache.clock == 2

    def test_eviction_listener_called(self):
        cache = FifoCache(2)
        events = []
        cache.add_eviction_listener(events.append)
        for key in ["a", "b", "c"]:
            cache.access(key)
        assert len(events) == 1
        assert events[0].key == "a"

    def test_eviction_event_freq_and_age(self):
        cache = FifoCache(2)
        events = []
        cache.add_eviction_listener(events.append)
        cache.access("a")   # t=1, insert
        cache.access("a")   # t=2, hit -> freq 1
        cache.access("b")   # t=3
        cache.access("c")   # t=4, evicts a
        event = events[0]
        assert event.key == "a"
        assert event.freq == 1
        assert event.insert_time == 1
        assert event.evict_time == 4
        assert event.age == 3

    def test_stats_eviction_count(self):
        cache = FifoCache(2)
        for key in "abcd":
            cache.access(key)
        assert cache.stats.evictions == 2

    def test_miss_ratio_property(self):
        cache = LruCache(10)
        cache.access("a")
        cache.access("a")
        assert cache.miss_ratio == 0.5

    def test_repr(self):
        cache = FifoCache(4)
        cache.access("a")
        text = repr(cache)
        assert "FifoCache" in text and "capacity=4" in text

    def test_cannot_instantiate_abstract(self):
        with pytest.raises(TypeError):
            EvictionPolicy(10)
