"""Unit tests for the count-min sketch."""

import pytest

from repro.structures.cms import CountMinSketch


class TestCountMinSketch:
    def test_never_underestimates(self):
        cms = CountMinSketch(width=256, depth=4, cap=15)
        truth = {}
        for i in range(500):
            key = i % 50
            cms.add(key)
            truth[key] = truth.get(key, 0) + 1
        for key, count in truth.items():
            assert cms.estimate(key) >= min(count, 15)

    def test_estimate_unknown_key_small(self):
        cms = CountMinSketch(width=4096, depth=4)
        for i in range(100):
            cms.add(i)
        assert cms.estimate("never-added") <= 2  # collision slack

    def test_cap_saturates(self):
        cms = CountMinSketch(width=64, depth=4, cap=7)
        for _ in range(100):
            cms.add("x")
        assert cms.estimate("x") == 7

    def test_aging_halves(self):
        cms = CountMinSketch(width=64, depth=4, cap=15, sample_size=100)
        for _ in range(99):
            cms.add("x")
        before = cms.estimate("x")
        cms.add("x")  # 100th increment triggers aging
        assert cms.estimate("x") <= before // 2 + 1

    def test_aging_resets_increment_counter(self):
        cms = CountMinSketch(width=64, depth=4, sample_size=10)
        for _ in range(10):
            cms.add("x")
        assert cms.increments == 0

    def test_no_aging_when_disabled(self):
        cms = CountMinSketch(width=64, depth=4, cap=15, sample_size=0)
        for _ in range(10_000):
            cms.add("x")
        assert cms.increments == 10_000

    def test_clear(self):
        cms = CountMinSketch(width=64, depth=4)
        cms.add("x")
        cms.clear()
        assert cms.estimate("x") == 0
        assert cms.increments == 0

    def test_conservative_update_accuracy(self):
        """Conservative update keeps rare-key estimates near truth even
        under load."""
        cms = CountMinSketch(width=512, depth=4, cap=15)
        for i in range(2000):
            cms.add(i % 200)
        # every key added 10 times
        overcounts = [cms.estimate(k) - 10 for k in range(200)]
        assert max(overcounts) <= 5

    def test_invalid_params(self):
        for kwargs in (
            {"width": 0},
            {"width": 8, "depth": 0},
            {"width": 8, "cap": 0},
            {"width": 8, "sample_size": -1},
        ):
            with pytest.raises(ValueError):
                CountMinSketch(**kwargs)

    def test_distinguishes_hot_and_cold(self):
        cms = CountMinSketch(width=1024, depth=4, cap=15)
        for _ in range(10):
            cms.add("hot")
        cms.add("cold")
        assert cms.estimate("hot") > cms.estimate("cold")
