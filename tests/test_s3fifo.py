"""Tests for the S3-FIFO core algorithm (Algorithm 1)."""

import pytest

from repro.cache.fifo import FifoCache
from repro.cache.lru import LruCache
from repro.core.s3fifo import S3FifoCache
from repro.sim.simulator import simulate


class TestConstruction:
    def test_queue_split(self):
        cache = S3FifoCache(100, small_ratio=0.1)
        assert cache.small_capacity == 10
        assert cache.main_capacity == 90

    def test_ghost_defaults_to_main_capacity(self):
        cache = S3FifoCache(100)
        assert cache.ghost.capacity == cache.main_capacity

    def test_ghost_override(self):
        cache = S3FifoCache(100, ghost_entries=7)
        assert cache.ghost.capacity == 7

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            S3FifoCache(100, small_ratio=0.0)
        with pytest.raises(ValueError):
            S3FifoCache(100, small_ratio=1.0)
        with pytest.raises(ValueError):
            S3FifoCache(100, freq_cap=0)
        with pytest.raises(ValueError):
            S3FifoCache(100, move_to_main_threshold=-1)
        with pytest.raises(ValueError):
            S3FifoCache(0)

    def test_tiny_cache_still_valid(self):
        cache = S3FifoCache(2)
        assert cache.small_capacity >= 1
        assert cache.main_capacity >= 1


class TestAlgorithm:
    def test_new_objects_enter_small(self):
        cache = S3FifoCache(100)
        cache.access("a")
        assert cache.in_small("a")
        assert not cache.in_main("a")

    def test_hit_increments_capped_frequency(self):
        cache = S3FifoCache(100, freq_cap=3)
        cache.access("a")
        for _ in range(10):
            cache.access("a")
        assert cache._small["a"].freq == 3

    def test_cold_eviction_goes_to_ghost(self):
        cache = S3FifoCache(20, small_ratio=0.1)  # S=2, M=18
        for i in range(25):
            cache.access(i)
        # Early keys were evicted from S without hits -> in ghost.
        assert 0 not in cache
        assert 0 in cache.ghost

    def test_ghost_hit_inserts_into_main(self):
        cache = S3FifoCache(20, small_ratio=0.1)
        for i in range(25):
            cache.access(i)
        assert 0 in cache.ghost
        cache.access(0)  # miss, but ghost-routed
        assert cache.in_main(0)
        assert 0 not in cache.ghost

    def test_promotion_requires_threshold_hits(self):
        """Algorithm 1: freq > 1 moves S-tail to M (threshold 2)."""
        cache = S3FifoCache(20, small_ratio=0.1)
        cache.access("once")
        cache.access("once")  # freq now 1 -> NOT enough for M
        cache.access("twice")
        cache.access("twice")
        cache.access("twice")  # freq 2 -> qualifies
        for i in range(30):
            cache.access(f"filler{i}")
        assert not cache.in_small("once")
        assert not cache.in_main("once")
        assert cache.in_main("twice")

    def test_promotion_clears_frequency(self):
        cache = S3FifoCache(20, small_ratio=0.1)
        cache.access("x")
        cache.access("x")
        cache.access("x")
        for i in range(30):
            cache.access(f"f{i}")
        assert cache.in_main("x")
        assert cache._main["x"].freq <= 1  # cleared on move (then maybe hit)

    def test_main_reinsertion(self):
        """Objects in M with freq > 0 are reinserted with freq - 1."""
        cache = S3FifoCache(10, small_ratio=0.2)  # S=2, M=8, ghost=8
        # Drive x into M via ghost: enough fillers to evict x from S,
        # few enough that x stays within the 8-entry ghost window.
        cache.access("x")
        for i in range(12):
            cache.access(f"a{i}")
        assert "x" in cache.ghost
        cache.access("x")  # ghost hit -> M
        assert cache.in_main("x")
        cache.access("x")  # freq 1 in M
        # Force M evictions; x should survive one round.
        for i in range(40):
            cache.access(f"b{i}")
        # x was reinserted at least once before being evicted; by now
        # it is gone but the run must not have crashed and capacity holds.
        assert cache.used <= 10

    def test_capacity_never_exceeded(self):
        cache = S3FifoCache(50)
        for i in range(5000):
            cache.access(i % 200)
            assert cache.used <= 50

    def test_small_queue_fifo_order(self):
        cache = S3FifoCache(100, small_ratio=0.1)
        for i in range(5):
            cache.access(i)
        assert list(cache._small) == [0, 1, 2, 3, 4]
        cache.access(0)  # hit must not reorder S
        assert list(cache._small) == [0, 1, 2, 3, 4]

    def test_contains_and_len(self):
        cache = S3FifoCache(100)
        cache.access("a")
        assert "a" in cache
        assert len(cache) == 1

    def test_sized_objects(self):
        cache = S3FifoCache(100)
        cache.access("big", size=40)
        cache.access("small", size=5)
        assert cache.used == 45
        for i in range(50):
            cache.access(f"x{i}", size=10)
        assert cache.used <= 100


class TestQuickDemotionGuarantee:
    def test_one_hit_wonders_leave_within_bounded_insertions(self):
        """The paper's guarantee: a never-hit object is gone after at
        most |S| subsequent insertions once eviction pressure starts."""
        capacity = 50
        cache = S3FifoCache(capacity, small_ratio=0.1)
        # Warm the cache to full.
        for i in range(capacity):
            cache.access(f"warm{i}")
        cache.access("wonder")
        # |S| + slack new insertions must flush the one-hit wonder.
        for i in range(cache.small_capacity + capacity):
            cache.access(f"new{i}")
        assert "wonder" not in cache

    def test_wonder_found_in_ghost_after_demotion(self):
        capacity = 50
        cache = S3FifoCache(capacity, small_ratio=0.1)
        for i in range(capacity):
            cache.access(f"warm{i}")
        cache.access("wonder")
        for i in range(capacity):
            cache.access(f"new{i}")
        assert "wonder" in cache.ghost


class TestEfficiency:
    def test_beats_fifo_and_lru_on_zipf(self, small_zipf):
        s3 = simulate(S3FifoCache(50), small_zipf).miss_ratio
        fifo = simulate(FifoCache(50), small_zipf).miss_ratio
        lru = simulate(LruCache(50), small_zipf).miss_ratio
        assert s3 < fifo
        assert s3 < lru

    def test_scan_resistance(self):
        """Hot objects must survive a one-pass scan of cold keys."""
        from repro.traces.synthetic import zipf_with_scans

        trace = zipf_with_scans(
            1000, 20_000, alpha=1.0, scan_length=500, scan_every=2000, seed=3
        )
        s3 = simulate(S3FifoCache(100), list(trace)).miss_ratio
        lru = simulate(LruCache(100), list(trace)).miss_ratio
        assert s3 < lru

    def test_small_ratio_sweep_is_u_shaped_or_flat(self, skewed_zipf):
        """Miss ratio should not vary wildly between 5% and 20% S."""
        ratios = [0.05, 0.1, 0.2]
        misses = [
            simulate(
                S3FifoCache(100, small_ratio=r), list(skewed_zipf)
            ).miss_ratio
            for r in ratios
        ]
        assert max(misses) - min(misses) < 0.03

    def test_deterministic(self, small_zipf):
        r1 = simulate(S3FifoCache(50), list(small_zipf)).miss_ratio
        r2 = simulate(S3FifoCache(50), list(small_zipf)).miss_ratio
        assert r1 == r2


class TestGhostBehaviour:
    def test_ghost_bounded(self):
        cache = S3FifoCache(20)
        for i in range(10_000):
            cache.access(i)
        assert len(cache.ghost) <= cache.ghost.capacity

    def test_ghost_entry_consumed_on_readmission(self):
        cache = S3FifoCache(20, small_ratio=0.1)
        for i in range(30):
            cache.access(i)
        ghosted = [i for i in range(30) if i in cache.ghost]
        assert ghosted
        key = ghosted[0]
        cache.access(key)
        assert key not in cache.ghost

    def test_no_ghost_when_hit_in_cache(self):
        cache = S3FifoCache(100)
        cache.access("a")
        cache.access("a")
        assert "a" not in cache.ghost
