"""Behavioural tests for CAR, CLOCK-Pro, EELRU, LRFU, Hyperbolic, MQ,
and GDSF — the extended related-work policy set."""

import pytest

from repro.cache.car import CarCache
from repro.cache.clockpro import ClockProCache
from repro.cache.eelru import EelruCache
from repro.cache.gdsf import GdsfCache
from repro.cache.hyperbolic import HyperbolicCache
from repro.cache.lrfu import LrfuCache
from repro.cache.lru import LruCache
from repro.cache.mq import MqCache
from repro.sim.simulator import simulate
from repro.traces.synthetic import loop_trace, zipf_trace


class TestCar:
    def test_hit_sets_ref_without_movement(self):
        cache = CarCache(4)
        cache.access("a")
        cache.access("b")
        order_before = list(cache._t1)
        cache.access("a")
        assert list(cache._t1) == order_before  # no promotion on hit
        assert cache._t1["a"].ref

    def test_referenced_t1_graduates_to_t2(self):
        cache = CarCache(2)
        cache.access("a")
        cache.access("a")  # ref bit set
        cache.access("b")
        cache.access("c")  # replacement: a graduates, b evicted
        assert "a" in cache._t2
        assert "b" not in cache

    def test_ghost_hit_adapts_p(self):
        cache = CarCache(4)
        # Graduate two pages to T2 so T1 shrinks and B1 can retain
        # history (CAR bounds |T1|+|B1| at c).
        for key in "ab":
            cache.access(key)
            cache.access(key)
        for i in range(12):
            cache.access(i)
        assert cache._b1
        ghost = next(iter(cache._b1))
        p_before = cache.target_t1
        cache.access(ghost)
        assert cache.target_t1 >= p_before
        assert ghost in cache._t2

    def test_capacity_invariant(self):
        cache = CarCache(10)
        for i in range(2000):
            cache.access(i % 60)
        assert cache.used <= 10

    def test_beats_lru_on_zipf(self, small_zipf):
        car = simulate(CarCache(50), list(small_zipf)).miss_ratio
        lru = simulate(LruCache(50), list(small_zipf)).miss_ratio
        assert car <= lru + 0.01


class TestClockPro:
    def test_capacity_invariant(self):
        cache = ClockProCache(10)
        for i in range(2000):
            cache.access(i % 70)
        assert cache.used <= 10

    def test_test_period_promotion(self):
        cache = ClockProCache(10, cold_ratio=0.3)
        for i in range(10):
            cache.access(i)
        cache.access("x")  # evicts a cold page, x is cold-in-test
        cache.access("x")  # re-referenced: ref bit
        for i in range(20, 26):
            cache.access(i)
        # x was either promoted hot or at least retained over cold misses
        assert cache.stats.requests == 18

    def test_nonresident_test_hit_grows_cold_target(self):
        cache = ClockProCache(20, cold_ratio=0.1)
        for i in range(100):
            cache.access(i)
        # Re-request the most recently evicted page (safely in test —
        # the oldest test entry may expire during this very insertion).
        hit_key = next(reversed(cache._test), None)
        assert hit_key is not None
        target_before = cache.cold_target
        cache.access(hit_key)
        # The test hit adds +1; concurrent test expirations may offset
        # part of it, but the net move is never downward by more than
        # the expired entries of this single insertion.
        assert cache.cold_target >= target_before
        assert hit_key in cache._hot  # promoted straight to hot

    def test_scan_resistance_vs_lru(self):
        from repro.traces.synthetic import zipf_with_scans

        trace = zipf_with_scans(800, 20_000, alpha=1.0,
                                scan_length=400, scan_every=2500, seed=2)
        pro = simulate(ClockProCache(100), list(trace)).miss_ratio
        lru = simulate(LruCache(100), list(trace)).miss_ratio
        assert pro < lru + 0.02

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            ClockProCache(10, cold_ratio=0.0)


class TestEelru:
    def test_matches_lru_on_irm(self, small_zipf):
        eelru = simulate(EelruCache(50), list(small_zipf)).miss_ratio
        lru = simulate(LruCache(50), list(small_zipf)).miss_ratio
        assert eelru == pytest.approx(lru, abs=0.02)

    def test_beats_lru_on_loop(self):
        trace = loop_trace(300, 15_000)
        eelru = simulate(EelruCache(200), list(trace)).miss_ratio
        lru = simulate(LruCache(200), list(trace)).miss_ratio
        assert lru > 0.99  # LRU thrashes completely
        assert eelru < 0.7  # early eviction retains part of the loop

    def test_early_mode_engages_on_loop(self):
        """Early mode engages during a loop (it may relax again once
        the retained loop fragment starts producing early-region hits)."""
        cache = EelruCache(200)
        engaged = False
        for key in loop_trace(300, 10_000):
            cache.access(key)
            engaged = engaged or cache.early_mode
        assert engaged

    def test_lru_mode_on_skewed(self, small_zipf):
        cache = EelruCache(50)
        for key in small_zipf:
            cache.access(key)
        assert not cache.early_mode

    def test_capacity_invariant(self):
        cache = EelruCache(10)
        for i in range(1000):
            cache.access(i % 40)
        assert cache.used <= 10

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            EelruCache(10, early_point=0.0)


class TestLrfu:
    def test_large_lambda_behaves_like_lru(self, small_zipf):
        lrfu = simulate(LrfuCache(50, lam=5.0), list(small_zipf)).miss_ratio
        lru = simulate(LruCache(50), list(small_zipf)).miss_ratio
        assert lrfu == pytest.approx(lru, abs=0.02)

    def test_small_lambda_protects_frequent(self):
        cache = LrfuCache(3, lam=1e-5)  # ~LFU
        for _ in range(5):
            cache.access("hot")
        for i in range(10):
            cache.access(f"cold{i}")
        assert "hot" in cache

    def test_capacity_invariant(self):
        cache = LrfuCache(10)
        for i in range(1000):
            cache.access(i % 50)
        assert len(cache) <= 10

    def test_crf_updates_on_hit(self):
        cache = LrfuCache(10, lam=0.1)
        cache.access("a")
        crf1 = cache._entries["a"].crf
        cache.access("a")
        assert cache._entries["a"].crf > crf1

    def test_invalid_lambda(self):
        with pytest.raises(ValueError):
            LrfuCache(10, lam=0.0)


class TestHyperbolic:
    def test_protects_high_rate_objects(self):
        cache = HyperbolicCache(5, seed=0, size_aware=False)
        for _ in range(20):
            cache.access("hot")
        for i in range(30):
            cache.access(f"cold{i}")
        assert "hot" in cache

    def test_size_aware_prefers_small(self):
        cache = HyperbolicCache(100, seed=0, size_aware=True, samples=100)
        cache.access("big", size=50)
        cache.access("small", size=1)
        for i in range(200):
            cache.access(f"x{i}", size=10)
        # big (low priority / size) should be gone well before small
        assert "big" not in cache

    def test_capacity_invariant(self):
        cache = HyperbolicCache(10, seed=1)
        for i in range(1000):
            cache.access(i % 50)
        assert cache.used <= 10

    def test_deterministic(self, small_zipf):
        a = simulate(HyperbolicCache(50, seed=2), list(small_zipf)).miss_ratio
        b = simulate(HyperbolicCache(50, seed=2), list(small_zipf)).miss_ratio
        assert a == b

    def test_invalid_samples(self):
        with pytest.raises(ValueError):
            HyperbolicCache(10, samples=0)


class TestMq:
    def test_frequency_levels(self):
        assert MqCache._level_of(1, 8) == 0
        assert MqCache._level_of(2, 8) == 1
        assert MqCache._level_of(4, 8) == 2
        assert MqCache._level_of(1024, 8) == 7  # capped at top queue

    def test_promotion_across_queues(self):
        cache = MqCache(10)
        cache.access("a")
        assert cache._queues[0]["a"] is not None
        cache.access("a")
        assert "a" in cache._queues[1]

    def test_ghost_restores_frequency(self):
        # Short lifetime so the hot page is demoted and evicted by the
        # filler churn, landing in the Qout ghost.
        cache = MqCache(4, lifetime=6, ghost_factor=8)
        for _ in range(4):
            cache.access("hot")
        for i in range(40):
            cache.access(f"x{i}")
        assert "hot" not in cache
        cache.access("hot")  # returns at its remembered level
        entry = cache._find("hot")
        assert entry is not None and entry.level >= 1

    def test_lifetime_demotion(self):
        cache = MqCache(8, lifetime=5)
        cache.access("a")
        cache.access("a")  # level 1
        for i in range(20):
            cache.access(f"f{i % 4}")
        entry = cache._find("a")
        assert entry is None or entry.level <= 1

    def test_capacity_invariant(self):
        cache = MqCache(10)
        for i in range(2000):
            cache.access(i % 80)
        assert cache.used <= 10

    def test_invalid_queues(self):
        with pytest.raises(ValueError):
            MqCache(10, num_queues=1)


class TestGdsf:
    def test_inflation_monotone(self, small_zipf):
        cache = GdsfCache(30)
        inflations = []
        for key in small_zipf[:3000]:
            cache.access(key)
            inflations.append(cache.inflation)
        assert all(
            inflations[i] <= inflations[i + 1]
            for i in range(len(inflations) - 1)
        )

    def test_small_objects_preferred(self):
        cache = GdsfCache(100)
        cache.access("small", size=1)
        cache.access("big", size=50)
        for i in range(300):
            cache.access(f"x{i}", size=10)
        assert "big" not in cache  # big went first

    def test_frequency_raises_priority(self):
        cache = GdsfCache(10)
        for _ in range(5):
            cache.access("hot")
        for i in range(20):
            cache.access(f"cold{i}")
        assert "hot" in cache

    def test_capacity_invariant(self):
        cache = GdsfCache(10)
        for i in range(1000):
            cache.access(i % 50)
        assert cache.used <= 10

    def test_invalid_cost(self):
        with pytest.raises(ValueError):
            GdsfCache(10, cost=0)


class TestExtendedRegistry:
    def test_all_new_policies_registered(self):
        from repro.cache.registry import policy_names

        names = policy_names()
        for name in ["car", "clockpro", "eelru", "lrfu", "hyperbolic",
                     "mq", "gdsf", "s3fifo-ring"]:
            assert name in names

    def test_new_policies_beat_fifo_on_zipf(self):
        from repro.cache.registry import create_policy

        trace = zipf_trace(1000, 25_000, alpha=1.0, seed=5)
        fifo = simulate(create_policy("fifo", capacity=100), list(trace))
        for name in ["car", "clockpro", "lrfu", "hyperbolic", "mq", "gdsf"]:
            result = simulate(create_policy(name, capacity=100), list(trace))
            assert result.miss_ratio < fifo.miss_ratio, name
