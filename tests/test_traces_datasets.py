"""Tests for the Table-1 dataset stand-ins."""

import pytest

from repro.traces.analysis import one_hit_wonder_ratio, unique_objects
from repro.traces.datasets import (
    DATASETS,
    DatasetSpec,
    dataset_names,
    generate_dataset_trace,
    make_dataset_jobs,
    sized_dataset_trace,
)


class TestSpecs:
    def test_fourteen_datasets(self):
        assert len(DATASETS) == 14

    def test_table1_names_present(self):
        for name in [
            "msr", "fiu", "cloudphysics", "cdn1", "tencent_photo",
            "wikimedia", "systor", "tencent_cbs", "alibaba", "twitter",
            "social_network", "cdn2", "meta_kv", "meta_cdn",
        ]:
            assert name in DATASETS

    def test_cache_types(self):
        types = {spec.cache_type for spec in DATASETS.values()}
        assert types == {"block", "kv", "object"}

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            DatasetSpec("x", "weird", alpha=1.0, target_full_ohw=0.5)
        with pytest.raises(ValueError):
            DatasetSpec("x", "block", alpha=1.0, target_full_ohw=1.0)


class TestGeneration:
    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            generate_dataset_trace("nope")

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            generate_dataset_trace("msr", scale=0)

    def test_deterministic(self):
        a = generate_dataset_trace("msr", 0, seed=1)
        b = generate_dataset_trace("msr", 0, seed=1)
        assert a == b

    def test_trace_indexes_differ(self):
        a = generate_dataset_trace("msr", 0)
        b = generate_dataset_trace("msr", 1)
        assert a != b

    def test_scale_grows_footprint(self):
        small = unique_objects(generate_dataset_trace("fiu", 0, scale=0.5))
        large = unique_objects(generate_dataset_trace("fiu", 0, scale=2.0))
        assert large > small

    @pytest.mark.parametrize("dataset", dataset_names())
    def test_ohw_near_target(self, dataset):
        """Full-trace one-hit-wonder ratio lands near the Table 1 value."""
        spec = DATASETS[dataset]
        trace = generate_dataset_trace(dataset, 0, scale=0.5)
        got = one_hit_wonder_ratio(trace)
        assert got == pytest.approx(spec.target_full_ohw, abs=0.12), dataset

    def test_block_traces_contain_scans(self):
        trace = generate_dataset_trace("msr", 0)
        scan_keys = [k for k in trace if 1_000_000 <= k < 500_000_000]
        assert scan_keys

    def test_kv_traces_contain_churn(self):
        trace = generate_dataset_trace("twitter", 0)
        churn_keys = [k for k in trace if 10_000_000 <= k < 500_000_000]
        assert churn_keys


class TestSizedTraces:
    def test_sizes_stable(self):
        sized = sized_dataset_trace("wikimedia", 0, scale=0.3)
        by_key = {}
        for key, size in sized:
            by_key.setdefault(key, set()).add(size)
        assert all(len(v) == 1 for v in by_key.values())

    def test_mean_size_tracks_spec(self):
        sized = sized_dataset_trace("wikimedia", 0, scale=0.3)
        mean = sum(s for _, s in sized) / len(sized)
        # log-normal sampling: within a loose factor of the spec mean
        assert mean > DATASETS["wikimedia"].mean_size / 10


class TestJobs:
    def test_job_matrix_shape(self):
        jobs = make_dataset_jobs(
            ["lru", "s3fifo"],
            0.1,
            datasets=["msr"],
            traces_per_dataset=2,
        )
        assert len(jobs) == 4  # 2 traces x 2 policies
        assert {j.policy for j in jobs} == {"lru", "s3fifo"}

    def test_cache_size_from_footprint(self):
        jobs = make_dataset_jobs(
            ["lru"], 0.1, datasets=["msr"], traces_per_dataset=1
        )
        trace = generate_dataset_trace("msr", 0)
        assert jobs[0].cache_size == int(len(set(trace)) * 0.1)

    def test_small_caches_skipped(self):
        jobs = make_dataset_jobs(
            ["lru"],
            1e-7,
            datasets=["msr"],
            traces_per_dataset=1,
            min_cache_size=10,
        )
        assert jobs == []

    def test_policy_kwargs_attached(self):
        jobs = make_dataset_jobs(
            ["s3fifo"],
            0.1,
            datasets=["msr"],
            traces_per_dataset=1,
            policy_kwargs={"s3fifo": {"small_ratio": 0.2}},
        )
        assert jobs[0].policy_kwargs == {"small_ratio": 0.2}

    def test_tags_carry_dataset(self):
        jobs = make_dataset_jobs(
            ["lru"], 0.1, datasets=["fiu"], traces_per_dataset=1
        )
        assert jobs[0].tags["dataset"] == "fiu"
