"""Tier-1 smoke for the cluster tier.

One fast, deterministic spin-up of a two-node cluster — enough to
catch import rot, protocol drift, or teardown leaks in the default
test run.  The full suite (failover, read-repair, membership) carries
the ``cluster`` marker and runs via ``make cluster``.
"""

import multiprocessing
import time

from repro.cluster import ClusterCacheService


def test_cluster_smoke_roundtrip():
    with ClusterCacheService(40, "s3fifo", num_nodes=2,
                             replication=2, vnodes=16) as svc:
        items = [(f"k{i}", i) for i in range(10)]
        assert all(svc.set_many(items))
        assert svc.get_many([k for k, _ in items]) == [
            v for _, v in items
        ]
        assert svc.get("absent") is None
        stats = svc.stats()
        assert stats["backend"] == "cluster"
        assert stats["nodes_up"] == 2
        assert stats["failovers"] == 0
    deadline = time.monotonic() + 5.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.02)
    assert multiprocessing.active_children() == []
