"""Tests for S3-FIFO with a SIEVE main queue (Section 7 extension)."""

import pytest

from repro.core.s3fifo import S3FifoCache
from repro.core.s3sieve import S3SieveCache
from repro.sim.simulator import simulate
from repro.traces.datasets import generate_dataset_trace
from repro.traces.synthetic import zipf_trace


class TestConstruction:
    def test_split(self):
        cache = S3SieveCache(100)
        assert cache.small_capacity == 10

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            S3SieveCache(100, small_ratio=1.0)


class TestBehaviour:
    def test_hit_miss(self):
        cache = S3SieveCache(20)
        assert cache.access("a") is False
        assert cache.access("a") is True

    def test_capacity_invariant(self):
        cache = S3SieveCache(20)
        for i in range(3000):
            cache.access(i % 90)
            assert cache.used <= 20

    def test_ghost_routes_to_main(self):
        cache = S3SieveCache(20, small_ratio=0.1)
        for i in range(25):
            cache.access(i)
        ghosted = next(i for i in range(25) if i in cache.ghost)
        cache.access(ghosted)
        assert cache.in_main(ghosted)

    def test_main_visited_objects_survive_scan(self):
        cache = S3SieveCache(30, small_ratio=0.1)
        # Drive "hot" into M via ghost and keep touching it.
        cache.access("hot")
        for i in range(40):
            cache.access(f"w{i}")
        cache.access("hot")  # likely ghost hit -> main
        for i in range(100, 160):
            cache.access(i)
            cache.access("hot")
        assert "hot" in cache

    def test_sized_objects(self):
        cache = S3SieveCache(100)
        for i in range(100):
            cache.access(i, size=7)
            assert cache.used <= 100


class TestPaperSuggestion:
    """Section 7: SIEVE in the main queue should match or improve on
    plain S3-FIFO for web-like (skewed, scan-free) workloads."""

    def test_web_workload(self):
        trace = zipf_trace(3000, 60_000, alpha=1.0, seed=7)
        sieve_mr = simulate(S3SieveCache(300), list(trace)).miss_ratio
        fifo_mr = simulate(S3FifoCache(300), list(trace)).miss_ratio
        assert sieve_mr <= fifo_mr + 0.01

    def test_kv_dataset(self):
        trace = generate_dataset_trace("twitter", 0, scale=0.5, seed=1)
        capacity = max(10, len(set(trace)) // 10)
        sieve_mr = simulate(S3SieveCache(capacity), list(trace)).miss_ratio
        fifo_mr = simulate(S3FifoCache(capacity), list(trace)).miss_ratio
        assert sieve_mr <= fifo_mr + 0.02

    def test_still_scan_resistant(self):
        """The small queue keeps providing quick demotion even with the
        SIEVE main queue."""
        from repro.cache.lru import LruCache
        from repro.traces.synthetic import zipf_with_scans

        trace = zipf_with_scans(1000, 20_000, alpha=1.0,
                                scan_length=500, scan_every=2000, seed=3)
        s3s = simulate(S3SieveCache(100), list(trace)).miss_ratio
        lru = simulate(LruCache(100), list(trace)).miss_ratio
        assert s3s < lru

    def test_registered(self):
        from repro.cache.registry import create_policy

        cache = create_policy("s3sieve", capacity=50)
        assert cache.name == "s3sieve"
