"""Tests for the sampling event tracer and its dump plumbing."""

import io
import json
import os
import signal

import pytest

from repro.obs import EventTracer, dump_on_error, install_signal_dump


class TestRingBuffer:
    def test_keeps_last_capacity_events(self):
        tr = EventTracer(capacity=4)
        for i in range(10):
            tr.record("get", i, "hit")
        assert tr.seen == 10
        assert len(tr) == 4
        assert [e["seq"] for e in tr.events()] == [6, 7, 8, 9]

    def test_sampling_thins_the_stream(self):
        tr = EventTracer(capacity=100, sample_every=3)
        for i in range(12):
            tr.record("get", i, "miss")
        assert tr.seen == 12
        assert [e["seq"] for e in tr.events()] == [0, 3, 6, 9]

    def test_event_dict_shape(self):
        tr = EventTracer()
        tr.record("set", "user:1", "stored", latency_us=12.3456, shard=2)
        tr.record("get", 7, "hit")
        full, minimal = tr.events()
        assert full == {
            "seq": 0,
            "op": "set",
            "key": "'user:1'",
            "outcome": "stored",
            "latency_us": 12.346,
            "shard": 2,
        }
        assert minimal == {"seq": 1, "op": "get", "key": "7", "outcome": "hit"}

    def test_validation(self):
        with pytest.raises(ValueError):
            EventTracer(capacity=0)
        with pytest.raises(ValueError):
            EventTracer(sample_every=0)

    def test_clear(self):
        tr = EventTracer()
        tr.record("get", 1, "hit")
        tr.clear()
        assert len(tr) == 0
        assert tr.seen == 1  # the stream counter survives


class TestDump:
    def test_dump_is_json_lines(self):
        tr = EventTracer()
        tr.record("get", 1, "hit")
        tr.record("get", 2, "miss")
        text = tr.dump()
        lines = text.strip().splitlines()
        assert [json.loads(line)["seq"] for line in lines] == [0, 1]

    def test_dump_writes_to_stream(self):
        tr = EventTracer()
        tr.record("delete", "k", "absent")
        out = io.StringIO()
        returned = tr.dump(out)
        assert out.getvalue() == returned != ""

    def test_empty_dump_is_empty_string(self):
        assert EventTracer().dump() == ""


class TestDumpOnError:
    def test_passthrough_on_success(self):
        tr = EventTracer()
        out = io.StringIO()
        assert dump_on_error(tr, lambda: 42, stream=out) == 42
        assert out.getvalue() == ""

    def test_dumps_tail_and_reraises(self):
        tr = EventTracer()
        tr.record("get", "victim", "error")
        out = io.StringIO()

        def boom():
            raise RuntimeError("replay died")

        with pytest.raises(RuntimeError):
            dump_on_error(tr, boom, stream=out)
        text = out.getvalue()
        assert "event tracer: last 1 of 1 requests" in text
        assert "'victim'" in text

    def test_none_tracer_accepted(self):
        def boom():
            raise RuntimeError("x")

        with pytest.raises(RuntimeError):
            dump_on_error(None, boom)


class TestSignalDump:
    @pytest.mark.skipif(
        not hasattr(signal, "SIGUSR1"), reason="no SIGUSR1 on this platform"
    )
    def test_sigusr1_appends_to_path(self, tmp_path):
        tr = EventTracer()
        tr.record("get", 99, "hit")
        dump_file = tmp_path / "trace.jsonl"
        restore = install_signal_dump(tr, path=str(dump_file))
        try:
            os.kill(os.getpid(), signal.SIGUSR1)
        finally:
            restore()
        lines = dump_file.read_text().strip().splitlines()
        assert json.loads(lines[0])["key"] == "99"

    @pytest.mark.skipif(
        not hasattr(signal, "SIGUSR1"), reason="no SIGUSR1 on this platform"
    )
    def test_restore_reinstates_previous_handler(self):
        tr = EventTracer()
        previous = signal.getsignal(signal.SIGUSR1)
        restore = install_signal_dump(tr)
        assert signal.getsignal(signal.SIGUSR1) is not previous
        restore()
        assert signal.getsignal(signal.SIGUSR1) is previous
