"""Tests for the Fig. 5 executable walkthrough."""

from repro.core.walkthrough import (
    DEMO_TRACE,
    demo,
    format_walkthrough,
    walkthrough,
)


class TestWalkthrough:
    def test_step_per_request(self):
        steps = walkthrough(["a", "b", "a"], capacity=4)
        assert len(steps) == 3
        assert [s.hit for s in steps] == [False, False, True]

    def test_queues_disjoint(self):
        for step in walkthrough(DEMO_TRACE, capacity=6):
            assert not (set(step.small) & set(step.main))
            assert not (set(step.small) & set(step.ghost))
            assert not (set(step.main) & set(step.ghost))

    def test_demo_shows_all_three_flows(self):
        """The demo trace exercises quick demotion (ghost entries),
        promotion to M, and frequency tracking."""
        steps = walkthrough(DEMO_TRACE, capacity=6)
        final = steps[-1]
        assert final.ghost, "one-hit wonders must land in the ghost"
        assert "x" in final.main, "the hot object must graduate to M"
        assert final.freqs["x"] >= 1

    def test_frequency_capped(self):
        steps = walkthrough(["a"] + ["a"] * 10, capacity=4)
        assert steps[-1].freqs["a"] == 3  # two-bit counter

    def test_format_renders_every_step(self):
        steps = walkthrough(DEMO_TRACE, capacity=6)
        text = format_walkthrough(steps)
        assert text.count("\n") == len(steps)  # header + one line each
        assert "hit" in text and "miss" in text

    def test_demo_helper(self):
        assert "ghost" in demo()

    def test_continues_existing_cache(self):
        from repro.core.s3fifo import S3FifoCache

        cache = S3FifoCache(6)
        walkthrough(["a", "b"], capacity=6, cache=cache)
        steps = walkthrough(["a"], capacity=6, cache=cache)
        assert steps[0].hit  # state carried over
