"""Tests for trace file I/O (CSV and binary formats)."""

import pytest

from repro.sim.request import Request
from repro.traces.readers import (
    read_binary_trace,
    read_csv_trace,
    write_binary_trace,
    write_csv_trace,
)
from repro.traces.synthetic import zipf_trace


class TestCsv:
    def test_roundtrip_keys(self, tmp_path):
        path = tmp_path / "t.csv"
        trace = [1, 2, 1, 3]
        assert write_csv_trace(path, trace) == 4
        back = list(read_csv_trace(path))
        assert [r.key for r in back] == trace
        assert all(r.size == 1 for r in back)

    def test_roundtrip_sized(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv_trace(path, [(5, 100), (6, 200)])
        back = list(read_csv_trace(path))
        assert [(r.key, r.size) for r in back] == [(5, 100), (6, 200)]

    def test_roundtrip_requests(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv_trace(path, [Request(9, size=3, time=7)])
        back = list(read_csv_trace(path))
        assert back[0].key == 9
        assert back[0].size == 3
        assert back[0].time == 7

    def test_header_skipped(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("time,key,size\n1,42,8\n")
        back = list(read_csv_trace(path))
        assert len(back) == 1
        assert back[0].key == 42

    def test_missing_size_defaults(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("1,42\n")
        assert list(read_csv_trace(path))[0].size == 1

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("1,42,1\n\n2,43,1\n")
        assert len(list(read_csv_trace(path))) == 2


class TestBinary:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "t.bin"
        trace = zipf_trace(100, 1000, seed=0)
        assert write_binary_trace(path, trace) == 1000
        back = [r.key for r in read_binary_trace(path)]
        assert back == trace

    def test_roundtrip_sized(self, tmp_path):
        path = tmp_path / "t.bin"
        write_binary_trace(path, [(7, 4096), (8, 12)])
        back = list(read_binary_trace(path))
        assert [(r.key, r.size) for r in back] == [(7, 4096), (8, 12)]

    def test_times_sequential_by_default(self, tmp_path):
        path = tmp_path / "t.bin"
        write_binary_trace(path, [10, 11])
        back = list(read_binary_trace(path))
        assert [r.time for r in back] == [1, 2]

    def test_truncated_file_raises(self, tmp_path):
        path = tmp_path / "t.bin"
        write_binary_trace(path, [1, 2])
        data = path.read_bytes()
        path.write_bytes(data[:-3])
        with pytest.raises(ValueError):
            list(read_binary_trace(path))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "t.bin"
        path.write_bytes(b"")
        assert list(read_binary_trace(path)) == []

    def test_simulation_from_file(self, tmp_path):
        """End-to-end: write, stream back, simulate."""
        from repro.cache.fifo import FifoCache
        from repro.sim.simulator import simulate

        path = tmp_path / "t.bin"
        trace = zipf_trace(100, 2000, seed=1)
        write_binary_trace(path, trace)
        from_file = simulate(FifoCache(20), read_binary_trace(path))
        in_memory = simulate(FifoCache(20), trace)
        assert from_file.miss_ratio == in_memory.miss_ratio


class TestFormatErrors:
    def test_csv_error_names_file_record_offset(self, tmp_path):
        from repro.traces.readers import TraceFormatError

        path = tmp_path / "t.csv"
        path.write_text("1,42,8\n2,not-a-key,8\n")
        with pytest.raises(TraceFormatError) as info:
            list(read_csv_trace(path))
        err = info.value
        assert err.path == str(path)
        assert err.record == 2
        assert err.offset == len("1,42,8\n")
        assert "not-a-key" in str(err)

    def test_csv_non_strict_skips_and_counts(self, tmp_path):
        from repro.traces.readers import SkippedRecords

        path = tmp_path / "t.csv"
        path.write_text("1,10,1\nbroken\n2,20,1\nworse,x\n3,30,1\n")
        skipped = SkippedRecords()
        keys = [
            r.key for r in read_csv_trace(path, strict=False, skipped=skipped)
        ]
        assert keys == [10, 20, 30]
        assert skipped.count == 2
        assert skipped.first_error.record == 2

    def test_binary_zero_size_record_located(self, tmp_path):
        from repro.traces.readers import TraceFormatError

        path = tmp_path / "t.bin"
        write_binary_trace(path, [(1, 8), (2, 8), (3, 8)])
        data = bytearray(path.read_bytes())
        data[16:32] = b"\x00" * 16  # zero out record 2 (size 0 = invalid)
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError) as info:
            list(read_binary_trace(path))
        assert info.value.record == 2
        assert info.value.offset == 16

    def test_binary_non_strict_salvages(self, tmp_path):
        from repro.traces.readers import SkippedRecords

        path = tmp_path / "t.bin"
        write_binary_trace(path, [(1, 8), (2, 8), (3, 8)])
        data = bytearray(path.read_bytes())
        data[16:32] = b"\x00" * 16
        path.write_bytes(bytes(data))
        skipped = SkippedRecords()
        keys = [
            r.key
            for r in read_binary_trace(path, strict=False, skipped=skipped)
        ]
        assert keys == [1, 3]
        assert skipped.count == 1

    def test_truncation_non_strict_stops_cleanly(self, tmp_path):
        from repro.traces.readers import SkippedRecords

        path = tmp_path / "t.bin"
        write_binary_trace(path, [1, 2])
        path.write_bytes(path.read_bytes()[:-3])
        skipped = SkippedRecords()
        keys = [
            r.key
            for r in read_binary_trace(path, strict=False, skipped=skipped)
        ]
        assert keys == [1]
        assert skipped.count == 1
        assert "truncated" in skipped.first_error.reason

    def test_error_is_a_value_error(self, tmp_path):
        from repro.traces.readers import TraceFormatError

        assert issubclass(TraceFormatError, ValueError)
