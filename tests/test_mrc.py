"""Tests for miss-ratio-curve construction (exact and sampled)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.lru import LruCache
from repro.sim.mrc import (
    MissRatioCurve,
    lru_mrc,
    mrc_error,
    reuse_distances,
    sampled_mrc,
    spatial_sample,
)
from repro.sim.simulator import simulate
from repro.structures.fenwick import FenwickTree
from repro.traces.synthetic import zipf_trace


class TestFenwick:
    def test_prefix_sums(self):
        t = FenwickTree(10)
        t.add(3, 5)
        t.add(7, 2)
        assert t.prefix_sum(2) == 0
        assert t.prefix_sum(3) == 5
        assert t.prefix_sum(10) == 7

    def test_range_sum(self):
        t = FenwickTree(8)
        for i in range(1, 9):
            t.add(i, i)
        assert t.range_sum(3, 5) == 3 + 4 + 5
        assert t.range_sum(5, 3) == 0

    def test_negative_delta(self):
        t = FenwickTree(4)
        t.add(2, 3)
        t.add(2, -1)
        assert t.total() == 2

    def test_bounds(self):
        t = FenwickTree(4)
        with pytest.raises(IndexError):
            t.add(0)
        with pytest.raises(IndexError):
            t.add(5)
        with pytest.raises(ValueError):
            FenwickTree(0)

    @given(st.lists(st.tuples(st.integers(1, 20), st.integers(-3, 3)),
                    max_size=100))
    @settings(max_examples=30)
    def test_matches_naive_model(self, ops):
        t = FenwickTree(20)
        model = [0] * 21
        for idx, delta in ops:
            t.add(idx, delta)
            model[idx] += delta
        for i in range(21):
            assert t.prefix_sum(i) == sum(model[: i + 1])


class TestReuseDistances:
    def test_simple_sequence(self):
        # a b a: a's second access has 1 distinct key (b) between -> 2
        assert reuse_distances(["a", "b", "a"]) == [None, None, 2]

    def test_immediate_reuse(self):
        assert reuse_distances(["a", "a"]) == [None, 1]

    def test_all_distinct(self):
        assert reuse_distances([1, 2, 3]) == [None, None, None]

    def test_empty(self):
        assert reuse_distances([]) == []

    def test_matches_lru_simulation(self):
        """distance <= C  <=>  hit in an LRU cache of size C."""
        trace = zipf_trace(200, 4000, alpha=1.0, seed=3)
        distances = reuse_distances(trace)
        for capacity in (10, 50, 100):
            cache = LruCache(capacity)
            for key, distance in zip(trace, distances):
                hit = cache.access(key)
                expected = distance is not None and distance <= capacity
                assert hit == expected, (key, distance, capacity)


class TestLruMrc:
    def test_monotone_decreasing(self):
        trace = zipf_trace(500, 10_000, alpha=0.9, seed=1)
        curve = lru_mrc(trace)
        assert curve.is_monotone()

    def test_matches_direct_simulation(self):
        trace = zipf_trace(300, 6000, alpha=1.0, seed=2)
        curve = lru_mrc(trace, sizes=[20, 60, 150])
        for size, mr in zip(curve.sizes, curve.miss_ratios):
            direct = simulate(LruCache(size), list(trace)).miss_ratio
            assert mr == pytest.approx(direct, abs=1e-12), size

    def test_at_interpolation(self):
        curve = MissRatioCurve([10, 100], [0.5, 0.2])
        assert curve.at(10) == 0.5
        assert curve.at(50) == 0.5
        assert curve.at(100) == 0.2
        assert curve.at(1000) == 0.2

    def test_at_below_first_point_is_conservative(self):
        """Regression: sizes left of the first measured point used to
        return that point's (optimistic) miss ratio; the docstring
        always promised conservative, i.e. 1.0."""
        curve = MissRatioCurve([10, 100], [0.5, 0.2])
        assert curve.at(5) == 1.0
        assert curve.at(9) == 1.0
        assert curve.at(0) == 1.0

    def test_cumulative_sweep_matches_quadratic_golden(self):
        """Regression: lru_mrc's one cumulative histogram sweep must be
        byte-identical to the old per-size re-summing on a golden
        trace — same integer sums feed the same float divisions."""
        trace = zipf_trace(400, 8000, alpha=1.0, seed=7)
        sizes = [1, 3, 17, 64, 64, 200, 399, 1000]
        curve = lru_mrc(trace, sizes=sizes)
        # The pre-fix implementation, inlined.
        distances = reuse_distances(trace)
        histogram = {}
        for d in distances:
            if d is not None:
                histogram[d] = histogram.get(d, 0) + 1
        total = len(distances)
        expected = [
            (total - sum(c for d, c in histogram.items() if d <= size))
            / total
            for size in sorted(sizes)
        ]
        assert curve.sizes == sorted(sizes)
        assert curve.miss_ratios == expected  # ==, not approx: bytes

    def test_empty_trace_raises(self):
        with pytest.raises(ValueError):
            lru_mrc([])

    def test_curve_validation(self):
        with pytest.raises(ValueError):
            MissRatioCurve([1], [0.5, 0.2])
        with pytest.raises(ValueError):
            MissRatioCurve([], [])


class TestSpatialSampling:
    def test_rate_one_is_identity(self):
        trace = [1, 2, 3]
        assert spatial_sample(trace, 1.0) == trace

    def test_per_key_consistency(self):
        """All requests of a sampled key survive; none of an unsampled."""
        trace = zipf_trace(500, 10_000, seed=0)
        sample = spatial_sample(trace, 0.3, seed=1)
        sampled_keys = set(sample)
        for key in sampled_keys:
            assert trace.count(key) == sample.count(key)

    def test_rate_controls_unique_fraction(self):
        trace = list(range(10_000))
        sample = spatial_sample(trace, 0.2, seed=0)
        assert 0.15 < len(sample) / len(trace) < 0.25

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            spatial_sample([1], 0.0)
        with pytest.raises(ValueError):
            spatial_sample([1], 1.5)

    def test_seed_changes_sample(self):
        trace = list(range(1000))
        assert spatial_sample(trace, 0.5, seed=0) != spatial_sample(
            trace, 0.5, seed=1
        )


class TestSampledMrc:
    @pytest.fixture(scope="class")
    def big_trace(self):
        return zipf_trace(20_000, 150_000, alpha=0.9, seed=0)

    def test_approximates_exact_lru(self, big_trace):
        sizes = [1000, 4000]
        exact = lru_mrc(big_trace, sizes=sizes)
        estimate = sampled_mrc(
            "lru", big_trace, sizes=sizes, rate=0.15, seed=0, ensembles=3
        )
        assert mrc_error(estimate, exact) < 0.08

    def test_works_for_s3fifo(self, big_trace):
        curve = sampled_mrc(
            "s3fifo", big_trace, sizes=[1000, 4000], rate=0.15, ensembles=2
        )
        assert curve.miss_ratios[0] > curve.miss_ratios[1]

    def test_validation(self):
        with pytest.raises(ValueError):
            sampled_mrc("lru", [1, 2], sizes=[])
        with pytest.raises(ValueError):
            sampled_mrc("lru", [1, 2], sizes=[1], ensembles=0)

    def test_mrc_error_helper(self):
        a = MissRatioCurve([10], [0.5])
        b = MissRatioCurve([10], [0.4])
        assert mrc_error(a, b) == pytest.approx(0.1)
