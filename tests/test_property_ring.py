"""Property-based tests (hypothesis) for the consistent-hash ring.

The three promises the cluster tier leans on, checked over randomised
node sets and key populations:

* placement is deterministic and reasonably balanced,
* ``nodes_for`` returns distinct live nodes in a stable failover order,
* membership change moves a bounded fraction of keys (~R/(N+1) on a
  join — the consistent-hashing contract that makes rebalancing cheap).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.ring import HashRing, key_movement

node_counts = st.sampled_from([2, 4, 8])
seeds = st.integers(min_value=0, max_value=2**16)


def _keys(seed, count=2_000):
    return [f"key-{seed}-{i}" for i in range(count)]


class TestPlacement:
    @given(num_nodes=node_counts, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_deterministic_and_total(self, num_nodes, seed):
        ring = HashRing(range(num_nodes), vnodes=32)
        rebuilt = HashRing(range(num_nodes), vnodes=32)
        for key in _keys(seed, count=200):
            owner = ring.node_for(key)
            assert owner in range(num_nodes)
            assert rebuilt.node_for(key) == owner

    @given(num_nodes=node_counts, seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_balance_bounded(self, num_nodes, seed):
        # With 128 vnodes per node no node should own a grossly outsized
        # share: the hottest node stays under 2x the fair share.
        ring = HashRing(range(num_nodes), vnodes=128)
        spread = ring.spread(_keys(seed))
        assert sum(spread.values()) == 2_000
        fair = 2_000 / num_nodes
        assert max(spread.values()) < 2.0 * fair


class TestReplicaSets:
    @given(
        num_nodes=node_counts,
        replication=st.integers(min_value=1, max_value=3),
        seed=seeds,
    )
    @settings(max_examples=25, deadline=None)
    def test_distinct_and_prefix_stable(self, num_nodes, replication, seed):
        replication = min(replication, num_nodes)
        ring = HashRing(range(num_nodes), vnodes=32)
        for key in _keys(seed, count=200):
            owners = ring.nodes_for(key, replication)
            assert len(owners) == replication
            assert len(set(owners)) == replication
            # The R-set extends the (R-1)-set: failover order is a
            # stable walk, not a reshuffle.
            if replication > 1:
                assert owners[: replication - 1] == ring.nodes_for(
                    key, replication - 1
                )
            assert owners[0] == ring.node_for(key)


class TestMovementBound:
    @given(num_nodes=node_counts, seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_join_moves_bounded_fraction(self, num_nodes, seed):
        # Adding one node should pull about 1/(N+1) of primary
        # ownership to the joiner — never an order of magnitude more.
        before = HashRing(range(num_nodes), vnodes=128)
        after = HashRing(range(num_nodes + 1), vnodes=128)
        keys = _keys(seed)
        moved = key_movement(before, after, keys, replication=1)
        ideal = 1.0 / (num_nodes + 1)
        assert moved <= ideal + 0.1
        # The joiner actually takes ownership of something.
        assert moved > 0.0

    @given(num_nodes=node_counts, seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_leave_moves_bounded_fraction(self, num_nodes, seed):
        # Removing a node re-homes only that node's share: survivors'
        # keys gain a new owner for about 1/N of the population.
        before = HashRing(range(num_nodes + 1), vnodes=128)
        after = HashRing(range(num_nodes), vnodes=128)
        keys = _keys(seed)
        moved = key_movement(before, after, keys, replication=1)
        ideal = 1.0 / (num_nodes + 1)
        assert moved <= ideal + 0.1

    @given(num_nodes=node_counts, seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_untouched_keys_keep_owner(self, num_nodes, seed):
        before = HashRing(range(num_nodes), vnodes=128)
        after = HashRing(range(num_nodes + 1), vnodes=128)
        for key in _keys(seed, count=500):
            old, new = before.node_for(key), after.node_for(key)
            # A key either stays put or moves to the joiner — joins
            # never shuffle keys between surviving nodes.
            assert new == old or new == num_nodes
