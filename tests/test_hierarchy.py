"""Tests for the multi-level cache hierarchy."""

import pytest

from repro.cache.fifo import FifoCache
from repro.cache.lru import LruCache
from repro.core.s3fifo import S3FifoCache
from repro.core.s3fifo_ring import S3FifoRingCache
from repro.hierarchy.multilevel import MultiLevelCache
from repro.sim.simulator import simulate
from repro.traces.synthetic import zipf_trace


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            MultiLevelCache([])
        with pytest.raises(ValueError):
            MultiLevelCache([LruCache(4)], mode="weird")


class TestExclusive:
    def test_l1_eviction_demotes_to_l2(self):
        h = MultiLevelCache([FifoCache(2), FifoCache(4)], mode="exclusive")
        for key in ["a", "b", "c"]:
            h.request(key)
        # a evicted from L1 -> demoted into L2.
        assert "a" in h.levels[1]
        assert "a" not in h.levels[0]
        assert h.result.demotions == 1

    def test_l2_hit_promotes(self):
        h = MultiLevelCache([FifoCache(2), FifoCache(4)], mode="exclusive")
        for key in ["a", "b", "c"]:
            h.request(key)
        assert h.request("a") is True  # L2 hit
        assert h.result.level_hits[1] == 1
        assert "a" in h.levels[0]  # promoted
        assert h.result.promotions == 1

    def test_strict_exclusivity_with_ring_delete(self):
        h = MultiLevelCache(
            [S3FifoRingCache(4), S3FifoRingCache(8)], mode="exclusive"
        )
        for i in range(20):
            h.request(i)
        hit_key = next(
            (k for k in range(20) if k in h.levels[1]), None
        )
        assert hit_key is not None
        h.request(hit_key)
        assert hit_key in h.levels[0]
        assert hit_key not in h.levels[1]  # deleted below on promotion

    def test_last_level_eviction_leaves_hierarchy(self):
        h = MultiLevelCache([FifoCache(2), FifoCache(2)], mode="exclusive")
        for i in range(10):
            h.request(i)
        resident = sum(1 for i in range(10) if i in h)
        assert resident <= 4

    def test_victim_cache_beats_single_l1(self):
        """L1+victim L2 of the same total size beats L1 alone."""
        trace = zipf_trace(1000, 20_000, alpha=1.0, seed=0)
        hierarchy = MultiLevelCache(
            [LruCache(50), LruCache(150)], mode="exclusive"
        )
        hierarchy.run(list(trace))
        small_only = simulate(LruCache(50), list(trace)).miss_ratio
        assert hierarchy.result.miss_ratio < small_only

    def test_three_levels_chain(self):
        h = MultiLevelCache(
            [FifoCache(2), FifoCache(2), FifoCache(4)], mode="exclusive"
        )
        for i in range(8):
            h.request(i)
        # Oldest objects cascade to L3.
        assert any(i in h.levels[2] for i in range(4))


class TestInclusive:
    def test_miss_fills_all_levels(self):
        h = MultiLevelCache([LruCache(2), LruCache(8)], mode="inclusive")
        h.request("a")
        assert "a" in h.levels[0] and "a" in h.levels[1]

    def test_l1_eviction_keeps_l2_copy(self):
        h = MultiLevelCache([LruCache(1), LruCache(8)], mode="inclusive")
        h.request("a")
        h.request("b")  # evicts a from L1
        assert "a" not in h.levels[0]
        assert "a" in h.levels[1]
        assert h.result.demotions == 0

    def test_l2_hit_refills_l1(self):
        h = MultiLevelCache([LruCache(1), LruCache(8)], mode="inclusive")
        h.request("a")
        h.request("b")
        assert h.request("a") is True
        assert "a" in h.levels[0]


class TestQuickDemotionInHierarchy:
    def test_s3fifo_l1_beats_lru_l1(self):
        """Quick demotion at L1 helps the whole hierarchy: one-hit
        wonders leave L1 fast and don't pollute the demotion stream."""
        trace = zipf_trace(2000, 40_000, alpha=1.0, seed=5)
        lru_h = MultiLevelCache(
            [LruCache(50), FifoCache(200)], mode="exclusive"
        )
        lru_h.run(list(trace))
        s3_h = MultiLevelCache(
            [S3FifoCache(50), FifoCache(200)], mode="exclusive"
        )
        s3_h.run(list(trace))
        assert s3_h.result.miss_ratio <= lru_h.result.miss_ratio + 0.005

    def test_stats_consistency(self):
        h = MultiLevelCache([FifoCache(4), FifoCache(8)], mode="exclusive")
        trace = zipf_trace(100, 2000, seed=1)
        h.run(list(trace))
        assert (
            h.result.misses + sum(h.result.level_hits) == h.result.requests
        )
        assert h.result.demotion_bytes == h.result.demotions  # unit sizes
