"""Cross-module integration tests: the paper's qualitative claims
exercised end-to-end through the public API."""

import pytest

from repro import S3FifoCache, create_policy, simulate, zipf_trace
from repro.sim.metrics import miss_ratio_reduction
from repro.traces.analysis import annotate_next_access
from repro.traces.datasets import generate_dataset_trace
from repro.traces.synthetic import zipf_with_scans


@pytest.fixture(scope="module")
def eval_traces():
    """A small cross-section of workload types."""
    return {
        "zipf": zipf_trace(2000, 40_000, alpha=1.0, seed=0),
        "scan": zipf_with_scans(
            1500, 30_000, alpha=0.9, scan_length=300, scan_every=3000, seed=1
        ),
        "msr": generate_dataset_trace("msr", 0, scale=0.5, seed=2),
        "twitter": generate_dataset_trace("twitter", 0, scale=0.5, seed=2),
    }


def _miss(name, trace, capacity, **kwargs):
    return simulate(
        create_policy(name, capacity=capacity, **kwargs), list(trace)
    ).miss_ratio


class TestHeadlineClaims:
    def test_s3fifo_beats_fifo_everywhere(self, eval_traces):
        for label, trace in eval_traces.items():
            capacity = max(10, len(set(trace)) // 10)
            s3 = _miss("s3fifo", trace, capacity)
            fifo = _miss("fifo", trace, capacity)
            assert s3 < fifo, label

    def test_s3fifo_beats_lru_everywhere(self, eval_traces):
        for label, trace in eval_traces.items():
            capacity = max(10, len(set(trace)) // 10)
            assert _miss("s3fifo", trace, capacity) < _miss(
                "lru", trace, capacity
            ), label

    def test_s3fifo_top3_among_paper_policies(self, eval_traces):
        """The robustness claim, over the paper's Fig. 6 algorithm set:
        top-3 on every workload type here."""
        from repro.experiments.common import FIG6_POLICIES

        for label, trace in eval_traces.items():
            capacity = max(10, len(set(trace)) // 10)
            scores = {
                name: _miss(name, trace, capacity) for name in FIG6_POLICIES
            }
            ranked = sorted(scores, key=scores.get)
            assert ranked.index("s3fifo") < 3, (label, ranked[:5])

    def test_belady_remains_unbeaten(self, eval_traces):
        for label, trace in eval_traces.items():
            capacity = max(10, len(set(trace)) // 10)
            annotated = annotate_next_access(list(trace))
            opt = simulate(
                create_policy("belady", capacity=capacity), annotated
            ).miss_ratio
            for name in ["s3fifo", "tinylfu", "arc", "lirs"]:
                assert opt <= _miss(name, trace, capacity) + 1e-9, (label, name)

    def test_reduction_metric_sanity(self, eval_traces):
        trace = eval_traces["zipf"]
        capacity = 200
        fifo = _miss("fifo", trace, capacity)
        s3 = _miss("s3fifo", trace, capacity)
        reduction = miss_ratio_reduction(fifo, s3)
        assert 0.0 < reduction < 1.0


class TestClaimQuickDemotion:
    def test_clock_between_fifo_and_s3fifo(self, eval_traces):
        """Reinsertion alone (CLOCK) helps but is insufficient (Sec. 3)."""
        trace = eval_traces["zipf"]
        capacity = 200
        fifo = _miss("fifo", trace, capacity)
        clock = _miss("clock", trace, capacity)
        s3 = _miss("s3fifo", trace, capacity)
        assert s3 < clock < fifo

    def test_ghost_queue_matters(self, eval_traces):
        """Without the ghost queue (size ~0) S3-FIFO loses efficiency on
        workloads whose second accesses span beyond S."""
        trace = eval_traces["msr"]
        capacity = max(10, len(set(trace)) // 10)
        with_ghost = _miss("s3fifo", trace, capacity)
        without_ghost = _miss("s3fifo", trace, capacity, ghost_entries=1)
        assert with_ghost <= without_ghost + 1e-9


class TestEndToEndPipeline:
    def test_trace_file_roundtrip_through_simulation(self, tmp_path):
        from repro.traces.readers import read_binary_trace, write_binary_trace

        trace = generate_dataset_trace("fiu", 0, scale=0.3)
        path = tmp_path / "fiu.bin"
        write_binary_trace(path, trace)
        cache = S3FifoCache(capacity=max(10, len(set(trace)) // 10))
        result = simulate(cache, read_binary_trace(path))
        assert result.requests == len(trace)
        assert 0 < result.miss_ratio < 1

    def test_sweep_to_percentiles_pipeline(self):
        from repro.sim.metrics import percentile_summary
        from repro.sim.runner import run_sweep
        from repro.traces.datasets import make_dataset_jobs

        jobs = make_dataset_jobs(
            ["fifo", "s3fifo"],
            0.1,
            datasets=["fiu"],
            scale=0.3,
            traces_per_dataset=2,
        )
        results = run_sweep(jobs, processes=1)
        fifo = {r.trace_name: r.miss_ratio for r in results if r.policy == "fifo"}
        reductions = [
            miss_ratio_reduction(fifo[r.trace_name], r.miss_ratio)
            for r in results
            if r.policy == "s3fifo"
        ]
        summary = percentile_summary(reductions)
        assert summary["mean"] > 0

    def test_flash_pipeline_on_dataset(self):
        from repro.flash.admission import S3FifoAdmission
        from repro.flash.flashcache import HybridFlashCache
        from repro.traces.datasets import sized_dataset_trace

        trace = sized_dataset_trace("tencent_photo", 0, scale=0.2)
        unique_bytes = sum(s for _, s in {k: s for k, s in trace}.items())
        flash = max(1, unique_bytes // 10)
        cache = HybridFlashCache(
            max(1, flash // 100),
            flash,
            S3FifoAdmission(ghost_entries=1000),
            dram_policy="fifo",
        )
        result = cache.run(trace)
        assert result.flash_bytes_written < unique_bytes * 2
        assert 0 < result.miss_ratio < 1
