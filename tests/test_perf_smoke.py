"""Tier-1 smoke test for the perf harness: tiny workload, full schema.

The real benchmark (1M requests, ``benchmarks/perf/``) is marked
``perf`` and excluded from tier-1; this test runs the same code path
at toy scale so schema or wiring regressions surface in the fast
suite.
"""

import json

from repro.perf.bench import run_perf_bench, write_report

REQUIRED_RESULT_KEYS = {
    "policy",
    "impl",
    "reference",
    "trace",
    "seed",
    "requests",
    "capacity",
    "wall_time_s",
    "requests_per_sec",
    "peak_rss",
    "miss_ratio",
}


def test_bench_report_schema(tmp_path):
    report = run_perf_bench(
        pairs=(("s3fifo", "s3fifo-fast"),),
        num_objects=500,
        num_requests=5_000,
        alpha=1.0,
        cache_ratio=0.1,
        seed=7,
    )
    path = write_report(report, tmp_path / "BENCH_perf.json")
    loaded = json.loads(path.read_text())
    assert loaded["schema"] == 2
    assert loaded["trace"] == "zipf-1"
    assert loaded["seed"] == 7
    assert loaded["config"]["capacity"] == 50
    # Provenance block: perf numbers must say what produced them.
    env = loaded["env"]
    assert env["python"] and env["numpy"]
    assert env["cpu_count"] >= 1
    assert "python_build" in env
    # reference + fast + vector row for a vector-capable pair.
    assert len(loaded["results"]) == 3
    for row in loaded["results"]:
        assert REQUIRED_RESULT_KEYS <= set(row)
        assert row["requests"] == 5_000
        assert row["requests_per_sec"] > 0
        assert row["peak_rss"] > 0
        assert 0.0 < row["miss_ratio"] < 1.0
    ref, fast, vec = loaded["results"]
    assert (ref["impl"], fast["impl"], vec["impl"]) == (
        "reference", "fast", "vector",
    )
    assert ref["miss_ratio"] == fast["miss_ratio"] == vec["miss_ratio"]
    assert set(loaded["speedups"]) == {"s3fifo-fast", "s3fifo-fast-vector"}


def test_vector_bench_section_schema():
    """Toy-scale run of the vector-guard workload: schema only — the
    speedup targets are asserted at full scale in benchmarks/perf/."""
    from repro.perf.bench import run_vector_bench

    section = run_vector_bench(
        num_objects=500,
        num_requests=5_000,
        alpha=1.4,
        cache_ratio=0.1,
        seed=7,
        repeats=2,
    )
    assert set(section["speedups"]) == {"fifo-fast", "s3fifo-fast"}
    assert set(section["hit_ratios"]) == {"fifo-fast", "s3fifo-fast"}
    assert section["config"]["repeats"] == 2
    assert len(section["results"]) == 4  # scalar + vector per target
    for row in section["results"]:
        assert row["impl"] in ("scalar", "vector")
        assert len(row["all_walls_s"]) == 2
        # best-of-N: the reported wall is the minimum repeat.
        assert row["wall_time_s"] == min(row["all_walls_s"])
    assert section["targets"] == {"fifo-fast": 2.5, "s3fifo-fast": 2.0}


def test_bench_rejects_divergent_pair():
    # Pairing two genuinely different policies must trip the built-in
    # miss-ratio cross-check rather than report a bogus speedup.
    import pytest

    with pytest.raises(AssertionError):
        run_perf_bench(
            pairs=(("lru", "s3fifo-fast"),),
            num_objects=500,
            num_requests=5_000,
            cache_ratio=0.02,
            seed=3,
        )


def test_default_pairs_all_registered():
    from repro.cache.registry import create_policy
    from repro.perf.bench import DEFAULT_PAIRS

    for ref_name, fast_name in DEFAULT_PAIRS:
        assert create_policy(ref_name, capacity=10).name == ref_name
        assert create_policy(fast_name, capacity=10).name == fast_name
