"""Tier-1 smoke test for the perf harness: tiny workload, full schema.

The real benchmark (1M requests, ``benchmarks/perf/``) is marked
``perf`` and excluded from tier-1; this test runs the same code path
at toy scale so schema or wiring regressions surface in the fast
suite.
"""

import json

from repro.perf.bench import run_perf_bench, write_report

REQUIRED_RESULT_KEYS = {
    "policy",
    "impl",
    "reference",
    "trace",
    "seed",
    "requests",
    "capacity",
    "wall_time_s",
    "requests_per_sec",
    "peak_rss",
    "miss_ratio",
}


def test_bench_report_schema(tmp_path):
    report = run_perf_bench(
        pairs=(("s3fifo", "s3fifo-fast"),),
        num_objects=500,
        num_requests=5_000,
        alpha=1.0,
        cache_ratio=0.1,
        seed=7,
    )
    path = write_report(report, tmp_path / "BENCH_perf.json")
    loaded = json.loads(path.read_text())
    assert loaded["schema"] == 1
    assert loaded["trace"] == "zipf-1"
    assert loaded["seed"] == 7
    assert loaded["config"]["capacity"] == 50
    assert len(loaded["results"]) == 2
    for row in loaded["results"]:
        assert REQUIRED_RESULT_KEYS <= set(row)
        assert row["requests"] == 5_000
        assert row["requests_per_sec"] > 0
        assert row["peak_rss"] > 0
        assert 0.0 < row["miss_ratio"] < 1.0
    ref, fast = loaded["results"]
    assert (ref["impl"], fast["impl"]) == ("reference", "fast")
    assert ref["miss_ratio"] == fast["miss_ratio"]
    assert set(loaded["speedups"]) == {"s3fifo-fast"}


def test_bench_rejects_divergent_pair():
    # Pairing two genuinely different policies must trip the built-in
    # miss-ratio cross-check rather than report a bogus speedup.
    import pytest

    with pytest.raises(AssertionError):
        run_perf_bench(
            pairs=(("lru", "s3fifo-fast"),),
            num_objects=500,
            num_requests=5_000,
            cache_ratio=0.02,
            seed=3,
        )


def test_default_pairs_all_registered():
    from repro.cache.registry import create_policy
    from repro.perf.bench import DEFAULT_PAIRS

    for ref_name, fast_name in DEFAULT_PAIRS:
        assert create_policy(ref_name, capacity=10).name == ref_name
        assert create_policy(fast_name, capacity=10).name == fast_name
