"""Hypothesis properties for the DRAM+flash hybrid cache."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash.admission import (
    NoAdmission,
    ProbabilisticAdmission,
    S3FifoAdmission,
)
from repro.flash.flashcache import HybridFlashCache

keys = st.integers(min_value=0, max_value=40)
traces = st.lists(keys, min_size=1, max_size=300)


def _build(admission, dram, flash, dram_policy="lru", flash_policy="fifo"):
    return HybridFlashCache(
        dram, flash, admission,
        dram_policy=dram_policy, flash_policy=flash_policy,
    )


class TestFlashInvariants:
    @given(trace=traces, dram=st.integers(1, 6), flash=st.integers(2, 20))
    @settings(max_examples=30, deadline=None)
    def test_capacities_and_accounting(self, trace, dram, flash):
        cache = _build(NoAdmission(), dram, flash)
        for key in trace:
            cache.request(key)
            assert cache.dram.used <= dram
            assert cache.flash_used <= flash
        r = cache.result
        assert r.requests == len(trace)
        assert r.dram_hits + r.flash_hits + r.misses == r.requests
        assert r.flash_bytes_written >= cache.flash_used

    @given(trace=traces, dram=st.integers(1, 6), flash=st.integers(2, 20))
    @settings(max_examples=20, deadline=None)
    def test_rejecting_admission_writes_nothing(self, trace, dram, flash):
        cache = _build(ProbabilisticAdmission(0.0, seed=0), dram, flash)
        for key in trace:
            cache.request(key)
        assert cache.result.flash_bytes_written == 0
        assert cache.result.flash_hits == 0

    @given(trace=traces, dram=st.integers(1, 6), flash=st.integers(2, 20))
    @settings(max_examples=20, deadline=None)
    def test_admission_never_increases_writes_vs_none(
        self, trace, dram, flash
    ):
        """Any filter writes at most what no-admission writes."""
        none = _build(NoAdmission(), dram, flash)
        filt = _build(
            S3FifoAdmission(ghost_entries=8), dram, flash, dram_policy="fifo"
        )
        for key in trace:
            none.request(key)
            filt.request(key)
        assert (
            filt.result.flash_bytes_written
            <= none.result.flash_bytes_written
        )

    @given(
        trace=traces,
        dram=st.integers(1, 6),
        flash=st.integers(2, 20),
        flash_policy=st.sampled_from(["fifo", "fifo-reinsertion"]),
    )
    @settings(max_examples=20, deadline=None)
    def test_hits_require_residency(self, trace, dram, flash, flash_policy):
        """A request reported as a hit must have found the key resident
        somewhere the request before it left it there."""
        cache = _build(NoAdmission(), dram, flash, flash_policy=flash_policy)
        for key in trace:
            was_resident = key in cache.dram or cache.in_flash(key)
            hit = cache.request(key)
            assert hit == was_resident
