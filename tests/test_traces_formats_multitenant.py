"""Tests for oracleGeneral I/O and multi-tenant trace tooling."""

import pytest

from repro.cache.belady import BeladyCache
from repro.sim.simulator import simulate
from repro.traces.analysis import annotate_next_access
from repro.traces.multitenant import (
    multitenant_trace,
    shared_vs_partitioned,
    split_by_tenant,
)
from repro.traces.readers import read_oracle_general, write_oracle_general
from repro.traces.synthetic import zipf_trace


class TestOracleGeneral:
    def test_roundtrip_keys_and_sizes(self, tmp_path):
        path = tmp_path / "t.oracleGeneral"
        write_oracle_general(path, [(5, 100), (6, 200), (5, 100)])
        back = list(read_oracle_general(path))
        assert [(r.key, r.size) for r in back] == [(5, 100), (6, 200), (5, 100)]

    def test_next_access_annotation(self, tmp_path):
        path = tmp_path / "t.oracleGeneral"
        write_oracle_general(path, [1, 2, 1])
        back = list(read_oracle_general(path))
        assert back[0].next_access == 3
        assert back[1].next_access is None
        assert back[2].next_access is None

    def test_belady_runs_from_file(self, tmp_path):
        trace = zipf_trace(200, 4000, alpha=1.0, seed=0)
        path = tmp_path / "t.oracleGeneral"
        write_oracle_general(path, trace)
        from_file = simulate(BeladyCache(40), read_oracle_general(path))
        in_memory = simulate(BeladyCache(40), annotate_next_access(trace))
        assert from_file.miss_ratio == in_memory.miss_ratio

    def test_truncated_raises(self, tmp_path):
        path = tmp_path / "t.oracleGeneral"
        write_oracle_general(path, [1, 2])
        path.write_bytes(path.read_bytes()[:-5])
        with pytest.raises(ValueError):
            list(read_oracle_general(path))

    def test_zero_size_clamped(self, tmp_path):
        import struct

        path = tmp_path / "t.oracleGeneral"
        path.write_bytes(struct.pack("<IQIq", 1, 7, 0, -1))
        req = next(iter(read_oracle_general(path)))
        assert req.size == 1  # zero sizes in real traces are clamped


class TestMultitenant:
    def test_request_count_and_namespaces(self):
        trace = multitenant_trace([500, 2000], [0.8, 1.2], 10_000, seed=0)
        assert len(trace) == 10_000
        per_tenant = split_by_tenant(trace)
        assert set(per_tenant) == {0, 1}
        keys0 = set(per_tenant[0])
        keys1 = set(per_tenant[1])
        assert not keys0 & keys1  # disjoint key spaces

    def test_weights_bias_traffic(self):
        trace = multitenant_trace(
            [1000, 1000], [1.0, 1.0], 20_000,
            tenant_weights=[0.9, 0.1], seed=1,
        )
        per_tenant = split_by_tenant(trace)
        assert len(per_tenant[0]) > 5 * len(per_tenant[1])

    def test_split_preserves_order(self):
        trace = multitenant_trace([300, 300], [1.0, 0.7], 5_000, seed=2)
        per_tenant = split_by_tenant(trace)
        merged = {t: iter(keys) for t, keys in per_tenant.items()}
        for tenant, key in trace:
            assert next(merged[tenant]) == key

    def test_validation(self):
        with pytest.raises(ValueError):
            multitenant_trace([100], [1.0, 1.0], 100)
        with pytest.raises(ValueError):
            multitenant_trace([], [], 100)
        with pytest.raises(ValueError):
            multitenant_trace([100], [1.0], 0)
        with pytest.raises(ValueError):
            multitenant_trace([100, 100], [1.0, 1.0], 10,
                              tenant_weights=[1.0])

    def test_shared_beats_partitioned_on_skewed_mix(self):
        """Hot tenants borrow slack in a shared cache — the resource-
        pooling effect the paper's multi-tenant methodology exposes."""
        trace = multitenant_trace(
            [200, 4000], [1.3, 0.6], 30_000,
            tenant_weights=[0.7, 0.3], seed=3,
        )
        comparison = shared_vs_partitioned(trace, "s3fifo", 400)
        assert comparison["tenants"] == 2
        assert (
            comparison["shared_miss_ratio"]
            <= comparison["partitioned_miss_ratio"] + 0.03
        )

    def test_shared_vs_partitioned_validation(self):
        trace = multitenant_trace([100, 100], [1.0, 1.0], 1000, seed=0)
        with pytest.raises(ValueError):
            shared_vs_partitioned(trace, "lru", 0)
