"""Tests for the quick-demotion instrumentation (Section 6.1)."""

import pytest

from repro.cache.registry import create_policy
from repro.core.demotion import (
    AccessIndex,
    DemotionTracker,
    compute_demotion_stats,
    lru_eviction_age,
)
from repro.core.s3fifo import S3FifoCache
from repro.sim.request import Request
from repro.sim.simulator import simulate
from repro.traces.synthetic import zipf_trace


@pytest.fixture(scope="module")
def demo_trace():
    return zipf_trace(num_objects=800, num_requests=15_000, alpha=1.0, seed=9)


class TestAccessIndex:
    def test_next_access(self):
        index = AccessIndex([Request(k) for k in ["a", "b", "a", "c", "a"]])
        assert index.next_access_after("a", 1) == 3
        assert index.next_access_after("a", 3) == 5
        assert index.next_access_after("a", 5) is None
        assert index.next_access_after("zzz", 0) is None

    def test_boundary_is_strict(self):
        index = AccessIndex([Request("a")])
        assert index.next_access_after("a", 0) == 1
        assert index.next_access_after("a", 1) is None


class TestTracker:
    def test_collects_s3fifo_events(self, demo_trace):
        cache = S3FifoCache(80)
        tracker = DemotionTracker().attach(cache)
        for key in demo_trace:
            cache.access(key)
        assert tracker.events
        assert tracker.demoted
        assert tracker.promoted
        assert len(tracker.demoted) + len(tracker.promoted) == len(
            tracker.events
        )

    def test_collects_tinylfu_and_arc_events(self, demo_trace):
        for name in ["tinylfu", "arc"]:
            cache = create_policy(name, capacity=80)
            tracker = DemotionTracker().attach(cache)
            for key in demo_trace[:8000]:
                cache.access(key)
            assert tracker.events, name

    def test_plain_lru_emits_nothing(self, demo_trace):
        cache = create_policy("lru", capacity=80)
        tracker = DemotionTracker().attach(cache)
        for key in demo_trace[:4000]:
            cache.access(key)
        assert tracker.events == []


class TestLruEvictionAge:
    def test_positive_on_evicting_workload(self, demo_trace):
        age = lru_eviction_age([Request(k) for k in demo_trace], 50)
        assert age > 0

    def test_trace_length_when_nothing_evicts(self):
        age = lru_eviction_age([Request(k) for k in "abc"], 100)
        assert age == 3.0


class TestStats:
    def test_empty_events(self):
        stats = compute_demotion_stats([], AccessIndex([]), 100.0, 10, 0.1)
        assert stats.speed == 0.0
        assert stats.demoted_count == 0

    def test_speed_and_precision_computed(self, demo_trace):
        capacity = 80
        cache = S3FifoCache(capacity)
        tracker = DemotionTracker().attach(cache)
        requests = [Request(k) for k in demo_trace]
        result = simulate(cache, [Request(k) for k in demo_trace])
        index = AccessIndex(requests)
        lru_age = lru_eviction_age(requests, capacity)
        stats = compute_demotion_stats(
            tracker.events, index, lru_age, capacity, result.miss_ratio
        )
        assert stats.speed > 1.0  # S3-FIFO demotes faster than LRU evicts
        assert 0.0 <= stats.precision <= 1.0
        assert stats.demoted_count > 0

    def test_smaller_s_demotes_faster(self, demo_trace):
        """The paper's monotonic claim: smaller S -> higher speed."""
        speeds = {}
        requests = [Request(k) for k in demo_trace]
        index = AccessIndex(requests)
        capacity = 80
        lru_age = lru_eviction_age(requests, capacity)
        for ratio in (0.05, 0.4):
            cache = S3FifoCache(capacity, small_ratio=ratio)
            tracker = DemotionTracker().attach(cache)
            result = simulate(cache, [Request(k) for k in demo_trace])
            stats = compute_demotion_stats(
                tracker.events, index, lru_age, capacity, result.miss_ratio
            )
            speeds[ratio] = stats.speed
        assert speeds[0.05] > speeds[0.4]

    def test_repr(self):
        stats = compute_demotion_stats([], AccessIndex([]), 1.0, 1, 0.5)
        assert "DemotionStats" in repr(stats)
