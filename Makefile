# Convenience targets for the S3-FIFO reproduction.

.PHONY: install test resilience bench perf clean-trace-cache loadgen mp shm net frontier net-frontier cluster cluster-churn fig08-native mrc-fast obs examples experiments all

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

resilience:
	pytest tests/ -m resilience
	s3fifo-repro resilience --seed 0

bench:
	pytest benchmarks/ --benchmark-only

perf:
	pytest benchmarks/perf/ -m perf --no-header -rN

# The compiled-trace disk cache (repro.traces.store) is eviction-free
# by design; this reclaims the space wholesale.
clean-trace-cache:
	rm -rf benchmarks/results/.trace-cache

loadgen:
	pytest tests/ -m service --no-header -rN
	s3fifo-repro loadgen --backend thread,mp --transport pipe,shm \
	    --frontend inproc,resp --connections 2 --pipeline 1,16 \
	    --out benchmarks/results/BENCH_service.json

mp:
	pytest tests/ -m mp --no-header -rN

shm:
	pytest tests/ -m shm --no-header -rN

net:
	pytest tests/ -m net --no-header -rN

frontier:
	python -m repro.experiments.frontier \
	    --out benchmarks/results/frontier.txt

net-frontier:
	python -m repro.experiments.net_frontier \
	    --out benchmarks/results/net_frontier.txt

cluster:
	pytest tests/ -m cluster --no-header -rN

cluster-churn:
	python -m repro.experiments.cluster_churn \
	    --out benchmarks/results/cluster_churn.txt

fig08-native:
	python -m repro.experiments.fig08_native \
	    --out benchmarks/results/fig08_throughput_native.txt

mrc-fast:
	pytest tests/ -m mrc --no-header -rN
	python -m repro.experiments.mrc_fast \
	    --out benchmarks/results/mrc_fast.txt
	pytest benchmarks/perf/test_mrc_guard.py -m perf --no-header -rN

obs:
	pytest tests/test_obs_overhead.py -m perf --no-header -rN -s
	s3fifo-repro export-metrics --shards 2 --ttl 60

examples:
	for script in examples/*.py; do echo "== $$script =="; python $$script; done

experiments:
	for exp in fig01 fig02 fig03 fig04 table1 fig06 fig07 fig08 fig09 \
	           fig10 fig11 sec52 sec523 sec62 sec63 ablations; do \
	    echo "== $$exp =="; s3fifo-repro experiment $$exp --scale 0.25; done

all: install test bench
