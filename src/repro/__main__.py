"""``python -m repro`` — the same CLI as the ``s3fifo-repro`` script."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
