"""Workload characterization statistics.

The paper's Section 3 analysis rests on workload properties: Zipf-like
popularity (skew), reuse distances, and footprint growth.  This module
provides the estimators used to sanity-check the synthetic dataset
stand-ins against their targets and to characterize user traces.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Hashable, List, Sequence, Tuple

import numpy as np

from repro.sim.mrc import reuse_distances


def popularity_counts(trace: Sequence[Hashable]) -> List[int]:
    """Access counts sorted descending (the rank-frequency profile)."""
    return sorted(Counter(trace).values(), reverse=True)


def estimate_zipf_alpha(
    trace: Sequence[Hashable],
    head_fraction: float = 0.5,
) -> float:
    """Estimate Zipf skew by least-squares on log(rank)-log(count).

    Only the head of the rank-frequency curve is fitted (default: the
    most popular half of objects with >= 2 accesses) because the tail
    of finite traces is truncated by sampling noise.
    """
    if not 0.0 < head_fraction <= 1.0:
        raise ValueError(
            f"head_fraction must be in (0, 1], got {head_fraction}"
        )
    counts = [c for c in popularity_counts(trace) if c >= 2]
    if len(counts) < 10:
        raise ValueError("trace too small to estimate skew")
    head = counts[: max(10, int(len(counts) * head_fraction))]
    ranks = np.arange(1, len(head) + 1, dtype=np.float64)
    log_rank = np.log(ranks)
    log_count = np.log(np.asarray(head, dtype=np.float64))
    slope, _ = np.polyfit(log_rank, log_count, 1)
    return float(-slope)


def reuse_distance_histogram(
    trace: Sequence[Hashable],
    num_buckets: int = 32,
) -> Dict[str, int]:
    """Power-of-two-bucketed histogram of LRU reuse distances.

    The ``inf`` bucket counts first accesses (cold misses under any
    policy).
    """
    if num_buckets < 1:
        raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
    histogram: Dict[str, int] = {"inf": 0}
    for distance in reuse_distances(trace):
        if distance is None:
            histogram["inf"] += 1
            continue
        bucket = min(num_buckets - 1, int(distance).bit_length())
        label = f"<{1 << bucket}"
        histogram[label] = histogram.get(label, 0) + 1
    return histogram


def working_set_curve(
    trace: Sequence[Hashable],
    window: int,
) -> List[int]:
    """Distinct objects per non-overlapping window (working-set sizes)."""
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    sizes = []
    for start in range(0, len(trace), window):
        sizes.append(len(set(trace[start : start + window])))
    return sizes


def footprint_over_time(
    trace: Sequence[Hashable],
    points: int = 50,
) -> List[Tuple[int, int]]:
    """(requests seen, cumulative distinct objects) growth curve."""
    if points < 1:
        raise ValueError(f"points must be >= 1, got {points}")
    seen: set = set()
    out: List[Tuple[int, int]] = []
    step = max(1, len(trace) // points)
    for i, key in enumerate(trace, start=1):
        seen.add(key)
        if i % step == 0 or i == len(trace):
            out.append((i, len(seen)))
    return out


def summarize(trace: Sequence[Hashable]) -> Dict[str, float]:
    """One-call workload summary used by the CLI's analyze command."""
    from repro.traces.analysis import one_hit_wonder_ratio

    counts = Counter(trace)
    uniques = len(counts)
    summary = {
        "requests": float(len(trace)),
        "objects": float(uniques),
        "requests_per_object": len(trace) / uniques if uniques else 0.0,
        "one_hit_wonder_ratio": one_hit_wonder_ratio(list(trace)),
        "max_popularity": float(max(counts.values())) if counts else 0.0,
    }
    try:
        summary["zipf_alpha"] = estimate_zipf_alpha(list(trace))
    except ValueError:
        summary["zipf_alpha"] = float("nan")
    return summary
