"""Trace file I/O.

Two formats:

* **CSV** — ``time,key,size`` per line (header optional), the common
  interchange format for open-source traces.
* **Binary** — a little-endian packed format modeled on libCacheSim's
  ``oracleGeneral``: one record per request of ``(u32 time, u64 obj_id,
  u32 size)``; compact enough for multi-million-request traces.

Readers yield :class:`~repro.sim.request.Request` objects lazily so
arbitrarily large files can stream through the simulator.
"""

from __future__ import annotations

import csv
import struct
from pathlib import Path
from typing import Iterable, Iterator, Optional, Tuple, Union

from repro.sim.request import Request

_RECORD = struct.Struct("<IQI")

TraceItem = Union[int, Tuple[int, int], Request]


class TraceFormatError(ValueError):
    """A malformed trace record, located precisely.

    Carries the file, the 1-based record number, and the byte offset of
    the offending record so a corrupt multi-gigabyte trace can be
    triaged without bisecting it by hand.
    """

    def __init__(
        self, path, record: int, offset: int, reason: str
    ) -> None:
        super().__init__(
            f"{path}: bad record {record} at byte offset {offset}: {reason}"
        )
        self.path = str(path)
        self.record = record
        self.offset = offset
        self.reason = reason


class SkippedRecords:
    """Tally of records dropped by a ``strict=False`` reader pass."""

    __slots__ = ("count", "first_error")

    def __init__(self) -> None:
        self.count = 0
        self.first_error: Optional[TraceFormatError] = None

    def note(self, error: TraceFormatError) -> None:
        self.count += 1
        if self.first_error is None:
            self.first_error = error

    def __repr__(self) -> str:
        return f"SkippedRecords(count={self.count})"


def _normalize(item: TraceItem, time: int) -> Tuple[int, int, int]:
    if isinstance(item, Request):
        return item.time or time, item.key, item.size
    if isinstance(item, tuple):
        return time, item[0], item[1]
    return time, item, 1


def write_csv_trace(path: Union[str, Path], trace: Iterable[TraceItem]) -> int:
    """Write a trace as ``time,key,size`` CSV; returns the row count."""
    count = 0
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["time", "key", "size"])
        for i, item in enumerate(trace, start=1):
            writer.writerow(_normalize(item, i))
            count += 1
    return count


def read_csv_trace(
    path: Union[str, Path],
    strict: bool = True,
    skipped: Optional[SkippedRecords] = None,
) -> Iterator[Request]:
    """Stream requests from a CSV trace (header row auto-detected).

    Malformed rows raise :class:`TraceFormatError` naming the file,
    record number, and byte offset.  With ``strict=False`` bad rows are
    skipped instead (tallied into ``skipped`` when provided) so one
    corrupt line cannot abort a multi-hour sweep.
    """
    with open(path, newline="") as fh:
        offset = 0
        record = 0
        for line in fh:
            line_offset = offset
            offset += len(line.encode())
            row = next(csv.reader([line]), [])
            if not row:
                continue
            if row[0].strip().lower() in {"time", "timestamp", "ts"}:
                continue  # header
            record += 1
            try:
                time = int(row[0])
                key = int(row[1])
                size = int(row[2]) if len(row) > 2 and row[2] else 1
                req = Request(key, size=size, time=time)
            except (ValueError, IndexError) as exc:
                error = TraceFormatError(
                    path, record, line_offset, f"{line.rstrip()!r}: {exc}"
                )
                if strict:
                    raise error from exc
                if skipped is not None:
                    skipped.note(error)
                continue
            yield req


def write_binary_trace(path: Union[str, Path], trace: Iterable[TraceItem]) -> int:
    """Write a trace in the packed binary format; returns record count."""
    count = 0
    with open(path, "wb") as fh:
        for i, item in enumerate(trace, start=1):
            time, key, size = _normalize(item, i)
            fh.write(_RECORD.pack(time & 0xFFFFFFFF, key, size & 0xFFFFFFFF))
            count += 1
    return count


def read_binary_trace(
    path: Union[str, Path],
    strict: bool = True,
    skipped: Optional[SkippedRecords] = None,
) -> Iterator[Request]:
    """Stream requests from a packed binary trace.

    Truncated files and invalid records (zero size, as produced by
    bit-rot or :func:`repro.resilience.faults.corrupt_binary_trace`)
    raise :class:`TraceFormatError` with the record number and byte
    offset; ``strict=False`` skips bad records and stops cleanly at a
    truncation, counting both into ``skipped``.
    """
    with open(path, "rb") as fh:
        record = 0
        while True:
            offset = record * _RECORD.size
            chunk = fh.read(_RECORD.size)
            if not chunk:
                return
            record += 1
            if len(chunk) != _RECORD.size:
                error = TraceFormatError(
                    path,
                    record,
                    offset,
                    f"truncated: {len(chunk)} trailing bytes",
                )
                if strict:
                    raise error
                if skipped is not None:
                    skipped.note(error)
                return  # nothing after a truncation can be framed
            time, key, size = _RECORD.unpack(chunk)
            try:
                req = Request(key, size=size, time=time)
            except ValueError as exc:
                error = TraceFormatError(path, record, offset, str(exc))
                if strict:
                    raise error from exc
                if skipped is not None:
                    skipped.note(error)
                continue
            yield req


# ----------------------------------------------------------------------
# libCacheSim oracleGeneral compatibility
# ----------------------------------------------------------------------
# The open-source traces released with the paper use libCacheSim's
# "oracleGeneral" format: little-endian records of
#   (u32 real_clock_time, u64 obj_id, u32 obj_size, i64 next_access_vtime)
# where next_access_vtime is the request index of the object's next
# access, or -1 if it never recurs.  Supporting it means the real MSR /
# Twitter / CloudPhysics downloads can be streamed straight into the
# simulator (Belady included, since next_access comes for free).

_ORACLE_RECORD = struct.Struct("<IQIq")


def read_oracle_general(
    path: Union[str, Path],
    strict: bool = True,
    skipped: Optional[SkippedRecords] = None,
) -> Iterator[Request]:
    """Stream requests from a libCacheSim oracleGeneral trace."""
    with open(path, "rb") as fh:
        index = 0
        while True:
            offset = index * _ORACLE_RECORD.size
            chunk = fh.read(_ORACLE_RECORD.size)
            if not chunk:
                return
            index += 1
            if len(chunk) != _ORACLE_RECORD.size:
                error = TraceFormatError(
                    path,
                    index,
                    offset,
                    f"truncated: {len(chunk)} trailing bytes",
                )
                if strict:
                    raise error
                if skipped is not None:
                    skipped.note(error)
                return
            _, obj_id, size, next_vtime = _ORACLE_RECORD.unpack(chunk)
            yield Request(
                obj_id,
                size=max(1, size),
                time=index,
                next_access=None if next_vtime < 0 else int(next_vtime),
            )


def write_oracle_general(
    path: Union[str, Path],
    trace: Iterable[TraceItem],
) -> int:
    """Write a trace in oracleGeneral format (next-access annotated).

    The next-access index is computed with a backwards pass, so the
    output is directly usable by Belady in this library *and* by
    libCacheSim's oracle algorithms.
    """
    from repro.traces.analysis import annotate_next_access

    materialized = list(trace)
    annotated = annotate_next_access(
        [
            (item.key, item.size) if isinstance(item, Request)
            else item
            for item in materialized
        ]
    )
    count = 0
    with open(path, "wb") as fh:
        for req in annotated:
            next_vtime = -1 if req.next_access is None else req.next_access
            fh.write(
                _ORACLE_RECORD.pack(
                    req.time & 0xFFFFFFFF,
                    req.key,
                    req.size & 0xFFFFFFFF,
                    next_vtime,
                )
            )
            count += 1
    return count
