"""Trace file I/O.

Two formats:

* **CSV** — ``time,key,size`` per line (header optional), the common
  interchange format for open-source traces.
* **Binary** — a little-endian packed format modeled on libCacheSim's
  ``oracleGeneral``: one record per request of ``(u32 time, u64 obj_id,
  u32 size)``; compact enough for multi-million-request traces.

Readers yield :class:`~repro.sim.request.Request` objects lazily so
arbitrarily large files can stream through the simulator.
"""

from __future__ import annotations

import csv
import struct
from pathlib import Path
from typing import Iterable, Iterator, Tuple, Union

from repro.sim.request import Request

_RECORD = struct.Struct("<IQI")

TraceItem = Union[int, Tuple[int, int], Request]


def _normalize(item: TraceItem, time: int) -> Tuple[int, int, int]:
    if isinstance(item, Request):
        return item.time or time, item.key, item.size
    if isinstance(item, tuple):
        return time, item[0], item[1]
    return time, item, 1


def write_csv_trace(path: Union[str, Path], trace: Iterable[TraceItem]) -> int:
    """Write a trace as ``time,key,size`` CSV; returns the row count."""
    count = 0
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["time", "key", "size"])
        for i, item in enumerate(trace, start=1):
            writer.writerow(_normalize(item, i))
            count += 1
    return count


def read_csv_trace(path: Union[str, Path]) -> Iterator[Request]:
    """Stream requests from a CSV trace (header row auto-detected)."""
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        for row in reader:
            if not row:
                continue
            if row[0].strip().lower() in {"time", "timestamp", "ts"}:
                continue  # header
            time = int(row[0])
            key = int(row[1])
            size = int(row[2]) if len(row) > 2 and row[2] else 1
            yield Request(key, size=size, time=time)


def write_binary_trace(path: Union[str, Path], trace: Iterable[TraceItem]) -> int:
    """Write a trace in the packed binary format; returns record count."""
    count = 0
    with open(path, "wb") as fh:
        for i, item in enumerate(trace, start=1):
            time, key, size = _normalize(item, i)
            fh.write(_RECORD.pack(time & 0xFFFFFFFF, key, size & 0xFFFFFFFF))
            count += 1
    return count


def read_binary_trace(path: Union[str, Path]) -> Iterator[Request]:
    """Stream requests from a packed binary trace."""
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(_RECORD.size)
            if not chunk:
                return
            if len(chunk) != _RECORD.size:
                raise ValueError(
                    f"truncated trace file {path}: {len(chunk)} trailing bytes"
                )
            time, key, size = _RECORD.unpack(chunk)
            yield Request(key, size=size, time=time)


# ----------------------------------------------------------------------
# libCacheSim oracleGeneral compatibility
# ----------------------------------------------------------------------
# The open-source traces released with the paper use libCacheSim's
# "oracleGeneral" format: little-endian records of
#   (u32 real_clock_time, u64 obj_id, u32 obj_size, i64 next_access_vtime)
# where next_access_vtime is the request index of the object's next
# access, or -1 if it never recurs.  Supporting it means the real MSR /
# Twitter / CloudPhysics downloads can be streamed straight into the
# simulator (Belady included, since next_access comes for free).

_ORACLE_RECORD = struct.Struct("<IQIq")


def read_oracle_general(path: Union[str, Path]) -> Iterator[Request]:
    """Stream requests from a libCacheSim oracleGeneral trace."""
    with open(path, "rb") as fh:
        index = 0
        while True:
            chunk = fh.read(_ORACLE_RECORD.size)
            if not chunk:
                return
            if len(chunk) != _ORACLE_RECORD.size:
                raise ValueError(
                    f"truncated oracleGeneral file {path}: "
                    f"{len(chunk)} trailing bytes"
                )
            index += 1
            _, obj_id, size, next_vtime = _ORACLE_RECORD.unpack(chunk)
            yield Request(
                obj_id,
                size=max(1, size),
                time=index,
                next_access=None if next_vtime < 0 else int(next_vtime),
            )


def write_oracle_general(
    path: Union[str, Path],
    trace: Iterable[TraceItem],
) -> int:
    """Write a trace in oracleGeneral format (next-access annotated).

    The next-access index is computed with a backwards pass, so the
    output is directly usable by Belady in this library *and* by
    libCacheSim's oracle algorithms.
    """
    from repro.traces.analysis import annotate_next_access

    materialized = list(trace)
    annotated = annotate_next_access(
        [
            (item.key, item.size) if isinstance(item, Request)
            else item
            for item in materialized
        ]
    )
    count = 0
    with open(path, "wb") as fh:
        for req in annotated:
            next_vtime = -1 if req.next_access is None else req.next_access
            fh.write(
                _ORACLE_RECORD.pack(
                    req.time & 0xFFFFFFFF,
                    req.key,
                    req.size & 0xFFFFFFFF,
                    next_vtime,
                )
            )
            count += 1
    return count
