"""Trace analysis: one-hit wonders, next-access annotation, evictions.

These functions reproduce the Section 3 methodology:

* the one-hit-wonder ratio of a full trace and of random
  subsequences containing a given fraction of the trace's objects
  (Figs. 1–3), and
* the frequency-of-objects-at-eviction distribution (Fig. 4), which
  needs the next-access annotation that also powers Belady.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cache.base import EvictionPolicy
from repro.sim.request import Request

TraceItem = Union[Hashable, Tuple[Hashable, int]]


def _keys_of(trace: Sequence[TraceItem]) -> List[Hashable]:
    if trace and isinstance(trace[0], tuple):
        return [item[0] for item in trace]  # type: ignore[index]
    return list(trace)  # type: ignore[arg-type]


def unique_objects(trace: Sequence[TraceItem]) -> int:
    """Number of distinct objects in the trace (its footprint)."""
    return len(set(_keys_of(trace)))


def one_hit_wonder_ratio(trace: Sequence[TraceItem]) -> float:
    """Fraction of objects requested exactly once in the whole trace."""
    counts = Counter(_keys_of(trace))
    if not counts:
        return 0.0
    singles = sum(1 for c in counts.values() if c == 1)
    return singles / len(counts)


def subsequence_one_hit_wonder_ratio(
    trace: Sequence[TraceItem],
    object_fraction: float,
    num_samples: int = 10,
    seed: int = 0,
) -> float:
    """Mean one-hit-wonder ratio of random subsequences that contain
    ``object_fraction`` of the trace's unique objects (Section 3.1).

    Each sample starts at a uniformly random request and extends until
    the required number of distinct objects has been observed (or the
    trace ends).
    """
    if not 0.0 < object_fraction <= 1.0:
        raise ValueError(
            f"object_fraction must be in (0, 1], got {object_fraction}"
        )
    if num_samples < 1:
        raise ValueError(f"num_samples must be >= 1, got {num_samples}")
    keys = _keys_of(trace)
    if not keys:
        return 0.0
    total_unique = len(set(keys))
    target = max(1, int(total_unique * object_fraction))
    if target >= total_unique:
        return one_hit_wonder_ratio(keys)
    rng = np.random.default_rng(seed)
    ratios: List[float] = []
    for _ in range(num_samples):
        start = int(rng.integers(0, len(keys)))
        counts: Counter = Counter()
        i = start
        while i < len(keys) and len(counts) < target:
            counts[keys[i]] += 1
            i += 1
        if not counts:
            continue
        singles = sum(1 for c in counts.values() if c == 1)
        ratios.append(singles / len(counts))
    return float(np.mean(ratios)) if ratios else 0.0


def one_hit_wonder_curve(
    trace: Sequence[TraceItem],
    fractions: Sequence[float] = (0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0),
    num_samples: int = 10,
    seed: int = 0,
) -> List[Tuple[float, float]]:
    """(fraction, one-hit-wonder ratio) points — one Fig. 2 curve."""
    return [
        (
            frac,
            subsequence_one_hit_wonder_ratio(
                trace, frac, num_samples=num_samples, seed=seed
            ),
        )
        for frac in fractions
    ]


def annotate_next_access(trace: Sequence[TraceItem]) -> List[Request]:
    """Build :class:`Request` objects with ``next_access`` filled in.

    Times are 1-based request sequence numbers; an object's last
    request has ``next_access=None``.  This is the input Belady
    requires.
    """
    items: List[Tuple[Hashable, int]] = []
    for item in trace:
        if isinstance(item, tuple):
            items.append((item[0], item[1]))
        else:
            items.append((item, 1))
    next_seen: Dict[Hashable, int] = {}
    annotated: List[Optional[Request]] = [None] * len(items)
    for i in range(len(items) - 1, -1, -1):
        key, size = items[i]
        time = i + 1
        annotated[i] = Request(
            key, size=size, time=time, next_access=next_seen.get(key)
        )
        next_seen[key] = time
    return annotated  # type: ignore[return-value]


def frequency_at_eviction(
    policy: EvictionPolicy,
    trace: Iterable[Request],
) -> Counter:
    """Run ``policy`` over ``trace``; histogram of per-object access
    counts (after insertion) at eviction time (Fig. 4).

    A count of 0 means the object was never requested again after
    insertion — a one-hit wonder at eviction.
    """
    histogram: Counter = Counter()
    policy.add_eviction_listener(lambda event: histogram.update([event.freq]))
    for req in trace:
        policy.request(req)
    return histogram
