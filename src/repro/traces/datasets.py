"""Synthetic stand-ins for the paper's 14 trace datasets (Table 1).

The original datasets are proprietary or multi-terabyte; per the
substitution policy in DESIGN.md, each dataset is modeled as a
parameterized generator matched to Table 1's observable properties:
cache type (block / KV / object), popularity skew, full-trace
one-hit-wonder ratio, and the workload features the paper calls out
(scans in block traces, object churn in Twitter-like KV traces).

The *absolute* miss ratios of these stand-ins are not meaningful; the
*relative* behaviour of eviction policies on them — who wins, by
roughly what factor — is what the generators are designed to
preserve.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, List, Optional

import numpy as np

from repro.sim.runner import SweepJob
from repro.traces.synthetic import (
    Trace,
    zipf_trace,
    zipf_with_churn,
    zipf_with_scans,
)


class DatasetSpec:
    """Generator parameters for one Table 1 dataset stand-in."""

    __slots__ = (
        "name",
        "cache_type",
        "alpha",
        "target_full_ohw",
        "scan_intensity",
        "churn_fraction",
        "n_traces",
        "num_objects",
        "requests_per_object",
        "mean_size",
    )

    def __init__(
        self,
        name: str,
        cache_type: str,
        alpha: float,
        target_full_ohw: float,
        scan_intensity: float = 0.0,
        churn_fraction: float = 0.0,
        n_traces: int = 5,
        num_objects: int = 3000,
        requests_per_object: int = 12,
        mean_size: int = 4096,
    ) -> None:
        if cache_type not in {"block", "kv", "object"}:
            raise ValueError(f"unknown cache type {cache_type!r}")
        if not 0.0 <= target_full_ohw < 1.0:
            raise ValueError(
                f"target_full_ohw must be in [0, 1), got {target_full_ohw}"
            )
        self.name = name
        self.cache_type = cache_type
        self.alpha = alpha
        self.target_full_ohw = target_full_ohw
        self.scan_intensity = scan_intensity
        self.churn_fraction = churn_fraction
        self.n_traces = n_traces
        self.num_objects = num_objects
        self.requests_per_object = requests_per_object
        self.mean_size = mean_size

    def __repr__(self) -> str:
        return f"DatasetSpec({self.name}, {self.cache_type})"


#: Table 1 stand-ins.  `target_full_ohw` mirrors the "One-hit-wonder
#: ratio, full trace" column; alpha reflects relative skew (Twitter and
#: Social Network are the most skewed per the paper's Fig. 2 remarks).
DATASETS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec("msr", "block", alpha=0.7, target_full_ohw=0.56,
                    scan_intensity=0.6, n_traces=6),
        DatasetSpec("fiu", "block", alpha=0.8, target_full_ohw=0.28,
                    scan_intensity=0.4, n_traces=5),
        DatasetSpec("cloudphysics", "block", alpha=0.75, target_full_ohw=0.40,
                    scan_intensity=0.5, n_traces=8),
        DatasetSpec("cdn1", "object", alpha=0.8, target_full_ohw=0.42,
                    n_traces=8, mean_size=64 * 1024),
        DatasetSpec("tencent_photo", "object", alpha=0.85, target_full_ohw=0.55,
                    n_traces=4, mean_size=24 * 1024),
        DatasetSpec("wikimedia", "object", alpha=0.9, target_full_ohw=0.46,
                    n_traces=4, mean_size=72 * 1024),
        DatasetSpec("systor", "block", alpha=0.7, target_full_ohw=0.37,
                    scan_intensity=0.7, n_traces=5),
        DatasetSpec("tencent_cbs", "block", alpha=0.85, target_full_ohw=0.25,
                    scan_intensity=0.3, n_traces=8),
        DatasetSpec("alibaba", "block", alpha=0.8, target_full_ohw=0.36,
                    scan_intensity=0.5, n_traces=8),
        DatasetSpec("twitter", "kv", alpha=1.1, target_full_ohw=0.19,
                    churn_fraction=0.02, n_traces=6,
                    requests_per_object=20, mean_size=256),
        DatasetSpec("social_network", "kv", alpha=1.15, target_full_ohw=0.17,
                    churn_fraction=0.015, n_traces=6,
                    requests_per_object=40, mean_size=128),
        DatasetSpec("cdn2", "object", alpha=0.75, target_full_ohw=0.49,
                    n_traces=8, mean_size=512 * 1024),
        DatasetSpec("meta_kv", "kv", alpha=0.9, target_full_ohw=0.51,
                    churn_fraction=0.04, n_traces=4, mean_size=1024),
        DatasetSpec("meta_cdn", "object", alpha=0.7, target_full_ohw=0.61,
                    n_traces=3, mean_size=2 * 1024 * 1024),
    )
}


def dataset_names() -> List[str]:
    return list(DATASETS)


def generate_dataset_trace(
    dataset: str,
    trace_index: int = 0,
    scale: float = 1.0,
    seed: int = 0,
) -> Trace:
    """Generate one trace of a dataset stand-in.

    ``trace_index`` jitters skew and footprint so traces within a
    dataset differ (the paper's datasets are multi-tenant);``scale``
    multiplies the footprint for larger runs.
    """
    spec = DATASETS.get(dataset)
    if spec is None:
        raise KeyError(
            f"unknown dataset {dataset!r}; known: {', '.join(DATASETS)}"
        )
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    # zlib.crc32, not hash(): str hashing is randomized per process
    # (PYTHONHASHSEED), which would make every run generate different
    # traces and the Table-1 calibration tests pass by luck.
    rng = np.random.default_rng(
        zlib.crc32(f"{dataset}/{trace_index}/{seed}".encode()) & 0x7FFFFFFF
    )
    alpha = max(0.3, spec.alpha + float(rng.normal(0, 0.08)))
    num_objects = max(500, int(spec.num_objects * scale * rng.uniform(0.7, 1.3)))
    num_requests = num_objects * spec.requests_per_object
    base_seed = int(rng.integers(0, 2**31 - 1))

    if spec.churn_fraction > 0:
        core = zipf_with_churn(
            num_objects,
            num_requests,
            alpha=alpha,
            churn_fraction=spec.churn_fraction,
            seed=base_seed,
        )
    elif spec.scan_intensity > 0:
        scan_length = max(50, int(num_objects * 0.2 * spec.scan_intensity))
        scan_every = max(1000, int(num_requests / (4 * spec.scan_intensity)))
        core = zipf_with_scans(
            num_objects,
            num_requests,
            alpha=alpha,
            scan_length=scan_length,
            scan_every=scan_every,
            seed=base_seed,
        )
    else:
        core = zipf_trace(num_objects, num_requests, alpha=alpha, seed=base_seed)

    return _inject_singletons(core, spec.target_full_ohw, num_objects, base_seed)


def _inject_singletons(
    core: Trace,
    target_ohw: float,
    num_objects: int,
    seed: int,
) -> Trace:
    """Sprinkle one-time objects so the full-trace one-hit-wonder ratio
    lands near ``target_ohw``.

    The core trace already contains natural one-hit wonders (Zipf tail,
    scan keys, churn keys); only the deficit is injected: with U core
    uniques of which n1 are one-hitters, s extra singletons give
    ohw = (s + n1) / (s + U), so s = (target*U - n1) / (1 - target).
    """
    if target_ohw <= 0:
        return core
    from collections import Counter

    counts = Counter(core)
    uniques = len(counts)
    natural_ones = sum(1 for c in counts.values() if c == 1)
    singles = int((target_ohw * uniques - natural_ones) / (1.0 - target_ohw))
    if singles <= 0:
        return core
    rng = np.random.default_rng(seed ^ 0x5EED)
    positions = rng.integers(0, len(core) + 1, size=singles)
    positions.sort()
    out: Trace = []
    single_base = 500_000_000
    prev = 0
    for i, pos in enumerate(positions):
        out.extend(core[prev:pos])
        out.append(single_base + i)
        prev = pos
    out.extend(core[prev:])
    return out


def sized_dataset_trace(
    dataset: str,
    trace_index: int = 0,
    scale: float = 1.0,
    seed: int = 0,
):
    """Like :func:`generate_dataset_trace` but with per-object sizes
    drawn from a log-normal matched to the dataset's object type."""
    from repro.traces.synthetic import zipf_sizes

    spec = DATASETS[dataset]
    keys = generate_dataset_trace(dataset, trace_index, scale, seed)
    return zipf_sizes(keys, mean_size=spec.mean_size, sigma=1.2, seed=seed)


def make_dataset_jobs(
    policies: List[str],
    cache_ratio: float,
    datasets: Optional[List[str]] = None,
    scale: float = 1.0,
    seed: int = 0,
    policy_kwargs: Optional[Dict[str, Dict[str, Any]]] = None,
    min_cache_size: int = 10,
    traces_per_dataset: Optional[int] = None,
) -> List[SweepJob]:
    """Build the Fig. 6 / Fig. 7 job matrix.

    For every (dataset trace, policy) pair, creates a job whose cache
    size is ``cache_ratio`` of the trace footprint, skipping traces
    where that would fall below ``min_cache_size`` objects (the paper
    skips caches under 1000 objects at the 0.1% size for the same
    reason).
    """
    jobs: List[SweepJob] = []
    policy_kwargs = policy_kwargs or {}
    for dataset in datasets or dataset_names():
        spec = DATASETS[dataset]
        n_traces = spec.n_traces
        if traces_per_dataset is not None:
            n_traces = min(n_traces, traces_per_dataset)
        for idx in range(n_traces):
            trace = generate_dataset_trace(dataset, idx, scale, seed)
            footprint = len(set(trace))
            cache_size = int(footprint * cache_ratio)
            if cache_size < min_cache_size:
                continue
            for policy in policies:
                jobs.append(
                    SweepJob(
                        trace_name=f"{dataset}/{idx}",
                        trace_factory=generate_dataset_trace,
                        trace_kwargs={
                            "dataset": dataset,
                            "trace_index": idx,
                            "scale": scale,
                            "seed": seed,
                        },
                        policy=policy,
                        cache_size=cache_size,
                        policy_kwargs=policy_kwargs.get(policy, {}),
                        tags={"dataset": dataset, "cache_ratio": cache_ratio},
                    )
                )
    return jobs
