"""Multi-tenant traces and per-tenant splitting.

Section 5.1.1: "many large-scale distributed caching systems are
multi-tenanted ... we split four datasets (CDN 1, CDN 2, Tencent CBS,
and Alibaba) with tenant information into per-tenant traces".  This
module provides both halves of that methodology for synthetic studies:
a generator that interleaves several tenants with distinct skews and
footprints into one shared-cluster trace, and the splitter that
recovers per-tenant traces from it.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.traces.synthetic import zipf_trace

TenantTrace = List[Tuple[int, int]]  # (tenant_id, key)


def multitenant_trace(
    tenant_sizes: Sequence[int],
    tenant_alphas: Sequence[float],
    num_requests: int,
    tenant_weights: Sequence[float] = None,
    seed: int = 0,
) -> TenantTrace:
    """Interleave per-tenant Zipf streams into one cluster trace.

    ``tenant_sizes[i]`` is tenant i's object-space size and
    ``tenant_alphas[i]`` its skew; ``tenant_weights`` biases how many
    requests each tenant issues (defaults to proportional to size).
    Keys are namespaced per tenant so the shared cache sees disjoint
    key spaces — exactly how multi-tenant clusters behave.
    """
    if len(tenant_sizes) != len(tenant_alphas):
        raise ValueError("tenant_sizes and tenant_alphas must align")
    if not tenant_sizes:
        raise ValueError("need at least one tenant")
    if num_requests <= 0:
        raise ValueError(f"num_requests must be positive, got {num_requests}")
    n_tenants = len(tenant_sizes)
    if tenant_weights is None:
        total = sum(tenant_sizes)
        tenant_weights = [s / total for s in tenant_sizes]
    if len(tenant_weights) != n_tenants:
        raise ValueError("tenant_weights must align with tenant_sizes")
    weights = np.asarray(tenant_weights, dtype=np.float64)
    if weights.min() < 0 or weights.sum() <= 0:
        raise ValueError("tenant_weights must be non-negative, not all zero")
    weights = weights / weights.sum()

    rng = np.random.default_rng(seed)
    counts = rng.multinomial(num_requests, weights)
    streams: List[List[int]] = []
    base = 0
    for tenant, (size, alpha, count) in enumerate(
        zip(tenant_sizes, tenant_alphas, counts)
    ):
        stream = zipf_trace(
            size, max(1, int(count)), alpha=alpha,
            seed=seed + tenant + 1, key_base=base,
        )
        streams.append(stream)
        base += size + 1_000  # disjoint namespaces with head-room
    # Fair interleave in request order.
    order = rng.permutation(
        np.repeat(np.arange(n_tenants), [len(s) for s in streams])
    )
    cursors = [0] * n_tenants
    out: TenantTrace = []
    for tenant in order:
        stream = streams[tenant]
        out.append((int(tenant), stream[cursors[tenant]]))
        cursors[tenant] += 1
    return out


def split_by_tenant(trace: TenantTrace) -> Dict[int, List[int]]:
    """Recover per-tenant key streams (the paper's split step)."""
    per_tenant: Dict[int, List[int]] = {}
    for tenant, key in trace:
        per_tenant.setdefault(tenant, []).append(key)
    return per_tenant


def shared_vs_partitioned(
    trace: TenantTrace,
    policy: str,
    total_capacity: int,
    **policy_kwargs,
) -> Dict[str, float]:
    """Compare one shared cache against statically partitioned caches.

    The partitioned configuration gives each tenant a slice of the
    capacity proportional to its request share — the static analogue
    of per-tenant clusters.  Returns both miss ratios; on skewed
    multi-tenant mixes the shared cache usually wins because hot
    tenants can borrow slack (the flip side of Section 7's sharding
    discussion).
    """
    from repro.cache.registry import create_policy
    from repro.sim.simulator import simulate

    if total_capacity <= 0:
        raise ValueError(f"total_capacity must be positive, got {total_capacity}")
    shared = create_policy(policy, capacity=total_capacity, **policy_kwargs)
    shared_result = simulate(shared, [key for _, key in trace])

    per_tenant = split_by_tenant(trace)
    total_requests = len(trace)
    misses = 0
    for tenant, keys in per_tenant.items():
        share = len(keys) / total_requests
        capacity = max(1, int(total_capacity * share))
        tenant_cache = create_policy(policy, capacity=capacity, **policy_kwargs)
        result = simulate(tenant_cache, keys)
        misses += result.misses
    return {
        "shared_miss_ratio": shared_result.miss_ratio,
        "partitioned_miss_ratio": misses / total_requests,
        "tenants": float(len(per_tenant)),
    }
