"""Workload generation, dataset stand-ins, trace analysis, and trace I/O."""

from repro.traces.compiled import CompiledTrace, compile_trace
from repro.traces.analysis import (
    annotate_next_access,
    frequency_at_eviction,
    one_hit_wonder_curve,
    one_hit_wonder_ratio,
    subsequence_one_hit_wonder_ratio,
    unique_objects,
)
from repro.traces.datasets import (
    DATASETS,
    DatasetSpec,
    dataset_names,
    generate_dataset_trace,
    make_dataset_jobs,
)
from repro.traces.multitenant import (
    multitenant_trace,
    shared_vs_partitioned,
    split_by_tenant,
)
from repro.traces.readers import (
    SkippedRecords,
    TraceFormatError,
    read_binary_trace,
    read_csv_trace,
    read_oracle_general,
    write_binary_trace,
    write_csv_trace,
    write_oracle_general,
)
from repro.traces.stats import (
    estimate_zipf_alpha,
    reuse_distance_histogram,
    working_set_curve,
)
from repro.traces.synthetic import (
    loop_trace,
    mixed_trace,
    scan_trace,
    two_access_trace,
    zipf_sizes,
    zipf_trace,
    zipf_with_churn,
    zipf_with_scans,
)

__all__ = [
    "CompiledTrace",
    "compile_trace",
    "annotate_next_access",
    "frequency_at_eviction",
    "one_hit_wonder_curve",
    "one_hit_wonder_ratio",
    "subsequence_one_hit_wonder_ratio",
    "unique_objects",
    "DATASETS",
    "DatasetSpec",
    "dataset_names",
    "generate_dataset_trace",
    "make_dataset_jobs",
    "multitenant_trace",
    "shared_vs_partitioned",
    "split_by_tenant",
    "SkippedRecords",
    "TraceFormatError",
    "read_binary_trace",
    "read_csv_trace",
    "read_oracle_general",
    "write_binary_trace",
    "write_csv_trace",
    "write_oracle_general",
    "estimate_zipf_alpha",
    "reuse_distance_histogram",
    "working_set_curve",
    "loop_trace",
    "mixed_trace",
    "scan_trace",
    "two_access_trace",
    "zipf_sizes",
    "zipf_trace",
    "zipf_with_churn",
    "zipf_with_scans",
]
