"""Content-addressed disk cache for compiled traces.

Benchmark runs regenerate and re-intern the same seeded synthetic
traces on every invocation; at 1M requests the Python-level generation
plus :func:`~repro.traces.compiled.compile_trace` interning costs more
than the simulation being measured.  This store persists a
:class:`~repro.traces.compiled.CompiledTrace`'s columnar buffers as a
``.npz`` file named by the trace's content checksum, with a small JSON
index mapping caller-chosen *spec keys* (e.g.
``"zipf-a1.4-o100000-n1000000-s42"``) to checksums:

    benchmarks/results/.trace-cache/
        index.json            {spec_key: checksum}
        <checksum>.npz        keys / sizes / key-table columns

The cache is **eviction-free by design**: entries are only ever added,
never aged out.  Each 1M-request unit trace costs ~8 MB (one int64 per
request plus the key table); the benchmark suite's handful of
workloads stays well under 100 MB, and ``make clean-trace-cache``
removes the directory wholesale when reclaiming the space.

Key tables with non-integer keys are stored as JSON; traces whose keys
JSON cannot represent are silently not cached (the factory result is
returned uncached), so arbitrary-hashable traces keep working.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Optional

from repro.traces.compiled import CompiledTrace, compile_trace

#: Default cache directory, relative to the working directory (matches
#: the benchmark outputs under ``benchmarks/results/``).
DEFAULT_TRACE_CACHE = Path("benchmarks") / "results" / ".trace-cache"

_INDEX_NAME = "index.json"


def _numpy():
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy is a hard dep
        return None
    return np


def _load_index(cache_dir: Path) -> dict:
    try:
        with open(cache_dir / _INDEX_NAME) as fh:
            index = json.load(fh)
    except (OSError, ValueError):
        return {}
    return index if isinstance(index, dict) else {}


def _write_index(cache_dir: Path, index: dict) -> None:
    tmp = cache_dir / (_INDEX_NAME + ".tmp")
    tmp.write_text(json.dumps(index, indent=2, sort_keys=True) + "\n")
    tmp.replace(cache_dir / _INDEX_NAME)


def store_trace(
    trace: CompiledTrace, cache_dir: Optional[Path] = None
) -> Optional[Path]:
    """Persist ``trace``'s buffers; returns the ``.npz`` path.

    Content-addressed: the filename is the trace's
    :meth:`~repro.traces.compiled.CompiledTrace.checksum`, so identical
    content is stored once no matter how many spec keys point at it.
    Returns ``None`` when the trace cannot be serialized (no NumPy, or
    a key table JSON cannot represent).
    """
    np = _numpy()
    if np is None:
        return None
    table = trace.key_table
    if all(isinstance(k, int) and not isinstance(k, bool) for k in table):
        table_payload = {"table_int": np.asarray(table, dtype=np.int64)}
    else:
        try:
            encoded = json.dumps(table)
        except (TypeError, ValueError):
            return None
        table_payload = {
            "table_json": np.frombuffer(
                encoded.encode("utf-8"), dtype=np.uint8
            )
        }
    cache_dir = Path(cache_dir) if cache_dir else DEFAULT_TRACE_CACHE
    cache_dir.mkdir(parents=True, exist_ok=True)
    path = cache_dir / f"{trace.checksum()}.npz"
    if path.exists():
        return path
    payload = {
        "keys": np.frombuffer(trace.keys, dtype=np.int64),
        **table_payload,
    }
    if trace.sizes is not None:
        payload["sizes"] = np.frombuffer(trace.sizes, dtype=np.int64)
    tmp = path.with_suffix(".npz.tmp")
    with open(tmp, "wb") as fh:
        np.savez(fh, **payload)
    tmp.replace(path)
    return path


def load_trace(
    checksum: str,
    cache_dir: Optional[Path] = None,
    name: Optional[str] = None,
) -> Optional[CompiledTrace]:
    """Rebuild a stored trace by checksum; ``None`` on any miss."""
    np = _numpy()
    if np is None:
        return None
    cache_dir = Path(cache_dir) if cache_dir else DEFAULT_TRACE_CACHE
    path = cache_dir / f"{checksum}.npz"
    if not path.is_file():
        return None
    from array import array

    try:
        with np.load(path) as data:
            keys = array("q", data["keys"].tobytes())
            sizes = (
                array("q", data["sizes"].tobytes())
                if "sizes" in data
                else None
            )
            if "table_int" in data:
                table = data["table_int"].tolist()
            else:
                table = json.loads(
                    data["table_json"].tobytes().decode("utf-8")
                )
                # JSON round-trips tuples as lists; key tables only
                # ever hold hashables, so any list must go back.
                table = [
                    tuple(k) if isinstance(k, list) else k for k in table
                ]
    except (OSError, ValueError, KeyError):
        return None
    trace = CompiledTrace(keys, table, sizes=sizes, name=name)
    if trace.checksum() != checksum:  # corrupted / truncated file
        return None
    return trace


def cached_compile(
    spec_key: str,
    factory: Callable[[], object],
    cache_dir: Optional[Path] = None,
    name: Optional[str] = None,
) -> CompiledTrace:
    """The compiled trace for ``spec_key``, from disk when possible.

    On a hit, the buffers come straight off the ``.npz`` (checksum
    verified); on a miss, ``factory()`` is invoked, its result compiled
    and stored, and the index updated.  Storage failures degrade to an
    ordinary in-memory compile — the cache is an accelerator, never a
    correctness dependency.
    """
    cache_dir = Path(cache_dir) if cache_dir else DEFAULT_TRACE_CACHE
    index = _load_index(cache_dir)
    checksum = index.get(spec_key)
    if isinstance(checksum, str):
        trace = load_trace(checksum, cache_dir, name=name)
        if trace is not None:
            return trace
    trace = compile_trace(factory(), name=name)
    try:
        path = store_trace(trace, cache_dir)
        if path is not None:
            index = _load_index(cache_dir)  # re-read: cheap, fresher
            index[spec_key] = trace.checksum()
            _write_index(cache_dir, index)
    except OSError:  # read-only checkout, full disk, ...
        pass
    return trace
