"""Compiled traces: columnar, allocation-free trace storage.

The streaming simulator historically paid Python-object overhead on
every access — a :class:`~repro.sim.request.Request` allocation plus
``isinstance`` dispatch per request — so throughput experiments
measured interpreter overhead more than algorithmic cost.  A
:class:`CompiledTrace` pays that cost exactly once: arbitrary hashable
keys are interned to dense integer ids (first-appearance order) and
the trace is materialized as columnar ``array('q')`` buffers:

* ``keys`` — one dense id per request,
* ``sizes`` — per-request object sizes, or ``None`` for unit-size
  traces (the common case; no buffer is allocated),
* ``next_access`` — optional per-request time of the next access to
  the same key (``-1`` when the key never recurs), the annotation
  Belady-style offline policies need.

Array-backed fast policies consume the id buffers directly (zero
per-request allocation); everything else round-trips through
:meth:`CompiledTrace.iter_requests`, which can reuse a single mutable
:class:`Request` so even the compatibility path allocates nothing per
request.  Interning preserves key *identity* structure exactly, so any
hash-independent policy makes identical decisions on the compiled and
raw forms of a trace.
"""

from __future__ import annotations

import zlib
from array import array
from typing import Hashable, Iterable, Iterator, List, Optional, Union

from repro.sim.request import Request

TraceItem = Union[Request, tuple, Hashable]


class CompiledTrace:
    """A trace interned to dense ids and stored in columnar buffers."""

    __slots__ = (
        "name", "keys", "sizes", "next_access", "key_table",
        "_key_ids", "_occ_index",
    )

    def __init__(
        self,
        keys: array,
        key_table: List[Hashable],
        sizes: Optional[array] = None,
        next_access: Optional[array] = None,
        name: Optional[str] = None,
    ) -> None:
        if sizes is not None and len(sizes) != len(keys):
            raise ValueError("sizes buffer must align with keys")
        if next_access is not None and len(next_access) != len(keys):
            raise ValueError("next_access buffer must align with keys")
        self.keys = keys
        self.key_table = key_table
        self.sizes = sizes
        self.next_access = next_access
        self.name = name
        self._key_ids: Optional[list] = None
        self._occ_index: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.keys)

    @property
    def num_requests(self) -> int:
        return len(self.keys)

    @property
    def num_objects(self) -> int:
        """Number of distinct keys (the trace footprint in objects)."""
        return len(self.key_table)

    @property
    def unit_size(self) -> bool:
        """Whether every request has size 1 (no sizes buffer)."""
        return self.sizes is None

    def nbytes(self) -> int:
        """Memory held by the columnar buffers (excludes the key table)."""
        total = self.keys.itemsize * len(self.keys)
        if self.sizes is not None:
            total += self.sizes.itemsize * len(self.sizes)
        if self.next_access is not None:
            total += self.next_access.itemsize * len(self.next_access)
        return total

    def key_ids(self) -> list:
        """The id column as a plain list, materialized once and cached.

        Hot batch loops index this instead of :attr:`keys`: a list read
        returns an existing reference, while every ``array('q')`` read
        allocates a fresh int object — at millions of requests per run
        that allocation is the single largest cost.  Costs ~8 bytes per
        request plus one int object per *distinct* id.
        """
        ids = self._key_ids
        if ids is None:
            # Route through a canonical int per id so the list holds
            # shared references instead of one fresh int per request.
            canon = list(range(self.num_objects))
            ids = self._key_ids = [canon[k] for k in self.keys]
        return ids

    def occurrence_index(self) -> tuple:
        """CSR index of per-key occurrence positions, built once and cached.

        Returns ``(occ_pos, occ_start)`` where
        ``occ_pos[occ_start[kid]:occ_start[kid + 1]]`` lists, in
        ascending order, every request position at which ``kid``
        occurs.  The vector engine (:mod:`repro.sim.vector`) walks
        these chains to reconstruct lazy hit side-effects (S3-FIFO
        frequency, SIEVE visited bits) and to find the next occurrence
        of an evicted key without re-probing the whole chunk.

        Both columns are plain Python lists: the consumers read single
        elements in tight scalar loops, where list indexing returns an
        existing reference instead of allocating (see :meth:`key_ids`).
        """
        idx = self._occ_index
        if idx is None:
            n = len(self.keys)
            k = self.num_objects
            try:
                import numpy as np
            except ImportError:  # pragma: no cover - numpy is a hard dep
                np = None
            if np is not None and n:
                ids = np.frombuffer(self.keys, dtype=np.int64)
                # Stable sort by id groups positions per key while
                # keeping each group in ascending position order.
                occ_pos = np.argsort(ids, kind="stable").tolist()
                counts = np.bincount(ids, minlength=k)
                starts = np.zeros(k + 1, dtype=np.int64)
                np.cumsum(counts, out=starts[1:])
                occ_start = starts.tolist()
            else:
                buckets: List[list] = [[] for _ in range(k)]
                for i, kid in enumerate(self.keys):
                    buckets[kid].append(i)
                occ_pos = [p for b in buckets for p in b]
                occ_start = [0] * (k + 1)
                acc = 0
                for j, b in enumerate(buckets):
                    acc += len(b)
                    occ_start[j + 1] = acc
            idx = self._occ_index = (occ_pos, occ_start)
        return idx

    def checksum(self) -> str:
        """Stable hex digest of the id/size columns (test fixture aid)."""
        crc = zlib.crc32(self.keys.tobytes())
        if self.sizes is not None:
            crc = zlib.crc32(self.sizes.tobytes(), crc)
        return f"{crc & 0xFFFFFFFF:08x}"

    # ------------------------------------------------------------------
    # Round-trip back to the legacy trace forms
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[TraceItem]:
        """Yield the original trace items: bare keys for unit-size
        traces, ``(key, size)`` tuples otherwise.

        This keeps a :class:`CompiledTrace` drop-in compatible with
        every consumer of raw traces (``len(set(trace))``, analysis
        helpers, re-compilation, ...).
        """
        table = self.key_table
        if self.sizes is None:
            for kid in self.keys:
                yield table[kid]
        else:
            for kid, size in zip(self.keys, self.sizes):
                yield (table[kid], size)

    def iter_requests(self, reuse: bool = False) -> Iterator[Request]:
        """Yield :class:`Request` objects reconstructed from the buffers.

        With ``reuse=True`` a *single* mutable Request is yielded every
        time with its fields rewritten in place — zero per-request
        allocation.  Safe for every policy in this library (policies
        copy ``key``/``size`` into their own entries and never retain
        the Request), but do not store the yielded object.
        """
        table = self.key_table
        sizes = self.sizes
        nxt = self.next_access
        n = len(self.keys)
        if reuse:
            req = Request.__new__(Request)
            for i in range(n):
                req.key = table[self.keys[i]]
                req.size = 1 if sizes is None else sizes[i]
                req.time = 0
                na = -1 if nxt is None else nxt[i]
                req.next_access = None if na < 0 else na
                yield req
        else:
            for i in range(n):
                na = -1 if nxt is None else nxt[i]
                yield Request(
                    table[self.keys[i]],
                    size=1 if sizes is None else sizes[i],
                    next_access=None if na < 0 else na,
                )

    def request_at(self, i: int) -> Request:
        """Reconstruct the ``i``-th request (fresh object)."""
        na = -1 if self.next_access is None else self.next_access[i]
        return Request(
            self.key_table[self.keys[i]],
            size=1 if self.sizes is None else self.sizes[i],
            time=i + 1,
            next_access=None if na < 0 else na,
        )

    # ------------------------------------------------------------------
    # Annotation
    # ------------------------------------------------------------------
    def annotate(self) -> "CompiledTrace":
        """Fill ``next_access`` (in place) and return ``self``.

        Times use the simulator's convention: 1-based request sequence
        numbers, ``-1`` when the key never recurs — matching
        :func:`repro.traces.analysis.annotate_next_access`.
        """
        if self.next_access is not None:
            return self
        n = len(self.keys)
        nxt = array("q", bytes(self.keys.itemsize * n))
        last = [-1] * self.num_objects
        keys = self.keys
        for i in range(n - 1, -1, -1):
            kid = keys[i]
            j = last[kid]
            nxt[i] = -1 if j < 0 else j + 1
            last[kid] = i
        self.next_access = nxt
        return self

    def __repr__(self) -> str:
        label = f"{self.name!r}, " if self.name else ""
        return (
            f"CompiledTrace({label}requests={len(self.keys)}, "
            f"objects={self.num_objects}, "
            f"unit_size={self.sizes is None})"
        )


def compile_trace(
    trace: Iterable[TraceItem],
    name: Optional[str] = None,
    annotate: bool = False,
) -> CompiledTrace:
    """Intern ``trace`` into a :class:`CompiledTrace`.

    ``trace`` may yield anything :func:`repro.sim.simulate` accepts:
    bare hashable keys, ``(key, size)`` tuples, or
    :class:`~repro.sim.request.Request` objects (whose ``next_access``
    annotations are preserved).  Compiling an already-compiled trace
    returns it unchanged.
    """
    if isinstance(trace, CompiledTrace):
        return trace
    ids: dict = {}
    key_table: List[Hashable] = []
    keys = array("q")
    sizes: Optional[array] = None
    next_access: Optional[array] = None
    append_key = keys.append
    for item in trace:
        if isinstance(item, Request):
            key = item.key
            size = item.size
            na = item.next_access
            if na is not None and next_access is None:
                next_access = array("q", [-1] * len(keys))
            if next_access is not None:
                next_access.append(-1 if na is None else na)
        elif isinstance(item, tuple):
            key, size = item[0], item[1]
            if next_access is not None:
                next_access.append(-1)
        else:
            key, size = item, 1
            if next_access is not None:
                next_access.append(-1)
        kid = ids.get(key)
        if kid is None:
            kid = ids[key] = len(key_table)
            key_table.append(key)
        append_key(kid)
        if size != 1 and sizes is None:
            sizes = array("q", [1] * (len(keys) - 1))
            sizes.append(size)
        elif sizes is not None:
            sizes.append(size)
    compiled = CompiledTrace(
        keys, key_table, sizes=sizes, next_access=next_access, name=name
    )
    if annotate:
        compiled.annotate()
    return compiled
