"""Synthetic workload generators.

The paper's analysis (Section 3.1) uses Zipf traces generated under
the independent reference model (IRM); its evaluation additionally
relies on workload features common in the production datasets: scans
and loops (block workloads), constant object churn (Twitter-like KV
workloads), and the "two accesses, far apart" adversarial pattern of
Section 5.2.  Each generator here produces a list of integer keys (or
``(key, size)`` tuples when sizes are requested) consumable by
:func:`repro.sim.simulate`.

Key spaces of different generators are offset (``key_base``) so traces
can be concatenated without accidental overlap.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

Trace = List[int]
SizedTrace = List[Tuple[int, int]]


def zipf_probabilities(num_objects: int, alpha: float) -> np.ndarray:
    """Zipf(alpha) probability vector over ranks 1..num_objects."""
    if num_objects <= 0:
        raise ValueError(f"num_objects must be positive, got {num_objects}")
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    ranks = np.arange(1, num_objects + 1, dtype=np.float64)
    weights = ranks**-alpha
    return weights / weights.sum()


def zipf_trace(
    num_objects: int,
    num_requests: int,
    alpha: float = 1.0,
    seed: int = 0,
    key_base: int = 0,
    shuffle_ranks: bool = True,
) -> Trace:
    """IRM trace with Zipf(alpha) object popularity.

    ``shuffle_ranks`` permutes the rank-to-key mapping so key order
    carries no popularity information (matching real traces).
    """
    if num_requests <= 0:
        raise ValueError(f"num_requests must be positive, got {num_requests}")
    rng = np.random.default_rng(seed)
    probs = zipf_probabilities(num_objects, alpha)
    cdf = np.cumsum(probs)
    cdf[-1] = 1.0  # guard against floating-point shortfall
    draws = rng.random(num_requests)
    ranks = np.searchsorted(cdf, draws, side="right")
    if shuffle_ranks:
        perm = rng.permutation(num_objects)
        keys = perm[ranks]
    else:
        keys = ranks
    return (keys + key_base).tolist()


def scan_trace(
    num_objects: int,
    start: int = 0,
    repeats: int = 1,
) -> Trace:
    """A sequential scan over ``num_objects`` keys, ``repeats`` times."""
    if num_objects <= 0:
        raise ValueError(f"num_objects must be positive, got {num_objects}")
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    one_pass = list(range(start, start + num_objects))
    return one_pass * repeats


def loop_trace(
    num_objects: int,
    num_requests: int,
    start: int = 0,
) -> Trace:
    """Cyclic loop over a working set — the classic LRU-thrashing pattern."""
    if num_objects <= 0:
        raise ValueError(f"num_objects must be positive, got {num_objects}")
    out = []
    key = 0
    for _ in range(num_requests):
        out.append(start + key)
        key = (key + 1) % num_objects
    return out


def two_access_trace(
    num_objects: int,
    gap: int,
    seed: int = 0,
    key_base: int = 0,
) -> Trace:
    """The Section 5.2 adversarial pattern: every object is requested
    exactly twice, with about ``gap`` other requests in between.

    When ``gap`` exceeds the small-queue size, the second access misses
    under S3-FIFO (and other space-partitioned policies) but can hit
    under plain LRU/FIFO with the same total capacity.
    """
    if num_objects <= 0:
        raise ValueError(f"num_objects must be positive, got {num_objects}")
    if gap < 1:
        raise ValueError(f"gap must be >= 1, got {gap}")
    rng = np.random.default_rng(seed)
    trace: Trace = []
    # Interleave: a sliding window of `gap` distinct in-flight objects.
    pending: List[int] = []
    next_key = key_base
    issued = 0
    while issued < num_objects or pending:
        if issued < num_objects and (len(pending) < gap or not pending):
            trace.append(next_key)
            pending.append(next_key)
            next_key += 1
            issued += 1
        else:
            idx = int(rng.integers(0, max(1, len(pending) // 4) )) if pending else 0
            trace.append(pending.pop(idx))
    return trace


def zipf_with_scans(
    num_objects: int,
    num_requests: int,
    alpha: float = 0.8,
    scan_length: int = 1000,
    scan_every: int = 10000,
    seed: int = 0,
) -> Trace:
    """Zipf base traffic with periodic sequential scans over cold keys.

    Models block workloads (MSR-like): the scan keys are disjoint from
    the hot set and each scan uses fresh keys, so scanned blocks are
    one-hit wonders.
    """
    base = zipf_trace(num_objects, num_requests, alpha=alpha, seed=seed)
    if scan_length <= 0 or scan_every <= 0:
        return base
    out: Trace = []
    scan_base = num_objects + 1_000_000
    position = 0
    for i, key in enumerate(base):
        out.append(key)
        if (i + 1) % scan_every == 0:
            out.extend(range(scan_base + position, scan_base + position + scan_length))
            position += scan_length
    return out


def zipf_with_churn(
    num_objects: int,
    num_requests: int,
    alpha: float = 1.0,
    churn_fraction: float = 0.1,
    seed: int = 0,
) -> Trace:
    """Zipf traffic where a fraction of requests go to newly created
    objects (Twitter-like constant churn, Section 6.1).

    New objects are drawn from an ever-growing key space; a new object
    receives a short burst of follow-up requests with decaying
    probability, modeling fresh-content popularity.
    """
    if not 0.0 <= churn_fraction < 1.0:
        raise ValueError(
            f"churn_fraction must be in [0, 1), got {churn_fraction}"
        )
    rng = np.random.default_rng(seed)
    base = zipf_trace(
        num_objects, num_requests, alpha=alpha, seed=seed, key_base=0
    )
    if churn_fraction == 0.0:
        return base
    out: Trace = []
    new_key = num_objects + 10_000_000
    recent: List[int] = []
    for key in base:
        if rng.random() < churn_fraction:
            if recent and rng.random() < 0.5:
                out.append(recent[int(rng.integers(0, len(recent)))])
            else:
                out.append(new_key)
                recent.append(new_key)
                if len(recent) > 256:
                    recent.pop(0)
                new_key += 1
        else:
            out.append(key)
    return out


def mixed_trace(parts: Sequence[Trace], interleave: bool = False, seed: int = 0) -> Trace:
    """Concatenate traces, or shuffle-interleave them preserving each
    part's internal order (a fair merge)."""
    if not parts:
        return []
    if not interleave:
        out: Trace = []
        for part in parts:
            out.extend(part)
        return out
    rng = np.random.default_rng(seed)
    iters = [list(reversed(p)) for p in parts if p]
    weights = np.array([len(p) for p in iters], dtype=np.float64)
    out = []
    while iters:
        weights_sum = weights.sum()
        idx = int(rng.choice(len(iters), p=weights / weights_sum))
        out.append(iters[idx].pop())
        weights[idx] -= 1
        if not iters[idx]:
            iters.pop(idx)
            weights = np.delete(weights, idx)
    return out


def zipf_sizes(
    keys: Sequence[int],
    mean_size: int = 4096,
    sigma: float = 1.0,
    seed: int = 0,
) -> SizedTrace:
    """Assign each unique key a log-normal size (CDN-like) and return a
    sized trace.  Sizes are stable per key across the trace."""
    if mean_size <= 0:
        raise ValueError(f"mean_size must be positive, got {mean_size}")
    rng = np.random.default_rng(seed)
    unique = list(dict.fromkeys(keys))
    raw = rng.lognormal(mean=0.0, sigma=sigma, size=len(unique))
    scale = mean_size / raw.mean()
    sizes = {k: max(1, int(s * scale)) for k, s in zip(unique, raw)}
    return [(k, sizes[k]) for k in keys]
