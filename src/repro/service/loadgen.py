"""Concurrent load generator for the live cache service.

Replays a synthetic Zipf stream against a :class:`CacheService` or
:class:`ShardedCacheService` from multiple threads and reports what the
offline simulator cannot: ops/sec, per-operation latency percentiles
(p50/p90/p99/p99.9), per-shard load balance, and the hit ratio the
service actually served.  Where :mod:`repro.concurrency.model` predicts
throughput from assumed per-op costs, this module *measures* them — and
:mod:`repro.concurrency.calibrate` closes the loop by fitting the
analytic model's cost profile to a load-generator report.

Two driving disciplines:

* **closed loop** — every thread issues its next operation as soon as
  the previous one returns.  Measures saturated throughput; latency
  excludes queueing you would see at a fixed arrival rate.
* **open loop** — operations are issued on a fixed schedule and latency
  is measured from the *scheduled* start, so a slow operation penalises
  every operation queued behind it (this avoids the coordinated-
  omission trap of timing only from actual start).

The workload is read-through: ``get(key)``, and on a miss ``set(key,
value)``.  With one shard and one thread this drives the policy with
exactly the offline simulator's request sequence, which the parity
tests exploit.  All threads draw slices of one shared trace, so the
workload is identical across thread counts.

Three backends (``backend=``):

* **thread** — the in-process services
  (:class:`~repro.service.core.CacheService` /
  :class:`~repro.service.sharded.ShardedCacheService`).  Threads share
  the GIL, so throughput tops out near one core no matter the shard
  count — the honest CPython baseline.
* **mp** — the process-per-shard
  :class:`~repro.service.mp.MPCacheService`; ``num_shards`` becomes the
  worker-process count.  This is the native-scaling configuration
  behind ``fig08_throughput_native.txt``.
* **cluster** — the replicated
  :class:`~repro.cluster.service.ClusterCacheService`; ``num_shards``
  becomes the node-process count, with ``replication`` copies per key
  and failover instead of errors when a node dies.

A worker that loses its shard mid-run (an mp worker crash, e.g. an
injected ``fault_plans`` ``worker-crash``) no longer aborts the whole
benchmark thread: the crashed operation is counted in the row's
``errors`` / ``error_rate`` fields and the loop moves on — on the mp
backend later operations on the dead shard keep failing and keep
counting, while the cluster backend fails over and the error never
recurs.  Rows also carry the cluster health counters (``nodes_up``,
``failovers``, ``read_repairs``, ``degraded_ops``) when the backend
reports them.

``batch_size > 1`` switches both backends to the batched read-through
loop: ``get_many`` over the batch, then one ``set_many`` for the
misses.  For the mp backend that coalesces each batch into one pipe
round-trip per worker — the lever that amortizes IPC.  Batched rows
report each operation's latency as its *batch's* latency (an
operation is done when its batch is), and hit/miss mean costs as the
batch cost split evenly across its operations.  Note the batched
workload is not operation-identical to the unbatched one: duplicate
keys inside one batch all miss together (the unbatched loop would hit
from the second occurrence on).
"""

from __future__ import annotations

import math
import threading
import time
from array import array
from typing import Any, Dict, List, Optional, Sequence

from repro.concurrency.sharding import imbalance_factor
from repro.service.core import CacheService
from repro.service.mp import WorkerCrashedError
from repro.service.sharded import ShardedCacheService

#: Bumped when the report layout changes incompatibly.
#: 2: scenario rows and config gained ``backend`` / ``workers`` /
#: ``batch_size``; percentile convention fixed to true nearest-rank.
#: 3: scenario rows and config gained ``transport`` (``inproc`` for the
#: thread backend, ``pipe``/``shm`` for mp, ``pipe`` for cluster).
SCHEMA_VERSION = 3

#: Report ``kind`` discriminator (BENCH_service.json vs other reports).
REPORT_KIND = "service-loadgen"


class _WorkerStats:
    """Per-thread measurement state (merged after the run)."""

    __slots__ = ("latencies_ns", "hits", "misses", "hit_ns", "miss_ns",
                 "errors")

    def __init__(self) -> None:
        self.latencies_ns = array("q")
        self.hits = 0
        self.misses = 0
        self.hit_ns = 0
        self.miss_ns = 0
        self.errors = 0


def _run_closed(service, keys: Sequence[int], value: Any,
                stats: _WorkerStats, barrier: threading.Barrier) -> None:
    get = service.get
    set_ = service.set
    record = stats.latencies_ns.append
    clock = time.perf_counter_ns
    barrier.wait()
    for key in keys:
        t0 = clock()
        try:
            if get(key) is None:
                set_(key, value)
                t1 = clock()
                stats.misses += 1
                stats.miss_ns += t1 - t0
            else:
                t1 = clock()
                stats.hits += 1
                stats.hit_ns += t1 - t0
        except WorkerCrashedError:
            # The shard died under this op: count it and keep driving
            # the surviving shards — the run's error_rate reports it.
            stats.errors += 1
            continue
        record(t1 - t0)


def _run_open(service, keys: Sequence[int], value: Any,
              stats: _WorkerStats, barrier: threading.Barrier,
              interval_ns: int) -> None:
    get = service.get
    set_ = service.set
    record = stats.latencies_ns.append
    clock = time.perf_counter_ns
    barrier.wait()
    start = clock()
    for i, key in enumerate(keys):
        scheduled = start + i * interval_ns
        wait = scheduled - clock()
        if wait > 0:
            time.sleep(wait / 1e9)
        # Latency from the *scheduled* arrival: queueing delay behind a
        # slow predecessor is charged to every operation it delays.
        try:
            if get(key) is None:
                set_(key, value)
                done = clock()
                stats.misses += 1
                stats.miss_ns += done - scheduled
            else:
                done = clock()
                stats.hits += 1
                stats.hit_ns += done - scheduled
        except WorkerCrashedError:
            stats.errors += 1
            continue
        record(done - scheduled)


def _charge_batch(stats: _WorkerStats, batch_len: int, missed: int,
                  elapsed: int, record) -> None:
    """Account one batch: per-op latency is the batch latency, and the
    batch cost is split evenly across its operations for the hit/miss
    mean-cost counters (per-op costs are not separable inside a batch).
    """
    nhit = batch_len - missed
    stats.hits += nhit
    stats.misses += missed
    per_op = elapsed // batch_len
    stats.hit_ns += per_op * nhit
    stats.miss_ns += per_op * missed
    for _ in range(batch_len):
        record(elapsed)


def _run_closed_batched(service, keys: Sequence[int], value: Any,
                        stats: _WorkerStats, barrier: threading.Barrier,
                        batch_size: int) -> None:
    get_many = service.get_many
    set_many = service.set_many
    record = stats.latencies_ns.append
    clock = time.perf_counter_ns
    barrier.wait()
    for start in range(0, len(keys), batch_size):
        batch = keys[start:start + batch_size]
        t0 = clock()
        try:
            values = get_many(batch)
            missed = [k for k, v in zip(batch, values) if v is None]
            if missed:
                set_many([(k, value) for k in missed])
        except WorkerCrashedError:
            stats.errors += len(batch)
            continue
        elapsed = clock() - t0
        _charge_batch(stats, len(batch), len(missed), elapsed, record)


def _run_open_batched(service, keys: Sequence[int], value: Any,
                      stats: _WorkerStats, barrier: threading.Barrier,
                      interval_ns: int, batch_size: int) -> None:
    get_many = service.get_many
    set_many = service.set_many
    record = stats.latencies_ns.append
    clock = time.perf_counter_ns
    barrier.wait()
    start = clock()
    for bstart in range(0, len(keys), batch_size):
        batch = keys[bstart:bstart + batch_size]
        # A batch issues at its first operation's slot; latency is
        # still charged from the schedule (coordinated omission rules
        # apply to batches exactly as to single operations).
        scheduled = start + bstart * interval_ns
        wait = scheduled - clock()
        if wait > 0:
            time.sleep(wait / 1e9)
        try:
            values = get_many(batch)
            missed = [k for k, v in zip(batch, values) if v is None]
            if missed:
                set_many([(k, value) for k in missed])
        except WorkerCrashedError:
            stats.errors += len(batch)
            continue
        elapsed = clock() - scheduled
        _charge_batch(stats, len(batch), len(missed), elapsed, record)


def counters_snapshot(service, t_s: float) -> Dict[str, Any]:
    """One point-in-time counters row (lock-free, benignly racy reads).

    Process-backed services keep their counters in the workers, so for
    them the snapshot is one ``stats()`` round-trip instead of a racy
    in-process read.
    """
    shards = getattr(service, "shards", None)
    if shards is None and not hasattr(service, "counters"):
        stats = service.stats()
        gets, hits, sets = stats["gets"], stats["hits"], stats["sets"]
        return {
            "t_s": round(t_s, 3),
            "gets": gets,
            "hits": hits,
            "sets": sets,
            "hit_ratio": round(hits / gets, 6) if gets else 0.0,
        }
    counters = (
        [s.counters for s in shards] if shards is not None
        else [service.counters]
    )
    gets = sum(c.gets for c in counters)
    hits = sum(c.hits for c in counters)
    sets = sum(c.sets for c in counters)
    return {
        "t_s": round(t_s, 3),
        "gets": gets,
        "hits": hits,
        "sets": sets,
        "hit_ratio": round(hits / gets, 6) if gets else 0.0,
    }


def _interval_monitor(service, stop: threading.Event, interval_s: float,
                      out: List[Dict[str, Any]]) -> None:
    """Append a counters snapshot every ``interval_s`` until stopped."""
    start = time.perf_counter()
    while not stop.wait(interval_s):
        try:
            out.append(
                counters_snapshot(service, time.perf_counter() - start)
            )
        except WorkerCrashedError:
            continue  # shard died between snapshots; keep monitoring


def _percentile(sorted_ns: Sequence[int], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample.

    The convention is the classic nearest-rank definition: the q-th
    percentile is the smallest sample value such that at least
    ``q * n`` samples are <= it, i.e. index ``ceil(q * n) - 1``
    (clamped to the sample).  No interpolation — the result is always
    an observed value.  Consequences the tests pin: any percentile of
    a 1-sample set is that sample; p50 of 2 samples is the *lower* one
    (1 of 2 samples is already >= 50%); and p99.9 of 1,000 samples is
    the 999th value (999 samples cover exactly 99.9%).  An earlier
    version rounded
    ``q * (n - 1)`` instead, which for example reported the p50 of 4
    samples as the 3rd value — a *75th* percentile under this
    definition.
    """
    n = len(sorted_ns)
    if not n:
        return 0.0
    rank = min(n - 1, max(0, math.ceil(q * n) - 1))
    return float(sorted_ns[rank])


def latency_summary_us(latencies_ns: Sequence[int]) -> Dict[str, float]:
    """p50/p90/p99/p99.9/mean/max of a latency sample, in microseconds."""
    data = sorted(latencies_ns)
    if not data:
        return {k: 0.0 for k in ("p50", "p90", "p99", "p999", "mean", "max")}
    return {
        "p50": round(_percentile(data, 0.50) / 1e3, 3),
        "p90": round(_percentile(data, 0.90) / 1e3, 3),
        "p99": round(_percentile(data, 0.99) / 1e3, 3),
        "p999": round(_percentile(data, 0.999) / 1e3, 3),
        "mean": round(sum(data) / len(data) / 1e3, 3),
        "max": round(data[-1] / 1e3, 3),
    }


def _row_transport(backend: str, transport: str) -> str:
    """What the row's ``transport`` field records (schema 3).

    Only the mp backend has a transport choice; thread rows say
    ``inproc`` and cluster rows pin ``pipe`` (its nodes speak pipes).
    """
    if backend == "mp":
        return transport
    return "pipe" if backend == "cluster" else "inproc"


def build_service(
    capacity: int,
    policy: str,
    num_shards: int,
    **kwargs: Any,
):
    """One shard -> plain :class:`CacheService`, else sharded."""
    if num_shards == 1:
        return CacheService(capacity, policy, **kwargs)
    return ShardedCacheService(capacity, policy, num_shards=num_shards, **kwargs)


def _build_mp_service(
    capacity: int,
    policy: str,
    num_workers: int,
    start_method: Optional[str],
    checked: bool,
    ttl: Optional[float],
    fault_plans=None,
    transport: str = "pipe",
):
    from repro.service.mp import MPCacheService

    return MPCacheService(
        capacity,
        policy,
        num_workers=num_workers,
        transport=transport,
        start_method=start_method,
        checked=checked,
        default_ttl=ttl,
        fault_plans=fault_plans,
    )


def _build_cluster_service(
    capacity: int,
    policy: str,
    num_nodes: int,
    replication: int,
    vnodes: int,
    start_method: Optional[str],
    checked: bool,
    ttl: Optional[float],
    fault_plans=None,
):
    from repro.cluster.service import ClusterCacheService

    return ClusterCacheService(
        capacity,
        policy,
        num_nodes=num_nodes,
        replication=replication,
        vnodes=vnodes,
        start_method=start_method,
        checked=checked,
        default_ttl=ttl,
        fault_plans=fault_plans,
    )


def run_scenario(
    trace: Sequence[int],
    capacity: int,
    policy: str = "s3fifo",
    num_shards: int = 1,
    num_threads: int = 1,
    mode: str = "closed",
    open_rate: float = 50_000.0,
    value: Any = "v",
    checked: bool = False,
    ttl: Optional[float] = None,
    metrics=None,
    tracer=None,
    instrument_policy: bool = False,
    snapshot_interval_s: Optional[float] = None,
    backend: str = "thread",
    batch_size: int = 1,
    transport: str = "pipe",
    start_method: Optional[str] = None,
    replication: int = 2,
    vnodes: int = 64,
    fault_plans=None,
) -> Dict[str, Any]:
    """Drive one (shards, threads) configuration; returns the report row.

    ``trace`` is split into ``num_threads`` contiguous slices so the
    aggregate workload is the same for every thread count.  ``open_rate``
    is the per-thread target in ops/sec (open mode only).  ``ttl``
    becomes the service's ``default_ttl`` (requires a removal-capable
    policy).  ``metrics`` / ``tracer`` / ``instrument_policy`` are
    forwarded to the service; pass a fresh registry per scenario if
    histograms must not accumulate across rows.
    ``snapshot_interval_s`` attaches a monitor thread appending
    periodic counters snapshots to the row's ``intervals`` list.

    ``backend="mp"`` runs the process-per-shard
    :class:`~repro.service.mp.MPCacheService` with ``num_shards``
    worker processes (torn down before the row returns);
    ``backend="cluster"`` runs the replicated
    :class:`~repro.cluster.service.ClusterCacheService` with
    ``num_shards`` node processes, ``replication`` copies per key, and
    ``vnodes`` ring points per node.  ``fault_plans`` injects
    deterministic worker crashes on either process backend;
    ``batch_size > 1`` switches any backend to the batched
    read-through loop (see the module docstring for its latency and
    accounting conventions).

    ``transport`` selects the mp backend's parent<->worker channel
    (``"pipe"`` or ``"shm"``); the other backends have no transport
    choice, so their rows record it as ``"inproc"`` (thread) or
    ``"pipe"`` (cluster) and passing ``transport="shm"`` with them is
    an error.
    """
    if mode not in ("closed", "open"):
        raise ValueError(f"mode must be 'closed' or 'open', got {mode!r}")
    if num_threads < 1:
        raise ValueError(f"num_threads must be >= 1, got {num_threads}")
    if backend not in ("thread", "mp", "cluster"):
        raise ValueError(
            f"backend must be 'thread', 'mp', or 'cluster', got {backend!r}"
        )
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if transport not in ("pipe", "shm"):
        raise ValueError(
            f"transport must be 'pipe' or 'shm', got {transport!r}"
        )
    if transport != "pipe" and backend != "mp":
        raise ValueError(
            f"transport={transport!r} requires backend='mp' "
            f"(got backend={backend!r})"
        )
    if backend in ("mp", "cluster"):
        if metrics is not None or tracer is not None or instrument_policy:
            raise ValueError(
                "metrics/tracer/instrument_policy are in-process hooks and "
                "cannot cross process boundaries; the mp backend exposes "
                "MPCacheService.merge_metrics() instead"
            )
        if backend == "mp":
            service = _build_mp_service(
                capacity, policy, num_shards, start_method, checked, ttl,
                fault_plans, transport,
            )
        else:
            service = _build_cluster_service(
                capacity, policy, num_shards, replication, vnodes,
                start_method, checked, ttl, fault_plans,
            )
    else:
        service = build_service(
            capacity, policy, num_shards,
            checked=checked,
            default_ttl=ttl,
            metrics=metrics,
            tracer=tracer,
            instrument_policy=instrument_policy,
        )
    per_thread = len(trace) // num_threads
    slices = [
        trace[i * per_thread:(i + 1) * per_thread] for i in range(num_threads)
    ]
    stats = [_WorkerStats() for _ in range(num_threads)]
    barrier = threading.Barrier(num_threads + 1)
    if mode == "closed":
        if batch_size > 1:
            thread_args = [
                (service, s, value, st, barrier, batch_size)
                for s, st in zip(slices, stats)
            ]
            target = _run_closed_batched
        else:
            thread_args = [
                (service, s, value, st, barrier)
                for s, st in zip(slices, stats)
            ]
            target = _run_closed
        workers = [
            threading.Thread(
                target=target, args=args, name=f"loadgen-{i}", daemon=True,
            )
            for i, args in enumerate(thread_args)
        ]
    else:
        if open_rate <= 0:
            raise ValueError(f"open_rate must be positive, got {open_rate}")
        interval_ns = max(1, int(1e9 / open_rate))
        if batch_size > 1:
            thread_args = [
                (service, s, value, st, barrier, interval_ns, batch_size)
                for s, st in zip(slices, stats)
            ]
            target = _run_open_batched
        else:
            thread_args = [
                (service, s, value, st, barrier, interval_ns)
                for s, st in zip(slices, stats)
            ]
            target = _run_open
        workers = [
            threading.Thread(
                target=target, args=args, name=f"loadgen-{i}", daemon=True,
            )
            for i, args in enumerate(thread_args)
        ]
    intervals: List[Dict[str, Any]] = []
    monitor = stop_monitor = None
    if snapshot_interval_s is not None:
        if snapshot_interval_s <= 0:
            raise ValueError(
                f"snapshot_interval_s must be positive, got {snapshot_interval_s}"
            )
        stop_monitor = threading.Event()
        monitor = threading.Thread(
            target=_interval_monitor,
            args=(service, stop_monitor, snapshot_interval_s, intervals),
            name="loadgen-monitor", daemon=True,
        )
    for w in workers:
        w.start()
    if monitor is not None:
        monitor.start()
    barrier.wait()
    t0 = time.perf_counter()
    for w in workers:
        w.join()
    wall = time.perf_counter() - t0
    if monitor is not None:
        stop_monitor.set()
        monitor.join()
        try:
            intervals.append(counters_snapshot(service, wall))
        except WorkerCrashedError:
            pass  # the run itself already counted the errors
    merged = array("q")
    hits = misses = hit_ns = miss_ns = errors = 0
    for st in stats:
        merged.extend(st.latencies_ns)
        hits += st.hits
        misses += st.misses
        hit_ns += st.hit_ns
        miss_ns += st.miss_ns
        errors += st.errors
    ops = len(merged)
    # A crashed mp worker makes the final bookkeeping round-trips
    # raise too; report what survives instead of losing the row.
    try:
        if hasattr(service, "ops_per_shard"):
            shard_ops = service.ops_per_shard()
            imbalance = (
                round(imbalance_factor(shard_ops), 4)
                if num_shards > 1 else 1.0
            )
        else:
            shard_ops = [service.counters.gets + service.counters.sets]
            imbalance = 1.0
        service_stats = service.stats()
    except WorkerCrashedError:
        shard_ops = []
        imbalance = 1.0
        service_stats = {"evictions": None, "expired": None, "objects": None}
    if backend in ("mp", "cluster"):
        service.close()
    row = {
        "shards": num_shards,
        "threads": num_threads,
        "backend": backend,
        "workers": num_shards if backend in ("mp", "cluster") else 0,
        "batch_size": batch_size,
        "transport": _row_transport(backend, transport),
        "mode": mode,
        "policy": policy,
        "ops": ops,
        "wall_time_s": round(wall, 6),
        "ops_per_sec": round(ops / wall) if wall else 0,
        "hit_ratio": round(hits / ops, 6) if ops else 0.0,
        "hits": hits,
        "misses": misses,
        "errors": errors,
        "error_rate": round(errors / (ops + errors), 6) if errors else 0.0,
        "latency_us": latency_summary_us(merged),
        "hit_ns_mean": round(hit_ns / hits) if hits else 0,
        "miss_ns_mean": round(miss_ns / misses) if misses else 0,
        "shard_ops": shard_ops,
        "imbalance": imbalance,
        "evictions": service_stats["evictions"],
        "expired": service_stats["expired"],
        "objects": service_stats["objects"],
        **({"intervals": intervals} if snapshot_interval_s is not None else {}),
    }
    if backend == "cluster":
        row["replication"] = replication
        row["vnodes"] = vnodes
        for field in ("nodes_up", "failovers", "read_repairs",
                      "degraded_ops"):
            row[field] = service_stats.get(field)
    return row


def run_loadgen(
    shard_counts: Sequence[int] = (1, 4),
    thread_counts: Sequence[int] = (1, 4),
    num_objects: int = 10_000,
    num_requests: int = 100_000,
    alpha: float = 1.0,
    cache_ratio: float = 0.1,
    seed: int = 42,
    policy: str = "s3fifo",
    mode: str = "closed",
    open_rate: float = 50_000.0,
    checked: bool = False,
    ttl: Optional[float] = None,
    metrics=None,
    tracer=None,
    instrument_policy: bool = False,
    snapshot_interval_s: Optional[float] = None,
    backend: str = "thread",
    batch_size: int = 1,
    transport: str = "pipe",
    start_method: Optional[str] = None,
    replication: int = 2,
    vnodes: int = 64,
) -> Dict[str, Any]:
    """The full scenario matrix (shards x threads); returns the report.

    The default workload mirrors the perf benchmark's shape (Zipf(1.0),
    10% cache) at load-generator scale.  Every scenario replays the
    *same* seeded trace, so hit ratios are comparable across rows and
    the single-shard rows are directly comparable to the offline
    simulator on the same trace.

    With ``backend="mp"`` the ``shard_counts`` axis becomes the
    worker-process count; to compare backends in one document, run
    this once per backend and join with :func:`combine_reports`.
    """
    from repro.traces.synthetic import zipf_trace

    trace = zipf_trace(
        num_objects=num_objects,
        num_requests=num_requests,
        alpha=alpha,
        seed=seed,
    )
    capacity = max(1, int(num_objects * cache_ratio))
    scenarios: List[Dict[str, Any]] = []
    for shards in shard_counts:
        for threads in thread_counts:
            scenarios.append(
                run_scenario(
                    trace,
                    capacity=capacity,
                    policy=policy,
                    num_shards=shards,
                    num_threads=threads,
                    mode=mode,
                    open_rate=open_rate,
                    checked=checked,
                    ttl=ttl,
                    metrics=metrics,
                    tracer=tracer,
                    instrument_policy=instrument_policy,
                    snapshot_interval_s=snapshot_interval_s,
                    backend=backend,
                    batch_size=batch_size,
                    transport=transport,
                    start_method=start_method,
                    replication=replication,
                    vnodes=vnodes,
                )
            )
    return {
        "schema": SCHEMA_VERSION,
        "kind": REPORT_KIND,
        "config": {
            "num_objects": num_objects,
            "num_requests": num_requests,
            "alpha": alpha,
            "cache_ratio": cache_ratio,
            "capacity": capacity,
            "seed": seed,
            "policy": policy,
            "mode": mode,
            "open_rate": open_rate if mode == "open" else None,
            "checked": checked,
            "ttl": ttl,
            "backend": backend,
            "batch_size": batch_size,
            "transport": _row_transport(backend, transport),
            **({"replication": replication, "vnodes": vnodes}
               if backend == "cluster" else {}),
        },
        "scenarios": scenarios,
    }


def combine_reports(reports: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Join several :func:`run_loadgen` reports into one document.

    Used by the CLI's comma-separated ``--backend thread,mp`` form:
    each backend runs as its own report (its own service lifecycle)
    and the combined document carries every scenario row — rows are
    self-describing since schema 2 (``backend``/``workers``/
    ``batch_size``), so consumers filter rows, not documents.  The
    combined config is the first report's, with ``backend`` replaced
    by the list of contributing backends.
    """
    if not reports:
        raise ValueError("combine_reports needs at least one report")
    for report in reports:
        if report.get("kind") != REPORT_KIND:
            raise ValueError(
                f"not a loadgen report (kind={report.get('kind')!r})"
            )
    schemas = sorted({report.get("schema") for report in reports},
                     key=repr)
    if len(schemas) > 1:
        # Mixing schemas would silently concatenate rows whose fields
        # mean different things (e.g. pre-transport rows); refuse with
        # the full set so the caller knows which document to re-run.
        raise ValueError(
            f"cannot combine loadgen reports with mixed schemas "
            f"{schemas}; regenerate the older report(s) at schema "
            f"{SCHEMA_VERSION}"
        )
    if schemas[0] != SCHEMA_VERSION:
        raise ValueError(
            f"loadgen report schema {schemas[0]!r} != {SCHEMA_VERSION}"
        )
    config = dict(reports[0]["config"])
    config["backend"] = [r["config"]["backend"] for r in reports]
    config["transport"] = [r["config"]["transport"] for r in reports]
    return {
        "schema": SCHEMA_VERSION,
        "kind": REPORT_KIND,
        "config": config,
        "scenarios": [row for r in reports for row in r["scenarios"]],
    }


def format_report(report: Dict[str, Any]) -> str:
    """Human-readable table for the CLI."""
    cfg = report["config"]
    lines = [
        f"loadgen {cfg['policy']} zipf-{cfg['alpha']:g} "
        f"({cfg['mode']} loop): {cfg['num_requests']:,} requests, "
        f"{cfg['num_objects']:,} objects, capacity {cfg['capacity']:,}",
        f"{'backend':>7} {'tport':>6} {'shards':>6} {'threads':>7} "
        f"{'batch':>5} {'ops/s':>10} {'hit':>7} {'err':>7} "
        f"{'p50us':>8} {'p99us':>8} {'p999us':>8} {'imbal':>6}",
    ]
    for row in report["scenarios"]:
        lat = row["latency_us"]
        lines.append(
            f"{row.get('backend', 'thread'):>7} "
            f"{row.get('transport', 'inproc'):>6} "
            f"{row['shards']:>6} {row['threads']:>7} "
            f"{row.get('batch_size', 1):>5} "
            f"{row['ops_per_sec']:>10,} {row['hit_ratio']:>7.4f} "
            f"{row.get('error_rate', 0.0):>7.4f} "
            f"{lat['p50']:>8.1f} {lat['p99']:>8.1f} {lat['p999']:>8.1f} "
            f"{row['imbalance']:>6.2f}"
        )
    return "\n".join(lines)


def find_scenario(
    report: Dict[str, Any],
    shards: int,
    threads: int,
    backend: Optional[str] = None,
    batch_size: Optional[int] = None,
    transport: Optional[str] = None,
) -> Optional[Dict[str, Any]]:
    """The first scenario row matching the given axes, if any.

    ``backend`` / ``batch_size`` / ``transport`` of ``None`` match any
    row.  Rows predating a field read as its historical value:
    thread/1 (schema 1), and for ``transport`` (schema 2) whatever
    :func:`_row_transport` says the row's backend used.
    """
    for row in report["scenarios"]:
        if row["shards"] != shards or row["threads"] != threads:
            continue
        row_backend = row.get("backend", "thread")
        if backend is not None and row_backend != backend:
            continue
        if (batch_size is not None
                and row.get("batch_size", 1) != batch_size):
            continue
        if transport is not None:
            row_tp = row.get("transport",
                             _row_transport(row_backend, "pipe"))
            if row_tp != transport:
                continue
        return row
    return None
