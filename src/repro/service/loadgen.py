"""Concurrent load generator for the live cache service.

Replays a synthetic Zipf stream against a :class:`CacheService` or
:class:`ShardedCacheService` from multiple threads and reports what the
offline simulator cannot: ops/sec, per-operation latency percentiles
(p50/p90/p99/p99.9), per-shard load balance, and the hit ratio the
service actually served.  Where :mod:`repro.concurrency.model` predicts
throughput from assumed per-op costs, this module *measures* them — and
:mod:`repro.concurrency.calibrate` closes the loop by fitting the
analytic model's cost profile to a load-generator report.

Two driving disciplines:

* **closed loop** — every thread issues its next operation as soon as
  the previous one returns.  Measures saturated throughput; latency
  excludes queueing you would see at a fixed arrival rate.
* **open loop** — operations are issued on a fixed schedule and latency
  is measured from the *scheduled* start, so a slow operation penalises
  every operation queued behind it (this avoids the coordinated-
  omission trap of timing only from actual start).

The workload is read-through: ``get(key)``, and on a miss ``set(key,
value)``.  With one shard and one thread this drives the policy with
exactly the offline simulator's request sequence, which the parity
tests exploit.  All threads draw slices of one shared trace, so the
workload is identical across thread counts.

Three backends (``backend=``):

* **thread** — the in-process services
  (:class:`~repro.service.core.CacheService` /
  :class:`~repro.service.sharded.ShardedCacheService`).  Threads share
  the GIL, so throughput tops out near one core no matter the shard
  count — the honest CPython baseline.
* **mp** — the process-per-shard
  :class:`~repro.service.mp.MPCacheService`; ``num_shards`` becomes the
  worker-process count.  This is the native-scaling configuration
  behind ``fig08_throughput_native.txt``.
* **cluster** — the replicated
  :class:`~repro.cluster.service.ClusterCacheService`; ``num_shards``
  becomes the node-process count, with ``replication`` copies per key
  and failover instead of errors when a node dies.

A worker that loses its shard mid-run (an mp worker crash, e.g. an
injected ``fault_plans`` ``worker-crash``) no longer aborts the whole
benchmark thread: the crashed operation is counted in the row's
``errors`` / ``error_rate`` fields and the loop moves on — on the mp
backend later operations on the dead shard keep failing and keep
counting, while the cluster backend fails over and the error never
recurs.  Rows also carry the cluster health counters (``nodes_up``,
``failovers``, ``read_repairs``, ``degraded_ops``) when the backend
reports them.

``batch_size > 1`` switches both backends to the batched read-through
loop: ``get_many`` over the batch, then one ``set_many`` for the
misses.  For the mp backend that coalesces each batch into one pipe
round-trip per worker — the lever that amortizes IPC.  Batched rows
report each operation's latency as its *batch's* latency (an
operation is done when its batch is), and hit/miss mean costs as the
batch cost split evenly across its operations.  Note the batched
workload is not operation-identical to the unbatched one: duplicate
keys inside one batch all miss together (the unbatched loop would hit
from the second occurrence on).

Since schema 4 the driving side has a **frontend** axis too:
``frontend="inproc"`` (the default, everything above) calls the
service in-process, while ``frontend="resp"`` / ``"memcached"`` stand
up a :class:`~repro.netsrv.server.CacheServer` over the backend and
drive it through real sockets with the blocking clients in
:mod:`repro.netsrv.client` — one client thread per ``connections``,
each issuing closed-loop read-through windows of ``pipeline_depth``
pipelined GETs (then pipelined SETs for the misses).  Socket rows
reuse the batch accounting conventions: an operation's latency is its
*window's* latency.  A connection the server drops (an injected
``conn-reset``, a crashed backend) counts its window in ``errors``
and reconnects, mirroring the ``WorkerCrashedError`` discipline.
"""

from __future__ import annotations

import math
import threading
import time
from array import array
from typing import Any, Dict, List, Optional, Sequence

from repro.concurrency.sharding import imbalance_factor
from repro.service.core import CacheService
from repro.service.mp import WorkerCrashedError
from repro.service.sharded import ShardedCacheService

#: Bumped when the report layout changes incompatibly.
#: 2: scenario rows and config gained ``backend`` / ``workers`` /
#: ``batch_size``; percentile convention fixed to true nearest-rank.
#: 3: scenario rows and config gained ``transport`` (``inproc`` for the
#: thread backend, ``pipe``/``shm`` for mp, ``pipe`` for cluster).
#: 4: scenario rows and config gained ``frontend`` (``inproc``,
#: ``resp``, ``memcached``), ``connections``, and ``pipeline_depth``
#: (socket-mode axes; in-process rows record 0 for both).
#: (Reports additionally carry a top-level ``env`` provenance block —
#: interpreter, numpy, host shape — from :func:`repro.perf.bench.env_block`;
#: additive, so no schema bump.)
SCHEMA_VERSION = 4

#: Report ``kind`` discriminator (BENCH_service.json vs other reports).
REPORT_KIND = "service-loadgen"


class _WorkerStats:
    """Per-thread measurement state (merged after the run)."""

    __slots__ = ("latencies_ns", "hits", "misses", "hit_ns", "miss_ns",
                 "errors")

    def __init__(self) -> None:
        self.latencies_ns = array("q")
        self.hits = 0
        self.misses = 0
        self.hit_ns = 0
        self.miss_ns = 0
        self.errors = 0


def _run_closed(service, keys: Sequence[int], value: Any,
                stats: _WorkerStats, barrier: threading.Barrier) -> None:
    get = service.get
    set_ = service.set
    record = stats.latencies_ns.append
    clock = time.perf_counter_ns
    barrier.wait()
    for key in keys:
        t0 = clock()
        try:
            if get(key) is None:
                set_(key, value)
                t1 = clock()
                stats.misses += 1
                stats.miss_ns += t1 - t0
            else:
                t1 = clock()
                stats.hits += 1
                stats.hit_ns += t1 - t0
        except WorkerCrashedError:
            # The shard died under this op: count it and keep driving
            # the surviving shards — the run's error_rate reports it.
            stats.errors += 1
            continue
        record(t1 - t0)


def _run_open(service, keys: Sequence[int], value: Any,
              stats: _WorkerStats, barrier: threading.Barrier,
              interval_ns: int) -> None:
    get = service.get
    set_ = service.set
    record = stats.latencies_ns.append
    clock = time.perf_counter_ns
    barrier.wait()
    start = clock()
    for i, key in enumerate(keys):
        scheduled = start + i * interval_ns
        wait = scheduled - clock()
        if wait > 0:
            time.sleep(wait / 1e9)
        # Latency from the *scheduled* arrival: queueing delay behind a
        # slow predecessor is charged to every operation it delays.
        try:
            if get(key) is None:
                set_(key, value)
                done = clock()
                stats.misses += 1
                stats.miss_ns += done - scheduled
            else:
                done = clock()
                stats.hits += 1
                stats.hit_ns += done - scheduled
        except WorkerCrashedError:
            stats.errors += 1
            continue
        record(done - scheduled)


def _charge_batch(stats: _WorkerStats, batch_len: int, missed: int,
                  elapsed: int, record) -> None:
    """Account one batch: per-op latency is the batch latency, and the
    batch cost is split evenly across its operations for the hit/miss
    mean-cost counters (per-op costs are not separable inside a batch).
    """
    nhit = batch_len - missed
    stats.hits += nhit
    stats.misses += missed
    per_op = elapsed // batch_len
    stats.hit_ns += per_op * nhit
    stats.miss_ns += per_op * missed
    for _ in range(batch_len):
        record(elapsed)


def _run_closed_batched(service, keys: Sequence[int], value: Any,
                        stats: _WorkerStats, barrier: threading.Barrier,
                        batch_size: int) -> None:
    get_many = service.get_many
    set_many = service.set_many
    record = stats.latencies_ns.append
    clock = time.perf_counter_ns
    barrier.wait()
    for start in range(0, len(keys), batch_size):
        batch = keys[start:start + batch_size]
        t0 = clock()
        try:
            values = get_many(batch)
            missed = [k for k, v in zip(batch, values) if v is None]
            if missed:
                set_many([(k, value) for k in missed])
        except WorkerCrashedError:
            stats.errors += len(batch)
            continue
        elapsed = clock() - t0
        _charge_batch(stats, len(batch), len(missed), elapsed, record)


def _run_open_batched(service, keys: Sequence[int], value: Any,
                      stats: _WorkerStats, barrier: threading.Barrier,
                      interval_ns: int, batch_size: int) -> None:
    get_many = service.get_many
    set_many = service.set_many
    record = stats.latencies_ns.append
    clock = time.perf_counter_ns
    barrier.wait()
    start = clock()
    for bstart in range(0, len(keys), batch_size):
        batch = keys[bstart:bstart + batch_size]
        # A batch issues at its first operation's slot; latency is
        # still charged from the schedule (coordinated omission rules
        # apply to batches exactly as to single operations).
        scheduled = start + bstart * interval_ns
        wait = scheduled - clock()
        if wait > 0:
            time.sleep(wait / 1e9)
        try:
            values = get_many(batch)
            missed = [k for k, v in zip(batch, values) if v is None]
            if missed:
                set_many([(k, value) for k in missed])
        except WorkerCrashedError:
            stats.errors += len(batch)
            continue
        elapsed = clock() - scheduled
        _charge_batch(stats, len(batch), len(missed), elapsed, record)


def _run_net(frontend: str, host: str, port: int, keys: Sequence[int],
             value: bytes, stats: _WorkerStats, barrier: threading.Barrier,
             depth: int, timeout: float = 30.0) -> None:
    """One socket connection's closed loop: windows of ``depth``
    pipelined GETs, then pipelined SETs for the misses.

    Window accounting matches :func:`_charge_batch` (per-op latency is
    the window latency).  Error replies inside a window count in
    ``errors`` without charging latency; a dead connection charges the
    whole window to ``errors`` and reconnects for the next one, so an
    injected ``conn-reset`` shows up as a blip, not a dead thread.
    """
    from repro.netsrv.client import McClient, McError, RespClient, RespError

    def connect():
        if frontend == "resp":
            return RespClient(host, port, timeout=timeout)
        return McClient(host, port, timeout=timeout)

    try:
        client = connect()
    except OSError:
        client = None
    record = stats.latencies_ns.append
    clock = time.perf_counter_ns
    barrier.wait()
    for start in range(0, len(keys), depth):
        window = [str(k) for k in keys[start:start + depth]]
        if client is None:
            try:
                client = connect()
            except OSError:
                stats.errors += len(window)
                continue
        t0 = clock()
        try:
            if frontend == "resp":
                replies = client.pipeline([("GET", k) for k in window])
                missed = [k for k, r in zip(window, replies) if r is None]
                errors = sum(isinstance(r, RespError) for r in replies)
                if missed:
                    stored = client.pipeline(
                        [("SET", k, value) for k in missed]
                    )
                    errors += sum(isinstance(r, RespError) for r in stored)
            else:
                found = client.get_many(window)
                missed = [k for k in window if k not in found]
                errors = 0
                if missed:
                    client.set_many([(k, value) for k in missed])
        except (ConnectionError, OSError, McError):
            stats.errors += len(window)
            client.close()
            client = None
            continue
        elapsed = clock() - t0
        stats.errors += errors
        counted = len(window) - errors
        if counted:
            _charge_batch(stats, counted, min(len(missed), counted),
                          elapsed, record)
    if client is not None:
        client.close()


def counters_snapshot(service, t_s: float) -> Dict[str, Any]:
    """One point-in-time counters row (lock-free, benignly racy reads).

    Process-backed services keep their counters in the workers, so for
    them the snapshot is one ``stats()`` round-trip instead of a racy
    in-process read.
    """
    shards = getattr(service, "shards", None)
    if shards is None and not hasattr(service, "counters"):
        stats = service.stats()
        gets, hits, sets = stats["gets"], stats["hits"], stats["sets"]
        return {
            "t_s": round(t_s, 3),
            "gets": gets,
            "hits": hits,
            "sets": sets,
            "hit_ratio": round(hits / gets, 6) if gets else 0.0,
        }
    counters = (
        [s.counters for s in shards] if shards is not None
        else [service.counters]
    )
    gets = sum(c.gets for c in counters)
    hits = sum(c.hits for c in counters)
    sets = sum(c.sets for c in counters)
    return {
        "t_s": round(t_s, 3),
        "gets": gets,
        "hits": hits,
        "sets": sets,
        "hit_ratio": round(hits / gets, 6) if gets else 0.0,
    }


def _interval_monitor(service, stop: threading.Event, interval_s: float,
                      out: List[Dict[str, Any]]) -> None:
    """Append a counters snapshot every ``interval_s`` until stopped."""
    start = time.perf_counter()
    while not stop.wait(interval_s):
        try:
            out.append(
                counters_snapshot(service, time.perf_counter() - start)
            )
        except WorkerCrashedError:
            continue  # shard died between snapshots; keep monitoring


def _percentile(sorted_ns: Sequence[int], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample.

    The convention is the classic nearest-rank definition: the q-th
    percentile is the smallest sample value such that at least
    ``q * n`` samples are <= it, i.e. index ``ceil(q * n) - 1``
    (clamped to the sample).  No interpolation — the result is always
    an observed value.  Consequences the tests pin: any percentile of
    a 1-sample set is that sample; p50 of 2 samples is the *lower* one
    (1 of 2 samples is already >= 50%); and p99.9 of 1,000 samples is
    the 999th value (999 samples cover exactly 99.9%).  An earlier
    version rounded
    ``q * (n - 1)`` instead, which for example reported the p50 of 4
    samples as the 3rd value — a *75th* percentile under this
    definition.
    """
    n = len(sorted_ns)
    if not n:
        return 0.0
    rank = min(n - 1, max(0, math.ceil(q * n) - 1))
    return float(sorted_ns[rank])


def latency_summary_us(latencies_ns: Sequence[int]) -> Dict[str, float]:
    """p50/p90/p99/p99.9/mean/max of a latency sample, in microseconds."""
    data = sorted(latencies_ns)
    if not data:
        return {k: 0.0 for k in ("p50", "p90", "p99", "p999", "mean", "max")}
    return {
        "p50": round(_percentile(data, 0.50) / 1e3, 3),
        "p90": round(_percentile(data, 0.90) / 1e3, 3),
        "p99": round(_percentile(data, 0.99) / 1e3, 3),
        "p999": round(_percentile(data, 0.999) / 1e3, 3),
        "mean": round(sum(data) / len(data) / 1e3, 3),
        "max": round(data[-1] / 1e3, 3),
    }


def _row_transport(backend: str, transport: str) -> str:
    """What the row's ``transport`` field records (schema 3).

    Only the mp backend has a transport choice; thread rows say
    ``inproc`` and cluster rows pin ``pipe`` (its nodes speak pipes).
    """
    if backend == "mp":
        return transport
    return "pipe" if backend == "cluster" else "inproc"


def build_service(
    capacity: int,
    policy: str,
    num_shards: int,
    **kwargs: Any,
):
    """One shard -> plain :class:`CacheService`, else sharded."""
    if num_shards == 1:
        return CacheService(capacity, policy, **kwargs)
    return ShardedCacheService(capacity, policy, num_shards=num_shards, **kwargs)


def _build_mp_service(
    capacity: int,
    policy: str,
    num_workers: int,
    start_method: Optional[str],
    checked: bool,
    ttl: Optional[float],
    fault_plans=None,
    transport: str = "pipe",
):
    from repro.service.mp import MPCacheService

    return MPCacheService(
        capacity,
        policy,
        num_workers=num_workers,
        transport=transport,
        start_method=start_method,
        checked=checked,
        default_ttl=ttl,
        fault_plans=fault_plans,
    )


def _build_cluster_service(
    capacity: int,
    policy: str,
    num_nodes: int,
    replication: int,
    vnodes: int,
    start_method: Optional[str],
    checked: bool,
    ttl: Optional[float],
    fault_plans=None,
):
    from repro.cluster.service import ClusterCacheService

    return ClusterCacheService(
        capacity,
        policy,
        num_nodes=num_nodes,
        replication=replication,
        vnodes=vnodes,
        start_method=start_method,
        checked=checked,
        default_ttl=ttl,
        fault_plans=fault_plans,
    )


def run_scenario(
    trace: Sequence[int],
    capacity: int,
    policy: str = "s3fifo",
    num_shards: int = 1,
    num_threads: int = 1,
    mode: str = "closed",
    open_rate: float = 50_000.0,
    value: Any = "v",
    checked: bool = False,
    ttl: Optional[float] = None,
    metrics=None,
    tracer=None,
    instrument_policy: bool = False,
    snapshot_interval_s: Optional[float] = None,
    backend: str = "thread",
    batch_size: int = 1,
    transport: str = "pipe",
    start_method: Optional[str] = None,
    replication: int = 2,
    vnodes: int = 64,
    fault_plans=None,
    frontend: str = "inproc",
    connections: int = 1,
    pipeline_depth: int = 1,
) -> Dict[str, Any]:
    """Drive one (shards, threads) configuration; returns the report row.

    ``trace`` is split into ``num_threads`` contiguous slices so the
    aggregate workload is the same for every thread count.  ``open_rate``
    is the per-thread target in ops/sec (open mode only).  ``ttl``
    becomes the service's ``default_ttl`` (requires a removal-capable
    policy).  ``metrics`` / ``tracer`` / ``instrument_policy`` are
    forwarded to the service; pass a fresh registry per scenario if
    histograms must not accumulate across rows.
    ``snapshot_interval_s`` attaches a monitor thread appending
    periodic counters snapshots to the row's ``intervals`` list.

    ``backend="mp"`` runs the process-per-shard
    :class:`~repro.service.mp.MPCacheService` with ``num_shards``
    worker processes (torn down before the row returns);
    ``backend="cluster"`` runs the replicated
    :class:`~repro.cluster.service.ClusterCacheService` with
    ``num_shards`` node processes, ``replication`` copies per key, and
    ``vnodes`` ring points per node.  ``fault_plans`` injects
    deterministic worker crashes on either process backend;
    ``batch_size > 1`` switches any backend to the batched
    read-through loop (see the module docstring for its latency and
    accounting conventions).

    ``transport`` selects the mp backend's parent<->worker channel
    (``"pipe"`` or ``"shm"``); the other backends have no transport
    choice, so their rows record it as ``"inproc"`` (thread) or
    ``"pipe"`` (cluster) and passing ``transport="shm"`` with them is
    an error.

    ``frontend="resp"`` / ``"memcached"`` (schema 4) drives the same
    backend through a real socket: a
    :class:`~repro.netsrv.server.CacheServer` is stood up on an
    ephemeral port and ``connections`` client threads replay the trace
    in closed-loop windows of ``pipeline_depth`` pipelined commands.
    The socket path reuses the batch accounting conventions (window
    latency per op) and is closed-loop only; ``num_threads``,
    ``batch_size``, ``mode="open"``, and the in-process hooks
    (``metrics``/``tracer``/``instrument_policy``) don't apply and
    must stay at their defaults.
    """
    if mode not in ("closed", "open"):
        raise ValueError(f"mode must be 'closed' or 'open', got {mode!r}")
    if num_threads < 1:
        raise ValueError(f"num_threads must be >= 1, got {num_threads}")
    if frontend not in ("inproc", "resp", "memcached"):
        raise ValueError(
            f"frontend must be 'inproc', 'resp', or 'memcached', "
            f"got {frontend!r}"
        )
    if frontend != "inproc":
        if connections < 1:
            raise ValueError(
                f"connections must be >= 1, got {connections}"
            )
        if pipeline_depth < 1:
            raise ValueError(
                f"pipeline_depth must be >= 1, got {pipeline_depth}"
            )
        if mode != "closed":
            raise ValueError(
                "socket frontends are closed-loop only (mode='closed')"
            )
        if num_threads != 1 or batch_size != 1:
            raise ValueError(
                "socket frontends drive with connections/pipeline_depth; "
                "leave num_threads and batch_size at 1"
            )
        if metrics is not None or tracer is not None or instrument_policy:
            raise ValueError(
                "metrics/tracer/instrument_policy are in-process hooks; "
                "the network server wires its own repro_net_* metrics "
                "(see repro.netsrv.server)"
            )
    if backend not in ("thread", "mp", "cluster"):
        raise ValueError(
            f"backend must be 'thread', 'mp', or 'cluster', got {backend!r}"
        )
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if transport not in ("pipe", "shm"):
        raise ValueError(
            f"transport must be 'pipe' or 'shm', got {transport!r}"
        )
    if transport != "pipe" and backend != "mp":
        raise ValueError(
            f"transport={transport!r} requires backend='mp' "
            f"(got backend={backend!r})"
        )
    if backend in ("mp", "cluster"):
        if metrics is not None or tracer is not None or instrument_policy:
            raise ValueError(
                "metrics/tracer/instrument_policy are in-process hooks and "
                "cannot cross process boundaries; the mp backend exposes "
                "MPCacheService.merge_metrics() instead"
            )
        if backend == "mp":
            service = _build_mp_service(
                capacity, policy, num_shards, start_method, checked, ttl,
                fault_plans, transport,
            )
        else:
            service = _build_cluster_service(
                capacity, policy, num_shards, replication, vnodes,
                start_method, checked, ttl, fault_plans,
            )
    else:
        service = build_service(
            capacity, policy, num_shards,
            checked=checked,
            default_ttl=ttl,
            metrics=metrics,
            tracer=tracer,
            instrument_policy=instrument_policy,
        )
    drivers = connections if frontend != "inproc" else num_threads
    per_thread = len(trace) // drivers
    slices = [
        trace[i * per_thread:(i + 1) * per_thread] for i in range(drivers)
    ]
    stats = [_WorkerStats() for _ in range(drivers)]
    barrier = threading.Barrier(drivers + 1)
    net_server = None
    if frontend != "inproc":
        from repro.netsrv.server import ServerThread

        port_kw = ({"resp_port": 0} if frontend == "resp"
                   else {"memcached_port": 0})
        net_server = ServerThread(
            service, max_connections=connections + 1, **port_kw
        ).start()
        port = (net_server.resp_port if frontend == "resp"
                else net_server.memcached_port)
        wire_value = (value if isinstance(value, bytes)
                      else str(value).encode())
        workers = [
            threading.Thread(
                target=_run_net,
                args=(frontend, net_server.server.host, port, s,
                      wire_value, st, barrier, pipeline_depth),
                name=f"loadgen-{i}", daemon=True,
            )
            for i, (s, st) in enumerate(zip(slices, stats))
        ]
    elif mode == "closed":
        if batch_size > 1:
            thread_args = [
                (service, s, value, st, barrier, batch_size)
                for s, st in zip(slices, stats)
            ]
            target = _run_closed_batched
        else:
            thread_args = [
                (service, s, value, st, barrier)
                for s, st in zip(slices, stats)
            ]
            target = _run_closed
        workers = [
            threading.Thread(
                target=target, args=args, name=f"loadgen-{i}", daemon=True,
            )
            for i, args in enumerate(thread_args)
        ]
    else:
        if open_rate <= 0:
            raise ValueError(f"open_rate must be positive, got {open_rate}")
        interval_ns = max(1, int(1e9 / open_rate))
        if batch_size > 1:
            thread_args = [
                (service, s, value, st, barrier, interval_ns, batch_size)
                for s, st in zip(slices, stats)
            ]
            target = _run_open_batched
        else:
            thread_args = [
                (service, s, value, st, barrier, interval_ns)
                for s, st in zip(slices, stats)
            ]
            target = _run_open
        workers = [
            threading.Thread(
                target=target, args=args, name=f"loadgen-{i}", daemon=True,
            )
            for i, args in enumerate(thread_args)
        ]
    intervals: List[Dict[str, Any]] = []
    monitor = stop_monitor = None
    if snapshot_interval_s is not None:
        if snapshot_interval_s <= 0:
            raise ValueError(
                f"snapshot_interval_s must be positive, got {snapshot_interval_s}"
            )
        stop_monitor = threading.Event()
        monitor = threading.Thread(
            target=_interval_monitor,
            args=(service, stop_monitor, snapshot_interval_s, intervals),
            name="loadgen-monitor", daemon=True,
        )
    for w in workers:
        w.start()
    if monitor is not None:
        monitor.start()
    barrier.wait()
    t0 = time.perf_counter()
    for w in workers:
        w.join()
    wall = time.perf_counter() - t0
    if monitor is not None:
        stop_monitor.set()
        monitor.join()
        try:
            intervals.append(counters_snapshot(service, wall))
        except WorkerCrashedError:
            pass  # the run itself already counted the errors
    if net_server is not None:
        net_server.stop()
    merged = array("q")
    hits = misses = hit_ns = miss_ns = errors = 0
    for st in stats:
        merged.extend(st.latencies_ns)
        hits += st.hits
        misses += st.misses
        hit_ns += st.hit_ns
        miss_ns += st.miss_ns
        errors += st.errors
    ops = len(merged)
    # A crashed mp worker makes the final bookkeeping round-trips
    # raise too; report what survives instead of losing the row.
    try:
        if hasattr(service, "ops_per_shard"):
            shard_ops = service.ops_per_shard()
            imbalance = (
                round(imbalance_factor(shard_ops), 4)
                if num_shards > 1 else 1.0
            )
        else:
            shard_ops = [service.counters.gets + service.counters.sets]
            imbalance = 1.0
        service_stats = service.stats()
    except WorkerCrashedError:
        shard_ops = []
        imbalance = 1.0
        service_stats = {"evictions": None, "expired": None, "objects": None}
    if backend in ("mp", "cluster"):
        service.close()
    row = {
        "shards": num_shards,
        "threads": drivers,
        "backend": backend,
        "workers": num_shards if backend in ("mp", "cluster") else 0,
        "batch_size": batch_size,
        "transport": _row_transport(backend, transport),
        "frontend": frontend,
        "connections": connections if frontend != "inproc" else 0,
        "pipeline_depth": pipeline_depth if frontend != "inproc" else 0,
        "mode": mode,
        "policy": policy,
        "ops": ops,
        "wall_time_s": round(wall, 6),
        "ops_per_sec": round(ops / wall) if wall else 0,
        "hit_ratio": round(hits / ops, 6) if ops else 0.0,
        "hits": hits,
        "misses": misses,
        "errors": errors,
        "error_rate": round(errors / (ops + errors), 6) if errors else 0.0,
        "latency_us": latency_summary_us(merged),
        "hit_ns_mean": round(hit_ns / hits) if hits else 0,
        "miss_ns_mean": round(miss_ns / misses) if misses else 0,
        "shard_ops": shard_ops,
        "imbalance": imbalance,
        "evictions": service_stats["evictions"],
        "expired": service_stats["expired"],
        "objects": service_stats["objects"],
        **({"intervals": intervals} if snapshot_interval_s is not None else {}),
    }
    if backend == "cluster":
        row["replication"] = replication
        row["vnodes"] = vnodes
        for field in ("nodes_up", "failovers", "read_repairs",
                      "degraded_ops"):
            row[field] = service_stats.get(field)
    return row


def run_loadgen(
    shard_counts: Sequence[int] = (1, 4),
    thread_counts: Sequence[int] = (1, 4),
    num_objects: int = 10_000,
    num_requests: int = 100_000,
    alpha: float = 1.0,
    cache_ratio: float = 0.1,
    seed: int = 42,
    policy: str = "s3fifo",
    mode: str = "closed",
    open_rate: float = 50_000.0,
    checked: bool = False,
    ttl: Optional[float] = None,
    metrics=None,
    tracer=None,
    instrument_policy: bool = False,
    snapshot_interval_s: Optional[float] = None,
    backend: str = "thread",
    batch_size: int = 1,
    transport: str = "pipe",
    start_method: Optional[str] = None,
    replication: int = 2,
    vnodes: int = 64,
) -> Dict[str, Any]:
    """The full scenario matrix (shards x threads); returns the report.

    The default workload mirrors the perf benchmark's shape (Zipf(1.0),
    10% cache) at load-generator scale.  Every scenario replays the
    *same* seeded trace, so hit ratios are comparable across rows and
    the single-shard rows are directly comparable to the offline
    simulator on the same trace.

    With ``backend="mp"`` the ``shard_counts`` axis becomes the
    worker-process count; to compare backends in one document, run
    this once per backend and join with :func:`combine_reports`.
    """
    from repro.traces.synthetic import zipf_trace

    trace = zipf_trace(
        num_objects=num_objects,
        num_requests=num_requests,
        alpha=alpha,
        seed=seed,
    )
    capacity = max(1, int(num_objects * cache_ratio))
    scenarios: List[Dict[str, Any]] = []
    for shards in shard_counts:
        for threads in thread_counts:
            scenarios.append(
                run_scenario(
                    trace,
                    capacity=capacity,
                    policy=policy,
                    num_shards=shards,
                    num_threads=threads,
                    mode=mode,
                    open_rate=open_rate,
                    checked=checked,
                    ttl=ttl,
                    metrics=metrics,
                    tracer=tracer,
                    instrument_policy=instrument_policy,
                    snapshot_interval_s=snapshot_interval_s,
                    backend=backend,
                    batch_size=batch_size,
                    transport=transport,
                    start_method=start_method,
                    replication=replication,
                    vnodes=vnodes,
                )
            )
    from repro.perf.bench import env_block

    return {
        "schema": SCHEMA_VERSION,
        "kind": REPORT_KIND,
        "env": env_block(),
        "config": {
            "num_objects": num_objects,
            "num_requests": num_requests,
            "alpha": alpha,
            "cache_ratio": cache_ratio,
            "capacity": capacity,
            "seed": seed,
            "policy": policy,
            "mode": mode,
            "open_rate": open_rate if mode == "open" else None,
            "checked": checked,
            "ttl": ttl,
            "backend": backend,
            "batch_size": batch_size,
            "transport": _row_transport(backend, transport),
            "frontend": "inproc",
            "connections": 0,
            "pipeline_depth": 0,
            **({"replication": replication, "vnodes": vnodes}
               if backend == "cluster" else {}),
        },
        "scenarios": scenarios,
    }


def run_net_loadgen(
    frontends: Sequence[str] = ("resp",),
    connection_counts: Sequence[int] = (1, 4),
    pipeline_depths: Sequence[int] = (1, 16),
    num_shards: int = 1,
    num_objects: int = 10_000,
    num_requests: int = 100_000,
    alpha: float = 1.0,
    cache_ratio: float = 0.1,
    seed: int = 42,
    policy: str = "s3fifo",
    checked: bool = False,
    ttl: Optional[float] = None,
    backend: str = "thread",
    transport: str = "pipe",
    start_method: Optional[str] = None,
    replication: int = 2,
    vnodes: int = 64,
) -> Dict[str, Any]:
    """The socket-mode scenario matrix (frontends x connections x
    pipeline depths) over one backend configuration; returns the report.

    The workload is the same seeded Zipf trace as :func:`run_loadgen`,
    so socket rows are directly comparable to in-process rows on the
    same axes — the gap *is* the protocol + socket cost, which is the
    number the ``net_frontier`` experiment reports.  Join with
    in-process reports via :func:`combine_reports`.
    """
    from repro.traces.synthetic import zipf_trace

    trace = zipf_trace(
        num_objects=num_objects,
        num_requests=num_requests,
        alpha=alpha,
        seed=seed,
    )
    capacity = max(1, int(num_objects * cache_ratio))
    scenarios: List[Dict[str, Any]] = []
    for frontend in frontends:
        for conns in connection_counts:
            for depth in pipeline_depths:
                scenarios.append(
                    run_scenario(
                        trace,
                        capacity=capacity,
                        policy=policy,
                        num_shards=num_shards,
                        checked=checked,
                        ttl=ttl,
                        backend=backend,
                        transport=transport,
                        start_method=start_method,
                        replication=replication,
                        vnodes=vnodes,
                        frontend=frontend,
                        connections=conns,
                        pipeline_depth=depth,
                    )
                )
    from repro.perf.bench import env_block

    return {
        "schema": SCHEMA_VERSION,
        "kind": REPORT_KIND,
        "env": env_block(),
        "config": {
            "num_objects": num_objects,
            "num_requests": num_requests,
            "alpha": alpha,
            "cache_ratio": cache_ratio,
            "capacity": capacity,
            "seed": seed,
            "policy": policy,
            "mode": "closed",
            "open_rate": None,
            "checked": checked,
            "ttl": ttl,
            "backend": backend,
            "batch_size": 1,
            "transport": _row_transport(backend, transport),
            "frontend": list(frontends),
            "connections": list(connection_counts),
            "pipeline_depth": list(pipeline_depths),
            **({"replication": replication, "vnodes": vnodes}
               if backend == "cluster" else {}),
        },
        "scenarios": scenarios,
    }


def combine_reports(
    reports: Sequence[Dict[str, Any]],
    sources: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """Join several :func:`run_loadgen` reports into one document.

    Used by the CLI's comma-separated ``--backend thread,mp`` form:
    each backend runs as its own report (its own service lifecycle)
    and the combined document carries every scenario row — rows are
    self-describing since schema 2 (``backend``/``workers``/
    ``batch_size``), so consumers filter rows, not documents.  The
    combined config is the first report's, with ``backend`` replaced
    by the list of contributing backends.

    ``sources`` optionally names each report (file paths, when the
    caller loaded them from disk) so validation errors say *which*
    document is the odd one out instead of making the caller bisect.
    """
    if not reports:
        raise ValueError("combine_reports needs at least one report")
    if sources is not None and len(sources) != len(reports):
        raise ValueError(
            f"sources must name every report: got {len(sources)} "
            f"names for {len(reports)} reports"
        )
    labels = (list(sources) if sources is not None
              else [f"reports[{i}]" for i in range(len(reports))])
    for label, report in zip(labels, reports):
        if report.get("kind") != REPORT_KIND:
            raise ValueError(
                f"{label} is not a loadgen report "
                f"(kind={report.get('kind')!r})"
            )
    schemas = sorted({report.get("schema") for report in reports},
                     key=repr)
    if len(schemas) > 1:
        # Mixing schemas would silently concatenate rows whose fields
        # mean different things (e.g. pre-frontend rows); refuse and
        # name each (source, schema) pair so the caller knows exactly
        # which document to re-run.
        offenders = ", ".join(
            f"{label} (schema {report.get('schema')!r})"
            for label, report in zip(labels, reports)
        )
        raise ValueError(
            f"cannot combine loadgen reports with mixed schemas: "
            f"{offenders}; regenerate the older report(s) at schema "
            f"{SCHEMA_VERSION}"
        )
    if schemas[0] != SCHEMA_VERSION:
        raise ValueError(
            f"loadgen report schema {schemas[0]!r} != {SCHEMA_VERSION}"
        )
    from repro.perf.bench import env_block

    config = dict(reports[0]["config"])
    config["backend"] = [r["config"]["backend"] for r in reports]
    config["transport"] = [r["config"]["transport"] for r in reports]
    config["frontend"] = [r["config"].get("frontend", "inproc")
                          for r in reports]
    return {
        "schema": SCHEMA_VERSION,
        "kind": REPORT_KIND,
        # First report's env when present (all contributors ran on the
        # same host in practice); freshly sampled otherwise.
        "env": reports[0].get("env") or env_block(),
        "config": config,
        "scenarios": [row for r in reports for row in r["scenarios"]],
    }


def format_report(report: Dict[str, Any]) -> str:
    """Human-readable table for the CLI."""
    cfg = report["config"]
    lines = [
        f"loadgen {cfg['policy']} zipf-{cfg['alpha']:g} "
        f"({cfg['mode']} loop): {cfg['num_requests']:,} requests, "
        f"{cfg['num_objects']:,} objects, capacity {cfg['capacity']:,}",
        f"{'backend':>7} {'tport':>6} {'front':>9} {'shards':>6} "
        f"{'threads':>7} {'batch':>5} {'pdepth':>6} {'ops/s':>10} "
        f"{'hit':>7} {'err':>7} "
        f"{'p50us':>8} {'p99us':>8} {'p999us':>8} {'imbal':>6}",
    ]
    for row in report["scenarios"]:
        lat = row["latency_us"]
        lines.append(
            f"{row.get('backend', 'thread'):>7} "
            f"{row.get('transport', 'inproc'):>6} "
            f"{row.get('frontend', 'inproc'):>9} "
            f"{row['shards']:>6} {row['threads']:>7} "
            f"{row.get('batch_size', 1):>5} "
            f"{row.get('pipeline_depth', 0):>6} "
            f"{row['ops_per_sec']:>10,} {row['hit_ratio']:>7.4f} "
            f"{row.get('error_rate', 0.0):>7.4f} "
            f"{lat['p50']:>8.1f} {lat['p99']:>8.1f} {lat['p999']:>8.1f} "
            f"{row['imbalance']:>6.2f}"
        )
    return "\n".join(lines)


def find_scenario(
    report: Dict[str, Any],
    shards: int,
    threads: int,
    backend: Optional[str] = None,
    batch_size: Optional[int] = None,
    transport: Optional[str] = None,
    frontend: Optional[str] = None,
    connections: Optional[int] = None,
    pipeline_depth: Optional[int] = None,
) -> Optional[Dict[str, Any]]:
    """The first scenario row matching the given axes, if any.

    ``backend`` / ``batch_size`` / ``transport`` / ``frontend`` /
    ``connections`` / ``pipeline_depth`` of ``None`` match any row.
    Rows predating a field read as its historical value: thread/1
    (schema 1), for ``transport`` (schema 2) whatever
    :func:`_row_transport` says the row's backend used, and for the
    schema-4 socket axes ``inproc``/0/0.
    """
    for row in report["scenarios"]:
        if row["shards"] != shards or row["threads"] != threads:
            continue
        row_backend = row.get("backend", "thread")
        if backend is not None and row_backend != backend:
            continue
        if (batch_size is not None
                and row.get("batch_size", 1) != batch_size):
            continue
        if transport is not None:
            row_tp = row.get("transport",
                             _row_transport(row_backend, "pipe"))
            if row_tp != transport:
                continue
        if (frontend is not None
                and row.get("frontend", "inproc") != frontend):
            continue
        if (connections is not None
                and row.get("connections", 0) != connections):
            continue
        if (pipeline_depth is not None
                and row.get("pipeline_depth", 0) != pipeline_depth):
            continue
        return row
    return None
