"""Shared-memory ring-buffer transport for the mp cache backend.

The pipe transport pays pickle + syscall per message; fig08-native
shows batching only amortizes that cost.  This module removes it:
parent and worker share one ``multiprocessing.shared_memory`` segment
per worker holding two fixed-slot SPSC ring buffers (request and
response) plus a byte arena, so a cache value moves through shared
memory as raw bytes — no pickling on the hot path, no file descriptor
in the loop.

Segment layout (one per worker)::

    [ 64B header | request ring | response ring | value arena ]

    header:   heartbeat u64 @0 (worker bumps it while waiting/serving),
              shutdown  u64 @8 (parent sets 1 to ask the worker out)
    ring:     ``slots`` fixed slots of ``slot_size`` bytes; each slot is
              [ seq u64 | length u32 | last u8 | pad[3] | payload ]
    arena:    bump-allocated scratch for large values, reset per message

**Rings.** Each ring is single-producer/single-consumer with
seqlock-style per-slot sequence numbers (the Vyukov bounded-queue
scheme): slot ``i`` starts with ``seq = i``; the producer of logical
position ``pos`` waits for ``seq == pos``, writes payload then length,
and publishes with ``seq = pos + 1``; the consumer waits for
``seq == pos + 1``, copies the payload out, and recycles the slot with
``seq = pos + slots``.  Messages larger than one slot fragment across
consecutive slots (``last`` marks the final fragment), which is also
the backpressure story: a burst larger than the ring simply waits for
the consumer to drain slots — bounded memory, no loss, no overwrite.
Publication order relies on aligned 8-byte stores being atomic and on
total-store-order visibility (true on x86-64; CPython's interpreter
overhead makes reordering unobservable in practice elsewhere).

**Arena.** Values (bytes/str ≥ 64 B) are written into the arena and
travel as ``(offset, length)`` references; both sides copy out before
the next message, and strict request/response ping-pong (enforced by
the per-worker channel lock in ``MPCacheService``) means the arena can
be a trivial bump allocator reset at each message.  Values that don't
fit a full arena inline into ring slots instead — oversized values
degrade to the slower path deterministically, they never corrupt a
neighbor.

**Encoding.** Hot ops (``get_many``/``set_many``/``delete_many`` and
their list replies) use struct-packed headers with per-object tags
(None/bool/int64/float/bytes/str inline or arena); anything else —
control ops, exceptions, exotic types — falls back to pickle, either
per-object or whole-message.  The fallback is what keeps shm
byte-identical with pipe on the ``stats()`` differential suite.

**Liveness.** Shared memory has no EOF, so every blocking wait runs an
adaptive spin → ``sched_yield`` → sleep loop that periodically polls
the peer: the parent checks ``Process.is_alive()`` (plus a shutdown
latch), the worker checks ``multiprocessing.parent_process()`` and the
shutdown word, and bumps the heartbeat so a live-but-stuck worker is
distinguishable from a dead one.  A dead peer surfaces as
:class:`~repro.service.transport.TransportClosedError` — an
``OSError`` — which the mp layer converts to ``WorkerCrashedError``
exactly like pipe EOF.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import struct
import time
from multiprocessing import shared_memory
from typing import Any, List, Optional, Tuple

from repro.service.transport import Transport, TransportClosedError

# ----------------------------------------------------------------------
# Geometry
# ----------------------------------------------------------------------

DEFAULT_SLOTS = 64
DEFAULT_SLOT_SIZE = 4096
DEFAULT_ARENA_SIZE = 1 << 20

_HEADER_SIZE = 64
_HB_OFF = 0
_SHUTDOWN_OFF = 8
_SLOT_HDR = 16  # seq u64 | length u32 | last u8 | pad[3]

_SEQ = struct.Struct("<Q")
_LEN = struct.Struct("<IB")
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_REF = struct.Struct("<II")  # arena (offset, length)

# Wait-loop tuning: spin hot, then yield the CPU (essential on hosts
# with fewer cores than workers), then sleep, polling peer liveness
# roughly every 50 ms.  On a single-CPU host hot-spinning only steals
# cycles from the peer we are waiting on, so skip straight to yield.
_SPIN_HOT = 100 if (os.cpu_count() or 1) > 1 else 0
_SPIN_YIELD = 400
_SLEEP_S = 0.0002
_POLL_SLEEPS = 250

_yield = getattr(os, "sched_yield", None) or (lambda: time.sleep(0))


class _Layout:
    """Byte offsets of the rings and arena within one segment."""

    __slots__ = ("slots", "slot_size", "arena_size",
                 "req_off", "resp_off", "arena_off", "total")

    def __init__(self, slots: int, slot_size: int, arena_size: int) -> None:
        if slots < 2:
            raise ValueError(f"shm ring needs >= 2 slots, got {slots}")
        if slot_size < _SLOT_HDR + 48:
            raise ValueError(
                f"shm slot_size must be >= {_SLOT_HDR + 48}, got {slot_size}"
            )
        if arena_size < 0:
            raise ValueError(f"arena_size must be >= 0, got {arena_size}")
        self.slots = slots
        self.slot_size = slot_size
        self.arena_size = arena_size
        ring_bytes = slots * slot_size
        self.req_off = _HEADER_SIZE
        self.resp_off = _HEADER_SIZE + ring_bytes
        self.arena_off = _HEADER_SIZE + 2 * ring_bytes
        self.total = self.arena_off + arena_size


# ----------------------------------------------------------------------
# Arena + rings
# ----------------------------------------------------------------------


class _Arena:
    """Per-message bump allocator over a shared-memory slice.

    Safe only because the channel is strict ping-pong: each side fully
    materializes (copies out) the incoming message before encoding the
    next outgoing one, so ``reset()`` at encode time cannot clobber
    live data.
    """

    __slots__ = ("view", "_pos")

    def __init__(self, view) -> None:
        self.view = view
        self._pos = 0

    def reset(self) -> None:
        self._pos = 0

    def alloc(self, n: int) -> int:
        """Reserve ``n`` bytes; returns the offset or -1 when full."""
        pos = self._pos
        if self.view is None or pos + n > len(self.view):
            return -1
        self._pos = pos + n
        return pos

    def release(self) -> None:
        view, self.view = self.view, None
        if view is not None:
            view.release()


class _Ring:
    """One direction of the channel: an SPSC bounded slot ring.

    Each side holds either the producer or the consumer role for a
    given ring and tracks its own logical position locally; the only
    shared state is the per-slot seq words (see module docstring).
    """

    __slots__ = ("_buf", "_base", "_slots", "_slot_size", "_cap", "_pos")

    def __init__(self, buf, base: int, slots: int, slot_size: int) -> None:
        self._buf = buf
        self._base = base
        self._slots = slots
        self._slot_size = slot_size
        self._cap = slot_size - _SLOT_HDR
        self._pos = 0

    def init_slots(self) -> None:
        """Creator-side: mark every slot free for round 0."""
        for i in range(self._slots):
            _SEQ.pack_into(self._buf, self._base + i * self._slot_size, i)

    def free_slots(self) -> int:
        """Immediately-writable slots (producer side, non-blocking)."""
        n = 0
        while n < self._slots:
            pos = self._pos + n
            base = self._base + (pos % self._slots) * self._slot_size
            if _SEQ.unpack_from(self._buf, base)[0] != pos:
                break
            n += 1
        return n

    def slots_needed(self, nbytes: int) -> int:
        return max(1, -(-nbytes // self._cap))

    def write(self, payload, wait_seq) -> None:
        """Produce one message, fragmenting across slots as needed."""
        buf = self._buf
        cap = self._cap
        data = memoryview(payload)
        n = len(data)
        sent = 0
        while True:
            pos = self._pos
            base = self._base + (pos % self._slots) * self._slot_size
            wait_seq(base, pos)  # slot free for this round?
            chunk = n - sent
            last = 1
            if chunk > cap:
                chunk, last = cap, 0
            start = base + _SLOT_HDR
            buf[start:start + chunk] = data[sent:sent + chunk]
            _LEN.pack_into(buf, base + 8, chunk, last)
            _SEQ.pack_into(buf, base, pos + 1)  # publish
            self._pos = pos + 1
            sent += chunk
            if last:
                return

    def read(self, wait_seq) -> bytearray:
        """Consume one full message (all fragments), recycling slots."""
        buf = self._buf
        out = bytearray()
        while True:
            pos = self._pos
            base = self._base + (pos % self._slots) * self._slot_size
            wait_seq(base, pos + 1)  # published?
            chunk, last = _LEN.unpack_from(buf, base + 8)
            start = base + _SLOT_HDR
            out += buf[start:start + chunk]
            _SEQ.pack_into(buf, base, pos + self._slots)  # recycle
            self._pos = pos + 1
            if last:
                return out


# ----------------------------------------------------------------------
# Message codec
# ----------------------------------------------------------------------

_OP_PICKLE = 0x00
_OP_GET_MANY = 0x01
_OP_SET_MANY = 0x02
_OP_DELETE_MANY = 0x03

_REPLY_PICKLE = 0x00
_REPLY_VALUES = 0x01
_REPLY_BOOLS = 0x02

_T_NONE = ord("N")
_T_TRUE = ord("T")
_T_FALSE = ord("F")
_T_INT = ord("i")
_T_FLOAT = ord("f")
_T_BYTES = ord("b")
_T_BYTES_ARENA = ord("B")
_T_STR = ord("s")
_T_STR_ARENA = ord("S")
_T_PICKLE = ord("p")

_ARENA_MIN = 64  # below this, inlining beats the extra bookkeeping


def _pickled(code: int, obj: Any) -> bytearray:
    out = bytearray((code,))
    out += pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return out


def _enc_blob(out: bytearray, data, arena: Optional[_Arena],
              tag_arena: int, tag_inline: int) -> None:
    n = len(data)
    if arena is not None and n >= _ARENA_MIN:
        off = arena.alloc(n)
        if off >= 0:
            arena.view[off:off + n] = data
            out.append(tag_arena)
            out += _REF.pack(off, n)
            return
    # Arena full (or too small to bother): inline into ring slots —
    # slower, never corrupting.
    out.append(tag_inline)
    out += _U32.pack(n)
    out += data


def _enc_obj(out: bytearray, obj: Any, arena: Optional[_Arena]) -> None:
    """Append one tagged object.  Exact-type checks only: subclasses
    (incl. bool-vs-int) take the pickle tag so types round-trip
    faithfully, matching what a pipe would deliver."""
    t = type(obj)
    if obj is None:
        out.append(_T_NONE)
    elif t is bool:
        out.append(_T_TRUE if obj else _T_FALSE)
    elif t is int:
        if -(1 << 63) <= obj < (1 << 63):
            out.append(_T_INT)
            out += _I64.pack(obj)
        else:
            data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
            out.append(_T_PICKLE)
            out += _U32.pack(len(data))
            out += data
    elif t is float:
        out.append(_T_FLOAT)
        out += _F64.pack(obj)
    elif t is bytes:
        _enc_blob(out, obj, arena, _T_BYTES_ARENA, _T_BYTES)
    elif t is str:
        _enc_blob(out, obj.encode("utf-8"), arena, _T_STR_ARENA, _T_STR)
    else:
        data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        out.append(_T_PICKLE)
        out += _U32.pack(len(data))
        out += data


def _dec_obj(buf, pos: int, arena) -> Tuple[Any, int]:
    tag = buf[pos]
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_INT:
        return _I64.unpack_from(buf, pos)[0], pos + 8
    if tag == _T_FLOAT:
        return _F64.unpack_from(buf, pos)[0], pos + 8
    if tag == _T_BYTES:
        (n,) = _U32.unpack_from(buf, pos)
        pos += 4
        return bytes(buf[pos:pos + n]), pos + n
    if tag == _T_BYTES_ARENA:
        off, n = _REF.unpack_from(buf, pos)
        return bytes(arena[off:off + n]), pos + 8
    if tag == _T_STR:
        (n,) = _U32.unpack_from(buf, pos)
        pos += 4
        return bytes(buf[pos:pos + n]).decode("utf-8"), pos + n
    if tag == _T_STR_ARENA:
        off, n = _REF.unpack_from(buf, pos)
        return bytes(arena[off:off + n]).decode("utf-8"), pos + 8
    if tag == _T_PICKLE:
        (n,) = _U32.unpack_from(buf, pos)
        pos += 4
        return pickle.loads(bytes(buf[pos:pos + n])), pos + n
    raise ValueError(f"bad shm object tag {tag!r}")


def encode_request(msg: tuple, arena: _Arena) -> bytearray:
    """Parent-side: op tuple -> wire bytes (struct fast path for the
    hot batched ops, whole-message pickle for everything else)."""
    try:
        op = msg[0]
        if op == "get_many" and len(msg) == 3:
            out = bytearray((_OP_GET_MANY,))
            _enc_obj(out, msg[2], None)  # default
            keys = msg[1]
            out += _U32.pack(len(keys))
            for key in keys:
                _enc_obj(out, key, None)
            return out
        if op == "set_many" and len(msg) == 5:
            has_ttl, ttl, size, items = msg[1], msg[2], msg[3], msg[4]
            arena.reset()
            out = bytearray((_OP_SET_MANY, 1 if has_ttl else 0))
            _enc_obj(out, ttl, None)
            _enc_obj(out, size, None)
            out += _U32.pack(len(items))
            for key, value in items:
                _enc_obj(out, key, None)
                _enc_obj(out, value, arena)
            return out
        if op == "delete_many" and len(msg) == 2:
            out = bytearray((_OP_DELETE_MANY,))
            keys = msg[1]
            out += _U32.pack(len(keys))
            for key in keys:
                _enc_obj(out, key, None)
            return out
    except Exception:
        pass  # escape hatch below
    return _pickled(_OP_PICKLE, msg)


def decode_request(data, arena) -> tuple:
    op = data[0]
    if op == _OP_PICKLE:
        return pickle.loads(bytes(data[1:]))
    buf = memoryview(data)
    try:
        if op == _OP_GET_MANY:
            default, pos = _dec_obj(buf, 1, arena)
            (n,) = _U32.unpack_from(buf, pos)
            pos += 4
            keys: List[Any] = []
            for _ in range(n):
                key, pos = _dec_obj(buf, pos, arena)
                keys.append(key)
            return ("get_many", keys, default)
        if op == _OP_SET_MANY:
            has_ttl = bool(data[1])
            ttl, pos = _dec_obj(buf, 2, arena)
            size, pos = _dec_obj(buf, pos, arena)
            (n,) = _U32.unpack_from(buf, pos)
            pos += 4
            items: List[Tuple[Any, Any]] = []
            for _ in range(n):
                key, pos = _dec_obj(buf, pos, arena)
                value, pos = _dec_obj(buf, pos, arena)
                items.append((key, value))
            return ("set_many", has_ttl, ttl, size, items)
        if op == _OP_DELETE_MANY:
            (n,) = _U32.unpack_from(buf, 1)
            pos = 5
            keys = []
            for _ in range(n):
                key, pos = _dec_obj(buf, pos, arena)
                keys.append(key)
            return ("delete_many", keys)
        raise ValueError(f"bad shm request opcode {op!r}")
    finally:
        buf.release()


def encode_reply(msg: Any, arena: _Arena) -> bytearray:
    """Worker-side: reply -> wire bytes.  ``("ok", [bools])`` packs to
    a bitset, ``("ok", [values])`` to tagged objects (values through
    the arena); anything else — errors, dict payloads — pickles."""
    try:
        if type(msg) is tuple and len(msg) == 2 and msg[0] == "ok":
            payload = msg[1]
            if type(payload) is list:
                n = len(payload)
                if n and all(type(v) is bool for v in payload):
                    out = bytearray((_REPLY_BOOLS,))
                    out += _U32.pack(n)
                    bits = bytearray((n + 7) >> 3)
                    for i, v in enumerate(payload):
                        if v:
                            bits[i >> 3] |= 1 << (i & 7)
                    out += bits
                    return out
                arena.reset()
                out = bytearray((_REPLY_VALUES,))
                out += _U32.pack(n)
                for v in payload:
                    _enc_obj(out, v, arena)
                return out
    except Exception:
        pass
    return _pickled(_REPLY_PICKLE, msg)


def decode_reply(data, arena) -> Any:
    code = data[0]
    if code == _REPLY_PICKLE:
        return pickle.loads(bytes(data[1:]))
    buf = memoryview(data)
    try:
        (n,) = _U32.unpack_from(buf, 1)
        if code == _REPLY_BOOLS:
            values: List[Any] = []
            for i in range(n):
                values.append(bool(buf[5 + (i >> 3)] & (1 << (i & 7))))
            return ("ok", values)
        if code == _REPLY_VALUES:
            pos = 5
            values = []
            for _ in range(n):
                value, pos = _dec_obj(buf, pos, arena)
                values.append(value)
            return ("ok", values)
        raise ValueError(f"bad shm reply code {code!r}")
    finally:
        buf.release()


# ----------------------------------------------------------------------
# Endpoints
# ----------------------------------------------------------------------


class ShmTransport(Transport):
    """Parent-side endpoint: creates and owns the shared segment."""

    name = "shm"

    def __init__(self, ctx=None, *, slots: int = DEFAULT_SLOTS,
                 slot_size: int = DEFAULT_SLOT_SIZE,
                 arena_size: int = DEFAULT_ARENA_SIZE) -> None:
        layout = _Layout(slots, slot_size, arena_size)
        self._layout = layout
        self._shm = shared_memory.SharedMemory(create=True, size=layout.total)
        self._buf = self._shm.buf
        self._buf[:_HEADER_SIZE] = bytes(_HEADER_SIZE)
        self._req = _Ring(self._buf, layout.req_off, slots, slot_size)
        self._resp = _Ring(self._buf, layout.resp_off, slots, slot_size)
        self._req.init_slots()
        self._resp.init_slots()
        self._arena = _Arena(
            self._buf[layout.arena_off:layout.arena_off + layout.arena_size]
        )
        self._proc = None
        self._closed = False

    def worker_endpoint(self) -> "ShmWorkerChannel":
        layout = self._layout
        return ShmWorkerChannel(self._shm.name, layout.slots,
                                layout.slot_size, layout.arena_size)

    def after_start(self, process: Any) -> None:
        self._proc = process  # liveness: is_alive() inside every wait

    # -- liveness -------------------------------------------------------
    def _poll(self) -> None:
        if self._closed:
            raise TransportClosedError("shm transport closed")
        proc = self._proc
        if proc is not None:
            try:
                alive = proc.is_alive()
            except ValueError:  # Process handle already closed
                alive = False
            if not alive:
                raise TransportClosedError(
                    "shm worker process died (no heartbeat possible)"
                )

    def _wait_seq(self, base: int, expected: int) -> None:
        buf = self._buf
        unpack = _SEQ.unpack_from
        spin = 0
        sleeps = 0
        while unpack(buf, base)[0] != expected:
            spin += 1
            if spin <= _SPIN_HOT:
                continue
            if spin <= _SPIN_HOT + _SPIN_YIELD:
                _yield()
                continue
            time.sleep(_SLEEP_S)
            sleeps += 1
            if sleeps >= _POLL_SLEEPS:
                sleeps = 0
                self._poll()

    def heartbeat(self) -> int:
        """The worker's liveness counter (monotone while it breathes)."""
        return _SEQ.unpack_from(self._buf, _HB_OFF)[0]

    # -- Transport ------------------------------------------------------
    def send(self, msg: Any) -> None:
        if self._closed:
            raise TransportClosedError("shm transport closed")
        req, arena = self._req, self._arena
        if req is None or arena is None:
            raise TransportClosedError("shm transport closed")
        try:
            req.write(encode_request(msg, arena), self._wait_seq)
        except ValueError as exc:  # buffer released under us mid-close
            raise TransportClosedError(str(exc)) from exc

    def recv(self) -> Any:
        if self._closed:
            raise TransportClosedError("shm transport closed")
        resp, arena = self._resp, self._arena
        if resp is None or arena is None:
            raise TransportClosedError("shm transport closed")
        try:
            data = resp.read(self._wait_seq)
            return decode_reply(data, arena.view)
        except ValueError as exc:
            raise TransportClosedError(str(exc)) from exc

    def request_close(self) -> None:
        """Ask the worker out — but never block teardown: only write
        when the ring has room right now (ping-pong guarantees it does
        unless the worker is already wedged, and then ``signal_close``
        + terminate handle it)."""
        req = self._req
        if self._closed or req is None:
            return
        try:
            payload = encode_request(("close",), self._arena)
            if req.free_slots() >= req.slots_needed(len(payload)):
                req.write(payload, self._wait_seq)
        except (OSError, ValueError):
            pass

    def signal_close(self) -> None:
        try:
            _SEQ.pack_into(self._buf, _SHUTDOWN_OFF, 1)
        except (TypeError, ValueError):
            pass  # segment already torn down

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.signal_close()
        self._req = self._resp = None
        arena, self._arena = self._arena, None
        if arena is not None:
            arena.release()
        try:
            self._shm.close()
        except BufferError:
            # A thread still blocked in a wait holds a view; it will
            # exit via _poll() (we set _closed) and GC finishes the job.
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass


class ShmWorkerChannel:
    """Worker-side endpoint.

    Carries only plain segment geometry across the process boundary
    (safe under both ``fork`` and ``spawn``) and attaches lazily inside
    the worker.  Exposes the same ``recv``/``send``/``close`` surface
    as a ``Connection``, so ``_worker_main`` needs no transport
    branches.
    """

    def __init__(self, name: str, slots: int, slot_size: int,
                 arena_size: int) -> None:
        self._name = name
        self._slots = slots
        self._slot_size = slot_size
        self._arena_size = arena_size
        self._shm = None
        self._req = None
        self._resp = None
        self._arena = None
        self._parent = None
        self._hb = 0

    def _attach(self) -> None:
        if self._shm is not None:
            return
        layout = _Layout(self._slots, self._slot_size, self._arena_size)
        self._shm = shared_memory.SharedMemory(name=self._name)
        buf = self._shm.buf
        self._buf = buf
        self._req = _Ring(buf, layout.req_off, layout.slots,
                          layout.slot_size)
        self._resp = _Ring(buf, layout.resp_off, layout.slots,
                           layout.slot_size)
        self._arena = _Arena(
            buf[layout.arena_off:layout.arena_off + layout.arena_size]
        )
        self._parent = multiprocessing.parent_process()

    # -- liveness -------------------------------------------------------
    def _beat(self) -> None:
        self._hb += 1
        _SEQ.pack_into(self._buf, _HB_OFF, self._hb)

    def _poll(self) -> None:
        if _SEQ.unpack_from(self._buf, _SHUTDOWN_OFF)[0]:
            raise TransportClosedError("parent signalled shutdown")
        parent = self._parent
        if parent is not None and not parent.is_alive():
            raise TransportClosedError("parent process died")

    def _wait_seq(self, base: int, expected: int) -> None:
        buf = self._buf
        unpack = _SEQ.unpack_from
        spin = 0
        sleeps = 0
        while unpack(buf, base)[0] != expected:
            spin += 1
            if spin <= _SPIN_HOT:
                continue
            if spin <= _SPIN_HOT + _SPIN_YIELD:
                _yield()
                continue
            time.sleep(_SLEEP_S)
            sleeps += 1
            self._beat()  # heartbeat: waiting-but-alive
            if sleeps >= _POLL_SLEEPS:
                sleeps = 0
                self._poll()

    # -- Connection-shaped surface -------------------------------------
    def recv(self) -> Any:
        self._attach()
        try:
            data = self._req.read(self._wait_seq)
        except ValueError as exc:
            raise TransportClosedError(str(exc)) from exc
        self._beat()
        return decode_request(data, self._arena.view)

    def send(self, obj: Any) -> None:
        self._attach()
        try:
            self._resp.write(encode_reply(obj, self._arena),
                             self._wait_seq)
        except ValueError as exc:
            raise TransportClosedError(str(exc)) from exc
        self._beat()

    def close(self) -> None:
        shm, self._shm = self._shm, None
        if shm is None:
            return
        self._req = self._resp = None
        arena, self._arena = self._arena, None
        if arena is not None:
            arena.release()
        try:
            shm.close()
        except BufferError:
            pass
