"""Pluggable parent<->worker transports for the mp cache backend.

:class:`~repro.service.mp.MPCacheService` talks to each shard worker
through exactly one duplex channel in strict request/response ping-pong
(one outstanding message per worker, guarded by a parent-side lock).
This module abstracts *how* those messages move so the worker loop,
crash watchdog, and metrics merge in ``mp.py`` stay transport-agnostic:

* ``pipe`` — :class:`PipeTransport`, the PR 5 default: a duplex
  ``multiprocessing.Pipe`` carrying pickled ``(tag, payload)`` tuples.
  Liveness is free (pipe EOF when either side dies).
* ``shm`` — :class:`~repro.service.shm.ShmTransport`: fixed-slot
  request/response ring buffers plus a byte arena in one
  ``multiprocessing.shared_memory`` segment per worker, with
  struct-packed message encoding and pickle only as the escape hatch.
  There is no EOF in shared memory, so liveness is a heartbeat word +
  ``Process.is_alive()`` polling inside every blocking wait.

Both sides speak the same object protocol as the original pipes:
the parent sends op tuples like ``("get_many", keys, default)`` and
receives ``("ok", payload)`` / ``("err", exc)`` tuples, so every
transport is interchangeable under the differential stats parity
tests.

A transport failure (peer gone, segment torn down) surfaces as
:class:`TransportClosedError`, an :class:`OSError` subclass — the
existing ``except (EOFError, OSError)`` crash paths in ``mp.py`` and
the worker loop handle it without knowing which transport raised.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

TRANSPORTS: Tuple[str, ...] = ("pipe", "shm")


class TransportClosedError(OSError):
    """The peer died or the channel was shut down mid-wait.

    Subclasses :class:`OSError` deliberately: parent-side ``_recv``
    converts any ``OSError`` into ``WorkerCrashedError``, and the
    worker loop treats it like pipe EOF (exit quietly).
    """


class Transport:
    """Parent-side channel to one worker process.

    Lifecycle::

        t = create_transport("shm", ctx)
        proc = ctx.Process(target=_worker_main,
                           args=(t.worker_endpoint(), ...))
        proc.start()
        t.after_start(proc)     # release child-only resources, wire
                                # liveness to the Process handle
        t.send(msg); reply = t.recv()   # strict ping-pong
        t.signal_close()        # non-blocking shutdown nudge
        t.close()               # release parent resources

    ``worker_endpoint()`` returns the object handed to the worker
    process; it must survive both ``fork`` (plain memcopy, no pickling)
    and ``spawn`` (pickled), and must expose ``recv()``, ``send(obj)``
    and ``close()`` — a raw ``Connection`` already does.
    """

    name = "abstract"

    def worker_endpoint(self) -> Any:
        raise NotImplementedError

    def after_start(self, process: Any) -> None:
        """Called once the worker process has started."""

    def send(self, msg: Any) -> None:
        raise NotImplementedError

    def recv(self) -> Any:
        raise NotImplementedError

    def request_close(self) -> None:
        """Best-effort polite shutdown: deliver a ``("close",)`` op.

        Must not block indefinitely — teardown calls this under a
        bounded lock acquire and falls back to ``signal_close`` +
        process termination.
        """
        try:
            self.send(("close",))
        except (OSError, ValueError):
            pass  # worker already dead or channel gone

    def signal_close(self) -> None:
        """Best-effort, non-blocking shutdown signal to the worker.

        Used by teardown when the channel lock cannot be acquired (a
        wedged exchange holds it); must never block.
        """

    def close(self) -> None:
        raise NotImplementedError


class PipeTransport(Transport):
    """The classic duplex-pipe transport (default and fallback)."""

    name = "pipe"

    def __init__(self, ctx) -> None:
        self._parent, self._child = ctx.Pipe(duplex=True)

    def worker_endpoint(self) -> Any:
        return self._child

    def after_start(self, process: Any) -> None:
        # The worker holds the only child end from here on; closing
        # ours re-arms the EOF sentinel (worker exits when we die).
        self._child.close()

    def send(self, msg: Any) -> None:
        self._parent.send(msg)

    def recv(self) -> Any:
        return self._parent.recv()

    def signal_close(self) -> None:
        # Closing the parent end delivers EOF to a worker blocked in
        # recv(); Connection.close never blocks.
        try:
            self._parent.close()
        except OSError:
            pass

    def close(self) -> None:
        try:
            self._parent.close()
        except OSError:
            pass


def create_transport(
    name: str,
    ctx,
    options: Optional[Dict[str, Any]] = None,
) -> Transport:
    """Build a parent-side transport by name (``pipe`` or ``shm``)."""
    if name == "pipe":
        return PipeTransport(ctx)
    if name == "shm":
        from repro.service.shm import ShmTransport

        return ShmTransport(ctx, **(options or {}))
    raise ValueError(
        f"unknown mp transport {name!r}; expected one of {TRANSPORTS}"
    )
