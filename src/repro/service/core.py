"""A live, thread-safe, TTL-aware cache service over any registered policy.

Everything else in this repository *simulates* caches — it replays a
trace through an eviction policy and reports miss ratios.
:class:`CacheService` is the first layer that *is* a cache: it stores
values, answers ``get``/``set``/``delete`` under a lock, expires
entries, and keeps service-level statistics, while delegating every
admission/eviction decision to a registered
:class:`~repro.cache.base.EvictionPolicy` (S3-FIFO and its ``-fast``
twin first-class).

Design notes
------------

* **Policy mapping.**  ``get`` on a live entry issues one policy
  request (a hit — bumps S3-FIFO's frequency bits); ``get`` on an
  absent or expired key touches the policy *not at all* (there is no
  value to admit); ``set`` issues one policy request (a hit refreshes
  an overwrite, a miss admits and may evict).  A single-shard service
  replaying a read-through workload therefore drives the policy with
  exactly the same request sequence as the offline simulator — the
  parity tests pin this equivalence.
* **TTL.**  ``expires_at = clock() + ttl``; an entry is expired once
  ``clock() >= expires_at`` (*at* the deadline counts as expired).
  Expired entries never count as hits and never feed frequency bits:
  they are purged from the policy before it sees the access.  Expiry is
  lazy on access plus an incremental sweeper
  (:meth:`CacheService.sweep`) that callers or the service itself
  (every ``sweep_interval`` operations) run in small bounded batches.
  ``ttl=0`` means "expires immediately": the set is acknowledged but
  nothing is admitted.
* **Deletion.**  Real deletion needs policy support
  (:attr:`~repro.cache.base.EvictionPolicy.supports_removal`); the
  service refuses TTLs and deletes on policies without it rather than
  corrupt their queues with tombstones.
* **Locking.**  One re-entrant lock per service instance guards the
  value map and the policy (policies are single-threaded by design —
  the paper's lock-free claims are about its C implementations).
  :class:`~repro.service.sharded.ShardedCacheService` multiplies this
  into per-shard locks.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Hashable, List, Optional

from repro.cache.registry import create_policy
from repro.sim.request import Request

_UNSET = object()


class RemovalUnsupportedError(TypeError):
    """The backing policy cannot delete entries (no ``remove()``)."""

    def __init__(self, policy_name: str, operation: str) -> None:
        super().__init__(
            f"policy {policy_name!r} does not support remove(), which "
            f"{operation} requires; use a policy with supports_removal=True "
            "(s3fifo, s3fifo-fast, lru, lru-fast, fifo)"
        )


class ServiceCounters:
    """Operation-level counters for one :class:`CacheService`.

    Distinct from the policy's :class:`~repro.cache.base.CacheStats`:
    these count *service operations* (a ``get`` that misses never
    reaches the policy), the policy's stats count *policy requests*.
    """

    __slots__ = (
        "gets",
        "hits",
        "misses",
        "sets",
        "deletes",
        "expired",
        "evictions",
        "rejected",
        "sweeps",
        "sweep_checks",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    @property
    def hit_ratio(self) -> float:
        """Fraction of gets served from cache (expired gets are misses)."""
        return self.hits / self.gets if self.gets else 0.0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        return (
            f"ServiceCounters(gets={self.gets}, hit_ratio={self.hit_ratio:.4f},"
            f" sets={self.sets}, expired={self.expired})"
        )


class _Entry:
    """A stored value plus its expiry deadline and charged size."""

    __slots__ = ("value", "expires_at", "size")

    def __init__(self, value: Any, expires_at: Optional[float], size: int) -> None:
        self.value = value
        self.expires_at = expires_at
        self.size = size


class CacheService:
    """An in-process cache service: ``get``/``set``/``delete``/``stats``.

    Parameters
    ----------
    capacity:
        Policy capacity (objects for unit-size values, bytes when sets
        pass explicit sizes).
    policy:
        Registry name of the backing eviction policy.
    default_ttl:
        TTL in seconds applied to sets that don't pass one explicitly;
        ``None`` (default) stores entries without expiry.
    clock:
        Monotonic time source; injectable so TTL tests are exact.
    checked:
        Wrap the policy in the
        :class:`~repro.resilience.sanitizer.CheckedPolicy` invariant
        sanitizer — every access cross-checked, as in the concurrent
        hammer tests.
    sweep_interval / sweep_batch:
        Run one incremental expiry sweep of ``sweep_batch`` entries
        every ``sweep_interval`` operations (only while TTL'd entries
        exist).  ``sweep_interval=0`` disables the automatic sweeps;
        :meth:`sweep` remains available.
    policy_kwargs:
        Extra keyword arguments for the policy constructor.
    """

    def __init__(
        self,
        capacity: int,
        policy: str = "s3fifo",
        *,
        default_ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        checked: bool = False,
        sweep_interval: int = 256,
        sweep_batch: int = 64,
        policy_kwargs: Optional[Dict[str, Any]] = None,
    ) -> None:
        if default_ttl is not None and default_ttl < 0:
            raise ValueError(f"default_ttl must be >= 0, got {default_ttl}")
        if sweep_interval < 0:
            raise ValueError(f"sweep_interval must be >= 0, got {sweep_interval}")
        if sweep_batch < 1:
            raise ValueError(f"sweep_batch must be >= 1, got {sweep_batch}")
        backing = create_policy(policy, capacity=capacity, **(policy_kwargs or {}))
        if checked:
            from repro.resilience.sanitizer import CheckedPolicy

            self._policy = CheckedPolicy(backing)
        else:
            self._policy = backing
        self.policy_name = backing.name
        self.capacity = capacity
        self.checked = checked
        self.supports_removal = bool(getattr(backing, "supports_removal", False))
        if default_ttl is not None and not self.supports_removal:
            raise RemovalUnsupportedError(self.policy_name, "default_ttl")
        self.default_ttl = default_ttl
        self.counters = ServiceCounters()
        self._clock = clock
        self._lock = threading.RLock()
        self._values: Dict[Hashable, _Entry] = {}
        self._ttl_entries = 0
        self._sweep_interval = sweep_interval
        self._sweep_batch = sweep_batch
        self._sweep_queue: List[Hashable] = []
        self._ops_since_sweep = 0
        backing.add_eviction_listener(self._on_evict)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def get(self, key: Hashable, default: Any = None) -> Any:
        """The live value for ``key``, or ``default``.

        A hit refreshes the policy's metadata for the key (for S3-FIFO:
        bumps the 2-bit counter).  Misses — absent *or expired* — do not
        touch the policy.
        """
        with self._lock:
            self.counters.gets += 1
            entry = self._values.get(key)
            if entry is not None and self._expired(entry):
                self._purge(key, entry)
                self.counters.expired += 1
                entry = None
            if entry is None:
                self.counters.misses += 1
                self._tick()
                return default
            hit = self._policy.request(Request(key, size=entry.size))
            assert hit, f"resident key {key!r} missed in the policy"
            self.counters.hits += 1
            self._tick()
            return entry.value

    def set(
        self,
        key: Hashable,
        value: Any,
        ttl: Any = _UNSET,
        size: int = 1,
    ) -> bool:
        """Store ``value`` under ``key``; True when the value is resident.

        ``ttl`` seconds override the service's ``default_ttl``
        (``None`` = never expires, ``0`` = expires immediately — the
        set is a no-op beyond purging any live predecessor).  ``size``
        charges the entry against the policy capacity; an entry larger
        than the whole cache is rejected.  Re-setting a live key
        refreshes its value, size, and deadline.
        """
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        if ttl is _UNSET:
            ttl = self.default_ttl
        if ttl is not None:
            if ttl < 0:
                raise ValueError(f"ttl must be >= 0, got {ttl}")
            if not self.supports_removal:
                raise RemovalUnsupportedError(self.policy_name, "ttl")
        with self._lock:
            self.counters.sets += 1
            entry = self._values.get(key)
            if entry is not None and self._expired(entry):
                # The predecessor died before this set: purge it first so
                # the policy sees a fresh admission (frequency bits must
                # not survive expiry).
                self._purge(key, entry)
                self.counters.expired += 1
                entry = None
            if ttl == 0:
                if entry is not None:
                    self._purge(key, entry)
                self._tick()
                return False
            if size > self.capacity:
                if entry is not None:
                    self._purge(key, entry)
                self.counters.rejected += 1
                self._tick()
                return False
            if entry is not None and entry.size != size:
                # Policies cannot resize a resident entry in place.
                self._purge(key, entry)
                entry = None
            self._policy.request(Request(key, size=size))
            expires_at = None if ttl is None else self._clock() + ttl
            if key not in self._values:
                # The policy admitted the key (or it was already purged
                # above); either way this set (re)creates the entry.
                self._values[key] = new = _Entry(value, expires_at, size)
                if expires_at is not None:
                    self._ttl_entries += 1
            else:
                new = self._values[key]
                had_ttl = new.expires_at is not None
                new.value = value
                new.expires_at = expires_at
                if had_ttl != (expires_at is not None):
                    self._ttl_entries += 1 if expires_at is not None else -1
            self._tick()
            return True

    def delete(self, key: Hashable) -> bool:
        """Remove ``key``; True when a live entry was removed."""
        if not self.supports_removal:
            raise RemovalUnsupportedError(self.policy_name, "delete()")
        with self._lock:
            self.counters.deletes += 1
            entry = self._values.get(key)
            if entry is None:
                return False
            was_live = not self._expired(entry)
            self._purge(key, entry)
            if not was_live:
                self.counters.expired += 1
            self._tick()
            return was_live

    def sweep(self, max_checks: Optional[int] = None) -> int:
        """Expire up to ``max_checks`` entries; returns how many died.

        One incremental step of the background sweeper: a bounded batch
        of keys is checked against the clock, so no single call stalls
        the service scanning a huge cache.  Call repeatedly (or leave it
        to the automatic per-operation trigger) to drain all expired
        entries.
        """
        if max_checks is None:
            max_checks = self._sweep_batch
        with self._lock:
            self.counters.sweeps += 1
            if not self._ttl_entries:
                return 0
            if not self._sweep_queue:
                self._sweep_queue = list(self._values.keys())
            expired = 0
            for _ in range(min(max_checks, len(self._sweep_queue))):
                key = self._sweep_queue.pop()
                self.counters.sweep_checks += 1
                entry = self._values.get(key)
                if entry is not None and self._expired(entry):
                    self._purge(key, entry)
                    self.counters.expired += 1
                    expired += 1
            return expired

    def stats(self) -> Dict[str, Any]:
        """A consistent snapshot of service and policy statistics."""
        with self._lock:
            counters = self.counters.as_dict()
            policy = self._policy
            return {
                "policy": self.policy_name,
                "capacity": self.capacity,
                "objects": len(self._values),
                "used": policy.used,
                "hit_ratio": self.counters.hit_ratio,
                "ttl_entries": self._ttl_entries,
                "policy_requests": policy.stats.requests,
                "policy_miss_ratio": policy.stats.miss_ratio,
                **counters,
            }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def policy(self):
        """The backing policy (the sanitizer wrapper when ``checked``)."""
        return self._policy

    def __contains__(self, key: Hashable) -> bool:
        """Live membership; non-mutating (an expired entry reads absent)."""
        with self._lock:
            entry = self._values.get(key)
            return entry is not None and not self._expired(entry)

    def __len__(self) -> int:
        """Resident entries, expired-but-unswept included."""
        with self._lock:
            return len(self._values)

    def check(self) -> None:
        """Run the sanitizer's full invariant suite (checked mode only)."""
        with self._lock:
            if self.checked:
                self._policy.check()
            used = sum(e.size for e in self._values.values())
            if used != self._policy.used:
                raise AssertionError(
                    f"service value map holds {used} bytes but policy "
                    f"reports used={self._policy.used}"
                )

    def __repr__(self) -> str:
        return (
            f"CacheService({self.policy_name}, capacity={self.capacity}, "
            f"objects={len(self._values)})"
        )

    # ------------------------------------------------------------------
    # Internals (call with the lock held)
    # ------------------------------------------------------------------
    def _expired(self, entry: _Entry) -> bool:
        return entry.expires_at is not None and self._clock() >= entry.expires_at

    def _purge(self, key: Hashable, entry: _Entry) -> None:
        """Drop an entry from the value map and the policy (no event)."""
        del self._values[key]
        if entry.expires_at is not None:
            self._ttl_entries -= 1
        self._policy.remove(key)

    def _on_evict(self, event) -> None:
        """Policy evicted a key: the stored value goes with it."""
        entry = self._values.pop(event.key, None)
        if entry is not None and entry.expires_at is not None:
            self._ttl_entries -= 1
        self.counters.evictions += 1

    def _tick(self) -> None:
        """Operation bookkeeping: trigger an incremental sweep on cadence."""
        if not self._sweep_interval or not self._ttl_entries:
            return
        self._ops_since_sweep += 1
        if self._ops_since_sweep >= self._sweep_interval:
            self._ops_since_sweep = 0
            self.sweep(self._sweep_batch)
