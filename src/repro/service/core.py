"""A live, thread-safe, TTL-aware cache service over any registered policy.

Everything else in this repository *simulates* caches — it replays a
trace through an eviction policy and reports miss ratios.
:class:`CacheService` is the first layer that *is* a cache: it stores
values, answers ``get``/``set``/``delete`` under a lock, expires
entries, and keeps service-level statistics, while delegating every
admission/eviction decision to a registered
:class:`~repro.cache.base.EvictionPolicy` (S3-FIFO and its ``-fast``
twin first-class).

Design notes
------------

* **Policy mapping.**  ``get`` on a live entry issues one policy
  request (a hit — bumps S3-FIFO's frequency bits); ``get`` on an
  absent or expired key touches the policy *not at all* (there is no
  value to admit); ``set`` issues one policy request (a hit refreshes
  an overwrite, a miss admits and may evict).  A single-shard service
  replaying a read-through workload therefore drives the policy with
  exactly the same request sequence as the offline simulator — the
  parity tests pin this equivalence.
* **Residency.**  The value map only ever holds keys the policy is
  tracking.  A policy may decline to keep a key the service just
  offered it — admission filters (``blru``'s Bloom doorkeeper) reject
  first-touch keys outright, and a pathological policy could pick the
  in-flight key as its eviction victim — so ``set`` re-checks
  residency after the policy request and reports such sets as
  *rejected* instead of storing an orphaned value.
* **TTL.**  ``expires_at = clock() + ttl``; an entry is expired once
  ``clock() >= expires_at`` (*at* the deadline counts as expired).
  Expired entries never count as hits and never feed frequency bits:
  they are purged from the policy before it sees the access.  Expiry is
  lazy on access plus an incremental sweeper
  (:meth:`CacheService.sweep`) that callers or the service itself
  (every ``sweep_interval`` operations) run in small bounded batches.
  The sweeper tracks *only* keys that carry a TTL, in a FIFO queue fed
  as deadlines are assigned: a freshly TTL'd key is visited within
  ``ceil(queue_len / batch)`` sweeps no matter how many immortal
  entries share the cache, and still-live keys recycle to the tail.
  ``ttl=0`` means "expires immediately": the set is acknowledged but
  nothing is admitted.
* **Deletion.**  Real deletion needs policy support
  (:attr:`~repro.cache.base.EvictionPolicy.supports_removal`); the
  service refuses TTLs and deletes on policies without it rather than
  corrupt their queues with tombstones.
* **Locking.**  One re-entrant lock per service instance guards the
  value map and the policy (policies are single-threaded by design —
  the paper's lock-free claims are about its C implementations).
  :class:`~repro.service.sharded.ShardedCacheService` multiplies this
  into per-shard locks.
* **Observability.**  Pass a
  :class:`~repro.obs.metrics.MetricsRegistry` to export every counter
  in :class:`ServiceCounters` plus occupancy gauges (all read at
  collect time — zero hot-path cost) and per-op latency histograms
  (the one per-operation write); pass an
  :class:`~repro.obs.tracer.EventTracer` to sample individual
  decisions.  Without either, operations run exactly the pre-existing
  code path.  See ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.cache.registry import create_policy, removal_capable_policies
from repro.sim.request import Request

_UNSET = object()


class RemovalUnsupportedError(TypeError):
    """The backing policy cannot delete entries (no ``remove()``)."""

    def __init__(self, policy_name: str, operation: str) -> None:
        self.policy_name = policy_name
        self.operation = operation
        capable = ", ".join(removal_capable_policies())
        super().__init__(
            f"policy {policy_name!r} does not support remove(), which "
            f"{operation} requires; use a removal-capable policy: {capable}"
        )

    def __reduce__(self):
        # args holds the formatted message, not the constructor inputs,
        # so default pickling would re-call __init__ with the wrong
        # arity; the mp backend ships this exception across pipes.
        return (type(self), (self.policy_name, self.operation))


class ServiceCounters:
    """Operation-level counters for one :class:`CacheService`.

    Distinct from the policy's :class:`~repro.cache.base.CacheStats`:
    these count *service operations* (a ``get`` that misses never
    reaches the policy), the policy's stats count *policy requests*.
    """

    __slots__ = (
        "gets",
        "hits",
        "misses",
        "sets",
        "deletes",
        "expired",
        "evictions",
        "rejected",
        "sweeps",
        "sweep_checks",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    @property
    def hit_ratio(self) -> float:
        """Fraction of gets served from cache (expired gets are misses)."""
        return self.hits / self.gets if self.gets else 0.0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        return (
            f"ServiceCounters(gets={self.gets}, hit_ratio={self.hit_ratio:.4f},"
            f" sets={self.sets}, expired={self.expired})"
        )


#: Help strings for the exported ``repro_service_<counter>_total``
#: family, one per :class:`ServiceCounters` slot (pinned by tests).
_COUNTER_HELP: Dict[str, str] = {
    "gets": "Service get operations.",
    "hits": "Gets served from cache.",
    "misses": "Gets that found no live value (absent or expired).",
    "sets": "Service set operations.",
    "deletes": "Service delete operations.",
    "expired": "Entries that died of TTL (lazy or swept).",
    "evictions": "Entries evicted by policy decision.",
    "rejected": "Sets refused residency (oversized or policy-declined).",
    "sweeps": "Incremental sweeper batches run.",
    "sweep_checks": "Keys examined by the sweeper.",
}


class _Entry:
    """A stored value plus its expiry deadline and charged size."""

    __slots__ = ("value", "expires_at", "size")

    def __init__(self, value: Any, expires_at: Optional[float], size: int) -> None:
        self.value = value
        self.expires_at = expires_at
        self.size = size


class CacheService:
    """An in-process cache service: ``get``/``set``/``delete``/``stats``.

    Parameters
    ----------
    capacity:
        Policy capacity (objects for unit-size values, bytes when sets
        pass explicit sizes).
    policy:
        Registry name of the backing eviction policy.
    default_ttl:
        TTL in seconds applied to sets that don't pass one explicitly;
        ``None`` (default) stores entries without expiry.
    clock:
        Monotonic time source; injectable so TTL tests are exact.
    checked:
        Wrap the policy in the
        :class:`~repro.resilience.sanitizer.CheckedPolicy` invariant
        sanitizer — every access cross-checked, as in the concurrent
        hammer tests.
    sweep_interval / sweep_batch:
        Run one incremental expiry sweep of ``sweep_batch`` entries
        every ``sweep_interval`` operations (only while the sweeper has
        TTL'd keys queued).  ``sweep_interval=0`` disables the
        automatic sweeps; :meth:`sweep` remains available.
    policy_kwargs:
        Extra keyword arguments for the policy constructor.
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry` to publish into;
        ``None`` (default) disables metrics entirely.
    tracer:
        An :class:`~repro.obs.tracer.EventTracer` sampling individual
        operations; ``None`` (default) disables tracing.
    instrument_policy:
        Also wrap the policy in
        :class:`~repro.obs.policy.InstrumentedPolicy` (queue depths,
        ghost hits, demotions).  Requires ``metrics``.
    metrics_labels:
        Extra labels stamped on every metric this service registers
        (:class:`~repro.service.sharded.ShardedCacheService` passes
        ``{"shard": i}``).
    shard_id:
        Recorded on trace events so multi-shard traces stay legible.
    """

    def __init__(
        self,
        capacity: int,
        policy: str = "s3fifo",
        *,
        default_ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        checked: bool = False,
        sweep_interval: int = 256,
        sweep_batch: int = 64,
        policy_kwargs: Optional[Dict[str, Any]] = None,
        metrics=None,
        tracer=None,
        instrument_policy: bool = False,
        metrics_labels: Optional[Dict[str, str]] = None,
        shard_id: Optional[int] = None,
    ) -> None:
        if default_ttl is not None and default_ttl < 0:
            raise ValueError(f"default_ttl must be >= 0, got {default_ttl}")
        if sweep_interval < 0:
            raise ValueError(f"sweep_interval must be >= 0, got {sweep_interval}")
        if sweep_batch < 1:
            raise ValueError(f"sweep_batch must be >= 1, got {sweep_batch}")
        if instrument_policy and metrics is None:
            raise ValueError("instrument_policy=True requires a metrics registry")
        backing = create_policy(policy, capacity=capacity, **(policy_kwargs or {}))
        if checked:
            from repro.resilience.sanitizer import CheckedPolicy

            self._policy = CheckedPolicy(backing)
        else:
            self._policy = backing
        self.policy_name = backing.name
        self.capacity = capacity
        self.checked = checked
        self.supports_removal = bool(getattr(backing, "supports_removal", False))
        if default_ttl is not None and not self.supports_removal:
            raise RemovalUnsupportedError(self.policy_name, "default_ttl")
        self.default_ttl = default_ttl
        self.counters = ServiceCounters()
        self._clock = clock
        self._lock = threading.RLock()
        self._values: Dict[Hashable, _Entry] = {}
        self._ttl_entries = 0
        self._sweep_interval = sweep_interval
        self._sweep_batch = sweep_batch
        self._sweep_queue: Deque[Hashable] = deque()
        self._sweep_enqueued: Set[Hashable] = set()
        self._ops_since_sweep = 0
        self._tracer = tracer
        self._shard_id = shard_id
        self._lat: Optional[Dict[str, Any]] = None
        if instrument_policy:
            from repro.obs.policy import InstrumentedPolicy

            self._policy = InstrumentedPolicy(
                self._policy, metrics, metrics_labels
            )
        if metrics is not None:
            self._wire_metrics(metrics, dict(metrics_labels or {}))
        self._observed = metrics is not None or tracer is not None
        backing.add_eviction_listener(self._on_evict)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def get(self, key: Hashable, default: Any = None) -> Any:
        """The live value for ``key``, or ``default``.

        A hit refreshes the policy's metadata for the key (for S3-FIFO:
        bumps the 2-bit counter).  Misses — absent *or expired* — do not
        touch the policy.
        """
        observed = self._observed
        t0 = time.perf_counter_ns() if observed else 0
        with self._lock:
            return self._get_locked(key, default, observed, t0)

    def set(
        self,
        key: Hashable,
        value: Any,
        ttl: Any = _UNSET,
        size: int = 1,
    ) -> bool:
        """Store ``value`` under ``key``; True when the value is resident.

        ``ttl`` seconds override the service's ``default_ttl``
        (``None`` = never expires, ``0`` = expires immediately — the
        set is a no-op beyond purging any live predecessor).  ``size``
        charges the entry against the policy capacity; an entry larger
        than the whole cache is rejected, as is any set whose key the
        policy declines to retain (admission-filter policies reject
        first-touch keys).  Re-setting a live key refreshes its value,
        size, and deadline.
        """
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        if ttl is _UNSET:
            ttl = self.default_ttl
        if ttl is not None:
            if ttl < 0:
                raise ValueError(f"ttl must be >= 0, got {ttl}")
            if not self.supports_removal:
                raise RemovalUnsupportedError(self.policy_name, "ttl")
        observed = self._observed
        t0 = time.perf_counter_ns() if observed else 0
        with self._lock:
            stored, outcome = self._set_locked(key, value, ttl, size)
            self._tick()
            if observed:
                self._record("set", key, outcome, t0)
            return stored

    def delete(self, key: Hashable) -> bool:
        """Remove ``key``; True when a live entry was removed."""
        if not self.supports_removal:
            raise RemovalUnsupportedError(self.policy_name, "delete()")
        observed = self._observed
        t0 = time.perf_counter_ns() if observed else 0
        with self._lock:
            return self._delete_locked(key, observed, t0)

    # ------------------------------------------------------------------
    # Batched operations
    # ------------------------------------------------------------------
    def get_many(self, keys: Iterable[Hashable],
                 default: Any = None) -> List[Any]:
        """The live values for ``keys``, aligned with the input order.

        Semantically identical to ``[self.get(k, default) for k in
        keys]`` — same counter increments, same policy requests, same
        sweeper cadence, in the same per-key order — but the lock is
        acquired once for the whole batch instead of once per key.  The
        batch-parity tests pin the stats equivalence byte-for-byte.
        """
        observed = self._observed
        results = []
        with self._lock:
            for key in keys:
                t0 = time.perf_counter_ns() if observed else 0
                results.append(self._get_locked(key, default, observed, t0))
        return results

    def set_many(
        self,
        items: Iterable[Tuple[Hashable, Any]],
        ttl: Any = _UNSET,
        size: int = 1,
    ) -> List[bool]:
        """Store ``(key, value)`` pairs; one residency bool per pair.

        Equivalent to ``[self.set(k, v, ttl, size) for k, v in items]``
        under a single lock acquisition; ``ttl`` and ``size`` apply to
        every pair.  Stats parity with the per-key loop is pinned by
        the batch-parity tests.
        """
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        if ttl is _UNSET:
            ttl = self.default_ttl
        if ttl is not None:
            if ttl < 0:
                raise ValueError(f"ttl must be >= 0, got {ttl}")
            if not self.supports_removal:
                raise RemovalUnsupportedError(self.policy_name, "ttl")
        observed = self._observed
        results = []
        with self._lock:
            for key, value in items:
                t0 = time.perf_counter_ns() if observed else 0
                stored, outcome = self._set_locked(key, value, ttl, size)
                self._tick()
                if observed:
                    self._record("set", key, outcome, t0)
                results.append(stored)
        return results

    def delete_many(self, keys: Iterable[Hashable]) -> List[bool]:
        """Remove ``keys``; one was-live bool per key (single lock hold)."""
        if not self.supports_removal:
            raise RemovalUnsupportedError(self.policy_name, "delete_many()")
        observed = self._observed
        results = []
        with self._lock:
            for key in keys:
                t0 = time.perf_counter_ns() if observed else 0
                results.append(self._delete_locked(key, observed, t0))
        return results

    def sweep(self, max_checks: Optional[int] = None) -> int:
        """Expire up to ``max_checks`` entries; returns how many died.

        One incremental step of the background sweeper.  The sweeper's
        queue holds exactly the keys that were ever given a TTL (plus
        since-departed stragglers, dropped on sight), so a batch never
        wastes checks on immortal entries and a key with a deadline is
        guaranteed a visit within ``ceil(queue_len / batch)`` sweeps of
        being queued — the starvation bound the TTL tests pin.  Keys
        still alive when visited recycle to the tail.
        """
        if max_checks is None:
            max_checks = self._sweep_batch
        with self._lock:
            self.counters.sweeps += 1
            queue = self._sweep_queue
            if not queue:
                return 0
            expired = 0
            # len() is taken once: tail recycles queued this batch are
            # not revisited, so every iteration retires one old slot.
            for _ in range(min(max_checks, len(queue))):
                key = queue.popleft()
                self.counters.sweep_checks += 1
                entry = self._values.get(key)
                if entry is None or entry.expires_at is None:
                    # Evicted, deleted, already expired, or re-set
                    # without a TTL since it was queued: stop tracking.
                    self._sweep_enqueued.discard(key)
                elif self._expired(entry):
                    self._sweep_enqueued.discard(key)
                    self._purge(key, entry)
                    self.counters.expired += 1
                    expired += 1
                else:
                    queue.append(key)
            return expired

    # ------------------------------------------------------------------
    # Migration (cluster rebalancing)
    # ------------------------------------------------------------------
    def export_entries(self) -> List[Tuple[Hashable, Any, Optional[float], int]]:
        """Snapshot every live entry as ``(key, value, ttl, size)``.

        ``ttl`` is the *remaining* lifetime (``None`` for immortal
        entries), so an entry imported elsewhere keeps roughly its
        original deadline even though the two services run on
        different clocks.  Pure read: no counters move, no policy
        state is touched, expired-but-unswept entries are skipped.
        Used by the cluster tier to rebalance keys between nodes.
        """
        with self._lock:
            now = self._clock()
            out: List[Tuple[Hashable, Any, Optional[float], int]] = []
            for key, entry in self._values.items():
                if entry.expires_at is not None and now >= entry.expires_at:
                    continue
                ttl = (
                    None if entry.expires_at is None
                    else entry.expires_at - now
                )
                out.append((key, entry.value, ttl, entry.size))
            return out

    def import_entries(
        self, entries: Iterable[Tuple[Hashable, Any, Optional[float], int]]
    ) -> int:
        """Admit exported entries; returns how many became resident.

        Each entry goes through the normal set path — it counts as a
        set, charges its original size, and the policy may decline it
        (admission filters apply to migrated keys exactly as to fresh
        ones); declined entries are dropped, not retried.  TTL'd
        entries require a removal-capable policy, as everywhere else.
        """
        stored_count = 0
        with self._lock:
            for key, value, ttl, size in entries:
                if ttl is not None:
                    if not self.supports_removal:
                        raise RemovalUnsupportedError(
                            self.policy_name, "import_entries() with ttl"
                        )
                    if ttl < 0:
                        # Died in transit: ttl=0 is the acknowledged
                        # expires-immediately path (nothing admitted).
                        ttl = 0
                stored, _ = self._set_locked(key, value, ttl, size)
                self._tick()
                if stored:
                    stored_count += 1
        return stored_count

    def stats(self) -> Dict[str, Any]:
        """A consistent snapshot of service and policy statistics."""
        with self._lock:
            counters = self.counters.as_dict()
            policy = self._policy
            return {
                "policy": self.policy_name,
                "capacity": self.capacity,
                "objects": len(self._values),
                "used": policy.used,
                "hit_ratio": self.counters.hit_ratio,
                "ttl_entries": self._ttl_entries,
                "sweep_backlog": len(self._sweep_queue),
                "policy_requests": policy.stats.requests,
                "policy_miss_ratio": policy.stats.miss_ratio,
                **counters,
            }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def policy(self):
        """The backing policy (the outermost wrapper when decorated)."""
        return self._policy

    def __contains__(self, key: Hashable) -> bool:
        """Live membership; non-mutating (an expired entry reads absent)."""
        with self._lock:
            entry = self._values.get(key)
            return entry is not None and not self._expired(entry)

    def __len__(self) -> int:
        """Resident entries, expired-but-unswept included."""
        with self._lock:
            return len(self._values)

    def check(self) -> None:
        """Run the sanitizer's full invariant suite (checked mode only)."""
        with self._lock:
            if self.checked:
                self._policy.check()
            used = sum(e.size for e in self._values.values())
            if used != self._policy.used:
                raise AssertionError(
                    f"service value map holds {used} bytes but policy "
                    f"reports used={self._policy.used}"
                )
            if len(self._sweep_enqueued) != len(self._sweep_queue):
                raise AssertionError(
                    f"sweep queue ({len(self._sweep_queue)}) and its "
                    f"membership set ({len(self._sweep_enqueued)}) diverged"
                )

    def __repr__(self) -> str:
        return (
            f"CacheService({self.policy_name}, capacity={self.capacity}, "
            f"objects={len(self._values)})"
        )

    # ------------------------------------------------------------------
    # Internals (call with the lock held)
    # ------------------------------------------------------------------
    def _get_locked(self, key: Hashable, default: Any, observed: bool,
                    t0: int) -> Any:
        """The body of :meth:`get` (shared with :meth:`get_many`)."""
        self.counters.gets += 1
        entry = self._values.get(key)
        outcome = "miss"
        if entry is not None and self._expired(entry):
            self._purge(key, entry)
            self.counters.expired += 1
            entry = None
            outcome = "expired"
        if entry is None:
            self.counters.misses += 1
            self._tick()
            if observed:
                self._record("get", key, outcome, t0)
            return default
        hit = self._policy.request(Request(key, size=entry.size))
        assert hit, f"resident key {key!r} missed in the policy"
        self.counters.hits += 1
        self._tick()
        if observed:
            self._record("get", key, "hit", t0)
        return entry.value

    def _delete_locked(self, key: Hashable, observed: bool, t0: int) -> bool:
        """The body of :meth:`delete` (shared with :meth:`delete_many`)."""
        self.counters.deletes += 1
        entry = self._values.get(key)
        if entry is None:
            if observed:
                self._record("delete", key, "absent", t0)
            return False
        was_live = not self._expired(entry)
        self._purge(key, entry)
        if not was_live:
            self.counters.expired += 1
        self._tick()
        if observed:
            self._record(
                "delete", key, "deleted" if was_live else "expired", t0
            )
        return was_live

    def _set_locked(self, key: Hashable, value: Any, ttl: Optional[float],
                    size: int):
        """The body of :meth:`set`; returns ``(stored, outcome)``."""
        self.counters.sets += 1
        entry = self._values.get(key)
        if entry is not None and self._expired(entry):
            # The predecessor died before this set: purge it first so
            # the policy sees a fresh admission (frequency bits must
            # not survive expiry).
            self._purge(key, entry)
            self.counters.expired += 1
            entry = None
        if ttl == 0:
            if entry is not None:
                self._purge(key, entry)
            return False, "expired"
        if size > self.capacity:
            if entry is not None:
                self._purge(key, entry)
            self.counters.rejected += 1
            return False, "rejected"
        if entry is not None and entry.size != size:
            # Policies cannot resize a resident entry in place.
            self._purge(key, entry)
            entry = None
        refreshed = entry is not None
        self._policy.request(Request(key, size=size))
        if key not in self._policy:
            # The policy did not retain the key: admission was refused
            # (blru's Bloom doorkeeper rejects first touches) or the
            # in-flight key was picked as the eviction victim.  Storing
            # the value anyway would orphan it in the map and the next
            # get would trip the residency assertion.
            dropped = self._values.pop(key, None)
            if dropped is not None and dropped.expires_at is not None:
                self._ttl_entries -= 1
            self.counters.rejected += 1
            return False, "rejected"
        expires_at = None if ttl is None else self._clock() + ttl
        if key not in self._values:
            self._values[key] = _Entry(value, expires_at, size)
            if expires_at is not None:
                self._track_ttl(key)
        else:
            existing = self._values[key]
            had_ttl = existing.expires_at is not None
            existing.value = value
            existing.expires_at = expires_at
            if expires_at is not None and not had_ttl:
                self._track_ttl(key)
            elif had_ttl and expires_at is None:
                self._ttl_entries -= 1
        return True, ("refreshed" if refreshed else "stored")

    def _track_ttl(self, key: Hashable) -> None:
        """A key just gained a TTL: count it and queue it for the sweeper.

        A key already queued (a purged predecessor's slot, or a live
        entry whose deadline moved) keeps its existing slot — the queue
        and its membership set always agree.
        """
        self._ttl_entries += 1
        if key not in self._sweep_enqueued:
            self._sweep_enqueued.add(key)
            self._sweep_queue.append(key)

    def _expired(self, entry: _Entry) -> bool:
        return entry.expires_at is not None and self._clock() >= entry.expires_at

    def _purge(self, key: Hashable, entry: _Entry) -> None:
        """Drop an entry from the value map and the policy (no event)."""
        del self._values[key]
        if entry.expires_at is not None:
            self._ttl_entries -= 1
        self._policy.remove(key)

    def _on_evict(self, event) -> None:
        """Policy evicted a key: the stored value goes with it."""
        entry = self._values.pop(event.key, None)
        if entry is not None and entry.expires_at is not None:
            self._ttl_entries -= 1
        self.counters.evictions += 1

    def _tick(self) -> None:
        """Operation bookkeeping: trigger an incremental sweep on cadence."""
        if not self._sweep_interval or not self._sweep_queue:
            return
        self._ops_since_sweep += 1
        if self._ops_since_sweep >= self._sweep_interval:
            self._ops_since_sweep = 0
            self.sweep(self._sweep_batch)

    def _wire_metrics(self, registry, labels: Dict[str, str]) -> None:
        """Publish service state into ``registry``.

        Counters and gauges read existing state through collect-time
        callbacks — zero hot-path cost.  The per-op latency histograms
        are the only metrics written per operation, and only exist
        because a registry was injected at all.
        """
        counters = self.counters
        for field, help_text in _COUNTER_HELP.items():
            registry.counter(
                f"repro_service_{field}", help_text, labels
            ).set_function(lambda c=counters, f=field: getattr(c, f))
        for name, help_text, fn in (
            ("repro_service_objects",
             "Entries resident in the value map (unswept expired included).",
             lambda: len(self._values)),
            ("repro_service_used",
             "Capacity units occupied per the policy.",
             lambda: self._policy.used),
            ("repro_service_capacity",
             "Configured capacity of this service (or shard).",
             lambda: self.capacity),
            ("repro_service_ttl_entries",
             "Live entries carrying a TTL.",
             lambda: self._ttl_entries),
            ("repro_service_sweep_backlog",
             "Keys queued for the incremental expiry sweeper.",
             lambda: len(self._sweep_queue)),
            ("repro_service_hit_ratio",
             "Fraction of gets served from cache.",
             lambda: self.counters.hit_ratio),
        ):
            registry.gauge(name, help_text, labels).set_function(fn)
        self._lat = {
            op: registry.histogram(
                "repro_service_op_latency_us",
                "Service operation latency in microseconds.",
                {**labels, "op": op},
            )
            for op in ("get", "set", "delete")
        }

    def _record(self, op: str, key: Hashable, outcome: str, t0: int) -> None:
        """Feed one finished operation to the histograms and tracer."""
        latency_us = (time.perf_counter_ns() - t0) / 1000.0
        if self._lat is not None:
            self._lat[op].observe(latency_us)
        if self._tracer is not None:
            self._tracer.record(op, key, outcome, latency_us, self._shard_id)
