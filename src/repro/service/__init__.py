"""The live cache service layer: policies made operable.

``repro.service`` turns the simulator's eviction policies into an
in-process cache you can actually run: :class:`CacheService` adds
values, TTLs, deletion, and a lock; :class:`ShardedCacheService`
hash-partitions keys across independently-locked shards;
:class:`MPCacheService` runs each shard in its own *process* for
native multicore scaling (over duplex pipes or the
:mod:`repro.service.shm` shared-memory rings); and
:mod:`repro.service.loadgen` measures the result under concurrent
load.  See ``docs/SERVICE.md``.
"""

from repro.service.core import (
    CacheService,
    RemovalUnsupportedError,
    ServiceCounters,
)
from repro.service.loadgen import (
    combine_reports,
    format_report,
    latency_summary_us,
    run_loadgen,
    run_net_loadgen,
    run_scenario,
)
from repro.service.mp import (
    MPCacheService,
    ServiceClosedError,
    WorkerCrashedError,
)
from repro.service.transport import (
    TRANSPORTS,
    Transport,
    TransportClosedError,
    create_transport,
)
from repro.service.sharded import (
    ShardedCacheService,
    aggregate_stats,
    partition_capacity,
    stable_key_hash,
)

__all__ = [
    "CacheService",
    "RemovalUnsupportedError",
    "ServiceCounters",
    "ShardedCacheService",
    "MPCacheService",
    "ServiceClosedError",
    "WorkerCrashedError",
    "TRANSPORTS",
    "Transport",
    "TransportClosedError",
    "create_transport",
    "aggregate_stats",
    "partition_capacity",
    "stable_key_hash",
    "run_loadgen",
    "run_net_loadgen",
    "run_scenario",
    "combine_reports",
    "latency_summary_us",
    "format_report",
]
