"""The live cache service layer: policies made operable.

``repro.service`` turns the simulator's eviction policies into an
in-process cache you can actually run: :class:`CacheService` adds
values, TTLs, deletion, and a lock; :class:`ShardedCacheService`
hash-partitions keys across independently-locked shards; and
:mod:`repro.service.loadgen` measures the result under concurrent
load.  See ``docs/SERVICE.md``.
"""

from repro.service.core import (
    CacheService,
    RemovalUnsupportedError,
    ServiceCounters,
)
from repro.service.loadgen import (
    format_report,
    latency_summary_us,
    run_loadgen,
    run_scenario,
)
from repro.service.sharded import (
    ShardedCacheService,
    partition_capacity,
    stable_key_hash,
)

__all__ = [
    "CacheService",
    "RemovalUnsupportedError",
    "ServiceCounters",
    "ShardedCacheService",
    "partition_capacity",
    "stable_key_hash",
    "run_loadgen",
    "run_scenario",
    "latency_summary_us",
    "format_report",
]
