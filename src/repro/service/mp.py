"""Process-per-shard cache backend: native multicore scaling.

The paper's headline *systems* claim (Fig. 8) is about throughput:
S3-FIFO's lock-free queues scale to ~6x optimized LRU at 16 threads.
Threads cannot demonstrate that under CPython's GIL — the in-process
:class:`~repro.service.sharded.ShardedCacheService` serializes on the
interpreter no matter how many shard locks it splits — so this module
escapes the GIL the way production Python caches do: **one worker
process per shard**, each hosting a full single-shard
:class:`~repro.service.core.CacheService` (its own policy instance,
value map, TTL bookkeeping, and lock), with the parent routing
operations over pipes by the same restart-stable
:func:`~repro.service.sharded.stable_key_hash` the in-process sharded
service uses.  Identical routing means identical per-shard request
sequences: the differential tests pin ``MPCacheService`` stats against
``ShardedCacheService`` byte-for-byte.

IPC is the new cost, and batching is the lever: every batched
operation (:meth:`MPCacheService.get_many` / ``set_many`` /
``delete_many``) coalesces its keys into **one message per worker per
batch**, so a batch of B keys over W workers costs ~W round-trips
instead of B.  Single-key ``get``/``set``/``delete`` are one-element
batches.  The load generator's ``--backend mp --batch B`` mode drives
this path and the measured curves live in
``benchmarks/results/fig08_throughput_native.txt``.

Transports
----------

The parent<->worker channel is pluggable
(:class:`~repro.service.transport.Transport`): ``transport="pipe"``
(default) keeps the PR 5 duplex pipes, ``transport="shm"`` switches to
the :mod:`~repro.service.shm` shared-memory ring buffers — same object
protocol, same differential stats parity, an order of magnitude less
per-message cost on multicore hosts.  The worker loop, crash watchdog,
and metrics merge below are transport-agnostic.

Lifecycle and crash safety
--------------------------

* Workers are **daemon** processes: a normally-exiting parent never
  leaves them behind.
* Each transport has a **watchdog** so a worker never outlives a dead
  parent: the pipe transport gets it for free (parent death closes the
  pipe end, the worker's blocking ``recv`` reads EOF), the shm
  transport polls ``multiprocessing.parent_process().is_alive()`` plus
  a shutdown word inside every blocking wait and publishes a heartbeat
  the parent can read.  No leaked processes either way.
* :meth:`MPCacheService.close` (also ``__exit__`` and a best-effort
  ``__del__``) asks each worker out, joins with a deadline, then
  terminates — and finally kills — stragglers before releasing the
  channels; it is idempotent, safe after a worker crash, and never
  blocks on a channel lock held by a thread stuck on a wedged worker
  (it signals the transport instead and lets terminate break the
  deadlock).
* A worker that dies mid-operation surfaces as
  :class:`WorkerCrashedError` on the operation that touched it, never
  as a hang.  Deterministic crash tests inject the
  :data:`~repro.resilience.faults.WORKER_CRASH` fault kind via a
  :class:`~repro.resilience.faults.FaultPlan` (the worker hard-exits
  at a planned operation count, simulating SIGKILL).

Observability across processes
------------------------------

A worker cannot share the parent's
:class:`~repro.obs.metrics.MetricsRegistry` (callback-backed gauges
don't pickle), so each worker owns a private registry labelled
``worker=<i>, transport=<pipe|shm>`` and the parent pulls *snapshots*
(:func:`~repro.obs.exporters.export_dict`) at collect time, merging
them with :func:`~repro.obs.exporters.merge_export_dict` — repeated
collects replace each worker's series rather than double-count.  See
:meth:`MPCacheService.merge_metrics`.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.service.sharded import (
    aggregate_stats,
    partition_capacity,
    stable_key_hash,
)
from repro.service.transport import (
    TRANSPORTS,
    Transport,
    TransportClosedError,
    create_transport,
)

__all__ = [
    "MPCacheService",
    "ServiceClosedError",
    "TransportClosedError",
    "WorkerCrashedError",
]

_UNSET = object()


class WorkerCrashedError(RuntimeError):
    """A shard worker process died while (or before) serving an operation."""

    def __init__(self, worker_id: int, pid: Optional[int],
                 exitcode: Optional[int]) -> None:
        self.worker_id = worker_id
        self.pid = pid
        self.exitcode = exitcode
        super().__init__(
            f"mp cache worker {worker_id} (pid {pid}) died "
            f"(exitcode {exitcode}); the shard's contents are lost — "
            f"close() the service or rebuild it"
        )


class ServiceClosedError(RuntimeError):
    """Operation attempted on a closed :class:`MPCacheService`."""


def _default_start_method() -> str:
    """``fork`` where available (fast), else ``spawn`` (macOS/Windows)."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def _worker_main(
    conn,
    worker_id: int,
    capacity: int,
    policy: str,
    service_kwargs: Dict[str, Any],
    collect_metrics: bool,
    fault_plan,
    transport: str = "pipe",
) -> None:
    """Worker process body: host one CacheService, serve the channel.

    ``conn`` is whatever the parent's transport handed out — a pipe
    ``Connection`` or a :class:`~repro.service.shm.ShmWorkerChannel`;
    both expose ``recv``/``send``/``close`` and both raise
    ``EOFError``/``OSError`` when the parent is gone (pipe EOF, or the
    shm liveness poll), so the loop exits either way and the worker
    never outlives its parent.
    """
    from repro.service.core import CacheService

    registry = None
    try:
        if collect_metrics:
            from repro.obs.metrics import MetricsRegistry

            registry = MetricsRegistry()
        service = CacheService(
            capacity,
            policy,
            metrics=registry,
            metrics_labels=(
                {"worker": str(worker_id), "transport": transport}
                if registry is not None else None
            ),
            shard_id=worker_id,
            **service_kwargs,
        )
    except BaseException as exc:  # constructor failed: report, don't hang
        _send_error(conn, exc)
        return
    # Startup handshake: the parent blocks on this before serving ops.
    conn.send(("ok", {
        "policy_name": service.policy_name,
        "supports_removal": service.supports_removal,
        "capacity": capacity,
        "pid": os.getpid(),
    }))
    clock = 0  # logical operation clock for deterministic fault windows
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break  # parent died or closed the channel: exit now
        op = msg[0]
        if op == "close":
            break
        clock += 1
        if fault_plan is not None and fault_plan.active("worker-crash", clock):
            # Simulate a hard crash: no reply, no cleanup, nonzero exit.
            os._exit(13)
        try:
            if op == "get_many":
                result = service.get_many(msg[1], msg[2])
            elif op == "set_many":
                has_ttl, ttl, size, items = msg[1], msg[2], msg[3], msg[4]
                if has_ttl:
                    result = service.set_many(items, ttl=ttl, size=size)
                else:
                    result = service.set_many(items, size=size)
            elif op == "delete_many":
                result = service.delete_many(msg[1])
            elif op == "contains":
                result = msg[1] in service
            elif op == "len":
                result = len(service)
            elif op == "sweep":
                result = service.sweep(msg[1])
            elif op == "stats":
                result = service.stats()
            elif op == "export":
                # Cluster rebalancing: ship (key, value, ttl, size)
                # snapshots; remaining-TTL form survives the clock
                # change between processes.
                result = service.export_entries()
            elif op == "import":
                result = service.import_entries(msg[1])
            elif op == "check":
                service.check()
                result = None
            elif op == "metrics":
                if registry is None:
                    result = None
                else:
                    from repro.obs.exporters import export_dict

                    result = export_dict(registry)
            else:
                raise ValueError(f"unknown mp cache op {op!r}")
        except BaseException as exc:
            _send_error(conn, exc)
        else:
            try:
                conn.send(("ok", result))
            except (OSError, BrokenPipeError):
                break
    try:
        conn.close()
    except OSError:
        pass


def _send_error(conn, exc: BaseException) -> None:
    """Ship an exception to the parent; degrade to repr if unpicklable."""
    try:
        conn.send(("err", exc))
    except Exception:
        try:
            conn.send(("err", RuntimeError(
                f"{type(exc).__name__}: {exc} (original not picklable)"
            )))
        except (OSError, BrokenPipeError):
            pass


class MPCacheService:
    """N shard worker *processes* behind the one-service API.

    Exposes the same surface as
    :class:`~repro.service.sharded.ShardedCacheService` —
    ``get``/``set``/``delete``, their ``_many`` batches,
    ``sweep``/``stats``/``check``, ``in``/``len`` — with each shard's
    :class:`~repro.service.core.CacheService` running in its own
    process.  Keys route by ``stable_key_hash(key) % num_workers``,
    exactly the in-process sharded service's mapping, so for the same
    operation sequence both backends produce identical per-shard stats.

    Parameters mirror ``ShardedCacheService`` where they can; the
    differences are inherent to processes:

    * ``transport`` — ``"pipe"`` (default: pickled tuples over a
      duplex pipe) or ``"shm"`` (shared-memory ring buffers, see
      :mod:`repro.service.shm`).  Both speak the identical object
      protocol; the differential tests pin their ``stats()``
      byte-identical.
    * ``transport_options`` — forwarded to the transport constructor
      (shm accepts ``slots``, ``slot_size``, ``arena_size``; the edge
      case tests use tiny rings to force backpressure).
    * ``start_method`` — multiprocessing start method (default:
      ``fork`` when the platform has it, else ``spawn``).
    * ``collect_metrics`` — give each worker a private
      :class:`~repro.obs.metrics.MetricsRegistry` (labelled
      ``worker=<i>``) whose snapshots :meth:`merge_metrics` pulls into
      a parent-side registry.  A parent registry object cannot be
      shared directly: its collect-time callbacks don't pickle.
    * ``fault_plans`` — optional ``{worker_id: FaultPlan}`` injecting
      deterministic :data:`~repro.resilience.faults.WORKER_CRASH`
      faults (the crash-safety tests use this).
    * ``**service_kwargs`` — forwarded to every worker's
      ``CacheService`` constructor; must be picklable (so no
      ``clock=`` callables — workers keep the default monotonic
      clock).

    Thread safety: the parent side is safe to drive from multiple
    threads.  Each worker channel is guarded by a lock held for the
    full request/response exchange; a batch spanning several workers
    acquires the involved locks in index order (no lock-order
    inversion) and pipelines — all sub-batches are sent before any
    reply is awaited, so workers execute concurrently.
    """

    def __init__(
        self,
        capacity: int,
        policy: str = "s3fifo",
        num_workers: int = 2,
        *,
        transport: str = "pipe",
        transport_options: Optional[Dict[str, Any]] = None,
        start_method: Optional[str] = None,
        collect_metrics: bool = False,
        fault_plans: Optional[Dict[int, Any]] = None,
        **service_kwargs: Any,
    ) -> None:
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown mp transport {transport!r}; "
                f"expected one of {TRANSPORTS}"
            )
        capacities = partition_capacity(capacity, num_workers)
        self.capacity = capacity
        self.num_workers = num_workers
        self.transport = transport
        self.collect_metrics = collect_metrics
        self._closed = False
        ctx = multiprocessing.get_context(
            start_method or _default_start_method()
        )
        self._channels: List[Transport] = []
        self._procs: List[Any] = []
        self._locks = [threading.Lock() for _ in range(num_workers)]
        try:
            for i, cap in enumerate(capacities):
                chan = create_transport(transport, ctx, transport_options)
                try:
                    proc = ctx.Process(
                        target=_worker_main,
                        args=(
                            chan.worker_endpoint(), i, cap, policy,
                            dict(service_kwargs), collect_metrics,
                            (fault_plans or {}).get(i), transport,
                        ),
                        name=f"mp-cache-worker-{i}",
                        daemon=True,
                    )
                    proc.start()
                except BaseException:
                    chan.close()  # never orphan a shm segment
                    raise
                chan.after_start(proc)
                self._channels.append(chan)
                self._procs.append(proc)
            # Startup handshake doubles as constructor error propagation.
            infos = [self._recv(i) for i in range(num_workers)]
        except BaseException:
            self._closed = True
            self._teardown()
            raise
        self.policy_name = infos[0]["policy_name"]
        self.supports_removal = infos[0]["supports_removal"]
        self.worker_pids = [info["pid"] for info in infos]

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_for(self, key: Hashable) -> int:
        """The worker index ``key`` routes to (stable across restarts)."""
        return stable_key_hash(key) % self.num_workers

    def _group_positions(self, keys: List[Hashable]) -> Dict[int, List[int]]:
        groups: Dict[int, List[int]] = {}
        for pos, key in enumerate(keys):
            groups.setdefault(self.shard_for(key), []).append(pos)
        return groups

    # ------------------------------------------------------------------
    # Channel plumbing
    # ------------------------------------------------------------------
    def _ensure_open(self) -> None:
        if self._closed:
            raise ServiceClosedError(
                "MPCacheService is closed; build a new one"
            )

    def _crashed(self, worker: int) -> WorkerCrashedError:
        proc = self._procs[worker]
        try:
            proc.join(timeout=1.0)
            pid, exitcode = proc.pid, proc.exitcode
        except ValueError:
            # The Process handle was already released by a concurrent
            # teardown; fall back to the handshake-recorded pid.
            pids = getattr(self, "worker_pids", None)
            pid = pids[worker] if pids else None
            exitcode = None
        return WorkerCrashedError(worker, pid, exitcode)

    def _recv(self, worker: int) -> Any:
        """One raw reply from ``worker``; raises remote errors/crashes."""
        try:
            tag, payload = self._channels[worker].recv()
        except (EOFError, OSError) as exc:
            raise self._crashed(worker) from exc
        if tag == "err":
            raise payload
        return payload

    def _exchange(self, msgs: Dict[int, tuple]) -> Dict[int, Any]:
        """Send one message per worker, then await every reply.

        Locks are acquired in worker-index order (deadlock-free against
        concurrent callers) and all sends complete before the first
        receive, so the involved workers run their sub-batches
        concurrently.  If a worker crashes mid-exchange the remaining
        replies are still drained — the surviving channels stay in
        sync — and the crash is raised after the drain.
        """
        self._ensure_open()
        idxs = sorted(msgs)
        for w in idxs:
            self._locks[w].acquire()
        try:
            crash: Optional[WorkerCrashedError] = None
            remote: Optional[BaseException] = None
            results: Dict[int, Any] = {}
            for w in idxs:
                try:
                    self._channels[w].send(msgs[w])
                except (OSError, ValueError) as exc:
                    if crash is None:
                        crash = self._crashed(w)
                        crash.__cause__ = exc
                    msgs = {k: v for k, v in msgs.items() if k != w}
            for w in idxs:
                if w not in msgs:
                    continue
                try:
                    results[w] = self._recv(w)
                except WorkerCrashedError as exc:
                    crash = crash or exc
                except BaseException as exc:
                    remote = remote or exc
            if crash is not None:
                raise crash
            if remote is not None:
                raise remote
            return results
        finally:
            for w in reversed(idxs):
                self._locks[w].release()

    def _exchange_all(self, msg: tuple) -> List[Any]:
        """The same message to every worker; replies in worker order."""
        results = self._exchange({w: msg for w in range(self.num_workers)})
        return [results[w] for w in range(self.num_workers)]

    # ------------------------------------------------------------------
    # The service surface
    # ------------------------------------------------------------------
    def get(self, key: Hashable, default: Any = None) -> Any:
        return self.get_many([key], default)[0]

    def set(
        self,
        key: Hashable,
        value: Any,
        ttl: Any = _UNSET,
        size: int = 1,
    ) -> bool:
        if ttl is _UNSET:
            return self.set_many([(key, value)], size=size)[0]
        return self.set_many([(key, value)], ttl=ttl, size=size)[0]

    def delete(self, key: Hashable) -> bool:
        return self.delete_many([key])[0]

    def get_many(self, keys: Iterable[Hashable],
                 default: Any = None) -> List[Any]:
        """Batched get: **one pipe round-trip per involved worker**."""
        keys = list(keys)
        if not keys:
            return []
        groups = self._group_positions(keys)
        replies = self._exchange({
            w: ("get_many", [keys[p] for p in positions], default)
            for w, positions in groups.items()
        })
        results: List[Any] = [default] * len(keys)
        for w, positions in groups.items():
            for p, v in zip(positions, replies[w]):
                results[p] = v
        return results

    def set_many(
        self,
        items: Iterable[Tuple[Hashable, Any]],
        ttl: Any = _UNSET,
        size: int = 1,
    ) -> List[bool]:
        """Batched set, coalesced per worker like :meth:`get_many`.

        ``ttl`` travels as an explicit (present, value) pair — the
        in-process ``_UNSET`` sentinel would not survive pickling.
        """
        items = list(items)
        if not items:
            return []
        if ttl is not _UNSET and ttl is not None:
            if ttl < 0:
                raise ValueError(f"ttl must be >= 0, got {ttl}")
        groups = self._group_positions([key for key, _ in items])
        has_ttl = ttl is not _UNSET
        replies = self._exchange({
            w: ("set_many", has_ttl, (ttl if has_ttl else None), size,
                [items[p] for p in positions])
            for w, positions in groups.items()
        })
        results: List[bool] = [False] * len(items)
        for w, positions in groups.items():
            for p, stored in zip(positions, replies[w]):
                results[p] = stored
        return results

    def delete_many(self, keys: Iterable[Hashable]) -> List[bool]:
        keys = list(keys)
        if not keys:
            return []
        groups = self._group_positions(keys)
        replies = self._exchange({
            w: ("delete_many", [keys[p] for p in positions])
            for w, positions in groups.items()
        })
        results: List[bool] = [False] * len(keys)
        for w, positions in groups.items():
            for p, deleted in zip(positions, replies[w]):
                results[p] = deleted
        return results

    def sweep(self, max_checks: Optional[int] = None) -> int:
        return sum(self._exchange_all(("sweep", max_checks)))

    def check(self) -> None:
        self._exchange_all(("check",))

    def __contains__(self, key: Hashable) -> bool:
        replies = self._exchange({self.shard_for(key): ("contains", key)})
        return next(iter(replies.values()))

    def __len__(self) -> int:
        return sum(self._exchange_all(("len",)))

    # ------------------------------------------------------------------
    # Statistics / observability
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Aggregate stats across workers (same shape as sharded).

        Every worker snapshot is taken under that worker's service
        lock inside its own process, so the same no-tear guarantee as
        :meth:`ShardedCacheService.stats` holds across the pipe.
        """
        per_shard = self._exchange_all(("stats",))
        aggregate = aggregate_stats(per_shard)
        aggregate["policy"] = self.policy_name
        aggregate["capacity"] = self.capacity
        aggregate["num_shards"] = self.num_workers
        aggregate["backend"] = "mp"
        return aggregate

    def ops_per_shard(self) -> List[int]:
        """Operations (gets+sets+deletes) each worker has served."""
        return [
            s["gets"] + s["sets"] + s["deletes"]
            for s in self._exchange_all(("stats",))
        ]

    def imbalance(self) -> float:
        """Hottest worker's operation count over the mean."""
        from repro.concurrency.sharding import imbalance_factor

        return imbalance_factor(self.ops_per_shard())

    def merge_metrics(self, registry) -> int:
        """Pull every worker's metrics snapshot into ``registry``.

        Requires ``collect_metrics=True``.  Each worker's series
        already carry the ``worker=<i>`` label, so repeated merges
        replace rather than duplicate (see
        :func:`~repro.obs.exporters.merge_export_dict`).  Returns the
        total number of series merged.
        """
        if not self.collect_metrics:
            raise ValueError(
                "MPCacheService was built without collect_metrics=True"
            )
        from repro.obs.exporters import merge_export_dict

        merged = 0
        for snapshot in self._exchange_all(("metrics",)):
            if snapshot is not None:
                merged += merge_export_dict(registry, snapshot)
        return merged

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, timeout: float = 5.0) -> None:
        """Stop every worker; idempotent, safe after crashes.

        Asks each live worker to exit, joins to a deadline, then
        terminates — and as a last resort kills — anything still
        alive, and only then releases the channels and Process
        handles.  A channel whose lock is held by a thread stuck on a
        wedged worker is *signalled*, not waited on: teardown must not
        inherit the wedge, and terminating the worker is what breaks
        the stuck thread out (its blocking read fails over to
        :class:`WorkerCrashedError`).
        """
        if self._closed:
            return
        self._closed = True
        self._teardown(timeout)

    def _teardown(self, timeout: float = 5.0) -> None:
        deadline = time.monotonic() + timeout
        # Phase 1: ask every worker out.  The channel lock may be held
        # by a thread blocked on a worker that will never reply — use
        # a bounded acquire and fall back to the transport's
        # non-blocking close signal rather than deadlocking here.
        for w, chan in enumerate(self._channels):
            if self._locks[w].acquire(timeout=0.1):
                try:
                    chan.request_close()
                    chan.signal_close()
                finally:
                    self._locks[w].release()
            else:
                chan.signal_close()
        # Phase 2: join politely, then escalate.  terminate() (SIGTERM)
        # also breaks any parent thread blocked on that worker's
        # channel: the pipe delivers EOF, the shm wait notices the
        # death on its next liveness poll.
        for proc in self._procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for proc in self._procs:
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)
        # Phase 3: release channel resources (for shm this unlinks the
        # segment) and the Process handles.
        for chan in self._channels:
            try:
                chan.close()
            except OSError:
                pass
        for proc in self._procs:
            # Release the Process object's pipe/sentinel resources now
            # rather than at GC time (no leaked fds or semaphores).
            try:
                proc.close()
            except ValueError:
                pass  # still alive after kill: give up quietly

    def __enter__(self) -> "MPCacheService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort; never raise from GC
        try:
            self.close(timeout=1.0)
        except Exception:
            pass

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"MPCacheService({self.policy_name}, capacity={self.capacity}, "
            f"workers={self.num_workers}, {state})"
        )
