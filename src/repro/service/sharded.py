"""Hash-partitioned cache service: N independently-locked shards.

The paper's Section 7 discussion (modeled analytically in
:mod:`repro.concurrency.sharding`) is about exactly this architecture:
partition the key space across independent caches, one lock each, and
accept that Zipfian popularity concentrates load on the hottest shard.
:class:`ShardedCacheService` makes that architecture *runnable*: keys
route to shards by a stable hash, each shard is a full
:class:`~repro.service.core.CacheService` (its own policy instance,
value map, TTL bookkeeping, and lock), and the shards together
partition the configured capacity.

The shard hash must be stable across process restarts — a cache whose
key→shard mapping moves on restart silently loses its working set — so
it is built on BLAKE2b over a canonical key encoding, never on
Python's per-process-salted ``hash()``.  The routing tests pin literal
digest values to guard this.
"""

from __future__ import annotations

from hashlib import blake2b
from typing import Any, Dict, Hashable, List, Optional

from repro.service.core import CacheService

_UNSET = object()


def stable_key_hash(key: Hashable) -> int:
    """A 64-bit key hash, identical in every process and on every host.

    Keys of distinct types never collide by encoding (each type gets a
    tag byte); unrecognized types fall back to their ``repr``, which is
    stable for the literal types traces actually use.
    """
    if isinstance(key, str):
        data = b"s" + key.encode("utf-8")
    elif isinstance(key, bool):  # before int: bool is an int subclass
        data = b"o" + (b"1" if key else b"0")
    elif isinstance(key, int):
        data = b"i" + str(key).encode("ascii")
    elif isinstance(key, bytes):
        data = b"b" + key
    else:
        data = b"r" + repr(key).encode("utf-8")
    return int.from_bytes(blake2b(data, digest_size=8).digest(), "big")


def partition_capacity(capacity: int, num_shards: int) -> List[int]:
    """Split ``capacity`` into ``num_shards`` near-equal positive parts.

    The remainder goes to the lowest-numbered shards, so the parts sum
    exactly to ``capacity`` and differ by at most one.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if capacity < num_shards:
        raise ValueError(
            f"capacity {capacity} cannot be split into {num_shards} shards "
            "of at least one object each"
        )
    base, extra = divmod(capacity, num_shards)
    return [base + (1 if i < extra else 0) for i in range(num_shards)]


class ShardedCacheService:
    """N independent :class:`CacheService` shards behind one API.

    Exposes the same ``get``/``set``/``delete``/``sweep``/``stats``
    surface as a single shard; every operation routes to
    ``shard_for(key)`` and runs under that shard's lock only, so
    operations on different shards never contend.  Constructor
    keywords are forwarded to every shard.
    """

    def __init__(
        self,
        capacity: int,
        policy: str = "s3fifo",
        num_shards: int = 4,
        metrics=None,
        tracer=None,
        instrument_policy: bool = False,
        **shard_kwargs: Any,
    ) -> None:
        capacities = partition_capacity(capacity, num_shards)
        self.capacity = capacity
        self.num_shards = num_shards
        self._shards = [
            CacheService(
                cap,
                policy,
                metrics=metrics,
                tracer=tracer,
                instrument_policy=instrument_policy,
                metrics_labels=(
                    {"shard": str(i)} if metrics is not None else None
                ),
                shard_id=i,
                **shard_kwargs,
            )
            for i, cap in enumerate(capacities)
        ]
        self.policy_name = self._shards[0].policy_name
        self.supports_removal = self._shards[0].supports_removal
        if metrics is not None:
            metrics.gauge(
                "repro_shards", "Number of shards in this service."
            ).set(num_shards)
            metrics.gauge(
                "repro_shard_imbalance",
                "Hottest shard's operation count over the per-shard mean "
                "(1.0 = perfectly balanced).",
            ).set_function(self.imbalance)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_for(self, key: Hashable) -> int:
        """The shard index ``key`` routes to (stable across restarts)."""
        return stable_key_hash(key) % self.num_shards

    def shard(self, index: int) -> CacheService:
        """The shard at ``index`` (introspection and tests)."""
        return self._shards[index]

    @property
    def shards(self) -> List[CacheService]:
        return list(self._shards)

    # ------------------------------------------------------------------
    # The service surface
    # ------------------------------------------------------------------
    def get(self, key: Hashable, default: Any = None) -> Any:
        return self._shards[self.shard_for(key)].get(key, default)

    def set(
        self,
        key: Hashable,
        value: Any,
        ttl: Any = _UNSET,
        size: int = 1,
    ) -> bool:
        shard = self._shards[self.shard_for(key)]
        if ttl is _UNSET:
            return shard.set(key, value, size=size)
        return shard.set(key, value, ttl=ttl, size=size)

    def delete(self, key: Hashable) -> bool:
        return self._shards[self.shard_for(key)].delete(key)

    def sweep(self, max_checks: Optional[int] = None) -> int:
        return sum(shard.sweep(max_checks) for shard in self._shards)

    def check(self) -> None:
        for shard in self._shards:
            shard.check()

    def __contains__(self, key: Hashable) -> bool:
        return key in self._shards[self.shard_for(key)]

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def ops_per_shard(self) -> List[int]:
        """Operations (gets+sets+deletes) each shard has served."""
        counts = []
        for shard in self._shards:
            c = shard.counters
            counts.append(c.gets + c.sets + c.deletes)
        return counts

    def imbalance(self) -> float:
        """Hottest shard's operation count over the mean (1.0 = balanced)."""
        from repro.concurrency.sharding import imbalance_factor

        return imbalance_factor(self.ops_per_shard())

    def stats(self) -> Dict[str, Any]:
        """Aggregate counters plus the per-shard breakdown."""
        per_shard = [shard.stats() for shard in self._shards]
        summed = (
            "gets", "hits", "misses", "sets", "deletes", "expired",
            "evictions", "rejected", "objects", "used", "ttl_entries",
            "sweep_backlog", "policy_requests",
        )
        aggregate: Dict[str, Any] = {name: 0 for name in summed}
        for stats in per_shard:
            for name in summed:
                aggregate[name] += stats[name]
        gets = aggregate["gets"]
        aggregate["hit_ratio"] = aggregate["hits"] / gets if gets else 0.0
        aggregate["policy"] = self.policy_name
        aggregate["capacity"] = self.capacity
        aggregate["num_shards"] = self.num_shards
        aggregate["per_shard"] = per_shard
        return aggregate
