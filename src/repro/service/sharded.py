"""Hash-partitioned cache service: N independently-locked shards.

The paper's Section 7 discussion (modeled analytically in
:mod:`repro.concurrency.sharding`) is about exactly this architecture:
partition the key space across independent caches, one lock each, and
accept that Zipfian popularity concentrates load on the hottest shard.
:class:`ShardedCacheService` makes that architecture *runnable*: keys
route to shards by a stable hash, each shard is a full
:class:`~repro.service.core.CacheService` (its own policy instance,
value map, TTL bookkeeping, and lock), and the shards together
partition the configured capacity.

The shard hash must be stable across process restarts — a cache whose
key→shard mapping moves on restart silently loses its working set — so
it is built on BLAKE2b over a canonical key encoding, never on
Python's per-process-salted ``hash()``.  The routing tests pin literal
digest values to guard this.
"""

from __future__ import annotations

from hashlib import blake2b
from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.service.core import CacheService

_UNSET = object()

#: Aggregate-able per-shard stats fields (summed by ``aggregate_stats``).
SUMMED_STATS_FIELDS: Tuple[str, ...] = (
    "gets", "hits", "misses", "sets", "deletes", "expired",
    "evictions", "rejected", "objects", "used", "ttl_entries",
    "sweep_backlog", "policy_requests",
)


def aggregate_stats(per_shard: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Sum per-shard stats snapshots into one aggregate dict.

    Shared by :class:`ShardedCacheService` and the process-per-shard
    :class:`~repro.service.mp.MPCacheService`, so both backends report
    the same aggregate surface.  Each input snapshot must itself be
    internally consistent (taken under its shard's lock); the aggregate
    then preserves invariants like ``hits + misses == gets`` even
    though the shards were sampled at slightly different instants.
    """
    aggregate: Dict[str, Any] = {name: 0 for name in SUMMED_STATS_FIELDS}
    for stats in per_shard:
        for name in SUMMED_STATS_FIELDS:
            aggregate[name] += stats[name]
    gets = aggregate["gets"]
    aggregate["hit_ratio"] = aggregate["hits"] / gets if gets else 0.0
    aggregate["per_shard"] = per_shard
    return aggregate


def stable_key_hash(key: Hashable) -> int:
    """A 64-bit key hash, identical in every process and on every host.

    Keys of distinct types never collide by encoding (each type gets a
    tag byte); unrecognized types fall back to their ``repr``, which is
    stable for the literal types traces actually use.
    """
    if isinstance(key, str):
        data = b"s" + key.encode("utf-8")
    elif isinstance(key, bool):  # before int: bool is an int subclass
        data = b"o" + (b"1" if key else b"0")
    elif isinstance(key, int):
        data = b"i" + str(key).encode("ascii")
    elif isinstance(key, bytes):
        data = b"b" + key
    else:
        data = b"r" + repr(key).encode("utf-8")
    return int.from_bytes(blake2b(data, digest_size=8).digest(), "big")


def partition_capacity(capacity: int, num_shards: int) -> List[int]:
    """Split ``capacity`` into ``num_shards`` near-equal positive parts.

    The remainder goes to the lowest-numbered shards, so the parts sum
    exactly to ``capacity`` and differ by at most one.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if capacity < num_shards:
        raise ValueError(
            f"capacity {capacity} cannot be split into {num_shards} shards "
            "of at least one object each"
        )
    base, extra = divmod(capacity, num_shards)
    return [base + (1 if i < extra else 0) for i in range(num_shards)]


class ShardedCacheService:
    """N independent :class:`CacheService` shards behind one API.

    Exposes the same ``get``/``set``/``delete``/``sweep``/``stats``
    surface as a single shard; every operation routes to
    ``shard_for(key)`` and runs under that shard's lock only, so
    operations on different shards never contend.  Constructor
    keywords are forwarded to every shard.
    """

    def __init__(
        self,
        capacity: int,
        policy: str = "s3fifo",
        num_shards: int = 4,
        metrics=None,
        tracer=None,
        instrument_policy: bool = False,
        **shard_kwargs: Any,
    ) -> None:
        capacities = partition_capacity(capacity, num_shards)
        self.capacity = capacity
        self.num_shards = num_shards
        self._shards = [
            CacheService(
                cap,
                policy,
                metrics=metrics,
                tracer=tracer,
                instrument_policy=instrument_policy,
                metrics_labels=(
                    {"shard": str(i)} if metrics is not None else None
                ),
                shard_id=i,
                **shard_kwargs,
            )
            for i, cap in enumerate(capacities)
        ]
        self.policy_name = self._shards[0].policy_name
        self.supports_removal = self._shards[0].supports_removal
        if metrics is not None:
            metrics.gauge(
                "repro_shards", "Number of shards in this service."
            ).set(num_shards)
            metrics.gauge(
                "repro_shard_imbalance",
                "Hottest shard's operation count over the per-shard mean "
                "(1.0 = perfectly balanced).",
            ).set_function(self.imbalance)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_for(self, key: Hashable) -> int:
        """The shard index ``key`` routes to (stable across restarts)."""
        return stable_key_hash(key) % self.num_shards

    def shard(self, index: int) -> CacheService:
        """The shard at ``index`` (introspection and tests)."""
        return self._shards[index]

    @property
    def shards(self) -> List[CacheService]:
        return list(self._shards)

    # ------------------------------------------------------------------
    # The service surface
    # ------------------------------------------------------------------
    def get(self, key: Hashable, default: Any = None) -> Any:
        return self._shards[self.shard_for(key)].get(key, default)

    def set(
        self,
        key: Hashable,
        value: Any,
        ttl: Any = _UNSET,
        size: int = 1,
    ) -> bool:
        shard = self._shards[self.shard_for(key)]
        if ttl is _UNSET:
            return shard.set(key, value, size=size)
        return shard.set(key, value, ttl=ttl, size=size)

    def delete(self, key: Hashable) -> bool:
        return self._shards[self.shard_for(key)].delete(key)

    # ------------------------------------------------------------------
    # Batched operations (per-shard request coalescing)
    # ------------------------------------------------------------------
    def _group_positions(self, keys: List[Hashable]) -> Dict[int, List[int]]:
        """shard index -> positions in ``keys`` routed there (order kept)."""
        groups: Dict[int, List[int]] = {}
        for pos, key in enumerate(keys):
            groups.setdefault(self.shard_for(key), []).append(pos)
        return groups

    def get_many(self, keys: Iterable[Hashable],
                 default: Any = None) -> List[Any]:
        """Batched :meth:`get`: one lock acquisition per shard per batch.

        Keys are coalesced by shard (preserving their relative order
        within each shard, so per-shard counters match the per-key
        loop exactly) and results are reassembled in input order.
        """
        keys = list(keys)
        results: List[Any] = [default] * len(keys)
        for idx, positions in self._group_positions(keys).items():
            values = self._shards[idx].get_many(
                [keys[p] for p in positions], default
            )
            for p, v in zip(positions, values):
                results[p] = v
        return results

    def set_many(
        self,
        items: Iterable[Tuple[Hashable, Any]],
        ttl: Any = _UNSET,
        size: int = 1,
    ) -> List[bool]:
        """Batched :meth:`set`: pairs coalesced into one call per shard."""
        items = list(items)
        keys = [key for key, _ in items]
        results: List[bool] = [False] * len(items)
        for idx, positions in self._group_positions(keys).items():
            shard = self._shards[idx]
            sub = [items[p] for p in positions]
            if ttl is _UNSET:
                stored = shard.set_many(sub, size=size)
            else:
                stored = shard.set_many(sub, ttl=ttl, size=size)
            for p, s in zip(positions, stored):
                results[p] = s
        return results

    def delete_many(self, keys: Iterable[Hashable]) -> List[bool]:
        """Batched :meth:`delete`: keys coalesced into one call per shard."""
        keys = list(keys)
        results: List[bool] = [False] * len(keys)
        for idx, positions in self._group_positions(keys).items():
            deleted = self._shards[idx].delete_many(
                [keys[p] for p in positions]
            )
            for p, d in zip(positions, deleted):
                results[p] = d
        return results

    def sweep(self, max_checks: Optional[int] = None) -> int:
        return sum(shard.sweep(max_checks) for shard in self._shards)

    def check(self) -> None:
        for shard in self._shards:
            shard.check()

    def __contains__(self, key: Hashable) -> bool:
        return key in self._shards[self.shard_for(key)]

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def ops_per_shard(self) -> List[int]:
        """Operations (gets+sets+deletes) each shard has served."""
        counts = []
        for shard in self._shards:
            c = shard.counters
            counts.append(c.gets + c.sets + c.deletes)
        return counts

    def imbalance(self) -> float:
        """Hottest shard's operation count over the mean (1.0 = balanced)."""
        from repro.concurrency.sharding import imbalance_factor

        return imbalance_factor(self.ops_per_shard())

    def stats(self) -> Dict[str, Any]:
        """Aggregate counters plus the per-shard breakdown.

        Each shard snapshot is taken under *that shard's* lock
        (:meth:`CacheService.stats` acquires it), so no per-shard
        counter can tear mid-increment: every snapshot satisfies
        ``hits + misses == gets`` individually, and therefore so does
        the aggregate, even while writers are running — the stats
        hammer test pins this.  The shards are sampled sequentially,
        not at one global instant; the aggregate is a sum of
        per-shard-consistent snapshots, never a torn read.
        """
        per_shard = [shard.stats() for shard in self._shards]
        aggregate = aggregate_stats(per_shard)
        aggregate["policy"] = self.policy_name
        aggregate["capacity"] = self.capacity
        aggregate["num_shards"] = self.num_shards
        return aggregate
