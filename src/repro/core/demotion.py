"""Quick-demotion speed and precision instrumentation (Section 6.1).

The paper defines two metrics over a policy's probationary region:

* **normalized quick demotion speed** — LRU's mean eviction age on the
  same trace divided by the mean time objects spend in the
  probationary queue before leaving it (either direction).  Higher is
  faster demotion.
* **quick demotion precision** — among objects *evicted* from the
  probationary queue, the fraction not reused "soon": the next reuse
  is farther than ``cache_size / miss_ratio`` requests away (the
  paper's proxy for a correct early eviction, following LRB).

Both metrics use logical time measured in request count.
"""

from __future__ import annotations

import bisect
from typing import Dict, Hashable, Iterable, List, Optional, Sequence

from repro.cache.base import DemotionEvent, EvictionPolicy
from repro.cache.lru import LruCache
from repro.sim.request import Request


class DemotionTracker:
    """Collects :class:`DemotionEvent` notifications from a policy."""

    def __init__(self) -> None:
        self.events: List[DemotionEvent] = []

    def attach(self, policy: EvictionPolicy) -> "DemotionTracker":
        policy.add_demotion_listener(self.events.append)
        return self

    @property
    def demoted(self) -> List[DemotionEvent]:
        """Events for objects evicted out of the probationary queue."""
        return [e for e in self.events if not e.promoted]

    @property
    def promoted(self) -> List[DemotionEvent]:
        """Events for objects that graduated to the main region."""
        return [e for e in self.events if e.promoted]


class AccessIndex:
    """Per-key sorted access times for next-reuse queries."""

    def __init__(self, requests: Iterable[Request]) -> None:
        self._times: Dict[Hashable, List[int]] = {}
        for i, req in enumerate(requests, start=1):
            self._times.setdefault(req.key, []).append(i)

    def next_access_after(self, key: Hashable, time: int) -> Optional[int]:
        """First access to ``key`` strictly after logical ``time``."""
        times = self._times.get(key)
        if not times:
            return None
        idx = bisect.bisect_right(times, time)
        return times[idx] if idx < len(times) else None


class DemotionStats:
    """Aggregated speed/precision for one policy run (one Fig. 10 point)."""

    def __init__(
        self,
        speed: float,
        precision: float,
        mean_time_in_probation: float,
        demoted_count: int,
        promoted_count: int,
    ) -> None:
        self.speed = speed
        self.precision = precision
        self.mean_time_in_probation = mean_time_in_probation
        self.demoted_count = demoted_count
        self.promoted_count = promoted_count

    def __repr__(self) -> str:
        return (
            f"DemotionStats(speed={self.speed:.2f}, "
            f"precision={self.precision:.3f}, "
            f"demoted={self.demoted_count}, promoted={self.promoted_count})"
        )


def lru_eviction_age(requests: Sequence[Request], capacity: int) -> float:
    """Mean logical age at eviction under LRU — the speed baseline."""
    cache = LruCache(capacity)
    ages: List[int] = []
    cache.add_eviction_listener(lambda e: ages.append(e.age))
    for req in requests:
        cache.request(Request(req.key, size=req.size))
    if not ages:
        # Nothing was evicted: the working set fit.  Use the trace
        # length so speed ratios stay finite and comparable.
        return float(len(requests))
    return sum(ages) / len(ages)


def compute_demotion_stats(
    events: Sequence[DemotionEvent],
    index: AccessIndex,
    lru_age: float,
    capacity: int,
    miss_ratio: float,
) -> DemotionStats:
    """Turn raw demotion events into the Fig. 10 speed/precision point."""
    if not events:
        return DemotionStats(0.0, 0.0, 0.0, 0, 0)
    times = [e.time_in_probation for e in events]
    mean_time = sum(times) / len(times)
    speed = lru_age / mean_time if mean_time > 0 else float("inf")

    reuse_threshold = capacity / max(miss_ratio, 1e-9)
    demoted = [e for e in events if not e.promoted]
    correct = 0
    for event in demoted:
        nxt = index.next_access_after(event.key, event.demote_time)
        distance = float("inf") if nxt is None else nxt - event.demote_time
        if distance > reuse_threshold:
            correct += 1
    precision = correct / len(demoted) if demoted else 1.0
    return DemotionStats(
        speed=speed,
        precision=precision,
        mean_time_in_probation=mean_time,
        demoted_count=len(demoted),
        promoted_count=len(events) - len(demoted),
    )
