"""S3-FIFO with a SIEVE main queue — the paper's Section 7 suggestion.

"Sieve can be used to replace the large FIFO queue in S3-FIFO to
further improve efficiency."  This module implements exactly that
extension: the small probationary FIFO queue and ghost queue are
unchanged, while the main queue evicts with SIEVE's moving hand
(visited objects are retained *in place* with the bit cleared, instead
of FIFO-reinsertion's recycling to the head).

Compared to FIFO-reinsertion, SIEVE's in-place retention keeps the
main queue's survivors ordered by original insertion, which gives new
M entrants slightly quicker demotion — the same lazy-promotion idea,
one notch stronger.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Hashable, Optional

from repro.cache.base import CacheEntry, EvictionPolicy
from repro.sim.request import Request
from repro.structures.dlist import DList, DListNode
from repro.structures.ghost import GhostFifo


class _SieveEntry(CacheEntry):
    __slots__ = ("visited",)

    def __init__(self, key: Hashable, size: int, insert_time: int) -> None:
        super().__init__(key, size, insert_time)
        self.visited = False


class S3SieveCache(EvictionPolicy):
    """S3-FIFO whose main queue evicts with SIEVE."""

    name = "s3sieve"

    def __init__(
        self,
        capacity: int,
        small_ratio: float = 0.1,
        ghost_entries: Optional[int] = None,
        freq_cap: int = 3,
        move_to_main_threshold: int = 2,
    ) -> None:
        super().__init__(capacity)
        if not 0.0 < small_ratio < 1.0:
            raise ValueError(f"small_ratio must be in (0, 1), got {small_ratio}")
        self._s_cap = max(1, int(capacity * small_ratio))
        self._m_cap = max(1, capacity - self._s_cap)
        self._freq_cap = freq_cap
        self._threshold = move_to_main_threshold
        self._small: "OrderedDict[Hashable, _SieveEntry]" = OrderedDict()
        self._main = DList()
        self._main_nodes: Dict[Hashable, DListNode] = {}
        self._hand: Optional[DListNode] = None
        self._ghost = GhostFifo(
            ghost_entries if ghost_entries is not None else self._m_cap
        )
        self._s_used = 0
        self._m_used = 0

    # ------------------------------------------------------------------
    @property
    def small_capacity(self) -> int:
        return self._s_cap

    @property
    def ghost(self) -> GhostFifo:
        return self._ghost

    def in_main(self, key: Hashable) -> bool:
        return key in self._main_nodes

    # ------------------------------------------------------------------
    def _access(self, req: Request) -> bool:
        entry = self._small.get(req.key)
        if entry is not None:
            entry.freq = min(entry.freq + 1, self._freq_cap)
            entry.last_access = self.clock
            return True
        node = self._main_nodes.get(req.key)
        if node is not None:
            main_entry: _SieveEntry = node.data
            main_entry.visited = True
            main_entry.freq = min(main_entry.freq + 1, self._freq_cap)
            main_entry.last_access = self.clock
            return True
        self._insert(req)
        return False

    def _insert(self, req: Request) -> None:
        self._make_room(req.size)
        entry = _SieveEntry(req.key, req.size, self.clock)
        if self._ghost.remove(req.key):
            self._push_main(entry)
        else:
            self._small[req.key] = entry
            self._s_used += entry.size
        self.used += entry.size

    def _push_main(self, entry: _SieveEntry) -> None:
        self._main_nodes[entry.key] = self._main.push_head(DListNode(entry))
        self._m_used += entry.size

    def _make_room(self, incoming: int) -> None:
        while self.used + incoming > self.capacity:
            if self._s_used >= self._s_cap or not self._main_nodes:
                self._evict_s()
            else:
                self._evict_m()

    def _evict_s(self) -> None:
        while self._small:
            key, entry = self._small.popitem(last=False)
            self._s_used -= entry.size
            if entry.freq >= self._threshold:
                entry.freq = 0
                entry.visited = False
                self._push_main(entry)
                self._notify_demote(entry, promoted=True)
            else:
                self.used -= entry.size
                self._ghost.add(key)
                self._notify_demote(entry, promoted=False)
                self._notify_evict(entry)
                return
        if self._main_nodes:
            self._evict_m()

    def _evict_m(self) -> None:
        """SIEVE eviction: hand scans tail->head, retaining visited
        objects in place with the bit cleared."""
        node = self._hand if self._hand is not None else self._main.tail
        assert node is not None, "evicting from an empty main queue"
        entry: _SieveEntry = node.data
        while entry.visited:
            entry.visited = False
            prev = node.prev
            node = prev if (prev is not None and prev.linked) else self._main.tail
            assert node is not None
            entry = node.data
        self._hand = (
            node.prev if (node.prev is not None and node.prev.linked) else None
        )
        self._main.unlink(node)
        del self._main_nodes[entry.key]
        self._m_used -= entry.size
        self.used -= entry.size
        self._notify_evict(entry)

    # ------------------------------------------------------------------
    def __contains__(self, key: Hashable) -> bool:
        return key in self._small or key in self._main_nodes

    def __len__(self) -> int:
        return len(self._small) + len(self._main_nodes)
