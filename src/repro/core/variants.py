"""Queue-type ablation of S3-FIFO (Section 6.3: "LRU or FIFO?").

The paper replaces the small and/or main FIFO queues with LRU queues,
and also tries promoting objects from S to M on cache *hits* instead
of at eviction time.  Results ("not shown" in the paper) conclude LRU
queues do not improve efficiency once quick demotion is in place —
``benchmarks/test_sec63_queue_type.py`` regenerates that comparison.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from typing import Hashable, Optional

from repro.cache.base import CacheEntry, EvictionPolicy
from repro.sim.request import Request
from repro.structures.ghost import GhostFifo


class QueueType(enum.Enum):
    """Ordering discipline for a queue in the S3 structure."""

    FIFO = "fifo"
    LRU = "lru"


class S3QueueVariantCache(EvictionPolicy):
    """S3-FIFO's structure with configurable queue types.

    Parameters
    ----------
    small_type / main_type:
        :class:`QueueType` for the probationary and main queues.  An
        LRU queue promotes on hit; a FIFO queue does not.  An LRU main
        queue evicts its true LRU tail without reinsertion; a FIFO
        main queue uses FIFO-Reinsertion exactly like S3-FIFO.
    promote_on_hit:
        If True, an object in S whose frequency reaches the promotion
        threshold moves to M immediately on the hit rather than
        waiting for S's eviction scan.
    """

    name = "s3variant"

    def __init__(
        self,
        capacity: int,
        small_type: QueueType = QueueType.FIFO,
        main_type: QueueType = QueueType.FIFO,
        promote_on_hit: bool = False,
        small_ratio: float = 0.1,
        ghost_entries: Optional[int] = None,
        freq_cap: int = 3,
        move_to_main_threshold: int = 2,
    ) -> None:
        super().__init__(capacity)
        if not 0.0 < small_ratio < 1.0:
            raise ValueError(f"small_ratio must be in (0, 1), got {small_ratio}")
        self._small_type = small_type
        self._main_type = main_type
        self._promote_on_hit = promote_on_hit
        self._s_cap = max(1, int(capacity * small_ratio))
        self._m_cap = max(1, capacity - self._s_cap)
        self._freq_cap = freq_cap
        self._threshold = move_to_main_threshold
        self._small: "OrderedDict[Hashable, CacheEntry]" = OrderedDict()
        self._main: "OrderedDict[Hashable, CacheEntry]" = OrderedDict()
        self._ghost = GhostFifo(
            ghost_entries if ghost_entries is not None else self._m_cap
        )
        self._s_used = 0
        self._m_used = 0

    @property
    def variant_name(self) -> str:
        """e.g. "S3(S=lru,M=fifo)" — used by the Section 6.3 benchmark."""
        tag = ",hit-promote" if self._promote_on_hit else ""
        return (
            f"S3(S={self._small_type.value},M={self._main_type.value}{tag})"
        )

    # ------------------------------------------------------------------
    def _access(self, req: Request) -> bool:
        entry = self._small.get(req.key)
        if entry is not None:
            entry.freq = min(entry.freq + 1, self._freq_cap)
            entry.last_access = self.clock
            if self._small_type is QueueType.LRU:
                self._small.move_to_end(req.key)
            if self._promote_on_hit and entry.freq >= self._threshold:
                del self._small[req.key]
                self._s_used -= entry.size
                entry.freq = 0
                self._main[req.key] = entry
                self._m_used += entry.size
            return True
        entry = self._main.get(req.key)
        if entry is not None:
            entry.freq = min(entry.freq + 1, self._freq_cap)
            entry.last_access = self.clock
            if self._main_type is QueueType.LRU:
                self._main.move_to_end(req.key)
            return True
        self._insert(req)
        return False

    def _insert(self, req: Request) -> None:
        self._make_room(req.size)
        entry = CacheEntry(req.key, req.size, self.clock)
        if self._ghost.remove(req.key):
            self._main[req.key] = entry
            self._m_used += entry.size
        else:
            self._small[req.key] = entry
            self._s_used += entry.size
        self.used += entry.size

    def _make_room(self, incoming: int) -> None:
        while self.used + incoming > self.capacity:
            if self._s_used >= self._s_cap or not self._main:
                self._evict_s()
            else:
                self._evict_m()

    def _evict_s(self) -> None:
        while self._small:
            key, entry = self._small.popitem(last=False)
            self._s_used -= entry.size
            if entry.freq >= self._threshold:
                entry.freq = 0
                self._main[key] = entry
                self._m_used += entry.size
                self._notify_demote(entry, promoted=True)
            else:
                self._ghost.add(key)
                self.used -= entry.size
                self._notify_demote(entry, promoted=False)
                self._notify_evict(entry)
                return
        if self._main:
            self._evict_m()

    def _evict_m(self) -> None:
        if self._main_type is QueueType.LRU:
            key, entry = self._main.popitem(last=False)
            self._m_used -= entry.size
            self.used -= entry.size
            self._notify_evict(entry)
            return
        while self._main:
            key, entry = self._main.popitem(last=False)
            if entry.freq > 0:
                entry.freq -= 1
                self._main[key] = entry
            else:
                self._m_used -= entry.size
                self.used -= entry.size
                self._notify_evict(entry)
                return

    # ------------------------------------------------------------------
    def __contains__(self, key: Hashable) -> bool:
        return key in self._small or key in self._main

    def __len__(self) -> int:
        return len(self._small) + len(self._main)
