"""S3-FIFO-D: S3-FIFO with dynamic queue sizes (Section 6.2.2).

Two *adaptation* ghost queues (distinct from the algorithm's main
ghost queue G) track objects recently evicted from S and from M; each
is sized to hold 5% of the cached objects.  Whenever the two queues
have collected more than ``adapt_hits`` (100) hits in total and one
side has at least ``imbalance`` (2x) more hits than the other, 0.1% of
the cache capacity moves to the queue whose evicted objects are being
re-requested more — balancing the marginal hits of the two queues.

The paper finds S3-FIFO-D beats static S3-FIFO only on the ~2% of
traces where a 10% S is far from optimal; the benchmark
``benchmarks/test_sec62_adaptive.py`` reproduces that comparison.
"""

from __future__ import annotations

from typing import Hashable

from repro.cache.base import CacheEntry
from repro.core.s3fifo import S3FifoCache
from repro.sim.request import Request
from repro.structures.ghost import GhostFifo


class S3FifoDCache(S3FifoCache):
    """Adaptive-queue-size S3-FIFO."""

    name = "s3fifo-d"

    def __init__(
        self,
        capacity: int,
        small_ratio: float = 0.1,
        adapt_ghost_ratio: float = 0.05,
        adapt_hits: int = 100,
        imbalance: float = 2.0,
        adapt_step: float = 0.001,
        min_ratio: float = 0.01,
        **kwargs,
    ) -> None:
        super().__init__(capacity, small_ratio=small_ratio, **kwargs)
        if adapt_hits <= 0:
            raise ValueError(f"adapt_hits must be positive, got {adapt_hits}")
        if imbalance <= 1.0:
            raise ValueError(f"imbalance must be > 1, got {imbalance}")
        ghost_cap = max(1, int(capacity * adapt_ghost_ratio))
        self._adapt_ghost_s = GhostFifo(ghost_cap)
        self._adapt_ghost_m = GhostFifo(ghost_cap)
        self._hits_on_s_victims = 0
        self._hits_on_m_victims = 0
        self._adapt_hits = adapt_hits
        self._imbalance = imbalance
        self._step = max(1, int(capacity * adapt_step))
        self._min_cap = max(1, int(capacity * min_ratio))
        self._resizes = 0

    # ------------------------------------------------------------------
    @property
    def resizes(self) -> int:
        """Number of queue-size adaptations performed so far."""
        return self._resizes

    def _on_evict_from_s(self, entry: CacheEntry) -> None:
        self._adapt_ghost_s.add(entry.key)

    def _on_evict_from_m(self, entry: CacheEntry) -> None:
        self._adapt_ghost_m.add(entry.key)

    def _access(self, req: Request) -> bool:
        hit = super()._access(req)
        if not hit:
            if self._adapt_ghost_s.remove(req.key):
                self._hits_on_s_victims += 1
            elif self._adapt_ghost_m.remove(req.key):
                self._hits_on_m_victims += 1
            self._maybe_resize()
        return hit

    # ------------------------------------------------------------------
    def _maybe_resize(self) -> None:
        total = self._hits_on_s_victims + self._hits_on_m_victims
        if total <= self._adapt_hits:
            return
        grow_s = self._hits_on_s_victims >= self._imbalance * self._hits_on_m_victims
        grow_m = self._hits_on_m_victims >= self._imbalance * self._hits_on_s_victims
        if grow_s:
            self._resize(+self._step)
        elif grow_m:
            self._resize(-self._step)
        if grow_s or grow_m:
            self._hits_on_s_victims = 0
            self._hits_on_m_victims = 0

    def _resize(self, delta: int) -> None:
        """Move ``delta`` capacity units from M to S (or back)."""
        new_s = self._s_cap + delta
        new_s = max(self._min_cap, min(self.capacity - self._min_cap, new_s))
        if new_s == self._s_cap:
            return
        self._s_cap = new_s
        self._m_cap = self.capacity - new_s
        self._resizes += 1

    # ------------------------------------------------------------------
    def __contains__(self, key: Hashable) -> bool:
        return super().__contains__(key)
