"""Array-backed S3-FIFO: the slot mirror of :class:`repro.core.s3fifo.S3FifoCache`.

Same Algorithm 1 — small FIFO **S**, main FIFO **M** with
FIFO-Reinsertion, ghost queue **G** — but over slot-indexed slabs:

* each object's metadata is one *state byte*: the 2-bit frequency
  counter of Section 4.2 packed with a 2-bit queue tag
  (``state = region << 2 | freq``), so the hot hit path is a single
  bytearray read and write,
* S and M are compacting list queues of slot indices (append at the
  tail, advance a head cursor to pop, slice off the dead prefix once
  it dominates) — in CPython a list read returns an existing
  reference where an ``array`` read allocates, which makes this the
  faster "ring",
* the ghost queue is a flat array of (slot, stamp) pairs with a
  per-slot stamp table; membership is one array load, eviction skips
  stale entries lazily — no dict, no deque.

The decision sequence is bit-identical to the reference: every
hit/miss outcome, every eviction (key, size, freq, timestamps), every
demotion event, and the final stats checksum match ``s3fifo`` request
for request.  Differential tests in ``tests/test_fast_policies.py``
enforce this.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.cache.fast_base import NEG1, FastPolicyBase

# State byte layout: 0 = absent, else (region << 2) | freq with
# freq in [0, 3].  Region codes:
_S_BASE = 4  # in the small queue S
_M_BASE = 8  # in the main queue M

#: Compact a queue's storage once the dead prefix passes this length
#: and outweighs the live tail.
_COMPACT_MIN = 1024


class FastS3FifoCache(FastPolicyBase):
    """S3-FIFO over slot queues and packed 2-bit counters.

    Accepts the same parameters as :class:`S3FifoCache`; since the
    frequency field is physically two bits, ``freq_cap`` must be at
    most 3 (the reference default).  Use ``s3fifo`` for experimental
    larger counters.
    """

    name = "s3fifo-fast"
    supports_removal = True

    def __init__(
        self,
        capacity: int,
        small_ratio: float = 0.1,
        ghost_entries: Optional[int] = None,
        freq_cap: int = 3,
        move_to_main_threshold: int = 2,
    ) -> None:
        super().__init__(capacity)
        if not 0.0 < small_ratio < 1.0:
            raise ValueError(f"small_ratio must be in (0, 1), got {small_ratio}")
        if not 1 <= freq_cap <= 3:
            raise ValueError(
                "s3fifo-fast packs frequencies in 2 bits; freq_cap must be "
                f"in [1, 3], got {freq_cap} (use s3fifo for larger caps)"
            )
        if move_to_main_threshold < 0:
            raise ValueError(
                "move_to_main_threshold must be >= 0, "
                f"got {move_to_main_threshold}"
            )
        if ghost_entries is not None and ghost_entries < 0:
            raise ValueError(f"capacity must be >= 0, got {ghost_entries}")
        self._s_cap = max(1, int(capacity * small_ratio))
        self._m_cap = max(1, capacity - self._s_cap)
        self._freq_cap = freq_cap
        self._threshold = move_to_main_threshold
        self._ghost_dynamic = ghost_entries is None
        self._g_cap = self._m_cap if ghost_entries is None else ghost_entries
        # S and M: compacting list queues (see module docstring).
        self._s_q: list = []
        self._s_head = 0
        self._s_len = 0
        self._m_q: list = []
        self._m_head = 0
        self._m_len = 0
        self._s_used = 0
        self._m_used = 0
        # Ghost: _g_stamp_of[slot] is the stamp of the slot's live ghost
        # entry, -1 when absent.  The queue arrays hold (slot, stamp)
        # in insertion order from _g_head on; an entry is live iff its
        # stamp still matches, so removals are O(1) invalidations and
        # stale entries are skipped when they reach the front.
        self._g_stamp_of = NEG1 * self._slab_cap
        self._g_qslot: list = []
        self._g_qstamp: list = []
        self._g_head = 0
        self._g_live = 0
        self._g_counter = 0

    def _grow_extra(self, add: int) -> None:
        self._g_stamp_of.extend(NEG1 * add)

    # ------------------------------------------------------------------
    # Introspection (parity with S3FifoCache)
    # ------------------------------------------------------------------
    @property
    def small_capacity(self) -> int:
        return self._s_cap

    @property
    def main_capacity(self) -> int:
        return self._m_cap

    @property
    def small_used(self) -> int:
        return self._s_used

    @property
    def main_used(self) -> int:
        return self._m_used

    @property
    def ghost_len(self) -> int:
        """Number of live ghost entries."""
        return self._g_live

    @property
    def ghost_capacity(self) -> int:
        return self._g_cap

    def vector_spec(self):
        """Kernel config for :mod:`repro.sim.vector` (exact type only)."""
        if type(self) is not FastS3FifoCache:
            return None
        return {
            "kind": "s3fifo",
            "s_cap": self._s_cap,
            "m_cap": self._m_cap,
            "freq_cap": self._freq_cap,
            "threshold": self._threshold,
            "ghost_dynamic": self._ghost_dynamic,
            "ghost_cap": self._g_cap,
        }

    def in_small(self, key: Hashable) -> bool:
        slot = self._ids.get(key)
        return slot is not None and self._loc[slot] >> 2 == 1

    def in_main(self, key: Hashable) -> bool:
        slot = self._ids.get(key)
        return slot is not None and self._loc[slot] >> 2 == 2

    def in_ghost(self, key: Hashable) -> bool:
        slot = self._ids.get(key)
        return slot is not None and self._g_stamp_of[slot] != -1

    def freq_of(self, key: Hashable) -> int:
        """Current 2-bit counter value of a resident key (tests aid)."""
        slot = self._ids.get(key)
        if slot is None or not self._loc[slot]:
            raise KeyError(key)
        return self._loc[slot] & 3

    def remove(self, key: Hashable) -> bool:
        """Live deletion for the service layer (not part of Algorithm 1).

        The slot is spliced out of its queue's live region eagerly —
        O(queue length), which is fine for the service's delete/expiry
        rate — so the batch loops' invariant (every queued slot from the
        head cursor on is live) is preserved.  Like the reference
        policy, deletion leaves no ghost entry and fires no eviction
        event.
        """
        slot = self._ids.get(key)
        if slot is None:
            return False
        state = self._loc[slot]
        if not state:
            return False
        size = self._size_of[slot]
        if state >> 2 == 1:  # resident in S
            del self._s_q[self._s_q.index(slot, self._s_head)]
            self._s_len -= 1
            self._s_used -= size
        else:  # resident in M
            del self._m_q[self._m_q.index(slot, self._m_head)]
            self._m_len -= 1
            self._m_used -= size
        self._loc[slot] = 0
        self.used -= size
        self._count -= 1
        return True

    # ------------------------------------------------------------------
    # Ghost queue primitives
    # ------------------------------------------------------------------
    def _ghost_add(self, slot: int) -> None:
        cap = self._g_cap
        if cap == 0:
            return
        counter = self._g_counter + 1
        self._g_counter = counter
        stamp_of = self._g_stamp_of
        stamp_of[slot] = counter
        self._g_qslot.append(slot)
        self._g_qstamp.append(counter)
        live = self._g_live + 1
        if live > cap:
            # Drop the oldest live entry; S3-FIFO never re-adds a key
            # already in the ghost, so one drop always suffices.
            qslot = self._g_qslot
            qstamp = self._g_qstamp
            head = self._g_head
            while True:
                old = qslot[head]
                stamp = qstamp[head]
                head += 1
                if stamp_of[old] == stamp:
                    stamp_of[old] = -1
                    live -= 1
                    break
            self._g_head = head
            if head > _COMPACT_MIN and head * 2 > len(qslot):
                del qslot[:head]
                del qstamp[:head]
                self._g_head = 0
        self._g_live = live

    def _ghost_pop(self) -> None:
        qslot = self._g_qslot
        qstamp = self._g_qstamp
        stamp_of = self._g_stamp_of
        head = self._g_head
        while True:
            slot = qslot[head]
            stamp = qstamp[head]
            head += 1
            if stamp_of[slot] == stamp:
                stamp_of[slot] = -1
                self._g_live -= 1
                break
        self._g_head = head
        if head > _COMPACT_MIN and head * 2 > len(qslot):
            del qslot[:head]
            del qstamp[:head]
            self._g_head = 0

    def _ghost_remove(self, slot: int) -> bool:
        if self._g_stamp_of[slot] == -1:
            return False
        self._g_stamp_of[slot] = -1
        self._g_live -= 1
        return True

    def _ghost_set_capacity(self, capacity: int) -> None:
        self._g_cap = capacity
        while self._g_live > capacity:
            self._ghost_pop()

    # ------------------------------------------------------------------
    # Streaming path
    # ------------------------------------------------------------------
    def _access(self, req) -> bool:
        slot = self._ids.get(req.key)
        if slot is not None:
            state = self._loc[slot]
            if state:
                if state & 3 < self._freq_cap:
                    self._loc[slot] = state + 1
                return True
        else:
            slot = self._intern(req.key)
        self._insert_slot(slot, req.size)
        return False

    # ------------------------------------------------------------------
    # Shared insertion / eviction machinery (Algorithm 1)
    # ------------------------------------------------------------------
    def _insert_slot(self, slot: int, size: int) -> None:
        while self.used + size > self.capacity:
            if self._s_used >= self._s_cap or not self._m_len:
                self._evict_s()
            else:
                self._evict_m()
        self._size_of[slot] = size
        self._insert_time[slot] = self.clock
        if self._g_stamp_of[slot] != -1:  # ghost hit: straight to M
            self._g_stamp_of[slot] = -1
            self._g_live -= 1
            self._m_q.append(slot)
            self._m_len += 1
            self._loc[slot] = _M_BASE  # in M, freq 0
            self._m_used += size
        else:
            self._s_q.append(slot)
            self._s_len += 1
            self._loc[slot] = _S_BASE  # in S, freq 0
            self._s_used += size
        self.used += size
        self._count += 1

    def _evict_s(self) -> None:
        s_q = self._s_q
        loc = self._loc
        size_of = self._size_of
        while self._s_len:
            head = self._s_head
            slot = s_q[head]
            head += 1
            if head > _COMPACT_MIN and head * 2 > len(s_q):
                del s_q[:head]
                head = 0
            self._s_head = head
            self._s_len -= 1
            size = size_of[slot]
            self._s_used -= size
            freq = loc[slot] & 3
            if freq >= self._threshold:
                loc[slot] = _M_BASE  # access bits cleared on the move
                self._m_q.append(slot)
                self._m_len += 1
                self._m_used += size
                if self._demote_listeners:
                    self._notify_demote_slot(slot, promoted=True)
                if self._m_used > self._m_cap:
                    self._evict_m()
            else:
                self.used -= size
                self._count -= 1
                loc[slot] = 0
                if self._ghost_dynamic and (
                    self.used != self._count or self._g_cap != self._m_cap
                ):
                    # Paper sizing: as many ghost entries as M can hold
                    # objects (byte capacity over running mean size).
                    # When used == count the mean is 1.0 and the target
                    # is m_cap, so the recompute is skipped once the
                    # capacity is already pinned there (the unit-size
                    # steady state).
                    count = self._count
                    mean_size = self.used / count if count else 1.0
                    self._ghost_set_capacity(
                        max(1, int(self._m_cap / max(1.0, mean_size)))
                    )
                self._ghost_add(slot)
                if self._demote_listeners:
                    self._notify_demote_slot(slot, promoted=False)
                self._notify_evict_slot(slot, freq)
                return
        # S drained entirely into M; fall back to evicting from M.
        if self._m_len:
            self._evict_m()

    def _evict_m(self) -> None:
        m_q = self._m_q
        loc = self._loc
        push = m_q.append
        head = self._m_head
        while self._m_len:
            slot = m_q[head]
            head += 1
            state = loc[slot]
            if state & 3:
                loc[slot] = state - 1
                push(slot)  # FIFO-Reinsertion
            else:
                if head > _COMPACT_MIN and head * 2 > len(m_q):
                    del m_q[:head]
                    head = 0
                self._m_head = head
                self._m_len -= 1
                size = self._size_of[slot]
                self._m_used -= size
                self.used -= size
                self._count -= 1
                loc[slot] = 0
                self._notify_evict_slot(slot, 0)
                return
        self._m_head = head

    # ------------------------------------------------------------------
    # Batch path
    # ------------------------------------------------------------------
    def _batch(self, trace, start, stop, tmap):
        if (
            trace.sizes is None
            and not self._evict_listeners
            and not self._demote_listeners
        ):
            # Unit-size requests and nobody observing individual
            # evictions: the whole of Algorithm 1 reduces to local
            # integer arithmetic, so run it with zero method dispatch.
            return self._batch_unit_plain(trace, start, stop, tmap)
        keys = trace.key_ids()
        sizes = trace.sizes
        table = trace.key_table
        loc = self._loc
        fcap = self._freq_cap
        clock0 = self.clock - start
        misses = 0
        if sizes is None:
            for i in range(start, stop):
                slot = tmap[keys[i]]
                if slot is not None:
                    state = loc[slot]
                    if state:
                        if state & 3 < fcap:
                            loc[slot] = state + 1
                        continue
                else:
                    kid = keys[i]
                    slot = self._intern(table[kid])
                    tmap[kid] = slot
                    state = loc[slot]
                    if state:
                        if state & 3 < fcap:
                            loc[slot] = state + 1
                        continue
                misses += 1
                self.clock = clock0 + i + 1
                self._insert_slot(slot, 1)
            requests = stop - start
            self.clock = clock0 + stop
            self._bulk_record(requests, misses, requests, misses)
            return (requests, misses, requests, misses)
        cap = self.capacity
        bytes_requested = 0
        bytes_missed = 0
        for i in range(start, stop):
            kid = keys[i]
            size = sizes[i]
            bytes_requested += size
            if size > cap:
                # Oversized is a miss even when the key is resident, with
                # no metadata update (matches base.request's early return).
                misses += 1
                bytes_missed += size
                continue
            slot = tmap[kid]
            if slot is not None:
                state = loc[slot]
                if state:
                    if state & 3 < fcap:
                        loc[slot] = state + 1
                    continue
            else:
                slot = self._intern(table[kid])
                tmap[kid] = slot
                state = loc[slot]
                if state:
                    if state & 3 < fcap:
                        loc[slot] = state + 1
                    continue
            misses += 1
            bytes_missed += size
            self.clock = clock0 + i + 1
            self._insert_slot(slot, size)
        requests = stop - start
        self.clock = clock0 + stop
        self._bulk_record(requests, misses, bytes_requested, bytes_missed)
        return (requests, misses, bytes_requested, bytes_missed)

    def _batch_unit_plain(self, trace, start, stop, tmap):
        """The generic batch loop with Algorithm 1 expanded in place.

        Used when nobody listens for per-eviction events and requests
        are unit-size, which is the measured configuration of the perf
        harness: every queue cursor, byte counter, and ghost stamp is a
        local integer, so the miss path runs without a single method
        call or attribute load.  Decision-for-decision identical to
        ``_insert_slot``/``_evict_s``/``_evict_m`` — the differential
        tests drive both this and the generic path against the
        reference policy.
        """
        keys = trace.key_ids()
        table = trace.key_table
        intern = self._intern
        loc = self._loc
        size_of = self._size_of
        insert_time = self._insert_time
        fcap = self._freq_cap
        threshold = self._threshold
        cap_total = self.capacity
        s_cap = self._s_cap
        m_cap = self._m_cap
        ghost_dynamic = self._ghost_dynamic
        s_q = self._s_q
        m_q = self._m_q
        g_qslot = self._g_qslot
        g_qstamp = self._g_qstamp
        g_stamp_of = self._g_stamp_of
        used = self.used
        count = self._count
        s_head = self._s_head
        s_len = self._s_len
        s_used = self._s_used
        m_head = self._m_head
        m_len = self._m_len
        m_used = self._m_used
        g_head = self._g_head
        g_live = self._g_live
        g_counter = self._g_counter
        g_cap = self._g_cap
        clock0 = self.clock - start
        misses = 0
        evictions = 0
        for i in range(start, stop):
            slot = tmap[keys[i]]
            if slot is not None:
                state = loc[slot]
                if state:
                    if state & 3 < fcap:
                        loc[slot] = state + 1
                    continue
            else:
                kid = keys[i]
                slot = intern(table[kid])
                tmap[kid] = slot
                state = loc[slot]  # may be resident from an earlier run
                if state:
                    if state & 3 < fcap:
                        loc[slot] = state + 1
                    continue
            misses += 1
            if used >= cap_total:  # make room (one pass frees >= 1)
                if s_used >= s_cap or not m_len:
                    # ---- _evict_s, expanded ----
                    evicted = False
                    while s_len:
                        vs = s_q[s_head]
                        s_head += 1
                        if s_head > _COMPACT_MIN and s_head * 2 > len(s_q):
                            del s_q[:s_head]
                            s_head = 0
                        s_len -= 1
                        sz = size_of[vs]
                        s_used -= sz
                        fr = loc[vs] & 3
                        if fr >= threshold:
                            loc[vs] = 8  # to M, access bits cleared
                            m_q.append(vs)
                            m_len += 1
                            m_used += sz
                            if m_used > m_cap:
                                # ---- nested _evict_m, expanded ----
                                while True:
                                    vm = m_q[m_head]
                                    m_head += 1
                                    st = loc[vm]
                                    if st & 3:
                                        loc[vm] = st - 1
                                        m_q.append(vm)
                                    else:
                                        if (
                                            m_head > _COMPACT_MIN
                                            and m_head * 2 > len(m_q)
                                        ):
                                            del m_q[:m_head]
                                            m_head = 0
                                        m_len -= 1
                                        msz = size_of[vm]
                                        m_used -= msz
                                        used -= msz
                                        count -= 1
                                        loc[vm] = 0
                                        evictions += 1
                                        break
                        else:
                            used -= sz
                            count -= 1
                            loc[vs] = 0
                            if ghost_dynamic and (
                                used != count or g_cap != m_cap
                            ):
                                mean = used / count if count else 1.0
                                g_cap = max(
                                    1,
                                    int(m_cap / (mean if mean > 1.0 else 1.0)),
                                )
                                while g_live > g_cap:
                                    og = g_qslot[g_head]
                                    ost = g_qstamp[g_head]
                                    g_head += 1
                                    if g_stamp_of[og] == ost:
                                        g_stamp_of[og] = -1
                                        g_live -= 1
                                if (
                                    g_head > _COMPACT_MIN
                                    and g_head * 2 > len(g_qslot)
                                ):
                                    del g_qslot[:g_head]
                                    del g_qstamp[:g_head]
                                    g_head = 0
                            if g_cap:  # ---- _ghost_add, expanded ----
                                g_counter += 1
                                g_stamp_of[vs] = g_counter
                                g_qslot.append(vs)
                                g_qstamp.append(g_counter)
                                g_live += 1
                                if g_live > g_cap:
                                    while True:
                                        og = g_qslot[g_head]
                                        ost = g_qstamp[g_head]
                                        g_head += 1
                                        if g_stamp_of[og] == ost:
                                            g_stamp_of[og] = -1
                                            g_live -= 1
                                            break
                                    if (
                                        g_head > _COMPACT_MIN
                                        and g_head * 2 > len(g_qslot)
                                    ):
                                        del g_qslot[:g_head]
                                        del g_qstamp[:g_head]
                                        g_head = 0
                            evictions += 1
                            evicted = True
                            break
                    if not evicted and m_len:
                        # S drained into M: evict from M instead.
                        while True:
                            vm = m_q[m_head]
                            m_head += 1
                            st = loc[vm]
                            if st & 3:
                                loc[vm] = st - 1
                                m_q.append(vm)
                            else:
                                if (
                                    m_head > _COMPACT_MIN
                                    and m_head * 2 > len(m_q)
                                ):
                                    del m_q[:m_head]
                                    m_head = 0
                                m_len -= 1
                                msz = size_of[vm]
                                m_used -= msz
                                used -= msz
                                count -= 1
                                loc[vm] = 0
                                evictions += 1
                                break
                else:
                    # ---- _evict_m, expanded ----
                    while True:
                        vm = m_q[m_head]
                        m_head += 1
                        st = loc[vm]
                        if st & 3:
                            loc[vm] = st - 1
                            m_q.append(vm)
                        else:
                            if m_head > _COMPACT_MIN and m_head * 2 > len(m_q):
                                del m_q[:m_head]
                                m_head = 0
                            m_len -= 1
                            msz = size_of[vm]
                            m_used -= msz
                            used -= msz
                            count -= 1
                            loc[vm] = 0
                            evictions += 1
                            break
            # ---- _insert_slot tail, expanded ----
            size_of[slot] = 1
            insert_time[slot] = clock0 + i + 1
            if g_stamp_of[slot] != -1:  # ghost hit: straight to M
                g_stamp_of[slot] = -1
                g_live -= 1
                m_q.append(slot)
                m_len += 1
                loc[slot] = 8
                m_used += 1
            else:
                s_q.append(slot)
                s_len += 1
                loc[slot] = 4
                s_used += 1
            used += 1
            count += 1
        self.used = used
        self._count = count
        self._s_head = s_head
        self._s_len = s_len
        self._s_used = s_used
        self._m_head = m_head
        self._m_len = m_len
        self._m_used = m_used
        self._g_head = g_head
        self._g_live = g_live
        self._g_counter = g_counter
        self._g_cap = g_cap
        self.clock = clock0 + stop
        self.stats.evictions += evictions
        requests = stop - start
        self._bulk_record(requests, misses, requests, misses)
        return (requests, misses, requests, misses)
