"""The paper's primary contribution: S3-FIFO and its variants."""

from repro.core.s3fifo import S3FifoCache
from repro.core.s3fifo_d import S3FifoDCache
from repro.core.s3fifo_fast import FastS3FifoCache
from repro.core.s3fifo_ring import S3FifoRingCache
from repro.core.s3sieve import S3SieveCache
from repro.core.variants import QueueType, S3QueueVariantCache
from repro.core.demotion import DemotionStats, DemotionTracker

__all__ = [
    "S3FifoCache",
    "S3FifoDCache",
    "FastS3FifoCache",
    "S3FifoRingCache",
    "S3SieveCache",
    "QueueType",
    "S3QueueVariantCache",
    "DemotionStats",
    "DemotionTracker",
]
