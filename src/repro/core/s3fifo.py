"""S3-FIFO: Simple, Scalable caching with three Static FIFO queues.

This is a faithful implementation of Algorithm 1 in the paper:

* a small probationary FIFO queue **S** (10% of the cache by default),
* a main FIFO queue **M** (the remaining 90%), and
* a ghost FIFO queue **G** holding as many keys (no data) as M holds
  objects.

Cache hits only increment a 2-bit frequency counter (capped at 3).  On
a miss, the object enters S unless its key is found in G, in which
case it enters M directly.  When S is full, its tail object moves to M
if its frequency reached ``move_to_main_threshold`` (2 in Algorithm 1:
``freq > 1``) and to G otherwise; frequency is cleared on the move.  M
evicts with FIFO-Reinsertion: a tail object with non-zero frequency is
reinserted with frequency decremented.

The small queue provides *quick demotion* — a guaranteed, bounded time
for one-hit wonders to leave the cache — which Section 6.1 identifies
as the key to its efficiency.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Optional

from repro.cache.base import CacheEntry, EvictionPolicy
from repro.sim.request import Request
from repro.structures.ghost import GhostFifo


class S3FifoCache(EvictionPolicy):
    """The S3-FIFO eviction algorithm (Algorithm 1).

    Parameters
    ----------
    capacity:
        Total cache capacity (objects for unit-size workloads, bytes
        when requests carry sizes).
    small_ratio:
        Fraction of the capacity given to the small FIFO queue S
        (paper default 10%; Fig. 11 sweeps 1%–40%).
    ghost_entries:
        Number of keys the ghost queue remembers.  When omitted, the
        ghost tracks the number of objects currently resident in M
        (the paper: "the same number of ghost entries as M"), which
        equals ``capacity * (1 - small_ratio)`` for unit-size
        workloads and adapts automatically for byte-sized ones.
        Passing an explicit value pins the window.
    freq_cap:
        Saturation value of the per-object counter (3 = two bits).
    move_to_main_threshold:
        Minimum frequency for an S-tail object to be promoted to M
        (Algorithm 1 uses ``freq > 1``, i.e. threshold 2).
    """

    name = "s3fifo"
    supports_removal = True

    def __init__(
        self,
        capacity: int,
        small_ratio: float = 0.1,
        ghost_entries: Optional[int] = None,
        freq_cap: int = 3,
        move_to_main_threshold: int = 2,
    ) -> None:
        super().__init__(capacity)
        if not 0.0 < small_ratio < 1.0:
            raise ValueError(f"small_ratio must be in (0, 1), got {small_ratio}")
        if freq_cap < 1:
            raise ValueError(f"freq_cap must be >= 1, got {freq_cap}")
        if move_to_main_threshold < 0:
            raise ValueError(
                "move_to_main_threshold must be >= 0, "
                f"got {move_to_main_threshold}"
            )
        self._s_cap = max(1, int(capacity * small_ratio))
        self._m_cap = max(1, capacity - self._s_cap)
        self._freq_cap = freq_cap
        self._threshold = move_to_main_threshold
        self._ghost_dynamic = ghost_entries is None
        if ghost_entries is None:
            ghost_entries = self._m_cap
        self._small: "OrderedDict[Hashable, CacheEntry]" = OrderedDict()
        self._main: "OrderedDict[Hashable, CacheEntry]" = OrderedDict()
        self._ghost = GhostFifo(ghost_entries)
        self._s_used = 0
        self._m_used = 0

    # ------------------------------------------------------------------
    # Introspection used by tests, benchmarks, and the demotion analysis
    # ------------------------------------------------------------------
    @property
    def small_capacity(self) -> int:
        return self._s_cap

    @property
    def main_capacity(self) -> int:
        return self._m_cap

    @property
    def small_used(self) -> int:
        return self._s_used

    @property
    def main_used(self) -> int:
        return self._m_used

    @property
    def ghost(self) -> GhostFifo:
        return self._ghost

    def in_small(self, key: Hashable) -> bool:
        return key in self._small

    def in_main(self, key: Hashable) -> bool:
        return key in self._main

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def _access(self, req: Request) -> bool:
        entry = self._small.get(req.key)
        if entry is None:
            entry = self._main.get(req.key)
        if entry is not None:  # READ hit: freq <- min(freq + 1, cap)
            entry.freq = min(entry.freq + 1, self._freq_cap)
            entry.last_access = self.clock
            return True
        self._insert(req)
        return False

    def _insert(self, req: Request) -> None:
        """INSERT: route via the ghost queue, evicting as needed."""
        self._make_room(req.size)
        entry = CacheEntry(req.key, req.size, self.clock)
        if self._ghost.remove(req.key):
            self._main[req.key] = entry
            self._m_used += entry.size
        else:
            self._small[req.key] = entry
            self._s_used += entry.size
        self.used += entry.size

    def _make_room(self, incoming: int) -> None:
        while self.used + incoming > self.capacity:
            if self._s_used >= self._s_cap or not self._main:
                self._evict_s()
            else:
                self._evict_m()

    def _evict_s(self) -> None:
        """EVICTS: move accessed tails to M, evict the first cold tail to G."""
        while self._small:
            key, entry = self._small.popitem(last=False)
            self._s_used -= entry.size
            if entry.freq >= self._threshold:
                entry.freq = 0  # access bits cleared on the move
                self._main[key] = entry
                self._m_used += entry.size
                self._notify_demote(entry, promoted=True)
                if self._m_used > self._m_cap:
                    self._evict_m()
            else:
                self.used -= entry.size
                if self._ghost_dynamic:
                    # Paper sizing: as many ghost entries as M can hold
                    # objects.  M's object capacity is its byte capacity
                    # over the running mean object size, which reduces
                    # to the static m_cap for unit-size workloads.
                    mean_size = self.used / len(self) if len(self) else 1.0
                    self._ghost.set_capacity(
                        max(1, int(self._m_cap / max(1.0, mean_size)))
                    )
                self._ghost.add(key)
                self._on_evict_from_s(entry)
                self._notify_demote(entry, promoted=False)
                self._notify_evict(entry)
                return
        # S drained entirely into M; fall back to evicting from M.
        if self._main:
            self._evict_m()

    def _evict_m(self) -> None:
        """EVICTM: FIFO-Reinsertion with the 2-bit counter."""
        while self._main:
            key, entry = self._main.popitem(last=False)
            if entry.freq > 0:
                entry.freq -= 1
                self._main[key] = entry  # reinsert at head
            else:
                self._m_used -= entry.size
                self.used -= entry.size
                self._on_evict_from_m(entry)
                self._notify_evict(entry)
                return

    def remove(self, key: Hashable) -> bool:
        """Live deletion for the service layer (not part of Algorithm 1).

        The key leaves whichever queue holds it; it is *not* recorded in
        the ghost queue (deletion carries no eviction signal) and no
        eviction event fires.
        """
        entry = self._small.pop(key, None)
        if entry is not None:
            self._s_used -= entry.size
        else:
            entry = self._main.pop(key, None)
            if entry is None:
                return False
            self._m_used -= entry.size
        self.used -= entry.size
        return True

    def vector_spec(self):
        """Kernel config for :mod:`repro.sim.vector` (exact type only —
        the adaptive subclass overrides eviction hooks and opts out)."""
        if type(self) is not S3FifoCache:
            return None
        return {
            "kind": "s3fifo",
            "s_cap": self._s_cap,
            "m_cap": self._m_cap,
            "freq_cap": self._freq_cap,
            "threshold": self._threshold,
            "ghost_dynamic": self._ghost_dynamic,
            "ghost_cap": self._ghost.capacity,
        }

    # ------------------------------------------------------------------
    # Hooks for the adaptive variant (S3-FIFO-D)
    # ------------------------------------------------------------------
    def _on_evict_from_s(self, entry: CacheEntry) -> None:
        """Called when an object is evicted from S (to the ghost queue)."""

    def _on_evict_from_m(self, entry: CacheEntry) -> None:
        """Called when an object is evicted from M."""

    # ------------------------------------------------------------------
    def __contains__(self, key: Hashable) -> bool:
        return key in self._small or key in self._main

    def __len__(self) -> int:
        return len(self._small) + len(self._main)
