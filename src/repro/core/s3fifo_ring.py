"""S3-FIFO on ring buffers — the Section 4.2 implementation.

The paper describes two implementations of the FIFO queues: linked
lists (easy to retrofit into LRU-based caches, used by the Cachelib
prototype) and ring buffers (no per-object pointers, lock-free head/
tail bumping, the scalable production layout).  The default
:class:`~repro.core.s3fifo.S3FifoCache` models the former; this module
implements the latter faithfully:

* S and M are :class:`~repro.structures.fifo_queue.RingBufferFifo`
  instances whose slots hold the cache entries;
* G is the :class:`~repro.structures.ghost.GhostCache` bucket-hash
  fingerprint table of Section 4.2 (4-byte fingerprints, lazy
  reclamation of expired entries on bucket collision);
* ``delete`` tombstones the object's slot, which is reclaimed only
  when the tail pointer passes it — reproducing the deletion
  behaviour Section 4.2 analyses (deletions landing soon after
  insertion are reclaimed quickly because they sit in the small
  queue).

Both implementations make identical hit/miss decisions on unit-size
workloads without deletions (verified by a cross-validation property
test); they intentionally differ under deletions, where the ring
buffer wastes tombstoned slots.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

from repro.cache.base import CacheEntry, EvictionPolicy
from repro.sim.request import Request
from repro.structures.fifo_queue import RingBufferFifo
from repro.structures.ghost import GhostCache

_SMALL = 0
_MAIN = 1


class _RingEntry(CacheEntry):
    __slots__ = ("slot", "queue", "dead")

    def __init__(self, key: Hashable, size: int, insert_time: int) -> None:
        super().__init__(key, size, insert_time)
        self.slot = -1
        self.queue = _SMALL
        self.dead = False


class S3FifoRingCache(EvictionPolicy):
    """Ring-buffer S3-FIFO with fingerprint-table ghost entries.

    ``capacity`` is in objects (ring buffers are slot-addressed; the
    paper's production layout stores equal-size slabs per ring).  Use
    :class:`~repro.core.s3fifo.S3FifoCache` for byte-sized workloads.
    """

    name = "s3fifo-ring"

    def __init__(
        self,
        capacity: int,
        small_ratio: float = 0.1,
        ghost_entries: Optional[int] = None,
        freq_cap: int = 3,
        move_to_main_threshold: int = 2,
    ) -> None:
        super().__init__(capacity)
        if not 0.0 < small_ratio < 1.0:
            raise ValueError(f"small_ratio must be in (0, 1), got {small_ratio}")
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        self._s_cap = max(1, int(capacity * small_ratio))
        self._m_cap = max(1, capacity - self._s_cap)
        self._freq_cap = freq_cap
        self._threshold = move_to_main_threshold
        # Rings sized at their static capacities; S additionally gets
        # headroom because warmup lets S hold more than its target
        # (matching the linked-list implementation's behaviour).
        self._small = RingBufferFifo(capacity)
        self._main = RingBufferFifo(capacity)
        self._ghost = GhostCache(ghost_entries or self._m_cap)
        self._index: Dict[Hashable, _RingEntry] = {}
        self._s_live = 0
        self._m_live = 0

    # ------------------------------------------------------------------
    @property
    def small_capacity(self) -> int:
        return self._s_cap

    @property
    def main_capacity(self) -> int:
        return self._m_cap

    @property
    def ghost(self) -> GhostCache:
        return self._ghost

    # ------------------------------------------------------------------
    def _access(self, req: Request) -> bool:
        entry = self._index.get(req.key)
        if entry is not None and not entry.dead:
            entry.freq = min(entry.freq + 1, self._freq_cap)
            entry.last_access = self.clock
            return True
        self._insert(req)
        return False

    def _insert(self, req: Request) -> None:
        while self.used + 1 > self.capacity:
            self._evict()
        entry = _RingEntry(req.key, 1, self.clock)
        if req.key in self._ghost:
            self._ghost.remove(req.key)
            self._push_main(entry)
        else:
            self._push_small(entry)
        self._index[req.key] = entry
        self.used += 1

    def _push_small(self, entry: _RingEntry) -> None:
        if self._small.full:
            self._compact(self._small)
        entry.queue = _SMALL
        entry.slot = self._small.push(entry)
        self._s_live += 1

    def _push_main(self, entry: _RingEntry) -> None:
        if self._main.full:
            self._compact(self._main)
        entry.queue = _MAIN
        entry.slot = self._main.push(entry)
        self._m_live += 1

    # ------------------------------------------------------------------
    def _evict(self) -> None:
        if self._s_live >= self._s_cap or self._m_live == 0:
            self._evict_s()
        else:
            self._evict_m()

    def _pop_live(self, ring: RingBufferFifo) -> Optional[_RingEntry]:
        """Pop the oldest live, non-deleted entry (skipping stale ones)."""
        while True:
            entry = ring.pop()
            if entry is None:
                return None
            if entry.dead:
                continue
            return entry

    def _evict_s(self) -> None:
        while True:
            entry = self._pop_live(self._small)
            if entry is None:
                if self._m_live > 0:
                    self._evict_m()
                return
            self._s_live -= 1
            if entry.freq >= self._threshold:
                entry.freq = 0
                self._push_main(entry)
                self._notify_demote(entry, promoted=True)
                if self._m_live > self._m_cap:
                    self._evict_m()
            else:
                self._ghost.add(entry.key)
                del self._index[entry.key]
                self.used -= 1
                self._notify_demote(entry, promoted=False)
                self._notify_evict(entry)
                return

    def _evict_m(self) -> None:
        while True:
            entry = self._pop_live(self._main)
            if entry is None:
                return
            self._m_live -= 1
            if entry.freq > 0:
                entry.freq -= 1
                self._push_main(entry)
            else:
                del self._index[entry.key]
                self.used -= 1
                self._notify_evict(entry)
                return

    def _compact(self, ring: RingBufferFifo) -> None:
        """Reclaim tombstoned slots by cycling live entries.

        Physical rings occasionally fill with tombstones; a compaction
        pass (pop + re-push of every live entry in order) reclaims
        them.  Real ring-buffer caches size slots so this is rare; it
        preserves FIFO order exactly.
        """
        live = []
        while True:
            entry = ring.pop()
            if entry is None:
                break
            live.append(entry)
        for entry in live:
            entry.slot = ring.push(entry)

    # ------------------------------------------------------------------
    def delete(self, key: Hashable) -> bool:
        """Delete ``key`` (Section 4.2 deletion semantics).

        The object stops being visible immediately, but its slot is a
        tombstone until the ring's tail pointer passes it — so, as the
        paper notes, deleted objects in the *small* queue free space
        much sooner than in the main queue.
        """
        entry = self._index.get(key)
        if entry is None or entry.dead:
            return False
        entry.dead = True
        ring = self._small if entry.queue == _SMALL else self._main
        ring.delete(entry.slot)
        if entry.queue == _SMALL:
            self._s_live -= 1
        else:
            self._m_live -= 1
        del self._index[key]
        self.used -= 1
        return True

    # ------------------------------------------------------------------
    def __contains__(self, key: Hashable) -> bool:
        entry = self._index.get(key)
        return entry is not None and not entry.dead

    def __len__(self) -> int:
        return len(self._index)
