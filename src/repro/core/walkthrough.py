"""Fig. 5 as executable documentation: step-by-step S3-FIFO traces.

The paper's Fig. 5 illustrates how objects flow between S, M, and G.
:func:`walkthrough` replays a request sequence against a real
:class:`~repro.core.s3fifo.S3FifoCache` and records the queue contents
after every request, so the algorithm's behaviour can be printed,
asserted in tests, and studied interactively::

    >>> from repro.core.walkthrough import walkthrough, format_walkthrough
    >>> steps = walkthrough(["a", "b", "a", "c"], capacity=4)
    >>> print(format_walkthrough(steps))  # doctest: +SKIP
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence

from repro.core.s3fifo import S3FifoCache


class WalkthroughStep:
    """State snapshot after one request."""

    __slots__ = ("index", "key", "hit", "small", "main", "ghost", "freqs")

    def __init__(
        self,
        index: int,
        key: Hashable,
        hit: bool,
        small: List[Hashable],
        main: List[Hashable],
        ghost: List[Hashable],
        freqs: dict,
    ) -> None:
        self.index = index
        self.key = key
        self.hit = hit
        self.small = small
        self.main = main
        self.ghost = ghost
        self.freqs = freqs

    def __repr__(self) -> str:
        return (
            f"WalkthroughStep({self.index}: {self.key!r} "
            f"{'hit' if self.hit else 'miss'})"
        )


def _ghost_keys(cache: S3FifoCache) -> List[Hashable]:
    # GhostFifo internals: present maps live keys.
    return list(cache.ghost._present)


def walkthrough(
    trace: Sequence[Hashable],
    capacity: int,
    cache: Optional[S3FifoCache] = None,
    **kwargs,
) -> List[WalkthroughStep]:
    """Replay ``trace`` and capture S/M/G after every request.

    Queue listings run tail (next eviction candidate) to head.  Pass an
    existing ``cache`` to continue a walkthrough mid-stream.
    """
    if cache is None:
        cache = S3FifoCache(capacity, **kwargs)
    steps: List[WalkthroughStep] = []
    for i, key in enumerate(trace, start=1):
        hit = cache.access(key)
        freqs = {
            k: entry.freq
            for k, entry in list(cache._small.items())
            + list(cache._main.items())
        }
        steps.append(
            WalkthroughStep(
                index=i,
                key=key,
                hit=hit,
                small=list(cache._small),
                main=list(cache._main),
                ghost=_ghost_keys(cache),
                freqs=freqs,
            )
        )
    return steps


def format_walkthrough(steps: Sequence[WalkthroughStep]) -> str:
    """Render the steps as an aligned text table (Fig. 5 in ASCII)."""
    lines = [
        f"{'#':>3}  {'req':>6}  {'':4}  {'S (tail->head)':28}  "
        f"{'M (tail->head)':34}  ghost"
    ]
    for step in steps:
        def fmt(keys):
            return ",".join(
                f"{k}({step.freqs[k]})" if k in step.freqs else str(k)
                for k in keys
            )

        lines.append(
            f"{step.index:>3}  {str(step.key):>6}  "
            f"{'hit ' if step.hit else 'miss'}  "
            f"{fmt(step.small):28}  {fmt(step.main):34}  "
            f"{','.join(map(str, step.ghost))}"
        )
    return "\n".join(lines)


#: The request sequence used by the README / docs walkthrough: a hot
#: object (x) amid one-hit wonders, showing quick demotion, the ghost
#: rescue, and main-queue reinsertion in a dozen steps.
DEMO_TRACE: List[str] = [
    "x", "a", "x", "b", "c", "d", "e",   # x hot, a..e one-hit wonders
    "x", "f", "g", "x", "h",
]


def demo(capacity: int = 6) -> str:
    """The documentation example, rendered."""
    return format_walkthrough(walkthrough(DEMO_TRACE, capacity))


if __name__ == "__main__":
    print(demo())
