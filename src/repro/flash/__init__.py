"""DRAM + flash hybrid caching (Section 5.4).

A two-layer cache where DRAM admission decides which objects reach
flash; the flash layer always uses FIFO eviction (the production norm
for write locality).  The experiment of Fig. 9 compares admission
policies on both *miss ratio* and *flash write bytes*.
"""

from repro.flash.admission import (
    AdmissionPolicy,
    NoAdmission,
    ProbabilisticAdmission,
    S3FifoAdmission,
    FlashieldAdmission,
)
from repro.flash.flashcache import FlashCacheResult, HybridFlashCache
from repro.flash.flashield import LogisticModel

__all__ = [
    "AdmissionPolicy",
    "NoAdmission",
    "ProbabilisticAdmission",
    "S3FifoAdmission",
    "FlashieldAdmission",
    "FlashCacheResult",
    "HybridFlashCache",
    "LogisticModel",
]
