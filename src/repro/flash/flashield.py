"""A small online logistic-regression model (numpy, SGD).

Stand-in for Flashield's SVM (the paper's ML admission baseline):
scikit-learn is unavailable offline, and logistic regression trained
on the same features exhibits the same qualitative behaviour — it
needs enough DRAM-resident history per object to separate flash-worthy
objects from the rest (see DESIGN.md, substitution 3).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


class LogisticModel:
    """Binary logistic regression trained by mini-batch SGD."""

    def __init__(
        self,
        num_features: int,
        learning_rate: float = 0.1,
        l2: float = 1e-4,
        seed: int = 0,
    ) -> None:
        if num_features <= 0:
            raise ValueError(f"num_features must be positive, got {num_features}")
        rng = np.random.default_rng(seed)
        self._weights = rng.normal(0, 0.01, size=num_features)
        self._bias = 0.0
        self._lr = learning_rate
        self._l2 = l2
        self.samples_seen = 0

    @property
    def weights(self) -> np.ndarray:
        return self._weights.copy()

    @staticmethod
    def _sigmoid(z: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(z, -30, 30)))

    def predict_proba(self, features: Sequence[float]) -> float:
        """P(label=1) for one feature vector."""
        x = np.asarray(features, dtype=np.float64)
        return float(self._sigmoid(x @ self._weights + self._bias))

    def partial_fit(
        self,
        features: Sequence[Sequence[float]],
        labels: Sequence[int],
    ) -> None:
        """One SGD step over a mini-batch."""
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(labels, dtype=np.float64)
        if x.shape[0] == 0:
            return
        if x.ndim != 2 or x.shape[0] != y.shape[0]:
            raise ValueError(
                f"shape mismatch: features {x.shape}, labels {y.shape}"
            )
        pred = self._sigmoid(x @ self._weights + self._bias)
        error = pred - y
        grad_w = x.T @ error / x.shape[0] + self._l2 * self._weights
        grad_b = float(error.mean())
        self._weights -= self._lr * grad_w
        self._bias -= self._lr * grad_b
        self.samples_seen += x.shape[0]
