"""The two-layer DRAM + flash cache (Section 5.4).

Request flow: DRAM hit → flash hit → miss.  Misses insert into DRAM;
objects evicted from DRAM pass through the admission policy, and only
admitted objects are written to flash (counting toward the write-bytes
metric).  The flash layer evicts in FIFO order, the production norm
(Apache TrafficServer, Extstore, Cachelib, Colossus — Section 2.1).

With :class:`~repro.flash.admission.S3FifoAdmission`, the DRAM layer
is S3-FIFO's small queue: a FIFO whose cold evictions go to a ghost
queue, and a ghost-hit miss writes the object straight to flash — the
DRAM+flash split of S3-FIFO the paper proposes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Iterable, Optional, Tuple, Union

from repro.cache.base import CacheEntry, EvictionPolicy
from repro.cache.fifo import FifoCache
from repro.cache.lru import LruCache
from repro.flash.admission import AdmissionPolicy, S3FifoAdmission
from repro.resilience.faults import FLASH_READ, FLASH_WRITE, FaultPlan
from repro.resilience.retry import RetryPolicy
from repro.sim.request import Request


class FlashCacheResult:
    """Metrics of one hybrid-cache run (one Fig. 9 bar pair).

    The ``degraded_requests`` / ``dropped_writes`` /
    ``failed_flash_reads`` / ``flash_write_retries`` /
    ``bypass_entries`` counters are only non-zero when a
    :class:`~repro.resilience.faults.FaultPlan` is injected: a degraded
    request is one served without the flash layer (bypass mode), a
    dropped write is an admitted object lost because flash rejected it
    even after retries.
    """

    __slots__ = (
        "requests",
        "misses",
        "bytes_requested",
        "bytes_missed",
        "flash_bytes_written",
        "flash_objects_written",
        "dram_hits",
        "flash_hits",
        "degraded_requests",
        "dropped_writes",
        "failed_flash_reads",
        "flash_write_retries",
        "bypass_entries",
    )

    def __init__(self) -> None:
        self.requests = 0
        self.misses = 0
        self.bytes_requested = 0
        self.bytes_missed = 0
        self.flash_bytes_written = 0
        self.flash_objects_written = 0
        self.dram_hits = 0
        self.flash_hits = 0
        self.degraded_requests = 0
        self.dropped_writes = 0
        self.failed_flash_reads = 0
        self.flash_write_retries = 0
        self.bypass_entries = 0

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.requests if self.requests else 0.0

    @property
    def byte_miss_ratio(self) -> float:
        if self.bytes_requested == 0:
            return 0.0
        return self.bytes_missed / self.bytes_requested

    def normalized_writes(self, unique_bytes: int) -> float:
        """Flash write bytes normalized by the trace's unique bytes
        (the paper's Fig. 9 normalization)."""
        if unique_bytes <= 0:
            raise ValueError(f"unique_bytes must be positive, got {unique_bytes}")
        return self.flash_bytes_written / unique_bytes

    def __repr__(self) -> str:
        return (
            f"FlashCacheResult(miss_ratio={self.miss_ratio:.4f}, "
            f"flash_writes={self.flash_bytes_written})"
        )


class HybridFlashCache:
    """DRAM front (LRU or FIFO) + flash FIFO with pluggable admission."""

    def __init__(
        self,
        dram_capacity: int,
        flash_capacity: int,
        admission: AdmissionPolicy,
        dram_policy: str = "lru",
        flash_policy: str = "fifo",
        faults: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if dram_capacity <= 0:
            raise ValueError(f"dram_capacity must be positive, got {dram_capacity}")
        if flash_capacity <= 0:
            raise ValueError(
                f"flash_capacity must be positive, got {flash_capacity}"
            )
        if dram_policy == "lru":
            self._dram: EvictionPolicy = LruCache(dram_capacity)
        elif dram_policy == "fifo":
            self._dram = FifoCache(dram_capacity)
        else:
            raise ValueError(f"dram_policy must be 'lru' or 'fifo', got {dram_policy!r}")
        if flash_policy not in {"fifo", "fifo-reinsertion"}:
            raise ValueError(
                "flash_policy must be 'fifo' or 'fifo-reinsertion', "
                f"got {flash_policy!r}"
            )
        self._dram.add_eviction_listener(self._on_dram_evict)
        # key -> [size, ref_bit]; ref bit only used by fifo-reinsertion.
        self._flash: "OrderedDict[Hashable, list]" = OrderedDict()
        self._flash_capacity = flash_capacity
        self._flash_policy = flash_policy
        self._flash_used = 0
        self._admission = admission
        self._clock = 0
        self._faults = faults
        self._retry = retry
        self._bypass = False
        self.result = FlashCacheResult()

    # ------------------------------------------------------------------
    @property
    def dram(self) -> EvictionPolicy:
        return self._dram

    @property
    def flash_used(self) -> int:
        return self._flash_used

    @property
    def bypassed(self) -> bool:
        """Whether the flash layer is currently in DRAM-only bypass."""
        return self._bypass

    def in_flash(self, key: Hashable) -> bool:
        return key in self._flash

    # ------------------------------------------------------------------
    # Fault handling
    # ------------------------------------------------------------------
    def _refresh_bypass(self) -> None:
        """Recovery: leave bypass once the write-fault window closes."""
        if self._bypass and not self._faults.active(FLASH_WRITE, self._clock):
            self._bypass = False

    def _enter_bypass(self) -> None:
        if not self._bypass:
            self._bypass = True
            self.result.bypass_entries += 1

    def _attempt_flash_write(self) -> bool:
        """Try the write now, then per the retry schedule.

        Backoff delays advance a *logical* timeline from the current
        clock, so a retry scheduled past the end of the fault window
        succeeds — all of it deterministic for a fixed plan and retry
        seed.  Injected latency spikes count against the retry policy's
        per-attempt timeout.
        """
        attempts = self._retry.max_attempts if self._retry else 1
        timeout = self._retry.attempt_timeout if self._retry else None
        t = float(self._clock)
        for attempt in range(attempts):
            if attempt > 0:
                self.result.flash_write_retries += 1
                t += self._retry.backoff(attempt - 1)
            clock = int(t)
            timed_out = (
                timeout is not None and self._faults.latency(clock) > timeout
            )
            if not timed_out and not self._faults.active(FLASH_WRITE, clock):
                return True
        return False

    # ------------------------------------------------------------------
    def request(self, key: Hashable, size: int = 1) -> bool:
        self._clock += 1
        self.result.requests += 1
        self.result.bytes_requested += size
        if self._faults is not None:
            self._refresh_bypass()
        if key in self._dram:
            self._dram.request(Request(key, size=size))
            self.result.dram_hits += 1
            return True
        if self._bypass:
            # DRAM-only serving: the flash layer is down, so everything
            # past DRAM is a degraded request.
            self.result.degraded_requests += 1
        else:
            slot = self._flash.get(key)
            if slot is not None:
                if self._faults is not None and self._faults.active(
                    FLASH_READ, self._clock
                ):
                    # Transient read failure: served from the backend
                    # instead; falls through to the miss path.
                    self.result.failed_flash_reads += 1
                    self.result.degraded_requests += 1
                else:
                    slot[1] = True  # reference bit (fifo-reinsertion only)
                    self._admission.on_flash_hit(key, self._clock)
                    self.result.flash_hits += 1
                    return True
        # Miss.
        self.result.misses += 1
        self.result.bytes_missed += size
        if isinstance(self._admission, S3FifoAdmission) and (
            self._admission.was_ghosted(key)
        ):
            # Second miss within the ghost window: straight to flash,
            # the S3-FIFO DRAM->flash promotion path.
            self._write_flash(key, size)
            return False
        if size <= self._dram.capacity:
            self._dram.request(Request(key, size=size))
        else:
            # Too large for DRAM: apply admission to a synthetic entry.
            entry = CacheEntry(key, size, self._clock)
            if self._admission.should_admit(entry, self._clock):
                self._write_flash(key, size)
        return False

    # ------------------------------------------------------------------
    def _on_dram_evict(self, event) -> None:
        entry = CacheEntry(event.key, event.size, event.insert_time)
        entry.freq = event.freq
        if self._admission.should_admit(entry, self._clock):
            self._write_flash(event.key, event.size)

    def _write_flash(self, key: Hashable, size: int) -> None:
        if key in self._flash:
            return  # already resident; no rewrite
        if self._faults is not None:
            if self._bypass:
                self.result.dropped_writes += 1
                return
            if not self._attempt_flash_write():
                # Write failed even after retries: persistent outage.
                self.result.dropped_writes += 1
                self._enter_bypass()
                return
        while self._flash_used + size > self._flash_capacity and self._flash:
            self._evict_flash()
        if size > self._flash_capacity:
            return  # cannot fit at all
        self._flash[key] = [size, False]
        self._flash_used += size
        self.result.flash_bytes_written += size
        self.result.flash_objects_written += 1

    def _evict_flash(self) -> None:
        while True:
            old_key, slot = self._flash.popitem(last=False)
            old_size, ref = slot
            if self._flash_policy == "fifo-reinsertion" and ref:
                # Second chance: rewrite at the log head.  This costs a
                # flash write (the production trade-off of reinsertion).
                self._flash[old_key] = [old_size, False]
                self.result.flash_bytes_written += old_size
                continue
            self._flash_used -= old_size
            self._admission.on_flash_evict(old_key, self._clock)
            return

    # ------------------------------------------------------------------
    def run(
        self,
        trace: Iterable[Union[Hashable, Tuple[Hashable, int]]],
    ) -> FlashCacheResult:
        """Replay a trace (keys or ``(key, size)`` tuples)."""
        for item in trace:
            if isinstance(item, tuple):
                self.request(item[0], item[1])
            else:
                self.request(item)
        return self.result
