"""Flash admission policies (Section 5.4 / Fig. 9).

All four schemes the paper compares:

* :class:`NoAdmission` — "FIFO": every DRAM-evicted object is written
  to flash.
* :class:`ProbabilisticAdmission` — admit DRAM-evicted objects with a
  fixed probability (20% in the paper).
* :class:`S3FifoAdmission` — the paper's proposal: the DRAM layer is
  S3-FIFO's small queue (plus ghost); only objects requested again
  while in DRAM — or whose key hits the ghost — are written to flash.
* :class:`FlashieldAdmission` — ML admission: predict from
  DRAM-observed features whether the object will be read on flash.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, Hashable, List, Tuple

from repro.cache.base import CacheEntry
from repro.flash.flashield import LogisticModel
from repro.structures.ghost import GhostFifo


class AdmissionPolicy(ABC):
    """Decides which DRAM-evicted objects get written to flash."""

    name = "abstract"

    @abstractmethod
    def should_admit(self, entry: CacheEntry, clock: int) -> bool:
        """Whether a DRAM-evicted object is written to flash."""

    def on_dram_hit(self, entry: CacheEntry, clock: int) -> None:
        """Observe a DRAM hit (feature collection)."""

    def on_flash_hit(self, key: Hashable, clock: int) -> None:
        """Observe a flash hit (label collection)."""

    def on_flash_evict(self, key: Hashable, clock: int) -> None:
        """Observe a flash eviction (label collection)."""


class NoAdmission(AdmissionPolicy):
    """Write everything to flash — the paper's "FIFO" baseline."""

    name = "no-admission"

    def should_admit(self, entry: CacheEntry, clock: int) -> bool:
        return True


class ProbabilisticAdmission(AdmissionPolicy):
    """Admit with fixed probability (20% in the paper's Fig. 9)."""

    name = "probabilistic"

    def __init__(self, probability: float = 0.2, seed: int = 0) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {probability}"
            )
        self._p = probability
        self._rng = random.Random(seed)

    def should_admit(self, entry: CacheEntry, clock: int) -> bool:
        return self._rng.random() < self._p


class S3FifoAdmission(AdmissionPolicy):
    """The small-FIFO-queue filter.

    Objects requested at least ``min_freq`` times while in DRAM are
    admitted; objects evicted cold go to a ghost queue, and a re-miss
    on a ghosted key admits that object on (re-)insertion — Section
    5.4: "Only objects requested in S and G are written to the flash."
    """

    name = "s3fifo-filter"

    def __init__(self, ghost_entries: int, min_freq: int = 1) -> None:
        if min_freq < 1:
            raise ValueError(f"min_freq must be >= 1, got {min_freq}")
        self._min_freq = min_freq
        self.ghost = GhostFifo(max(1, ghost_entries))

    def should_admit(self, entry: CacheEntry, clock: int) -> bool:
        if entry.freq >= self._min_freq:
            return True
        self.ghost.add(entry.key)
        return False

    def was_ghosted(self, key: Hashable) -> bool:
        """Check-and-consume a ghost entry for ``key``."""
        return self.ghost.remove(key)


class FlashieldAdmission(AdmissionPolicy):
    """Flashield-style ML admission (logistic stand-in for the SVM).

    Features are collected while the object sits in DRAM (its read
    count and normalized DRAM age); the label for a flash-resident
    object is whether it received any read before its flash eviction.
    The model trains online on completed flash lifetimes.  When DRAM
    is tiny, read counts are almost uniformly zero and the model
    cannot separate classes — the failure mode Fig. 9 demonstrates.
    """

    name = "flashield"

    def __init__(
        self,
        threshold: float = 0.5,
        batch_size: int = 64,
        seed: int = 0,
        warmup_admits: int = 200,
    ) -> None:
        if not 0.0 < threshold < 1.0:
            raise ValueError(f"threshold must be in (0, 1), got {threshold}")
        self._model = LogisticModel(num_features=3, seed=seed)
        self._threshold = threshold
        self._batch_size = batch_size
        self._warmup_admits = warmup_admits
        self._admitted = 0
        # key -> features captured at admission time.
        self._inflight: Dict[Hashable, Tuple[float, float, float]] = {}
        self._flash_read: Dict[Hashable, bool] = {}
        self._batch_x: List[Tuple[float, float, float]] = []
        self._batch_y: List[int] = []

    @staticmethod
    def _features(entry: CacheEntry, clock: int) -> Tuple[float, float, float]:
        dram_age = max(1, clock - entry.insert_time)
        return (
            float(entry.freq),
            float(entry.freq) / dram_age,
            1.0,  # bias-like constant feature
        )

    def should_admit(self, entry: CacheEntry, clock: int) -> bool:
        features = self._features(entry, clock)
        if self._admitted < self._warmup_admits:
            admit = True  # bootstrap: no labels yet
        else:
            admit = self._model.predict_proba(features) >= self._threshold
        if admit:
            self._admitted += 1
            self._inflight[entry.key] = features
            self._flash_read[entry.key] = False
        return admit

    def on_flash_hit(self, key: Hashable, clock: int) -> None:
        if key in self._flash_read:
            self._flash_read[key] = True

    def on_flash_evict(self, key: Hashable, clock: int) -> None:
        features = self._inflight.pop(key, None)
        if features is None:
            return
        label = 1 if self._flash_read.pop(key, False) else 0
        self._batch_x.append(features)
        self._batch_y.append(label)
        if len(self._batch_x) >= self._batch_size:
            self._model.partial_fit(self._batch_x, self._batch_y)
            self._batch_x.clear()
            self._batch_y.clear()
