"""Fig. 2: one-hit-wonder ratio vs sequence length.

Left pair: synthetic Zipf traces of varying skew alpha — the ratio
falls as the sequence covers more of the object population, and more
skewed workloads sit lower.  Right pair: production traces (MSR hm_0
and Twitter cluster52 in the paper; our dataset stand-ins here) match
the left region of the synthetic curves.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.experiments.common import format_rows
from repro.traces.analysis import one_hit_wonder_curve
from repro.traces.datasets import generate_dataset_trace
from repro.traces.synthetic import zipf_trace

DEFAULT_ALPHAS = (0.6, 0.8, 1.0, 1.2)
DEFAULT_FRACTIONS = (0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0)
PRODUCTION_STANDINS = ("msr", "twitter")


def run(
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    num_objects: int = 5000,
    num_requests: int = 100_000,
    num_samples: int = 8,
    seed: int = 0,
) -> List[Dict[str, Any]]:
    """Rows of (trace, fraction, one-hit-wonder ratio)."""
    rows: List[Dict[str, Any]] = []
    for alpha in alphas:
        trace = zipf_trace(num_objects, num_requests, alpha=alpha, seed=seed)
        for frac, ratio in one_hit_wonder_curve(
            trace, fractions, num_samples=num_samples, seed=seed
        ):
            rows.append(
                {"trace": f"zipf-{alpha}", "fraction": frac, "ohw_ratio": ratio}
            )
    for dataset in PRODUCTION_STANDINS:
        trace = generate_dataset_trace(dataset, 0, seed=seed)
        for frac, ratio in one_hit_wonder_curve(
            trace, fractions, num_samples=num_samples, seed=seed
        ):
            rows.append(
                {"trace": dataset, "fraction": frac, "ohw_ratio": ratio}
            )
    return rows


def format_table(rows: List[Dict[str, Any]] = None) -> str:
    if rows is None:
        rows = run()
    return format_rows(
        rows,
        columns=["trace", "fraction", "ohw_ratio"],
        title="Fig. 2 — one-hit-wonder ratio vs sequence length",
        float_fmt="{:.3f}",
    )


def monotonically_decreasing(rows: List[Dict[str, Any]], trace: str, tolerance: float = 0.05) -> bool:
    """Sanity check used by tests/benchmarks: the curve for ``trace``
    decreases (within noise) as the fraction grows."""
    points = sorted(
        (r["fraction"], r["ohw_ratio"]) for r in rows if r["trace"] == trace
    )
    return all(
        points[i + 1][1] <= points[i][1] + tolerance
        for i in range(len(points) - 1)
    )


if __name__ == "__main__":
    print(format_table())
