"""Table 1: the dataset inventory.

For every dataset stand-in: number of traces, total requests and
objects, and the one-hit-wonder ratios of the full trace and of
10% / 1% object subsequences — mirroring the paper's last three
columns.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.experiments.common import format_rows
from repro.traces.analysis import (
    one_hit_wonder_ratio,
    subsequence_one_hit_wonder_ratio,
    unique_objects,
)
from repro.traces.datasets import DATASETS, dataset_names, generate_dataset_trace


def run(
    scale: float = 1.0,
    num_samples: int = 5,
    seed: int = 0,
    traces_per_dataset: int = None,
) -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    for dataset in dataset_names():
        spec = DATASETS[dataset]
        n = traces_per_dataset or spec.n_traces
        requests = 0
        objects = 0
        ohw_full: List[float] = []
        ohw_10: List[float] = []
        ohw_1: List[float] = []
        for idx in range(n):
            trace = generate_dataset_trace(dataset, idx, scale=scale, seed=seed)
            requests += len(trace)
            objects += unique_objects(trace)
            ohw_full.append(one_hit_wonder_ratio(trace))
            ohw_10.append(
                subsequence_one_hit_wonder_ratio(
                    trace, 0.1, num_samples=num_samples, seed=seed
                )
            )
            ohw_1.append(
                subsequence_one_hit_wonder_ratio(
                    trace, 0.01, num_samples=num_samples, seed=seed
                )
            )
        rows.append(
            {
                "dataset": dataset,
                "type": spec.cache_type,
                "traces": n,
                "requests": requests,
                "objects": objects,
                "ohw_full": sum(ohw_full) / len(ohw_full),
                "ohw_10pct": sum(ohw_10) / len(ohw_10),
                "ohw_1pct": sum(ohw_1) / len(ohw_1),
                "paper_ohw_full": spec.target_full_ohw,
            }
        )
    return rows


def format_table(rows: List[Dict[str, Any]] = None) -> str:
    if rows is None:
        rows = run()
    return format_rows(
        rows,
        columns=[
            "dataset",
            "type",
            "traces",
            "requests",
            "objects",
            "ohw_full",
            "ohw_10pct",
            "ohw_1pct",
            "paper_ohw_full",
        ],
        title="Table 1 — dataset stand-ins",
        float_fmt="{:.2f}",
    )


if __name__ == "__main__":
    print(format_table())
