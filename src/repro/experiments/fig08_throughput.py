"""Fig. 8: throughput scaling with CPU cores.

Reproduced with the concurrency cost model (DESIGN.md substitution 2)
at the paper's two operating points: a large cache (LRU miss ratio
0.02) and a small cache (0.21) on a Zipf(1.0) workload.  The
reproduced claims: strict LRU cannot scale at all, optimized LRU stops
scaling around two cores, TinyLFU/2Q sit below LRU, Segcache and
S3-FIFO scale near-linearly, and S3-FIFO is >6x optimized LRU at 16
threads.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.concurrency.costs import profile_for
from repro.concurrency.model import throughput_curve
from repro.experiments.common import format_rows

DEFAULT_POLICIES = (
    "lru-strict",
    "lru-optimized",
    "tinylfu",
    "twoq",
    "segcache",
    "s3fifo",
)
DEFAULT_THREADS = (1, 2, 4, 8, 16)
#: (label, miss ratio) per Fig. 8's two subplots.
OPERATING_POINTS = (("large", 0.02), ("small", 0.21))


def run(
    policies: Sequence[str] = DEFAULT_POLICIES,
    threads: Sequence[int] = DEFAULT_THREADS,
    use_simulation: bool = False,
    requests: int = 100_000,
    seed: int = 0,
) -> List[Dict[str, Any]]:
    """One row per (cache, policy) with MQPS per thread count."""
    rows: List[Dict[str, Any]] = []
    for label, miss_ratio in OPERATING_POINTS:
        for policy in policies:
            curve = throughput_curve(
                profile_for(policy),
                threads,
                miss_ratio,
                use_simulation=use_simulation,
                requests=requests,
                seed=seed,
            )
            row: Dict[str, Any] = {"cache": label, "policy": policy}
            for point in curve:
                row[f"t{point.threads}"] = point.mqps
            rows.append(row)
    return rows


def speedup_at(
    rows: List[Dict[str, Any]],
    cache: str,
    policy: str,
    baseline: str,
    threads: int,
) -> float:
    """Throughput ratio policy/baseline at a thread count."""
    col = f"t{threads}"
    by_policy = {r["policy"]: r for r in rows if r["cache"] == cache}
    return by_policy[policy][col] / by_policy[baseline][col]


def format_table(rows: List[Dict[str, Any]] = None) -> str:
    if rows is None:
        rows = run()
    thread_cols = [key for key in rows[0] if key.startswith("t")]
    return format_rows(
        rows,
        columns=["cache", "policy"] + thread_cols,
        title="Fig. 8 — modeled throughput (MQPS) vs threads",
        float_fmt="{:.1f}",
    )


if __name__ == "__main__":
    print(format_table())
