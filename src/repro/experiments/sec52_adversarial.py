"""Section 5.2's adversarial workload for S3-FIFO.

Every object is requested exactly twice, the second request roughly
``gap`` requests after the first.  When the gap exceeds the small
queue's reach, the second request misses in S3-FIFO (and every other
space-partitioning policy: TinyLFU, LIRS, 2Q) but can hit under plain
LRU/FIFO at the same total capacity.  The benchmark shows both
regimes: gap below the cache size (everyone fine) and gap between the
small queue size and the cache size (partitioned policies lose).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.cache.registry import create_policy
from repro.experiments.common import format_rows
from repro.sim.simulator import simulate
from repro.traces.synthetic import two_access_trace

DEFAULT_POLICIES = ("lru", "fifo", "s3fifo", "tinylfu", "twoq", "lirs")


def run(
    num_objects: int = 20_000,
    cache_size: int = 1_000,
    gaps: Sequence[int] = (200, 700, 5_000),
    policies: Sequence[str] = DEFAULT_POLICIES,
    seed: int = 0,
) -> List[Dict[str, Any]]:
    """One row per (gap, policy): the miss ratio on the two-access trace.

    The minimum achievable miss ratio is 0.5 (every first access
    misses); 1.0 means the second accesses all missed as well.
    """
    rows: List[Dict[str, Any]] = []
    for gap in gaps:
        trace = two_access_trace(num_objects, gap, seed=seed)
        for policy_name in policies:
            policy = create_policy(policy_name, capacity=cache_size)
            result = simulate(policy, trace)
            rows.append(
                {
                    "gap": gap,
                    "regime": "inside-S"
                    if gap <= cache_size // 10
                    else ("inside-cache" if gap <= cache_size else "outside"),
                    "policy": policy_name,
                    "miss_ratio": result.miss_ratio,
                }
            )
    return rows


def format_table(rows: List[Dict[str, Any]] = None) -> str:
    if rows is None:
        rows = run()
    return format_rows(
        rows,
        columns=["gap", "regime", "policy", "miss_ratio"],
        title="Sec. 5.2 — two-access adversarial workload",
        float_fmt="{:.3f}",
    )


if __name__ == "__main__":
    print(format_table())
