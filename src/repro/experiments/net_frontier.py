"""The throughput-vs-hit-ratio frontier through the socket path.

:mod:`repro.experiments.frontier` established the in-process picture:
transport moves the throughput axis, capacity moves the hit-ratio
axis.  This experiment re-runs the same sweep through the network
front-end (:mod:`repro.netsrv`), which adds the last cost layer a
production deployment pays — protocol parsing, socket syscalls, and
the event loop — and the lever that pays it back: **pipelining**.

Four series share one seeded Zipf trace:

* ``inproc``          — the in-process baseline (no server at all).
* ``resp p1``         — RESP over a socket, one command per
  round-trip: the worst case, every GET pays a full socket round-trip.
* ``resp p16``        — RESP with 16 pipelined commands per write;
  consecutive GETs are also fused into one ``get_many`` server-side.
* ``memcached p16``   — the memcached text protocol at the same
  depth, via multi-key ``get`` (its native batching form).

The frontier logic carries over exactly: the wire protocol cannot
move a point's hit ratio (same trace, same policy, same capacity —
the eviction decisions are identical bytes-for-bytes), so protocol
and pipelining effects show purely as vertical shifts.  The gap
between ``inproc`` and ``resp p1`` is the full network tax; the gap
between ``resp p1`` and ``resp p16`` is how much of it pipelining
refunds.

Same honesty note as the other live experiments: rows record
:func:`~repro.experiments.fig08_native.usable_cpus`, because on a
1-CPU host the server's event loop and the client threads share one
core and the socket series measure protocol overhead with no
concurrency payback.  ``make net-frontier`` writes
``benchmarks/results/net_frontier.txt``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.common import format_rows
from repro.experiments.fig08_native import usable_cpus
from repro.service.loadgen import run_scenario

#: (series label, frontend, pipeline depth) — ``inproc`` ignores depth.
DEFAULT_SERIES: Tuple[Tuple[str, str, int], ...] = (
    ("inproc", "inproc", 0),
    ("resp p1", "resp", 1),
    ("resp p16", "resp", 16),
    ("memcached p16", "memcached", 16),
)

#: Cache sizes as fractions of the object population; spans "mostly
#: missing" to "mostly hitting" so the frontier actually bends.
DEFAULT_RATIOS: Tuple[float, ...] = (0.02, 0.05, 0.1, 0.2, 0.4)

WORKLOAD = dict(
    num_objects=8_000,
    num_requests=40_000,
    alpha=1.0,
)


def run(
    cache_ratios: Sequence[float] = DEFAULT_RATIOS,
    connections: int = 2,
    backend: str = "thread",
    workers: int = 2,
    transport: str = "pipe",
    scale: float = 1.0,
    seed: int = 42,
    series: Sequence[Tuple[str, str, int]] = DEFAULT_SERIES,
    **workload: Any,
) -> List[Dict[str, Any]]:
    """One row per (series, cache size) on one shared trace.

    Every row replays the *identical* request sequence, so within a
    series the hit-ratio axis moves only with capacity, and at fixed
    capacity all socket series land on (near) the same hit ratio —
    the protocol can only move the throughput axis.  (Tiny residual
    differences come from request interleaving across connections,
    the same effect thread slicing has in-process.)  ``backend`` /
    ``workers`` / ``transport`` choose what the server fronts;
    ``scale`` shrinks the request count (benchmark use).
    """
    from repro.traces.synthetic import zipf_trace

    workload = {**WORKLOAD, **workload}
    num_requests = max(2_000, int(workload["num_requests"] * scale))
    trace = zipf_trace(
        num_objects=workload["num_objects"],
        num_requests=num_requests,
        alpha=workload["alpha"],
        seed=seed,
    )
    cpus = usable_cpus()
    num_shards = workers if backend in ("mp", "cluster") else 1
    rows: List[Dict[str, Any]] = []
    for label, frontend, depth in series:
        for ratio in cache_ratios:
            capacity = max(num_shards, int(workload["num_objects"] * ratio))
            common = dict(
                capacity=capacity,
                policy="s3fifo",
                num_shards=num_shards,
                backend=backend,
                transport=transport,
            )
            if frontend == "inproc":
                scenario = run_scenario(trace, num_threads=1, **common)
            else:
                scenario = run_scenario(
                    trace,
                    frontend=frontend,
                    connections=connections,
                    pipeline_depth=depth,
                    **common,
                )
            rows.append({
                "series": label,
                "frontend": frontend,
                "pipeline_depth": depth,
                "cache_ratio": ratio,
                "capacity": capacity,
                "hit_ratio": scenario["hit_ratio"],
                "kops": round(scenario["ops_per_sec"] / 1e3, 1),
                "p99_us": scenario["latency_us"]["p99"],
                "cpus": cpus,
            })
    return rows


def format_table(rows: Optional[List[Dict[str, Any]]] = None) -> str:
    if rows is None:
        rows = run()
    return format_rows(
        rows,
        columns=["series", "cache_ratio", "capacity", "hit_ratio",
                 "kops", "p99_us"],
        title=(
            f"Throughput-vs-hit-ratio frontier through the socket path "
            f"(s3fifo, shared Zipf trace) on {rows[0]['cpus']} usable "
            f"CPU(s)"
        ),
        float_fmt="{:.3f}",
    )


def format_chart(
    rows: Optional[List[Dict[str, Any]]] = None,
    width: int = 64,
    height: int = 16,
) -> str:
    """ASCII frontier: x = achieved hit ratio, y = measured kops.

    One marker letter per series; ``*`` marks collisions.  Reading the
    chart: the drop from I to R1 is the per-round-trip network tax,
    and the climb from R1 to RP is pipelining refunding it — at every
    hit ratio, because the x-positions are pinned by the shared trace.
    """
    if rows is None:
        rows = run()
    labels = list(dict.fromkeys(r["series"] for r in rows))
    marks = {label: "IRPMXZ"[i % 6] for i, label in enumerate(labels)}
    xs = [r["hit_ratio"] for r in rows]
    ys = [r["kops"] for r in rows]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = 0.0, max(ys) * 1.05 or 1.0
    x_span = (x_hi - x_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for r in rows:
        x = int((r["hit_ratio"] - x_lo) / x_span * (width - 1))
        y = int((r["kops"] - y_lo) / (y_hi - y_lo) * (height - 1))
        row, col = height - 1 - y, x
        cell = grid[row][col]
        grid[row][col] = marks[r["series"]] if cell == " " else "*"
    lines = [f"kops vs hit ratio ({rows[0]['cpus']} usable CPU(s))"]
    for i, cells in enumerate(grid):
        y_val = y_hi - (y_hi - y_lo) * i / (height - 1)
        lines.append(f"{y_val:>8.0f} |{''.join(cells)}|")
    lines.append(" " * 9 + "+" + "-" * width + "+")
    lines.append(f"{'':9}{x_lo:<10.3f}{'hit ratio':^{width - 20}}"
                 f"{x_hi:>10.3f}")
    for label in labels:
        lines.append(f"  {marks[label]} = {label}")
    return "\n".join(lines)


def full_report() -> str:
    rows = run()
    lines = [
        format_table(rows),
        "",
        format_chart(rows),
        "",
        "the wire protocol cannot move hit ratio (same trace, same "
        "eviction decisions); protocol cost and pipelining only move "
        "the throughput axis.",
        f"usable_cpus={usable_cpus()}  (on a 1-CPU host the event loop "
        "and client threads share one core: the socket series measure "
        "protocol overhead with no concurrency payback, by design)",
    ]
    return "\n".join(lines) + "\n"


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        description="Throughput-vs-hit-ratio frontier through the "
        "network front-end."
    )
    parser.add_argument(
        "--out", help="also write the full report to this file"
    )
    cli_args = parser.parse_args()
    report_text = full_report()
    print(report_text, end="")
    if cli_args.out:
        with open(cli_args.out, "w") as fh:
            fh.write(report_text)
