"""Ablations of S3-FIFO's design constants (DESIGN.md Section 4).

1. Ghost queue size (paper default: as many entries as M holds).
2. Frequency cap (paper: 3, i.e. two bits).
3. Move-to-main threshold (Algorithm 1: freq > 1, i.e. threshold 2).
4. M's reinsertion: freq-1 on reinsert (paper) vs clearing to 0 —
   approximated by freq_cap=1, which collapses the counter to one bit.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.experiments.common import LARGE_CACHE_RATIO, format_rows
from repro.sim.metrics import mean, miss_ratio_reduction
from repro.sim.runner import run_sweep
from repro.traces.datasets import make_dataset_jobs

#: label -> s3fifo kwargs.
ABLATIONS: Dict[str, Dict[str, Any]] = {
    "default (ghost=|M|, cap=3, thr=2)": {},
    "ghost=0.1x|M|": {"ghost_entries_factor": 0.1},
    "ghost=4x|M|": {"ghost_entries_factor": 4.0},
    "freq-cap=1 (one bit)": {"freq_cap": 1},
    "freq-cap=7 (three bits)": {"freq_cap": 7},
    "move-threshold=1": {"move_to_main_threshold": 1},
    "move-threshold=3": {"move_to_main_threshold": 3},
}


def _resolve_kwargs(
    kwargs: Dict[str, Any], cache_size: int
) -> Dict[str, Any]:
    resolved = dict(kwargs)
    factor = resolved.pop("ghost_entries_factor", None)
    if factor is not None:
        main_cap = max(1, cache_size - max(1, int(cache_size * 0.1)))
        resolved["ghost_entries"] = max(1, int(main_cap * factor))
    return resolved


def run(
    ablations: Optional[Dict[str, Dict[str, Any]]] = None,
    datasets: Optional[Sequence[str]] = None,
    cache_ratio: float = LARGE_CACHE_RATIO,
    scale: float = 1.0,
    processes: Optional[int] = None,
    seed: int = 0,
    traces_per_dataset: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Mean reduction vs FIFO for each ablated configuration."""
    ablations = ablations or ABLATIONS
    jobs = make_dataset_jobs(
        ["fifo"],
        cache_ratio,
        datasets=list(datasets) if datasets else None,
        scale=scale,
        seed=seed,
        traces_per_dataset=traces_per_dataset,
    )
    for label, kwargs in ablations.items():
        base_jobs = make_dataset_jobs(
            ["s3fifo"],
            cache_ratio,
            datasets=list(datasets) if datasets else None,
            scale=scale,
            seed=seed,
            traces_per_dataset=traces_per_dataset,
        )
        for job in base_jobs:
            job.policy_kwargs = _resolve_kwargs(kwargs, job.cache_size)
            job.tags["ablation"] = label
        jobs.extend(base_jobs)
    results = [r for r in run_sweep(jobs, processes=processes) if r.ok]
    fifo_mr = {
        r.trace_name: r.miss_ratio for r in results if r.policy == "fifo"
    }
    rows: List[Dict[str, Any]] = []
    for label in ablations:
        reductions = [
            miss_ratio_reduction(fifo_mr[r.trace_name], r.miss_ratio)
            for r in results
            if r.tags.get("ablation") == label and r.trace_name in fifo_mr
        ]
        if not reductions:
            continue
        rows.append(
            {
                "ablation": label,
                "mean_reduction": mean(reductions),
                "min_reduction": min(reductions),
                "traces": len(reductions),
            }
        )
    return rows


def format_table(rows: List[Dict[str, Any]] = None) -> str:
    if rows is None:
        rows = run()
    return format_rows(
        rows,
        columns=["ablation", "mean_reduction", "min_reduction", "traces"],
        title="Ablations — S3-FIFO design constants",
        float_fmt="{:+.3f}",
    )


if __name__ == "__main__":
    print(format_table())
