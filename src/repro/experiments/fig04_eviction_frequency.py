"""Fig. 4: the frequency of objects at eviction.

Running LRU and Belady on Twitter-like and MSR-like traces with a
cache of 10% of the trace footprint, the distribution of per-object
access counts (after insertion) at eviction time shows that a large
fraction of evicted objects were never reused — 26%/24% (LRU/Belady)
on the Twitter trace and 82%/68% on the MSR trace in the paper.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.cache.registry import create_policy
from repro.experiments.common import format_rows
from repro.traces.analysis import annotate_next_access, frequency_at_eviction
from repro.traces.datasets import generate_dataset_trace

DEFAULT_TRACES = ("twitter", "msr")
DEFAULT_POLICIES = ("lru", "belady")


def run(
    datasets: Sequence[str] = DEFAULT_TRACES,
    policies: Sequence[str] = DEFAULT_POLICIES,
    cache_ratio: float = 0.1,
    scale: float = 1.0,
    seed: int = 0,
    max_freq: int = 4,
) -> List[Dict[str, Any]]:
    """One row per (dataset, policy): CDF of frequency at eviction.

    ``freq0`` is the one-hit-wonder-at-eviction fraction; ``freq<=k``
    columns accumulate the CDF up to ``max_freq``.
    """
    rows: List[Dict[str, Any]] = []
    for dataset in datasets:
        trace = generate_dataset_trace(dataset, 0, scale=scale, seed=seed)
        annotated = annotate_next_access(trace)
        capacity = max(10, int(len(set(trace)) * cache_ratio))
        for policy_name in policies:
            policy = create_policy(policy_name, capacity=capacity)
            histogram = frequency_at_eviction(policy, annotated)
            total = sum(histogram.values())
            row: Dict[str, Any] = {
                "dataset": dataset,
                "policy": policy_name,
                "evictions": total,
            }
            cumulative = 0
            for k in range(max_freq + 1):
                cumulative += histogram.get(k, 0)
                row[f"freq<={k}"] = cumulative / total if total else 0.0
            row["freq0"] = (histogram.get(0, 0) / total) if total else 0.0
            rows.append(row)
    return rows


def format_table(rows: List[Dict[str, Any]] = None) -> str:
    if rows is None:
        rows = run()
    columns = ["dataset", "policy", "evictions", "freq0"] + [
        key for key in rows[0] if key.startswith("freq<=")
    ]
    return format_rows(
        rows,
        columns=columns,
        title="Fig. 4 — frequency of objects at eviction (CDF)",
        float_fmt="{:.3f}",
    )


if __name__ == "__main__":
    print(format_table())
