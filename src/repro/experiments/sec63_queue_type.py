"""Section 6.3: "LRU or FIFO?" — the queue-type ablation.

S3-FIFO's structure with every combination of FIFO/LRU small and main
queues, plus the promote-on-hit variant.  Reproduced claim: once quick
demotion is in place, the queue type does not matter — LRU queues do
not improve efficiency.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.experiments.common import LARGE_CACHE_RATIO, format_rows
from repro.sim.metrics import mean, miss_ratio_reduction
from repro.sim.runner import run_sweep
from repro.traces.datasets import make_dataset_jobs

VARIANTS: List[Dict[str, Any]] = [
    {"label": "S3(S=fifo,M=fifo)", "small_type": "fifo", "main_type": "fifo"},
    {"label": "S3(S=lru,M=fifo)", "small_type": "lru", "main_type": "fifo"},
    {"label": "S3(S=fifo,M=lru)", "small_type": "fifo", "main_type": "lru"},
    {"label": "S3(S=lru,M=lru)", "small_type": "lru", "main_type": "lru"},
    {
        "label": "S3(S=fifo,M=fifo,hit-promote)",
        "small_type": "fifo",
        "main_type": "fifo",
        "promote_on_hit": True,
    },
]


def _variant_kwargs(variant: Dict[str, Any]) -> Dict[str, Any]:
    from repro.core.variants import QueueType

    kwargs: Dict[str, Any] = {
        "small_type": QueueType(variant["small_type"]),
        "main_type": QueueType(variant["main_type"]),
    }
    if variant.get("promote_on_hit"):
        kwargs["promote_on_hit"] = True
    return kwargs


def run(
    datasets: Optional[Sequence[str]] = None,
    cache_ratio: float = LARGE_CACHE_RATIO,
    scale: float = 1.0,
    processes: Optional[int] = None,
    seed: int = 0,
    traces_per_dataset: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Mean reduction vs FIFO for each queue-type variant."""
    rows: List[Dict[str, Any]] = []
    all_results = []
    jobs = make_dataset_jobs(
        ["fifo"],
        cache_ratio,
        datasets=list(datasets) if datasets else None,
        scale=scale,
        seed=seed,
        traces_per_dataset=traces_per_dataset,
    )
    for variant in VARIANTS:
        variant_jobs = make_dataset_jobs(
            ["s3variant"],
            cache_ratio,
            datasets=list(datasets) if datasets else None,
            scale=scale,
            seed=seed,
            policy_kwargs={"s3variant": _variant_kwargs(variant)},
            traces_per_dataset=traces_per_dataset,
        )
        for job in variant_jobs:
            job.tags["variant"] = variant["label"]
        jobs.extend(variant_jobs)
    all_results = [r for r in run_sweep(jobs, processes=processes) if r.ok]
    fifo_mr = {
        r.trace_name: r.miss_ratio for r in all_results if r.policy == "fifo"
    }
    for variant in VARIANTS:
        reductions = [
            miss_ratio_reduction(fifo_mr[r.trace_name], r.miss_ratio)
            for r in all_results
            if r.tags.get("variant") == variant["label"]
            and r.trace_name in fifo_mr
        ]
        if not reductions:
            continue
        rows.append(
            {
                "variant": variant["label"],
                "mean_reduction": mean(reductions),
                "min_reduction": min(reductions),
                "max_reduction": max(reductions),
                "traces": len(reductions),
            }
        )
    return rows


def format_table(rows: List[Dict[str, Any]] = None) -> str:
    if rows is None:
        rows = run()
    return format_rows(
        rows,
        columns=[
            "variant",
            "mean_reduction",
            "min_reduction",
            "max_reduction",
            "traces",
        ],
        title="Sec. 6.3 — queue-type ablation",
        float_fmt="{:+.3f}",
    )


if __name__ == "__main__":
    print(format_table())
