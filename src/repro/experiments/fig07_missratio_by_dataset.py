"""Fig. 7: mean miss-ratio reduction per dataset.

The reproduced claims: S3-FIFO has the best mean reduction on most
datasets at the large cache size and is in the top three nearly
everywhere, while TinyLFU and LIRS are top on a few datasets but near
the bottom on others (robustness).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.experiments.common import FIG7_POLICIES, LARGE_CACHE_RATIO, format_rows
from repro.sim.metrics import mean, miss_ratio_reduction
from repro.sim.runner import run_sweep
from repro.traces.datasets import dataset_names, make_dataset_jobs


def run(
    policies: Sequence[str] = None,
    datasets: Optional[Sequence[str]] = None,
    cache_ratio: float = LARGE_CACHE_RATIO,
    scale: float = 1.0,
    processes: Optional[int] = None,
    seed: int = 0,
    traces_per_dataset: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """One row per dataset: each policy's mean reduction + the winner."""
    policies = list(policies or FIG7_POLICIES)
    datasets = list(datasets or dataset_names())
    wanted = list(dict.fromkeys(policies + ["fifo"]))
    jobs = make_dataset_jobs(
        wanted,
        cache_ratio,
        datasets=datasets,
        scale=scale,
        seed=seed,
        traces_per_dataset=traces_per_dataset,
    )
    results = [r for r in run_sweep(jobs, processes=processes) if r.ok]
    fifo_mr = {
        r.trace_name: r.miss_ratio for r in results if r.policy == "fifo"
    }
    rows: List[Dict[str, Any]] = []
    for dataset in datasets:
        row: Dict[str, Any] = {"dataset": dataset}
        for policy in policies:
            reductions = [
                miss_ratio_reduction(fifo_mr[r.trace_name], r.miss_ratio)
                for r in results
                if r.policy == policy
                and r.tags.get("dataset") == dataset
                and r.trace_name in fifo_mr
            ]
            row[policy] = mean(reductions) if reductions else 0.0
        best = max(policies, key=lambda p: row[p])
        row["best"] = best
        # Rank of s3fifo within this dataset (1 = best).
        ordered = sorted(policies, key=lambda p: row[p], reverse=True)
        row["s3fifo_rank"] = ordered.index("s3fifo") + 1 if "s3fifo" in ordered else -1
        rows.append(row)
    return rows


def wins(rows: List[Dict[str, Any]], policy: str) -> int:
    """Number of datasets on which ``policy`` has the best mean reduction."""
    return sum(1 for row in rows if row["best"] == policy)


def top_k_count(rows: List[Dict[str, Any]], policy: str, k: int = 3) -> int:
    """Datasets where ``policy`` ranks in the top k."""
    count = 0
    for row in rows:
        scored = sorted(
            (key for key in row if key not in {"dataset", "best", "s3fifo_rank"}),
            key=lambda p: row[p],
            reverse=True,
        )
        if policy in scored[:k]:
            count += 1
    return count


def format_table(rows: List[Dict[str, Any]] = None) -> str:
    if rows is None:
        rows = run()
    policies = [
        key for key in rows[0] if key not in {"dataset", "best", "s3fifo_rank"}
    ]
    return format_rows(
        rows,
        columns=["dataset"] + policies + ["best"],
        title="Fig. 7 — mean miss-ratio reduction per dataset",
        float_fmt="{:+.3f}",
    )


if __name__ == "__main__":
    print(format_table())
