"""Fig. 6: miss-ratio reduction (vs FIFO) percentiles across traces.

Every policy is simulated on every dataset-stand-in trace at two cache
sizes, and reductions relative to FIFO are summarized at P10/P25/P50/
P75/P90 plus the mean.  The reproduced claims: S3-FIFO has the largest
reduction across (almost) all percentiles; TinyLFU's 1% window wins at
the top but goes *negative* at P10 (worse than FIFO on a tail of
traces); increasing the window (tinylfu-0.1) fixes the tail but
shrinks the head.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.experiments.common import (
    FIG6_POLICIES,
    LARGE_CACHE_RATIO,
    SMALL_CACHE_RATIO,
    format_rows,
)
from repro.sim.metrics import miss_ratio_reduction, percentile_summary
from repro.sim.runner import run_sweep
from repro.traces.datasets import make_dataset_jobs


def reductions_by_policy(
    cache_ratio: float,
    policies: Sequence[str],
    datasets: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    processes: Optional[int] = None,
    seed: int = 0,
    traces_per_dataset: Optional[int] = None,
) -> Dict[str, List[float]]:
    """Miss-ratio reductions vs FIFO, per policy, across all traces."""
    wanted = list(dict.fromkeys(list(policies) + ["fifo"]))
    jobs = make_dataset_jobs(
        wanted,
        cache_ratio,
        datasets=list(datasets) if datasets else None,
        scale=scale,
        seed=seed,
        traces_per_dataset=traces_per_dataset,
    )
    results = [r for r in run_sweep(jobs, processes=processes) if r.ok]
    fifo_mr = {
        r.trace_name: r.miss_ratio for r in results if r.policy == "fifo"
    }
    by_policy: Dict[str, List[float]] = {p: [] for p in policies}
    for result in results:
        if result.policy == "fifo" or result.policy not in by_policy:
            continue
        base = fifo_mr.get(result.trace_name)
        if base is None:
            continue
        by_policy[result.policy].append(
            miss_ratio_reduction(base, result.miss_ratio)
        )
    return by_policy


def run(
    policies: Sequence[str] = None,
    datasets: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    processes: Optional[int] = None,
    seed: int = 0,
    traces_per_dataset: Optional[int] = None,
    cache_ratios: Sequence[float] = (LARGE_CACHE_RATIO, SMALL_CACHE_RATIO),
) -> List[Dict[str, Any]]:
    """One row per (cache size, policy) with the reduction percentiles."""
    policies = list(policies or FIG6_POLICIES)
    rows: List[Dict[str, Any]] = []
    for ratio in cache_ratios:
        label = "large" if ratio == max(cache_ratios) else "small"
        by_policy = reductions_by_policy(
            ratio, policies, datasets, scale, processes, seed
        )
        for policy in policies:
            values = by_policy.get(policy, [])
            if not values:
                continue
            summary = percentile_summary(values)
            rows.append(
                {
                    "cache": label,
                    "cache_ratio": ratio,
                    "policy": policy,
                    "p10": summary["p10"],
                    "p25": summary["p25"],
                    "p50": summary["p50"],
                    "p75": summary["p75"],
                    "p90": summary["p90"],
                    "mean": summary["mean"],
                    "traces": len(values),
                }
            )
        rows.sort(key=lambda r: (r["cache"], -r["mean"]))
    return rows


def format_table(rows: List[Dict[str, Any]] = None) -> str:
    if rows is None:
        rows = run()
    return format_rows(
        rows,
        columns=[
            "cache",
            "policy",
            "p10",
            "p25",
            "p50",
            "p75",
            "p90",
            "mean",
            "traces",
        ],
        title="Fig. 6 — miss-ratio reduction vs FIFO, percentiles across traces",
        float_fmt="{:+.3f}",
    )


if __name__ == "__main__":
    print(format_table())
