"""Fig. 3: one-hit-wonder ratio across all traces at different sequence
lengths.

The paper reports, across 6594 traces, median one-hit-wonder ratios of
26% (full trace), 38% (sequences with 50% of objects), 72% (10%), and
78% (1%).  We compute the same distribution over every trace of every
dataset stand-in; the shape — a steep rise as sequences shrink — is
the reproduced claim.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.experiments.common import format_rows
from repro.sim.metrics import percentile_summary
from repro.traces.analysis import (
    one_hit_wonder_ratio,
    subsequence_one_hit_wonder_ratio,
)
from repro.traces.datasets import dataset_names, generate_dataset_trace

DEFAULT_FRACTIONS = (1.0, 0.5, 0.1, 0.01)


def run(
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    datasets: Sequence[str] = None,
    traces_per_dataset: int = None,
    scale: float = 1.0,
    num_samples: int = 5,
    seed: int = 0,
) -> List[Dict[str, Any]]:
    """One row per fraction: P10/P50/P90 and mean across all traces."""
    from repro.traces.datasets import DATASETS

    per_fraction: Dict[float, List[float]] = {f: [] for f in fractions}
    for dataset in datasets or dataset_names():
        n = traces_per_dataset or DATASETS[dataset].n_traces
        for idx in range(n):
            trace = generate_dataset_trace(dataset, idx, scale=scale, seed=seed)
            for frac in fractions:
                if frac >= 1.0:
                    ratio = one_hit_wonder_ratio(trace)
                else:
                    ratio = subsequence_one_hit_wonder_ratio(
                        trace, frac, num_samples=num_samples, seed=seed
                    )
                per_fraction[frac].append(ratio)
    rows = []
    for frac in fractions:
        summary = percentile_summary(per_fraction[frac], qs=(10, 50, 90))
        rows.append(
            {
                "fraction": frac,
                "p10": summary["p10"],
                "median": summary["p50"],
                "p90": summary["p90"],
                "mean": summary["mean"],
                "traces": len(per_fraction[frac]),
            }
        )
    return rows


def format_table(rows: List[Dict[str, Any]] = None) -> str:
    if rows is None:
        rows = run()
    return format_rows(
        rows,
        columns=["fraction", "p10", "median", "p90", "mean", "traces"],
        title="Fig. 3 — one-hit-wonder ratio distribution across traces",
        float_fmt="{:.3f}",
    )


if __name__ == "__main__":
    print(format_table())
