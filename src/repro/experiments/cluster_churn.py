"""Cluster churn: hit ratio and tail latency through node failure.

Extends the sharding story (:mod:`repro.experiments.sec7_sharding`,
:mod:`repro.experiments.fig08_native`) to the cluster tier: a
read-through Zipf replay against a
:class:`~repro.cluster.service.ClusterCacheService` is cut into equal
windows, and one node is killed mid-run by a deterministic
:data:`~repro.resilience.faults.WORKER_CRASH` fault plan, then
restarted and rebalanced a few windows later.  Each window reports the
hit ratio and p99 latency the *client* saw plus the cluster's failover
and read-repair activity — the degraded-mode frontier ("Can Increasing
the Hit Ratio Hurt Cache Throughput?", PAPERS.md) measured instead of
assumed.

The second table isolates the rebalance-cost lever: the fraction of
keys whose replica set gains a node when the ring grows N -> N+1, as a
function of ``vnodes``.  Consistent hashing promises ~1/(N+1); more
vnodes buy a tighter bound (and better balance) at ring-memory cost.

Determinism: the trace, the ring, and the fault plan are all seeded,
and the crash fires on the victim node's logical message clock — the
same seed and scale always produce the same hits, misses, failovers,
and moved-key counts (latencies are of course machine-dependent).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence

from repro.cluster.ring import HashRing, key_movement
from repro.experiments.common import format_rows

NUM_NODES = 3
REPLICATION = 2
NUM_WINDOWS = 6
#: The window before which the dead node is restarted and the ring
#: rebalanced (0-based).  Windows: healthy -> crash lands -> degraded
#: -> degraded -> recovered -> recovered.
RESTART_BEFORE_WINDOW = 4

WORKLOAD = dict(
    num_objects=2_000,
    num_requests=12_000,
    alpha=1.0,
    cache_ratio=0.1,
)

VNODE_SWEEP = (8, 32, 128)


def run(scale: float = 1.0, seed: int = 0) -> List[Dict[str, Any]]:
    """One row per churn window; deterministic per (scale, seed).

    The victim node's fault plan kills it after a fixed number of
    messages (about a third of the run), so the crash lands mid-run
    without any wall-clock dependence.  Before window
    ``RESTART_BEFORE_WINDOW`` the node is restarted (empty) and
    :meth:`~repro.cluster.service.ClusterCacheService.rebalance`
    refills it; the window rows show the repair traffic that follows.
    """
    from repro.cluster.service import ClusterCacheService
    from repro.resilience.faults import WORKER_CRASH, FaultPlan
    from repro.service.loadgen import latency_summary_us
    from repro.traces.synthetic import zipf_trace

    num_objects = max(100, int(WORKLOAD["num_objects"] * scale))
    num_requests = max(NUM_WINDOWS, int(WORKLOAD["num_requests"] * scale))
    trace = zipf_trace(
        num_objects=num_objects,
        num_requests=num_requests,
        alpha=WORKLOAD["alpha"],
        seed=seed,
    )
    capacity = max(NUM_NODES, int(num_objects * WORKLOAD["cache_ratio"]))
    # The victim sees roughly one message per driven op (it owns a
    # replica of ~2/3 of keys at R=2/N=3), so a third of the request
    # count lands the crash near the end of window 2 of 6.
    crash_at = max(2, num_requests // 3)
    victim = 1
    plan = {victim: FaultPlan().add(WORKER_CRASH, crash_at, crash_at + 1)}
    service = ClusterCacheService(
        capacity, "s3fifo", num_nodes=NUM_NODES,
        replication=REPLICATION, fault_plans=plan,
    )
    rows: List[Dict[str, Any]] = []
    try:
        window_len = len(trace) // NUM_WINDOWS
        clock = time.perf_counter_ns
        crashed_seen = False
        moved = 0
        for w in range(NUM_WINDOWS):
            if w == RESTART_BEFORE_WINDOW and not service._node_alive(victim):
                service.restart_node(victim)
                moved = service.rebalance()
            before = service.stats()
            window = trace[w * window_len:(w + 1) * window_len]
            latencies = []
            hits = 0
            for key in window:
                t0 = clock()
                if service.get(key) is None:
                    service.set(key, key)
                else:
                    hits += 1
                latencies.append(clock() - t0)
            after = service.stats()
            if after["nodes_up"] < NUM_NODES:
                crashed_seen = True
                phase = "degraded"
            elif crashed_seen:
                phase = "recovered"
            else:
                phase = "healthy"
            rows.append({
                "window": w,
                "phase": phase,
                "ops": len(window),
                "hit_ratio": round(hits / len(window), 4),
                "p99_us": latency_summary_us(latencies)["p99"],
                "nodes_up": after["nodes_up"],
                "failovers": after["failovers"] - before["failovers"],
                "read_repairs": (
                    after["read_repairs"] - before["read_repairs"]
                ),
                "rebalanced": moved if w == RESTART_BEFORE_WINDOW else 0,
            })
    finally:
        service.close()
    return rows


def vnode_sweep(
    vnodes_list: Sequence[int] = VNODE_SWEEP,
    num_nodes: int = NUM_NODES,
    num_keys: int = 3_000,
    replication: int = REPLICATION,
) -> List[Dict[str, Any]]:
    """Rebalance cost (owner-set movement on join) vs vnode count.

    Pure ring analysis — no processes.  ``moved`` is the fraction of
    keys whose replica set gains a node when node N joins an N-node
    ring (the copy cost a rebalance would pay); ``ideal`` is the
    consistent-hashing target ``1/(N+1)`` scaled by the replica count
    (each of R owner slots independently has ~1/(N+1) chance to gain
    the joiner).  ``balance`` is the primary-owner max/mean spread
    before the join — the other thing vnodes buy.
    """
    keys = [f"key-{i}" for i in range(num_keys)]
    ideal = replication / (num_nodes + 1)
    rows: List[Dict[str, Any]] = []
    for vnodes in vnodes_list:
        before = HashRing(range(num_nodes), vnodes=vnodes)
        spread = before.spread(keys)
        mean = num_keys / num_nodes
        balance = max(spread.values()) / mean
        after = HashRing(range(num_nodes + 1), vnodes=vnodes)
        moved = key_movement(before, after, keys, replication=replication)
        rows.append({
            "vnodes": vnodes,
            "nodes": f"{num_nodes}->{num_nodes + 1}",
            "moved": round(moved, 4),
            "ideal": round(ideal, 4),
            "balance": round(balance, 3),
        })
    return rows


def format_table(rows: Optional[List[Dict[str, Any]]] = None) -> str:
    if rows is None:
        rows = run()
    return format_rows(
        rows,
        columns=["window", "phase", "ops", "hit_ratio", "p99_us",
                 "nodes_up", "failovers", "read_repairs", "rebalanced"],
        title=(
            f"Cluster churn — {NUM_NODES} nodes, R={REPLICATION}, "
            f"one WORKER_CRASH mid-run, restart+rebalance before "
            f"window {RESTART_BEFORE_WINDOW}"
        ),
        float_fmt="{:.4f}",
    )


def format_vnode_sweep(rows: Optional[List[Dict[str, Any]]] = None) -> str:
    if rows is None:
        rows = vnode_sweep()
    return format_rows(
        rows,
        columns=["vnodes", "nodes", "moved", "ideal", "balance"],
        title=(
            f"Rebalance cost vs vnodes — owner-set movement on join, "
            f"R={REPLICATION} (ideal = R/(N+1))"
        ),
        float_fmt="{:.4f}",
    )


def full_report(scale: float = 1.0, seed: int = 0) -> str:
    """Both tables, stamped with the seed and config that produced them."""
    lines = [
        format_table(run(scale=scale, seed=seed)),
        "",
        format_vnode_sweep(),
        "",
        f"seed={seed} scale={scale:g} nodes={NUM_NODES} "
        f"replication={REPLICATION} windows={NUM_WINDOWS} "
        f"objects={max(100, int(WORKLOAD['num_objects'] * scale))} "
        f"requests={max(NUM_WINDOWS, int(WORKLOAD['num_requests'] * scale))} "
        f"cache_ratio={WORKLOAD['cache_ratio']:g} "
        f"alpha={WORKLOAD['alpha']:g}",
        "hits/misses/failovers are seed-deterministic; latencies are "
        "machine-dependent",
    ]
    return "\n".join(lines) + "\n"


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        description="Cluster churn: availability and rebalance cost."
    )
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out", help="also write the full report to this file"
    )
    cli_args = parser.parse_args()
    report_text = full_report(scale=cli_args.scale, seed=cli_args.seed)
    print(report_text, end="")
    if cli_args.out:
        with open(cli_args.out, "w") as fh:
            fh.write(report_text)
