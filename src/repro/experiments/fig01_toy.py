"""Fig. 1: the toy example — shorter sequences have higher one-hit-wonder
ratios.

The figure's 17-request sequence over objects A–E.  The full sequence
has a 20% one-hit-wonder ratio (only E is requested once); the prefix
ending at request 7 has 50% (C, D), and the prefix ending at request 4
has 67% (B, C).
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List

from repro.experiments.common import format_rows

#: The exact request sequence of Fig. 1.
TOY_TRACE: List[str] = [
    "A", "B", "A", "C", "B", "A", "D", "A", "B",
    "C", "B", "A", "E", "C", "A", "B", "D",
]

#: (start, end) windows the figure tabulates (1-based, inclusive).
WINDOWS = [(1, 17), (1, 7), (1, 4)]


def run() -> List[Dict[str, Any]]:
    """One row per window: sequence length in objects, one-hit wonders,
    and the one-hit-wonder ratio."""
    rows = []
    for start, end in WINDOWS:
        window = TOY_TRACE[start - 1 : end]
        counts = Counter(window)
        one_hitters = sorted(k for k, c in counts.items() if c == 1)
        rows.append(
            {
                "start": start,
                "end": end,
                "sequence_objects": len(counts),
                "one_hit_wonders": ",".join(one_hitters),
                "num_one_hit": len(one_hitters),
                "ratio": len(one_hitters) / len(counts),
            }
        )
    return rows


def format_table(rows=None) -> str:
    return format_rows(
        rows if rows is not None else run(),
        columns=[
            "start",
            "end",
            "sequence_objects",
            "num_one_hit",
            "one_hit_wonders",
            "ratio",
        ],
        title="Fig. 1 — one-hit-wonder ratio of toy-trace windows",
        float_fmt="{:.2f}",
    )


if __name__ == "__main__":
    print(format_table())
