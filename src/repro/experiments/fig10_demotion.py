"""Fig. 10 + Table 2: quick-demotion speed, precision, and miss ratio.

For ARC, TinyLFU, and S3-FIFO (the latter two swept over small-queue
sizes 1%-40%), measure on Twitter-like and MSR-like traces at large
and small cache sizes:

* normalized demotion speed (LRU eviction age / time in probation),
* demotion precision (fraction of early evictions not reused soon),
* the resulting miss ratio (Table 2).

Reproduced claims: smaller S always demotes faster; S3-FIFO's
precision rises then falls with S (peaking at intermediate sizes) and
its miss ratio is U-shaped in S; TinyLFU demotes slightly faster at
equal S but with lower, less predictable precision; ARC's adaptive S
can land far from the best size.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.cache.registry import create_policy
from repro.core.demotion import (
    AccessIndex,
    DemotionTracker,
    compute_demotion_stats,
    lru_eviction_age,
)
from repro.experiments.common import (
    LARGE_CACHE_RATIO,
    SMALL_CACHE_RATIO,
    format_rows,
)
from repro.sim.request import Request
from repro.sim.simulator import simulate
from repro.traces.datasets import generate_dataset_trace

DEFAULT_TRACES = ("twitter", "msr")
S_SIZES = (0.4, 0.3, 0.2, 0.1, 0.05, 0.02, 0.01)


def _measure(
    policy_name: str,
    capacity: int,
    trace: List[int],
    index: AccessIndex,
    lru_age: float,
    policy_kwargs: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    policy = create_policy(policy_name, capacity=capacity, **(policy_kwargs or {}))
    tracker = DemotionTracker().attach(policy)
    result = simulate(policy, [Request(k) for k in trace])
    stats = compute_demotion_stats(
        tracker.events, index, lru_age, capacity, result.miss_ratio
    )
    return {
        "miss_ratio": result.miss_ratio,
        "speed": stats.speed,
        "precision": stats.precision,
        "demoted": stats.demoted_count,
        "promoted": stats.promoted_count,
    }


def run(
    datasets: Sequence[str] = DEFAULT_TRACES,
    s_sizes: Sequence[float] = S_SIZES,
    cache_ratios: Sequence[float] = (LARGE_CACHE_RATIO, SMALL_CACHE_RATIO),
    scale: float = 1.0,
    seed: int = 0,
) -> List[Dict[str, Any]]:
    """One row per (dataset, cache, policy, S size) point of Fig. 10."""
    rows: List[Dict[str, Any]] = []
    for dataset in datasets:
        trace = generate_dataset_trace(dataset, 0, scale=scale, seed=seed)
        index = AccessIndex(Request(k) for k in trace)
        footprint = len(set(trace))
        for ratio in cache_ratios:
            label = "large" if ratio == max(cache_ratios) else "small"
            capacity = max(10, int(footprint * ratio))
            lru_age = lru_eviction_age([Request(k) for k in trace], capacity)

            lru_result = simulate(
                create_policy("lru", capacity=capacity),
                [Request(k) for k in trace],
            )
            arc = _measure("arc", capacity, trace, index, lru_age)
            rows.append(
                {
                    "dataset": dataset,
                    "cache": label,
                    "policy": "lru",
                    "s_size": None,
                    "miss_ratio": lru_result.miss_ratio,
                    "speed": 1.0,
                    "precision": None,
                    "demoted": None,
                    "promoted": None,
                }
            )
            rows.append(
                {"dataset": dataset, "cache": label, "policy": "arc",
                 "s_size": None, **arc}
            )
            for s_size in s_sizes:
                for policy, kwargs in (
                    ("s3fifo", {"small_ratio": s_size}),
                    ("tinylfu", {"window_ratio": s_size}),
                ):
                    measured = _measure(
                        policy, capacity, trace, index, lru_age, kwargs
                    )
                    rows.append(
                        {
                            "dataset": dataset,
                            "cache": label,
                            "policy": policy,
                            "s_size": s_size,
                            **measured,
                        }
                    )
    return rows


def table2_view(rows: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Pivot the Fig. 10 rows into Table 2: miss ratio by S size."""
    out: List[Dict[str, Any]] = []
    settings = sorted({(r["dataset"], r["cache"]) for r in rows})
    for dataset, cache in settings:
        subset = [
            r for r in rows if r["dataset"] == dataset and r["cache"] == cache
        ]
        for policy in ("tinylfu", "s3fifo"):
            row: Dict[str, Any] = {
                "dataset": dataset,
                "cache": cache,
                "policy": policy,
            }
            for r in subset:
                if r["policy"] == policy and r["s_size"] is not None:
                    row[f"s={r['s_size']:g}"] = r["miss_ratio"]
            out.append(row)
        for reference in ("arc", "lru"):
            ref = next(
                (r for r in subset if r["policy"] == reference), None
            )
            if ref:
                out.append(
                    {
                        "dataset": dataset,
                        "cache": cache,
                        "policy": reference,
                        "s=ref": ref["miss_ratio"],
                    }
                )
    return out


def format_table(rows: List[Dict[str, Any]] = None) -> str:
    if rows is None:
        rows = run()
    return format_rows(
        rows,
        columns=[
            "dataset",
            "cache",
            "policy",
            "s_size",
            "miss_ratio",
            "speed",
            "precision",
        ],
        title="Fig. 10 / Table 2 — quick demotion speed, precision, miss ratio",
        float_fmt="{:.4f}",
    )


if __name__ == "__main__":
    print(format_table())
