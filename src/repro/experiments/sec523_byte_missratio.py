"""Section 5.2.3: byte miss ratio.

The paper evaluated byte miss ratios with real object sizes and cache
sizes set to fractions of the byte footprint; the results (not shown
there for space) "are not significantly different from the (request)
miss ratio" — S3-FIFO keeps the largest reductions at almost all
percentiles.  This experiment reruns the Fig. 6 methodology on sized
traces and byte-denominated caches.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.experiments.common import format_rows
from repro.sim.metrics import miss_ratio_reduction, percentile_summary
from repro.sim.runner import SweepJob, run_sweep
from repro.traces.datasets import DATASETS, dataset_names, sized_dataset_trace

DEFAULT_POLICIES = (
    "s3fifo",
    "tinylfu",
    "lirs",
    "twoq",
    "arc",
    "lru",
    "clock",
    "gdsf",
)


def _make_jobs(
    policies: Sequence[str],
    cache_ratio: float,
    datasets: Sequence[str],
    scale: float,
    seed: int,
    traces_per_dataset: Optional[int],
) -> List[SweepJob]:
    jobs: List[SweepJob] = []
    for dataset in datasets:
        spec = DATASETS[dataset]
        n = spec.n_traces
        if traces_per_dataset is not None:
            n = min(n, traces_per_dataset)
        for idx in range(n):
            trace = sized_dataset_trace(dataset, idx, scale, seed)
            footprint_bytes = sum(
                size for _, size in {k: s for k, s in trace}.items()
            )
            cache_size = max(1, int(footprint_bytes * cache_ratio))
            for policy in policies:
                jobs.append(
                    SweepJob(
                        trace_name=f"{dataset}/{idx}",
                        trace_factory=sized_dataset_trace,
                        trace_kwargs={
                            "dataset": dataset,
                            "trace_index": idx,
                            "scale": scale,
                            "seed": seed,
                        },
                        policy=policy,
                        cache_size=cache_size,
                        tags={"dataset": dataset},
                    )
                )
    return jobs


def run(
    policies: Sequence[str] = DEFAULT_POLICIES,
    datasets: Optional[Sequence[str]] = None,
    cache_ratio: float = 0.1,
    scale: float = 1.0,
    processes: Optional[int] = None,
    seed: int = 0,
    traces_per_dataset: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Byte-miss-ratio reduction percentiles vs FIFO."""
    datasets = list(datasets or dataset_names())
    wanted = list(dict.fromkeys(list(policies) + ["fifo"]))
    jobs = _make_jobs(
        wanted, cache_ratio, datasets, scale, seed, traces_per_dataset
    )
    results = [r for r in run_sweep(jobs, processes=processes) if r.ok]
    fifo = {
        r.trace_name: r.byte_miss_ratio for r in results if r.policy == "fifo"
    }
    rows: List[Dict[str, Any]] = []
    for policy in policies:
        reductions = [
            miss_ratio_reduction(fifo[r.trace_name], r.byte_miss_ratio)
            for r in results
            if r.policy == policy and r.trace_name in fifo
        ]
        if not reductions:
            continue
        summary = percentile_summary(reductions)
        rows.append(
            {
                "policy": policy,
                "p10": summary["p10"],
                "p50": summary["p50"],
                "p90": summary["p90"],
                "mean": summary["mean"],
                "traces": len(reductions),
            }
        )
    rows.sort(key=lambda r: -r["mean"])
    return rows


def format_table(rows: List[Dict[str, Any]] = None) -> str:
    if rows is None:
        rows = run()
    return format_rows(
        rows,
        columns=["policy", "p10", "p50", "p90", "mean", "traces"],
        title="Sec. 5.2.3 — byte-miss-ratio reduction vs FIFO",
        float_fmt="{:+.3f}",
    )


if __name__ == "__main__":
    print(format_table())
