"""One module per paper table/figure; each exposes ``run()`` returning
structured rows and ``format_rows()`` for human-readable output.

The benchmark harness (``benchmarks/``) and the CLI both drive these;
EXPERIMENTS.md records paper-vs-measured for every experiment.
"""

from repro.experiments import common

__all__ = ["common"]
