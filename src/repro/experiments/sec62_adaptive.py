"""Section 6.2.2: static S3-FIFO vs adaptive S3-FIFO-D.

Reproduced claims: S3-FIFO matches or beats S3-FIFO-D on most traces;
the adaptive variant only wins on adversarial traces where a 10% small
queue is far from optimal (our two-access workload provides one).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.cache.registry import create_policy
from repro.experiments.common import LARGE_CACHE_RATIO, format_rows
from repro.sim.metrics import miss_ratio_reduction
from repro.sim.runner import run_sweep
from repro.sim.simulator import simulate
from repro.traces.datasets import make_dataset_jobs
from repro.traces.synthetic import two_access_trace


def run(
    datasets: Optional[Sequence[str]] = None,
    cache_ratio: float = LARGE_CACHE_RATIO,
    scale: float = 1.0,
    processes: Optional[int] = None,
    seed: int = 0,
    traces_per_dataset: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Per-trace miss ratios of s3fifo vs s3fifo-d, plus an adversarial
    trace where adaptation should help."""
    jobs = make_dataset_jobs(
        ["s3fifo", "s3fifo-d"],
        cache_ratio,
        datasets=list(datasets) if datasets else None,
        scale=scale,
        seed=seed,
        traces_per_dataset=traces_per_dataset,
    )
    results = [r for r in run_sweep(jobs, processes=processes) if r.ok]
    static_mr = {
        r.trace_name: r.miss_ratio for r in results if r.policy == "s3fifo"
    }
    rows: List[Dict[str, Any]] = []
    for result in results:
        if result.policy != "s3fifo-d":
            continue
        base = static_mr.get(result.trace_name)
        if base is None:
            continue
        rows.append(
            {
                "trace": result.trace_name,
                "s3fifo": base,
                "s3fifo-d": result.miss_ratio,
                "d_gain": miss_ratio_reduction(base, result.miss_ratio),
            }
        )

    # The adversarial case: second access lands outside a 10% S but
    # inside the cache, so growing S is the right adaptation.  The
    # default 0.1%-per-step resize is too slow to matter within a short
    # trace (the paper's tuning-difficulty point, Sec. 6.2.3), so the
    # demo uses a more aggressive step.
    cache_size = 1_000
    adversarial = two_access_trace(20_000, gap=700, seed=seed)
    static = simulate(
        create_policy("s3fifo", capacity=cache_size), adversarial
    ).miss_ratio
    adaptive = simulate(
        create_policy(
            "s3fifo-d",
            capacity=cache_size,
            adapt_hits=50,
            adapt_step=0.01,
            adapt_ghost_ratio=0.5,
        ),
        adversarial,
    ).miss_ratio
    rows.append(
        {
            "trace": "adversarial/two-access",
            "s3fifo": static,
            "s3fifo-d": adaptive,
            "d_gain": miss_ratio_reduction(static, adaptive),
        }
    )
    return rows


def summarize(rows: List[Dict[str, Any]]) -> Dict[str, Any]:
    normal = [r for r in rows if not r["trace"].startswith("adversarial")]
    wins_d = sum(1 for r in normal if r["d_gain"] > 0.005)
    return {
        "traces": len(normal),
        "d_wins": wins_d,
        "d_win_fraction": wins_d / len(normal) if normal else 0.0,
        "adversarial_gain": next(
            (r["d_gain"] for r in rows if r["trace"].startswith("adversarial")),
            None,
        ),
    }


def format_table(rows: List[Dict[str, Any]] = None) -> str:
    if rows is None:
        rows = run()
    return format_rows(
        rows,
        columns=["trace", "s3fifo", "s3fifo-d", "d_gain"],
        title="Sec. 6.2.2 — S3-FIFO vs S3-FIFO-D",
        float_fmt="{:+.4f}",
    )


if __name__ == "__main__":
    print(format_table())
