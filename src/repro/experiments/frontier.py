"""The throughput-vs-hit-ratio frontier, per backend and transport.

"Can Increasing the Hit Ratio Hurt Cache Throughput?" (Qiu, Yang,
Harchol-Balter; PAPERS.md) argues that quoting ops/sec at one cache
size — or hit ratio at one throughput — hides the trade-off that
matters: a bigger cache serves more hits but costs more per
operation, so the honest picture is the *frontier* traced by sweeping
cache size and plotting measured throughput against the hit ratio the
service actually achieved.  A faster transport cannot move a point's
hit ratio (same trace, same policy, same capacity — eviction decisions
are identical), so its entire effect shows as a vertical shift of the
frontier: that is exactly the claim "FIFO eviction is cheap enough
that transport dominates" made measurable.

Three series share one seeded Zipf trace:

* ``thread inproc`` — single in-process service, the no-IPC ceiling.
* ``mp pipe``       — process-per-shard over duplex pipes (PR 5).
* ``mp shm``        — the same workers over shared-memory rings
  (:mod:`repro.service.shm`).

Same honesty note as :mod:`repro.experiments.fig08_native`: rows
record :func:`~repro.experiments.fig08_native.usable_cpus`, because on
a 1-CPU host both mp series measure IPC overhead with no parallel
payback and the shm spin loops deliberately yield instead of spinning.
``make frontier`` writes ``benchmarks/results/frontier.txt``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.common import format_rows
from repro.experiments.fig08_native import usable_cpus
from repro.service.loadgen import run_scenario

#: (series label, backend, transport) — transport only varies on mp.
DEFAULT_SERIES: Tuple[Tuple[str, str, str], ...] = (
    ("thread inproc", "thread", "pipe"),
    ("mp pipe", "mp", "pipe"),
    ("mp shm", "mp", "shm"),
)

#: Cache sizes as fractions of the object population; spans "mostly
#: missing" to "mostly hitting" so the frontier actually bends.
DEFAULT_RATIOS: Tuple[float, ...] = (0.02, 0.05, 0.1, 0.2, 0.4)

WORKLOAD = dict(
    num_objects=8_000,
    num_requests=40_000,
    alpha=1.0,
)


def run(
    cache_ratios: Sequence[float] = DEFAULT_RATIOS,
    workers: int = 2,
    batch_size: int = 1,
    scale: float = 1.0,
    seed: int = 42,
    series: Sequence[Tuple[str, str, str]] = DEFAULT_SERIES,
    **workload: Any,
) -> List[Dict[str, Any]]:
    """One row per (series, cache size) on one shared trace.

    Every row replays the *identical* request sequence, so within a
    series the hit-ratio axis moves only with capacity, and at fixed
    capacity the two mp series land on exactly the same hit ratio —
    the transport can only move the throughput axis.  (The thread
    series may differ by a hair: it runs one shard, and sharding
    splits capacity.)  ``scale`` shrinks the request count (benchmark
    use); ``workers`` sizes the mp series.
    """
    from repro.traces.synthetic import zipf_trace

    workload = {**WORKLOAD, **workload}
    num_requests = max(2_000, int(workload["num_requests"] * scale))
    trace = zipf_trace(
        num_objects=workload["num_objects"],
        num_requests=num_requests,
        alpha=workload["alpha"],
        seed=seed,
    )
    cpus = usable_cpus()
    rows: List[Dict[str, Any]] = []
    for label, backend, transport in series:
        num_shards = workers if backend == "mp" else 1
        for ratio in cache_ratios:
            capacity = max(num_shards, int(workload["num_objects"] * ratio))
            scenario = run_scenario(
                trace,
                capacity=capacity,
                policy="s3fifo",
                num_shards=num_shards,
                num_threads=1,
                backend=backend,
                batch_size=batch_size,
                transport=transport,
            )
            rows.append({
                "series": label,
                "backend": backend,
                "transport": scenario["transport"],
                "cache_ratio": ratio,
                "capacity": capacity,
                "hit_ratio": scenario["hit_ratio"],
                "kops": round(scenario["ops_per_sec"] / 1e3, 1),
                "p99_us": scenario["latency_us"]["p99"],
                "cpus": cpus,
            })
    return rows


def format_table(rows: Optional[List[Dict[str, Any]]] = None) -> str:
    if rows is None:
        rows = run()
    return format_rows(
        rows,
        columns=["series", "cache_ratio", "capacity", "hit_ratio",
                 "kops", "p99_us"],
        title=(
            f"Throughput-vs-hit-ratio frontier (s3fifo, shared Zipf "
            f"trace) on {rows[0]['cpus']} usable CPU(s)"
        ),
        float_fmt="{:.3f}",
    )


def format_chart(
    rows: Optional[List[Dict[str, Any]]] = None,
    width: int = 64,
    height: int = 16,
) -> str:
    """ASCII frontier: x = achieved hit ratio, y = measured kops.

    One marker letter per series; ``*`` marks collisions.  Reading the
    chart: a better *transport* lifts its series straight up relative
    to the others (hit ratios are pinned by the shared trace); a
    bigger *cache* walks each series rightward along its own frontier.
    """
    if rows is None:
        rows = run()
    labels = list(dict.fromkeys(r["series"] for r in rows))
    marks = {label: "TPSXYZ"[i % 6] for i, label in enumerate(labels)}
    xs = [r["hit_ratio"] for r in rows]
    ys = [r["kops"] for r in rows]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = 0.0, max(ys) * 1.05 or 1.0
    x_span = (x_hi - x_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for r in rows:
        x = int((r["hit_ratio"] - x_lo) / x_span * (width - 1))
        y = int((r["kops"] - y_lo) / (y_hi - y_lo) * (height - 1))
        row, col = height - 1 - y, x
        cell = grid[row][col]
        grid[row][col] = marks[r["series"]] if cell == " " else "*"
    lines = [f"kops vs hit ratio ({rows[0]['cpus']} usable CPU(s))"]
    for i, cells in enumerate(grid):
        y_val = y_hi - (y_hi - y_lo) * i / (height - 1)
        lines.append(f"{y_val:>8.0f} |{''.join(cells)}|")
    lines.append(" " * 9 + "+" + "-" * width + "+")
    lines.append(f"{'':9}{x_lo:<10.3f}{'hit ratio':^{width - 20}}"
                 f"{x_hi:>10.3f}")
    for label in labels:
        lines.append(f"  {marks[label]} = {label}")
    return "\n".join(lines)


def full_report() -> str:
    rows = run()
    lines = [
        format_table(rows),
        "",
        format_chart(rows),
        "",
        "transport cannot move hit ratio (same trace, same eviction "
        "decisions); it only moves the throughput axis.",
        f"usable_cpus={usable_cpus()}  (on a 1-CPU host both mp series "
        "measure IPC overhead with no parallel payback, by design)",
    ]
    return "\n".join(lines) + "\n"


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        description="Throughput-vs-hit-ratio frontier per backend/transport."
    )
    parser.add_argument(
        "--out", help="also write the full report to this file"
    )
    cli_args = parser.parse_args()
    report_text = full_report()
    print(report_text, end="")
    if cli_args.out:
        with open(cli_args.out, "w") as fh:
            fh.write(report_text)
