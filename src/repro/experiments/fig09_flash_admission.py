"""Fig. 9: flash write bytes and miss ratio under different admission
policies.

Two CDN-like sized traces (WikiMedia and Tencent Photo stand-ins), a
flash cache of 10% of the trace's byte footprint, and four admission
schemes: no admission (write everything), probabilistic (20%),
Flashield-like ML, and the S3-FIFO small-queue filter at DRAM sizes of
0.1% / 1% / 10% of the flash size.

Reproduced claims: any admission policy slashes write bytes; the
probabilistic and ML schemes trade miss ratio for it, while the
S3-FIFO filter lowers *both*; the ML scheme needs the 10% DRAM to
approach the filter, and degrades when DRAM is small.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.experiments.common import format_rows
from repro.flash.admission import (
    FlashieldAdmission,
    NoAdmission,
    ProbabilisticAdmission,
    S3FifoAdmission,
)
from repro.flash.flashcache import HybridFlashCache
from repro.traces.datasets import sized_dataset_trace

DEFAULT_TRACES = ("wikimedia", "tencent_photo")
DRAM_RATIOS = (0.001, 0.01, 0.1)


def _scheme_configs(
    dram_ratios: Sequence[float],
    seed: int,
) -> List[Dict[str, Any]]:
    configs: List[Dict[str, Any]] = [
        {
            "name": "fifo (no admission)",
            "dram_ratio": 0.01,
            "dram_policy": "lru",
            "admission": lambda dram_cap: NoAdmission(),
        },
        {
            "name": "probabilistic-0.2",
            "dram_ratio": 0.01,
            "dram_policy": "lru",
            "admission": lambda dram_cap: ProbabilisticAdmission(0.2, seed=seed),
        },
    ]
    for ratio in dram_ratios:
        configs.append(
            {
                "name": f"flashield (dram={ratio:g})",
                "dram_ratio": ratio,
                "dram_policy": "lru",
                "admission": lambda dram_cap: FlashieldAdmission(seed=seed),
            }
        )
        configs.append(
            {
                "name": f"s3fifo (dram={ratio:g})",
                "dram_ratio": ratio,
                "dram_policy": "fifo",
                "admission": lambda dram_cap: S3FifoAdmission(
                    ghost_entries=max(64, dram_cap * 8)
                ),
            }
        )
    return configs


def run(
    datasets: Sequence[str] = DEFAULT_TRACES,
    dram_ratios: Sequence[float] = DRAM_RATIOS,
    flash_ratio: float = 0.1,
    scale: float = 1.0,
    seed: int = 0,
) -> List[Dict[str, Any]]:
    """One row per (trace, scheme): miss ratio and normalized writes."""
    rows: List[Dict[str, Any]] = []
    for dataset in datasets:
        trace = sized_dataset_trace(dataset, 0, scale=scale, seed=seed)
        unique_bytes = sum(
            size for _, size in {k: s for k, s in trace}.items()
        )
        flash_capacity = max(1, int(unique_bytes * flash_ratio))
        for config in _scheme_configs(dram_ratios, seed):
            dram_capacity = max(1, int(flash_capacity * config["dram_ratio"]))
            # Ghost sizing uses an object-count estimate for s3fifo.
            mean_size = max(1, unique_bytes // max(1, len({k for k, _ in trace})))
            dram_objects = max(1, dram_capacity // mean_size)
            admission = config["admission"](dram_objects)
            cache = HybridFlashCache(
                dram_capacity=dram_capacity,
                flash_capacity=flash_capacity,
                admission=admission,
                dram_policy=config["dram_policy"],
            )
            result = cache.run(trace)
            rows.append(
                {
                    "trace": dataset,
                    "scheme": config["name"],
                    "dram_ratio": config["dram_ratio"],
                    "miss_ratio": result.byte_miss_ratio,
                    "normalized_writes": result.normalized_writes(unique_bytes),
                    "flash_hits": result.flash_hits,
                    "dram_hits": result.dram_hits,
                }
            )
    return rows


def format_table(rows: List[Dict[str, Any]] = None) -> str:
    if rows is None:
        rows = run()
    return format_rows(
        rows,
        columns=[
            "trace",
            "scheme",
            "dram_ratio",
            "miss_ratio",
            "normalized_writes",
        ],
        title="Fig. 9 — flash admission: byte miss ratio and write bytes",
        float_fmt="{:.3f}",
    )


if __name__ == "__main__":
    print(format_table())
