"""Shared helpers for the experiment modules."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence

#: The algorithm set of Fig. 6 (plus our own variants where relevant).
FIG6_POLICIES: List[str] = [
    "s3fifo",
    "tinylfu",
    "tinylfu-0.1",
    "lirs",
    "twoq",
    "arc",
    "slru",
    "lru",
    "clock",
    "blru",
    "fifomerge",
    "lecar",
    "cacheus",
    "lhd",
    "sfifo",
]

#: Selected algorithms for the per-dataset Fig. 7 comparison.
FIG7_POLICIES: List[str] = [
    "s3fifo",
    "tinylfu",
    "tinylfu-0.1",
    "lirs",
    "twoq",
    "arc",
    "lru",
    "clock",
]

#: Cache sizes as a fraction of the trace footprint.  The paper uses
#: 10% ("large") and 0.1% ("small"); our stand-in traces have ~10^3-10^4
#: object footprints, so 0.1% would fall below the paper's own
#: 1000-object validity floor.  We keep 10% and use 1% as "small",
#: preserving the two-regimes comparison (see DESIGN.md).
LARGE_CACHE_RATIO = 0.10
SMALL_CACHE_RATIO = 0.01


def format_rows(
    rows: Iterable[Dict[str, Any]],
    columns: Sequence[str],
    title: str = "",
    float_fmt: str = "{:.4f}",
) -> str:
    """Render dict rows as an aligned text table."""
    rows = list(rows)
    header = list(columns)
    rendered: List[List[str]] = [header]
    for row in rows:
        cells = []
        for col in columns:
            value = row.get(col, "")
            if isinstance(value, float):
                cells.append(float_fmt.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [max(len(r[i]) for r in rendered) for i in range(len(header))]
    lines = []
    if title:
        lines.append(title)
    for i, cells in enumerate(rendered):
        lines.append(
            "  ".join(cell.ljust(widths[j]) for j, cell in enumerate(cells))
        )
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
