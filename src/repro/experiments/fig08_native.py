"""Fig. 8, measured natively: throughput scaling with worker processes.

Where :mod:`repro.experiments.fig08_throughput` reproduces the paper's
scaling curves *analytically* (cost model, paper-derived profiles),
this experiment measures them on the machine it runs on, using the
process-per-shard backend (:class:`~repro.service.mp.MPCacheService`)
to escape the GIL the way the paper's C implementation escapes a
global lock.  Three configurations mirror the figure's story:

* ``s3fifo mp`` — S3-FIFO, one worker process per shard.
* ``lru mp`` — sharded LRU, one worker process per shard (the
  "optimized LRU" stand-in: per-shard locks, real parallelism).
* ``lru thread`` — a single global-lock LRU driven by N in-process
  threads (the "strict LRU cannot scale" baseline; under CPython this
  is doubly serial — one lock *and* one GIL).

Honesty note (same spirit as :mod:`repro.concurrency.calibrate`):
the scaling these curves can show is bounded by the CPUs actually
available — ``run()`` records :func:`usable_cpus` and the formatted
table prints it, because a 1-core container will honestly measure
*no* native speedup (pure IPC overhead), and that number is
meaningless without the core count next to it.  The batch sweep shows
the second lever: per-op IPC cost falling as ``get_many`` batches
amortize pipe round-trips.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Sequence

from repro.experiments.common import format_rows
from repro.service.loadgen import run_loadgen

DEFAULT_WORKERS = (1, 2, 4)
DEFAULT_BATCH = 64
DEFAULT_BATCH_SWEEP = (1, 16, 64, 256)

#: Shared workload shape (mirrors the loadgen defaults at reduced size
#: so the full experiment stays in CLI-interactive territory).
WORKLOAD = dict(
    num_objects=10_000,
    num_requests=50_000,
    alpha=1.0,
    cache_ratio=0.1,
    seed=42,
)


def usable_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def run(
    workers: Sequence[int] = DEFAULT_WORKERS,
    batch_size: int = DEFAULT_BATCH,
    **workload: Any,
) -> List[Dict[str, Any]]:
    """One row per configuration with measured MQPS per unit count.

    The unit is worker processes for the mp rows and driver threads
    for the global-lock baseline row, so every column compares "N
    things trying to run concurrently".  Each row also carries the
    max-over-1-unit speedup and the machine's usable CPU count.
    """
    workload = {**WORKLOAD, **workload}
    cpus = usable_cpus()
    rows: List[Dict[str, Any]] = []
    for policy in ("s3fifo", "lru"):
        report = run_loadgen(
            shard_counts=tuple(workers),
            thread_counts=(1,),
            policy=policy,
            backend="mp",
            batch_size=batch_size,
            **workload,
        )
        row: Dict[str, Any] = {
            "config": f"{policy} mp b={batch_size}", "cpus": cpus,
        }
        for scenario in report["scenarios"]:
            row[f"n{scenario['shards']}"] = round(
                scenario["ops_per_sec"] / 1e6, 4
            )
        row["speedup"] = round(
            max(row[f"n{w}"] for w in workers) / row[f"n{workers[0]}"], 2
        )
        rows.append(row)
    baseline = run_loadgen(
        shard_counts=(1,),
        thread_counts=tuple(workers),
        policy="lru",
        **workload,
    )
    row = {"config": "lru thread global-lock", "cpus": cpus}
    for scenario in baseline["scenarios"]:
        row[f"n{scenario['threads']}"] = round(
            scenario["ops_per_sec"] / 1e6, 4
        )
    row["speedup"] = round(
        max(row[f"n{w}"] for w in workers) / row[f"n{workers[0]}"], 2
    )
    rows.append(row)
    return rows


def batch_sweep(
    batches: Sequence[int] = DEFAULT_BATCH_SWEEP,
    workers: int = DEFAULT_WORKERS[-1],
    policy: str = "s3fifo",
    **workload: Any,
) -> List[Dict[str, Any]]:
    """MQPS vs batch size at a fixed worker count (the IPC lever)."""
    workload = {**WORKLOAD, **workload}
    rows: List[Dict[str, Any]] = []
    for batch in batches:
        report = run_loadgen(
            shard_counts=(workers,),
            thread_counts=(1,),
            policy=policy,
            backend="mp",
            batch_size=batch,
            **workload,
        )
        scenario = report["scenarios"][0]
        rows.append({
            "batch": batch,
            "workers": workers,
            "mqps": round(scenario["ops_per_sec"] / 1e6, 4),
            "p99_us": scenario["latency_us"]["p99"],
        })
    return rows


def native_calibration(
    workers: Sequence[int] = DEFAULT_WORKERS,
    batch_size: int = DEFAULT_BATCH,
    policy: str = "s3fifo",
    **workload: Any,
) -> Dict[str, Any]:
    """Workers-axis calibration digest from a fresh mp measurement."""
    from repro.concurrency.calibrate import calibration_summary

    workload = {**WORKLOAD, **workload}
    report = run_loadgen(
        shard_counts=tuple(workers),
        thread_counts=(1,),
        policy=policy,
        backend="mp",
        batch_size=batch_size,
        **workload,
    )
    return calibration_summary(report, axis="workers")


def format_table(rows: Optional[List[Dict[str, Any]]] = None) -> str:
    if rows is None:
        rows = run()
    unit_cols = [key for key in rows[0] if key.startswith("n")]
    return format_rows(
        rows,
        columns=["config"] + unit_cols + ["speedup", "cpus"],
        title=(
            f"Fig. 8 (native) — measured MQPS vs workers/threads "
            f"on {rows[0]['cpus']} usable CPU(s)"
        ),
        float_fmt="{:.3f}",
    )


def format_batch_sweep(rows: Optional[List[Dict[str, Any]]] = None) -> str:
    if rows is None:
        rows = batch_sweep()
    return format_rows(
        rows,
        columns=["batch", "workers", "mqps", "p99_us"],
        title="Batch-size sweep — IPC amortization at fixed workers",
        float_fmt="{:.3f}",
    )


def full_report() -> str:
    """Everything the results file records: curves, sweep, calibration."""
    calibration = native_calibration()
    lines = [
        format_table(),
        "",
        format_batch_sweep(),
        "",
        f"workers-axis calibration: parallel_fraction="
        f"{calibration['parallel_fraction']} "
        f"serial_fraction={calibration['serial_fraction']} "
        f"(workers={calibration['workers']}, "
        f"batch={calibration['batch_size']})",
        f"usable_cpus={usable_cpus()}  "
        "(curves cannot exceed the cores the host grants; on a 1-CPU "
        "host the mp backend measures pure IPC overhead, by design)",
    ]
    return "\n".join(lines) + "\n"


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        description="Measured native throughput scaling (Fig. 8)."
    )
    parser.add_argument(
        "--out", help="also write the full report to this file"
    )
    cli_args = parser.parse_args()
    report_text = full_report()
    print(report_text, end="")
    if cli_args.out:
        with open(cli_args.out, "w") as fh:
            fh.write(report_text)
