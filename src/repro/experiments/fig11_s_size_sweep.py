"""Fig. 11: miss-ratio reduction percentiles as the small queue size
varies (1%-40% of the cache).

Reproduced claims: a smaller S gives the largest reductions at the top
percentiles but hurts the tail (more traces worse than FIFO); between
5% and 20% the efficiency barely moves for most traces, which is why
the static 10% default generalizes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.experiments.common import (
    LARGE_CACHE_RATIO,
    SMALL_CACHE_RATIO,
    format_rows,
)
from repro.sim.metrics import miss_ratio_reduction, percentile_summary
from repro.sim.runner import run_sweep
from repro.traces.datasets import make_dataset_jobs

S_SIZES = (0.01, 0.05, 0.1, 0.2, 0.4)


def run(
    s_sizes: Sequence[float] = S_SIZES,
    datasets: Optional[Sequence[str]] = None,
    cache_ratios: Sequence[float] = (LARGE_CACHE_RATIO, SMALL_CACHE_RATIO),
    scale: float = 1.0,
    processes: Optional[int] = None,
    seed: int = 0,
    traces_per_dataset: Optional[int] = None,
) -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    for ratio in cache_ratios:
        label = "large" if ratio == max(cache_ratios) else "small"
        jobs = make_dataset_jobs(
            ["fifo"],
            ratio,
            datasets=list(datasets) if datasets else None,
            scale=scale,
            seed=seed,
            traces_per_dataset=traces_per_dataset,
        )
        for s_size in s_sizes:
            jobs.extend(
                make_dataset_jobs(
                    ["s3fifo"],
                    ratio,
                    datasets=list(datasets) if datasets else None,
                    scale=scale,
                    seed=seed,
                    policy_kwargs={"s3fifo": {"small_ratio": s_size}},
                    traces_per_dataset=traces_per_dataset,
                )
            )
            # Tag the S size on the jobs just added.
            for job in jobs:
                if job.policy == "s3fifo" and "s_size" not in job.tags:
                    job.tags["s_size"] = s_size
        results = [r for r in run_sweep(jobs, processes=processes) if r.ok]
        fifo_mr = {
            r.trace_name: r.miss_ratio for r in results if r.policy == "fifo"
        }
        for s_size in s_sizes:
            reductions = [
                miss_ratio_reduction(fifo_mr[r.trace_name], r.miss_ratio)
                for r in results
                if r.policy == "s3fifo"
                and r.tags.get("s_size") == s_size
                and r.trace_name in fifo_mr
            ]
            if not reductions:
                continue
            summary = percentile_summary(reductions)
            rows.append(
                {
                    "cache": label,
                    "s_size": s_size,
                    "p10": summary["p10"],
                    "p50": summary["p50"],
                    "p90": summary["p90"],
                    "mean": summary["mean"],
                    "traces": len(reductions),
                }
            )
    return rows


def format_table(rows: List[Dict[str, Any]] = None) -> str:
    if rows is None:
        rows = run()
    return format_rows(
        rows,
        columns=["cache", "s_size", "p10", "p50", "p90", "mean", "traces"],
        title="Fig. 11 — reduction percentiles vs small-queue size",
        float_fmt="{:+.3f}",
    )


if __name__ == "__main__":
    print(format_table())
