"""Single-pass MRC speedup: one pass vs per-size re-simulation.

The operational pitch of Section 6.2.3 — discover per-workload cache
parameters cheaply — needs the whole miss-ratio curve, and the classic
way to get one for a non-stack policy is to re-simulate the trace once
per cache size: O(|sizes| x |trace|).  :mod:`repro.sim.multisim` does
it for the FIFO family in one pass.  This experiment measures the
speedup on every synthetic dataset stand-in, racing the single pass
against the *strongest* per-size baseline we have (the array-backed
``fifo-fast`` twin for FIFO; the reference ``sfifo`` for S-FIFO), and
verifies exactness on the way: every per-size miss count must match
the single-pass result bit-for-bit, or the row fails loudly.

The ``exact`` column is therefore not decoration — it is the
differential test re-run on the data the table reports.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence

from repro.experiments.common import format_rows

#: Cache sizes as fractions of each trace's footprint — eight points,
#: matching the perf guard's "8 sizes" claim.
SIZE_FRACTIONS = (0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5)

#: (multisim policy, per-size baseline policy).  The FIFO row races
#: against the array-backed fast twin — the strongest baseline — so
#: the reported speedup understates the win over the reference.
POLICY_PAIRS = (("fifo", "fifo-fast"), ("sfifo", "sfifo"))


def _sizes_for(footprint: int) -> List[int]:
    sizes = sorted({max(1, int(footprint * f)) for f in SIZE_FRACTIONS})
    return sizes


def run(
    scale: float = 1.0,
    seed: int = 0,
    datasets: Optional[Sequence[str]] = None,
    policy_pairs: Sequence = POLICY_PAIRS,
) -> List[Dict[str, Any]]:
    """One row per (dataset, policy): single-pass vs per-size timing.

    Both contenders consume the same :class:`CompiledTrace`, compiled
    outside the timed region — the race measures simulation, not trace
    generation.  Per-size misses are asserted equal to the single-pass
    misses before the row is emitted.
    """
    from repro.cache.registry import create_policy
    from repro.sim.multisim import multisim
    from repro.sim.simulator import simulate
    from repro.traces.compiled import compile_trace
    from repro.traces.datasets import dataset_names, generate_dataset_trace

    if datasets is None:
        datasets = dataset_names()
    rows: List[Dict[str, Any]] = []
    for dataset in datasets:
        trace = generate_dataset_trace(dataset, 0, scale=scale, seed=seed)
        ct = compile_trace(trace, name=dataset)
        sizes = _sizes_for(ct.num_objects)
        for policy, baseline in policy_pairs:
            start = time.perf_counter()
            result = multisim(policy, ct, sizes)
            t_single = time.perf_counter() - start
            start = time.perf_counter()
            per_size = []
            for size in sizes:
                cache = create_policy(baseline, capacity=size)
                per_size.append(simulate(cache, ct))
            t_per_size = time.perf_counter() - start
            exact = all(
                r.misses == m for r, m in zip(per_size, result.misses)
            )
            if not exact:
                raise AssertionError(
                    f"single-pass {policy} diverged from per-size "
                    f"{baseline} on {dataset}: "
                    f"{result.misses} vs {[r.misses for r in per_size]}"
                )
            rows.append({
                "dataset": dataset,
                "policy": policy,
                "requests": len(ct),
                "sizes": len(sizes),
                "per_size_s": round(t_per_size, 3),
                "single_pass_s": round(t_single, 3),
                "speedup": round(t_per_size / t_single, 2)
                if t_single > 0 else float("inf"),
                "exact": "yes" if exact else "NO",
            })
    return rows


def geomean_speedup(rows: Sequence[Dict[str, Any]]) -> float:
    product = 1.0
    for row in rows:
        product *= row["speedup"]
    return product ** (1.0 / len(rows)) if rows else 0.0


def format_table(rows: Optional[List[Dict[str, Any]]] = None) -> str:
    if rows is None:
        rows = run()
    table = format_rows(
        rows,
        columns=[
            "dataset", "policy", "requests", "sizes",
            "per_size_s", "single_pass_s", "speedup", "exact",
        ],
        title=(
            "Single-pass MRC — one pass vs per-size re-simulation "
            "(baseline: fifo-fast / sfifo reference)"
        ),
        float_fmt="{:.3f}",
    )
    return (
        f"{table}\n"
        f"geometric-mean speedup: {geomean_speedup(rows):.2f}x "
        f"over {len(rows)} (dataset, policy) pairs"
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        description="Single-pass multi-size MRC speedup table."
    )
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out", help="also write the table to this file"
    )
    cli_args = parser.parse_args()
    text = format_table(run(scale=cli_args.scale, seed=cli_args.seed))
    print(text)
    if cli_args.out:
        with open(cli_args.out, "w") as fh:
            fh.write(text + "\n")
