"""Consistent-hash ring with virtual nodes.

The sharded backends map keys to shards with ``hash % n`` — perfect
balance, but resizing from N to N+1 shards remaps ~N/(N+1) of all
keys.  A cluster whose nodes come and go needs the opposite trade:
:class:`HashRing` places ``vnodes`` points per node on a 64-bit ring
and routes each key to the first point at or after the key's hash, so
adding or removing one node only moves the keys that fall between the
affected points — about ``1/N`` of them, bounded tighter as ``vnodes``
grows (the ring property tests pin ``<= 1/N + epsilon``).

Hashing reuses :func:`~repro.service.sharded.stable_key_hash` for both
keys and vnode points, so placement is identical in every process and
across restarts — the same property the flat sharded services pin for
their modulo routing.

Replica sets come from the same walk: :meth:`HashRing.nodes_for`
continues clockwise past the primary, collecting *distinct* nodes, so
a key's R owners are R different nodes whenever the ring has that
many.  The walk order is also the failover order — when the primary
is down, the next distinct node is exactly where the R=2 replica
lives.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Dict, Hashable, Iterable, List, Sequence, Tuple

from repro.service.sharded import stable_key_hash

DEFAULT_VNODES = 64


class HashRing:
    """A consistent-hash ring of hashable node ids.

    ``vnodes`` is the number of points each node contributes; more
    points smooth both placement balance and the per-join movement
    bound, at O(vnodes * nodes) memory and O(log(vnodes * nodes))
    lookups.
    """

    def __init__(self, nodes: Iterable[Hashable] = (),
                 vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._nodes: set = set()
        self._points: List[Tuple[int, Any]] = []  # sorted (hash, node)
        self._hashes: List[int] = []
        for node in nodes:
            self.add_node(node)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[Any]:
        """The member nodes, in sorted-repr order (deterministic)."""
        return sorted(self._nodes, key=repr)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: Any) -> bool:
        return node in self._nodes

    def add_node(self, node: Hashable) -> None:
        """Add ``node``'s vnode points to the ring."""
        if node in self._nodes:
            raise ValueError(f"node {node!r} is already on the ring")
        self._nodes.add(node)
        self._points.extend(
            (self._point_hash(node, i), node) for i in range(self.vnodes)
        )
        self._rebuild()

    def remove_node(self, node: Hashable) -> None:
        """Remove ``node``'s vnode points from the ring."""
        if node not in self._nodes:
            raise ValueError(f"node {node!r} is not on the ring")
        self._nodes.discard(node)
        self._points = [p for p in self._points if p[1] != node]
        self._rebuild()

    def _point_hash(self, node: Any, index: int) -> int:
        """The ring position of ``node``'s ``index``-th vnode.

        The point key is a namespaced *string*, so a node id can never
        collide with a cache key that happens to share its repr.
        """
        return stable_key_hash(f"vnode:{node!r}:{index}")

    def _rebuild(self) -> None:
        # Ties on the hash (astronomically rare with 64-bit points)
        # break on the node's repr so iteration order is deterministic.
        self._points.sort(key=lambda p: (p[0], repr(p[1])))
        self._hashes = [h for h, _ in self._points]

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def node_for(self, key: Hashable) -> Any:
        """The primary owner of ``key``."""
        return self.nodes_for(key, 1)[0]

    def nodes_for(self, key: Hashable, count: int = 1) -> List[Any]:
        """The first ``count`` *distinct* nodes clockwise from ``key``.

        The list is the key's replica set in failover order; it is
        shorter than ``count`` when the ring has fewer nodes.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if not self._points:
            raise LookupError("hash ring has no nodes")
        start = bisect_right(self._hashes, stable_key_hash(key))
        n = len(self._points)
        owners: List[Any] = []
        seen: set = set()
        for step in range(n):
            node = self._points[(start + step) % n][1]
            if node not in seen:
                seen.add(node)
                owners.append(node)
                if len(owners) == count:
                    break
        return owners

    def spread(self, keys: Sequence[Hashable]) -> Dict[Any, int]:
        """Primary-owner counts over ``keys`` (balance diagnostics)."""
        counts: Dict[Any, int] = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.node_for(key)] += 1
        return counts

    def __repr__(self) -> str:
        return (
            f"HashRing({len(self._nodes)} nodes, vnodes={self.vnodes}, "
            f"{len(self._points)} points)"
        )


def key_movement(
    before: HashRing,
    after: HashRing,
    keys: Sequence[Hashable],
    replication: int = 1,
) -> float:
    """The fraction of ``keys`` whose owner set gained a node.

    This is the rebalance *copy* cost of going from ``before`` to
    ``after``: a key counts as moved when some node owns it after that
    did not own it before (data must be copied there).  Keys that only
    *lose* owners cost a delete, not a copy, and do not count.  The
    consistent-hashing guarantee the property tests pin is that one
    join or leave moves about ``1/N`` of keys, not the ``N/(N+1)`` a
    modulo remap would.
    """
    if not keys:
        return 0.0
    moved = 0
    for key in keys:
        old = set(before.nodes_for(key, replication))
        new = set(after.nodes_for(key, replication))
        if new - old:
            moved += 1
    return moved / len(keys)
