"""Replicated multi-node cache cluster with fault-driven failover.

The paper's evaluation ran on a distributed fault-tolerant platform;
every backend below this module loses data and surfaces errors the
moment one worker process dies.  :class:`ClusterCacheService` is the
single-host stand-in for that platform: N node *processes* (each the
same worker body as :class:`~repro.service.mp.MPCacheService`, hosting
a stock :class:`~repro.service.core.CacheService`), keys placed on a
consistent-hash :class:`~repro.cluster.ring.HashRing` instead of a
modulo map, and every key written to its first ``replication``
distinct ring owners.

Failure semantics, in order of appearance:

* **Failover.**  A node that dies — detected by pipe EOF, exactly the
  mp backend's watchdog signal, and injectable deterministically with
  the :data:`~repro.resilience.faults.WORKER_CRASH` fault kind — is
  marked down and *skipped*: reads walk the key's surviving replicas,
  writes land on them.  With ``replication >= 2`` a single node death
  is client-invisible (zero errors, no hangs); with ``replication=1``
  the dead node's keys degrade to misses and dropped writes, counted
  in ``degraded_ops`` — degraded, never wrong and never stale.
* **Read-repair.**  When a read misses on a live replica but hits on
  a later one, the value is written back to the replicas that missed,
  healing divergence created while a node was down (or after it
  restarted empty).  Repaired writes re-admit through the normal set
  path with unit size and no TTL — repair restores availability, not
  byte-exact metadata.
* **Rebalance.**  :meth:`ClusterCacheService.rebalance` runs one
  anti-entropy pass: every live node exports its residents
  (:meth:`~repro.service.core.CacheService.export_entries`,
  remaining-TTL form), desired owners are recomputed from the ring,
  and entries are imported where missing and deleted where no longer
  owned.  :meth:`join_node` / :meth:`remove_node` /
  :meth:`restart_node` change membership; the ring bounds the
  movement a rebalance then performs to ~1/N of keys
  (property-tested at the ring layer).

Client-visible results never depend on wall-clock timing: for a fixed
operation sequence and fault plan, hits, misses, set results, and the
failover/repair counters are byte-identical across runs — the
deterministic failover tests pin this.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.cluster.ring import DEFAULT_VNODES, HashRing
from repro.service.mp import (
    ServiceClosedError,
    WorkerCrashedError,
    _default_start_method,
    _worker_main,
)
from repro.service.sharded import (
    aggregate_stats,
    partition_capacity,
    stable_key_hash,
)

_UNSET = object()


class _Miss:
    """Wire-safe miss sentinel: identity survives pickling as a type.

    ``get_many`` needs to distinguish "replica holds None" from
    "replica misses" across a pipe, where a plain ``object()``
    sentinel loses identity.  Instances of this private class only
    ever originate here, so an ``isinstance`` check on the reply is
    exact.
    """

    __slots__ = ()


class _Node:
    """Parent-side record for one node process."""

    __slots__ = ("node_id", "conn", "proc", "lock", "alive", "capacity",
                 "pid", "exitcode")

    def __init__(self, node_id: int, conn, proc, capacity: int) -> None:
        self.node_id = node_id
        self.conn = conn
        self.proc = proc
        self.lock = threading.Lock()
        self.alive = True
        self.capacity = capacity
        self.pid = proc.pid
        self.exitcode: Optional[int] = None


class ClusterCacheService:
    """N replicated node processes behind the one-service API.

    Parameters
    ----------
    capacity:
        Total object capacity, split near-equally across the initial
        nodes.  Each replica copy occupies its node's share, so the
        cluster holds ``~capacity / replication`` *unique* keys at
        full replication — availability is paid for in space.
    policy:
        Registry name of every node's eviction policy.
    num_nodes:
        Initial node-process count.
    replication:
        Copies per key (``1 <= replication <= num_nodes``).  The
        replica set is the key's first ``replication`` distinct ring
        owners, in failover order.
    vnodes:
        Virtual nodes per node on the hash ring.
    start_method:
        Multiprocessing start method (default: ``fork`` if available).
    metrics:
        Optional parent-side
        :class:`~repro.obs.metrics.MetricsRegistry`: per-node health
        gauges (``repro_cluster_node_up{node=i}``) plus cluster-level
        gauges and counters (nodes up, failovers, read repairs,
        rebalanced keys, degraded ops) — all collect-time callbacks,
        zero hot-path cost.
    fault_plans:
        Optional ``{node_id: FaultPlan}`` injecting deterministic
        :data:`~repro.resilience.faults.WORKER_CRASH` faults, exactly
        as on :class:`~repro.service.mp.MPCacheService`.
    **service_kwargs:
        Forwarded to every node's ``CacheService`` (picklable only).

    Thread safety matches the mp backend: each node channel is
    guarded by a lock held for the full exchange, acquired in node-id
    order; the failover/repair counters take a dedicated lock.
    """

    def __init__(
        self,
        capacity: int,
        policy: str = "s3fifo",
        num_nodes: int = 3,
        *,
        replication: int = 2,
        vnodes: int = DEFAULT_VNODES,
        start_method: Optional[str] = None,
        metrics=None,
        fault_plans: Optional[Dict[int, Any]] = None,
        **service_kwargs: Any,
    ) -> None:
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        if not 1 <= replication <= num_nodes:
            raise ValueError(
                f"replication must be in [1, num_nodes={num_nodes}], "
                f"got {replication}"
            )
        capacities = partition_capacity(capacity, num_nodes)
        self.capacity = capacity
        self.replication = replication
        self._node_share = capacities[0]  # a joiner's capacity share
        self._policy = policy
        self._service_kwargs = dict(service_kwargs)
        self._ctx = multiprocessing.get_context(
            start_method or _default_start_method()
        )
        self.ring = HashRing(vnodes=vnodes)
        self._nodes: Dict[int, _Node] = {}
        self._handshakes: Dict[int, Dict[str, Any]] = {}
        self._closed = False
        self._counter_lock = threading.Lock()
        self.failovers = 0
        self.read_repairs = 0
        self.rebalanced_keys = 0
        self.degraded_ops = 0
        self._registry = metrics
        try:
            for i, cap in enumerate(capacities):
                self._spawn_node(i, cap, (fault_plans or {}).get(i))
                self.ring.add_node(i)
        except BaseException:
            self._closed = True
            self._teardown()
            raise
        self.policy_name = self._handshakes[0]["policy_name"]
        self.supports_removal = self._handshakes[0]["supports_removal"]
        if metrics is not None:
            self._wire_metrics(metrics)

    # ------------------------------------------------------------------
    # Node lifecycle
    # ------------------------------------------------------------------
    def _spawn_node(self, node_id: int, capacity: int, fault_plan) -> None:
        """Start one node process and run the startup handshake."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, node_id, capacity, self._policy,
                  dict(self._service_kwargs), False, fault_plan),
            name=f"cluster-cache-node-{node_id}",
            daemon=True,
        )
        proc.start()
        child_conn.close()  # the node holds the only child end
        node = _Node(node_id, parent_conn, proc, capacity)
        self._nodes[node_id] = node
        try:
            tag, payload = parent_conn.recv()
        except (EOFError, OSError) as exc:
            raise self._crash_error(node) from exc
        if tag == "err":
            raise payload
        self._handshakes[node_id] = payload
        node.pid = payload["pid"]
        if self._registry is not None:
            self._register_node_gauge(node_id)

    def _crash_error(self, node: _Node) -> WorkerCrashedError:
        node.proc.join(timeout=1.0)
        node.exitcode = node.proc.exitcode
        return WorkerCrashedError(node.node_id, node.pid, node.exitcode)

    def _mark_down(self, node: _Node) -> None:
        """Record a node death; never raises — this is failover, not
        failure."""
        if not node.alive:
            return
        node.alive = False
        node.proc.join(timeout=1.0)
        node.exitcode = node.proc.exitcode
        try:
            node.conn.close()
        except OSError:
            pass

    def _shutdown_node(self, node: _Node, timeout: float = 2.0) -> None:
        """Stop one node process for good (close message, join, kill)."""
        with node.lock:
            if node.alive:
                try:
                    node.conn.send(("close",))
                except (OSError, ValueError, BrokenPipeError):
                    pass
            try:
                node.conn.close()
            except OSError:
                pass
            node.alive = False
        node.proc.join(timeout=timeout)
        if node.proc.is_alive():
            node.proc.terminate()
            node.proc.join(timeout=1.0)
        node.exitcode = node.proc.exitcode
        try:
            node.proc.close()
        except ValueError:
            pass

    def _live_ids(self) -> List[int]:
        return sorted(nid for nid, node in self._nodes.items() if node.alive)

    def _node_alive(self, node_id: int) -> bool:
        node = self._nodes.get(node_id)
        return node is not None and node.alive

    @property
    def node_ids(self) -> List[int]:
        """Every ring member's id, sorted (live or not)."""
        return sorted(self._nodes)

    def node_health(self) -> Dict[int, bool]:
        """``{node_id: alive}`` for every ring member, sorted."""
        return {nid: self._nodes[nid].alive for nid in sorted(self._nodes)}

    # ------------------------------------------------------------------
    # Channel plumbing (mark-down semantics, unlike mp's raise)
    # ------------------------------------------------------------------
    def _ensure_open(self) -> None:
        if self._closed:
            raise ServiceClosedError(
                "ClusterCacheService is closed; build a new one"
            )

    def _exchange(
        self, msgs: Dict[int, tuple]
    ) -> Tuple[Dict[int, Any], List[int]]:
        """One message per node; returns ``(replies, crashed_ids)``.

        Locks are taken in node-id order and all sends complete before
        the first receive, so the involved nodes run concurrently.  A
        node that dies mid-exchange is *marked down* and listed in
        ``crashed_ids`` — the caller fails over; a crash never raises
        here.  Remote application errors (bad ttl, removal
        unsupported) still raise after the drain, like the mp backend.
        """
        self._ensure_open()
        idxs = sorted(nid for nid in msgs if nid in self._nodes)
        nodes = [self._nodes[nid] for nid in idxs]
        for node in nodes:
            node.lock.acquire()
        try:
            crashed: List[int] = []
            remote: Optional[BaseException] = None
            replies: Dict[int, Any] = {}
            sent: List[_Node] = []
            for node in nodes:
                if not node.alive:
                    crashed.append(node.node_id)
                    continue
                try:
                    node.conn.send(msgs[node.node_id])
                except (OSError, ValueError):
                    self._mark_down(node)
                    crashed.append(node.node_id)
                    continue
                sent.append(node)
            for node in sent:
                try:
                    tag, payload = node.conn.recv()
                except (EOFError, OSError):
                    self._mark_down(node)
                    crashed.append(node.node_id)
                    continue
                if tag == "err":
                    remote = remote or payload
                else:
                    replies[node.node_id] = payload
            if remote is not None:
                raise remote
            return replies, crashed
        finally:
            for node in reversed(nodes):
                node.lock.release()

    def _exchange_live(self, msg: tuple) -> Dict[int, Any]:
        """The same message to every live node; crashed nodes dropped."""
        replies, _ = self._exchange({nid: msg for nid in self._live_ids()})
        return replies

    def _count(self, **deltas: int) -> None:
        with self._counter_lock:
            for name, delta in deltas.items():
                if delta:
                    setattr(self, name, getattr(self, name) + delta)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def owners_for(self, key: Hashable) -> List[int]:
        """The key's replica set (ring members, live or not), in
        failover order."""
        return self.ring.nodes_for(key, self.replication)

    def _live_owners(self, key: Hashable) -> List[int]:
        return [nid for nid in self.owners_for(key)
                if self._node_alive(nid)]

    # ------------------------------------------------------------------
    # The service surface
    # ------------------------------------------------------------------
    def get(self, key: Hashable, default: Any = None) -> Any:
        return self.get_many([key], default)[0]

    def set(self, key: Hashable, value: Any, ttl: Any = _UNSET,
            size: int = 1) -> bool:
        if ttl is _UNSET:
            return self.set_many([(key, value)], size=size)[0]
        return self.set_many([(key, value)], ttl=ttl, size=size)[0]

    def delete(self, key: Hashable) -> bool:
        return self.delete_many([key])[0]

    def get_many(self, keys: Iterable[Hashable],
                 default: Any = None) -> List[Any]:
        """Batched replica-walking get with failover and read-repair.

        Round 1 asks each key's first *live* owner, coalesced into one
        message per node; keys that miss (or whose node dies mid-ask)
        walk to the next live replica in later rounds — at most
        ``replication`` rounds total.  A key served by a later replica
        after earlier live replicas missed triggers a read-repair
        write back to the missers.  Keys with no live owner left are
        served as ``default`` and counted in ``degraded_ops``.
        """
        keys = list(keys)
        if not keys:
            return []
        self._ensure_open()
        miss = _Miss()
        n = len(keys)
        results: List[Any] = [default] * n
        hit = [False] * n
        probed_live = [False] * n
        skipped_dead = [False] * n
        owner_lists = [self.owners_for(key) for key in keys]
        cursors = [0] * n
        missed_on: List[List[int]] = [[] for _ in range(n)]
        pending = list(range(n))
        while pending:
            groups: Dict[int, List[int]] = {}
            for pos in pending:
                owners = owner_lists[pos]
                cur = cursors[pos]
                while (cur < len(owners)
                       and not self._node_alive(owners[cur])):
                    skipped_dead[pos] = True
                    cur += 1
                cursors[pos] = cur
                if cur < len(owners):
                    groups.setdefault(owners[cur], []).append(pos)
            if not groups:
                break
            replies, _ = self._exchange({
                nid: ("get_many", [keys[p] for p in positions], miss)
                for nid, positions in groups.items()
            })
            pending = []
            for nid in sorted(groups):
                positions = groups[nid]
                if nid not in replies:
                    # Died mid-ask: the node is marked down now, so the
                    # skip loop above advances these keys next round.
                    pending.extend(positions)
                    continue
                for pos, value in zip(positions, replies[nid]):
                    probed_live[pos] = True
                    if isinstance(value, _Miss):
                        missed_on[pos].append(nid)
                        cursors[pos] += 1
                        pending.append(pos)
                    else:
                        results[pos] = value
                        hit[pos] = True
        # Read-repair: write each late-replica hit back to the live
        # replicas that missed it, one batched set per node.
        repairs: Dict[int, List[Tuple[Hashable, Any]]] = {}
        repaired = 0
        for pos in range(n):
            if hit[pos] and missed_on[pos]:
                repaired += 1
                for nid in missed_on[pos]:
                    if self._node_alive(nid):
                        repairs.setdefault(nid, []).append(
                            (keys[pos], results[pos])
                        )
        if repairs:
            self._exchange({
                nid: ("set_many", False, None, 1, items)
                for nid, items in repairs.items()
            })
        self._count(
            failovers=sum(1 for pos in range(n) if skipped_dead[pos]),
            read_repairs=repaired,
            degraded_ops=sum(
                1 for pos in range(n)
                if not hit[pos] and not probed_live[pos]
            ),
        )
        return results

    def set_many(
        self,
        items: Iterable[Tuple[Hashable, Any]],
        ttl: Any = _UNSET,
        size: int = 1,
    ) -> List[bool]:
        """Batched set to **all live owners** of each key, one pipe
        message per node.

        A key's result is the reply from its first owner (failover
        order) that survived the exchange; replicas that die mid-write
        simply drop their copy.  A key with no live owner at all is
        reported ``False`` and counted in ``degraded_ops``.
        """
        items = list(items)
        if not items:
            return []
        self._ensure_open()
        if ttl is not _UNSET and ttl is not None and ttl < 0:
            raise ValueError(f"ttl must be >= 0, got {ttl}")
        has_ttl = ttl is not _UNSET
        n = len(items)
        owner_live: List[List[int]] = []
        skipped_dead = 0
        groups: Dict[int, List[int]] = {}
        for pos, (key, _value) in enumerate(items):
            owners = self.owners_for(key)
            live = [nid for nid in owners if self._node_alive(nid)]
            if len(live) < len(owners):
                skipped_dead += 1
            owner_live.append(live)
            for nid in live:
                groups.setdefault(nid, []).append(pos)
        replies: Dict[int, Any] = {}
        if groups:
            replies, _ = self._exchange({
                nid: ("set_many", has_ttl, (ttl if has_ttl else None),
                      size, [items[p] for p in positions])
                for nid, positions in groups.items()
            })
        per_node: Dict[int, Dict[int, bool]] = {
            nid: dict(zip(groups[nid], replies[nid]))
            for nid in replies
        }
        results: List[bool] = [False] * n
        degraded = 0
        for pos in range(n):
            reply = None
            for nid in owner_live[pos]:
                if nid in per_node and pos in per_node[nid]:
                    reply = per_node[nid][pos]
                    break
            if reply is None:
                degraded += 1
            else:
                results[pos] = reply
        self._count(failovers=skipped_dead, degraded_ops=degraded)
        return results

    def delete_many(self, keys: Iterable[Hashable]) -> List[bool]:
        """Batched delete from all live owners; True if *any* replica
        held the key."""
        keys = list(keys)
        if not keys:
            return []
        self._ensure_open()
        n = len(keys)
        owner_live: List[List[int]] = []
        skipped_dead = 0
        groups: Dict[int, List[int]] = {}
        for pos, key in enumerate(keys):
            owners = self.owners_for(key)
            live = [nid for nid in owners if self._node_alive(nid)]
            if len(live) < len(owners):
                skipped_dead += 1
            owner_live.append(live)
            for nid in live:
                groups.setdefault(nid, []).append(pos)
        replies: Dict[int, Any] = {}
        if groups:
            replies, _ = self._exchange({
                nid: ("delete_many", [keys[p] for p in positions])
                for nid, positions in groups.items()
            })
        per_node: Dict[int, Dict[int, bool]] = {
            nid: dict(zip(groups[nid], replies[nid]))
            for nid in replies
        }
        results: List[bool] = [False] * n
        degraded = 0
        for pos in range(n):
            answered = False
            for nid in owner_live[pos]:
                if nid in per_node and pos in per_node[nid]:
                    answered = True
                    results[pos] = results[pos] or per_node[nid][pos]
            if not answered:
                degraded += 1
        self._count(failovers=skipped_dead, degraded_ops=degraded)
        return results

    def __contains__(self, key: Hashable) -> bool:
        self._ensure_open()
        for nid in self.owners_for(key):
            if not self._node_alive(nid):
                continue
            replies, _ = self._exchange({nid: ("contains", key)})
            if replies.get(nid):
                return True
        return False

    def __len__(self) -> int:
        """Total resident entries across live nodes.  Replica copies
        count individually: at full health an R-replicated cluster
        reports ~R× its unique-key count."""
        return sum(self._exchange_live(("len",)).values())

    def sweep(self, max_checks: Optional[int] = None) -> int:
        return sum(self._exchange_live(("sweep", max_checks)).values())

    def check(self) -> None:
        self._exchange_live(("check",))

    # ------------------------------------------------------------------
    # Statistics / observability
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Aggregate stats across live nodes, plus cluster health.

        Shape matches the sharded/mp backends (``per_shard`` holds the
        live nodes' snapshots in node-id order) with cluster extras:
        replication factor, vnodes, per-node health, and the
        failover / read-repair / rebalance / degraded-op counters.
        """
        replies = self._exchange_live(("stats",))
        live = sorted(replies)
        aggregate = aggregate_stats([replies[nid] for nid in live])
        aggregate["policy"] = self.policy_name
        aggregate["capacity"] = self.capacity
        aggregate["backend"] = "cluster"
        aggregate["num_shards"] = len(self._nodes)
        aggregate["num_nodes"] = len(self._nodes)
        aggregate["nodes_up"] = len(live)
        aggregate["replication"] = self.replication
        aggregate["vnodes"] = self.ring.vnodes
        aggregate["node_health"] = self.node_health()
        with self._counter_lock:
            aggregate["failovers"] = self.failovers
            aggregate["read_repairs"] = self.read_repairs
            aggregate["rebalanced_keys"] = self.rebalanced_keys
            aggregate["degraded_ops"] = self.degraded_ops
        return aggregate

    def ops_per_shard(self) -> List[int]:
        """Operations served per node, in node-id order (0 for a dead
        node — its counters died with it)."""
        replies = self._exchange_live(("stats",))
        out = []
        for nid in sorted(self._nodes):
            s = replies.get(nid)
            out.append(0 if s is None
                       else s["gets"] + s["sets"] + s["deletes"])
        return out

    def imbalance(self) -> float:
        """Hottest live node's operation count over the mean."""
        from repro.concurrency.sharding import imbalance_factor

        ops = [n for n in self.ops_per_shard() if n > 0]
        return imbalance_factor(ops) if ops else 1.0

    def _wire_metrics(self, registry) -> None:
        registry.gauge(
            "repro_cluster_nodes", "Ring members (live or not)."
        ).set_function(lambda: float(len(self._nodes)))
        registry.gauge(
            "repro_cluster_nodes_up", "Nodes currently serving."
        ).set_function(lambda: float(len(self._live_ids())))
        registry.gauge(
            "repro_cluster_replication", "Configured copies per key."
        ).set_function(lambda: float(self.replication))
        for attr, help_text in (
            ("failovers", "Operations that skipped a dead owner."),
            ("read_repairs", "Keys healed by read-repair write-back."),
            ("rebalanced_keys", "Entry copies moved by rebalancing."),
            ("degraded_ops", "Operations with no live owner left."),
        ):
            registry.counter(
                f"repro_cluster_{attr}", help_text
            ).set_function(lambda a=attr: float(getattr(self, a)))

    def _register_node_gauge(self, node_id: int) -> None:
        self._registry.gauge(
            "repro_cluster_node_up",
            "1 while the node process serves traffic.",
            {"node": str(node_id)},
        ).set_function(
            lambda nid=node_id: 1.0 if self._node_alive(nid) else 0.0
        )

    # ------------------------------------------------------------------
    # Membership & rebalancing
    # ------------------------------------------------------------------
    def rebalance(self) -> int:
        """One anti-entropy pass; returns entry copies moved.

        Every live node exports its residents; each key's desired
        placement is recomputed as its first ``replication`` *live*
        owners in ring-walk order; entries are imported where missing
        (sourced from the first holder in walk order — deterministic)
        and deleted from live nodes that no longer own them.  TTLs
        travel in remaining-seconds form and imports re-admit through
        the normal set path, so a rebalance never resurrects expired
        entries and never bypasses admission.
        """
        self._ensure_open()
        exports = self._exchange_live(("export",))
        holding: Dict[int, Dict[Hashable, tuple]] = {
            nid: {key: (value, ttl, size)
                  for key, value, ttl, size in entries}
            for nid, entries in exports.items()
        }
        all_keys = set()
        for entries in holding.values():
            all_keys.update(entries)
        ring_size = len(self.ring)
        imports: Dict[int, List[tuple]] = {}
        deletes: Dict[int, List[Hashable]] = {}
        moved = 0
        # Hash order is deterministic and type-agnostic (keys may mix
        # ints and strings, which don't sort together).
        for key in sorted(all_keys,
                          key=lambda k: (stable_key_hash(k), repr(k))):
            walk = self.ring.nodes_for(key, ring_size)
            desired = [nid for nid in walk
                       if self._node_alive(nid)][:self.replication]
            holders = [nid for nid in walk
                       if nid in holding and key in holding[nid]]
            if not holders:
                continue
            source = holders[0]
            value, ttl, size = holding[source][key]
            for nid in desired:
                if nid not in holders:
                    imports.setdefault(nid, []).append(
                        (key, value, ttl, size)
                    )
                    moved += 1
            for nid in holders:
                if nid not in desired:
                    deletes.setdefault(nid, []).append(key)
        if imports:
            self._exchange({
                nid: ("import", entries)
                for nid, entries in imports.items()
            })
        if deletes:
            self._exchange({
                nid: ("delete_many", keys)
                for nid, keys in deletes.items()
            })
        self._count(rebalanced_keys=moved)
        return moved

    def join_node(self) -> int:
        """Spawn a fresh empty node, add it to the ring, and return
        its id.  Call :meth:`rebalance` afterwards to move its ~1/N
        share of keys onto it."""
        self._ensure_open()
        node_id = max(self._nodes) + 1
        self._spawn_node(node_id, self._node_share, None)
        self.ring.add_node(node_id)
        return node_id

    def restart_node(self, node_id: int) -> None:
        """Respawn a dead node in place (same id, capacity, and ring
        points).  It comes back *empty* — its replicas still serve its
        keys; a subsequent :meth:`rebalance` (or read-repair traffic)
        refills it.  No fault plan carries over."""
        self._ensure_open()
        node = self._nodes.get(node_id)
        if node is None:
            raise ValueError(f"unknown node id {node_id}")
        if node.alive:
            raise ValueError(f"node {node_id} is still alive")
        try:
            node.proc.close()
        except ValueError:
            pass
        self._spawn_node(node_id, node.capacity, None)

    def remove_node(self, node_id: int) -> int:
        """Gracefully decommission a node; returns entries re-homed.

        A live node first exports its residents, which are imported to
        their new owners under the shrunk ring before the process is
        shut down — planned removal loses nothing.  (A *dead* node's
        removal re-homes nothing; its data lives only in its
        replicas.)
        """
        self._ensure_open()
        node = self._nodes.get(node_id)
        if node is None:
            raise ValueError(f"unknown node id {node_id}")
        if len(self.ring) <= 1:
            raise ValueError("cannot remove the last ring node")
        entries: List[tuple] = []
        if node.alive:
            replies, _ = self._exchange({node_id: ("export",)})
            entries = replies.get(node_id, [])
        self.ring.remove_node(node_id)
        imports: Dict[int, List[tuple]] = {}
        for key, value, ttl, size in entries:
            for nid in self._live_owners(key):
                if nid != node_id:
                    imports.setdefault(nid, []).append(
                        (key, value, ttl, size)
                    )
        moved = sum(len(v) for v in imports.values())
        if imports:
            self._exchange({
                nid: ("import", batch)
                for nid, batch in imports.items()
            })
        self._shutdown_node(node)
        del self._nodes[node_id]
        self._handshakes.pop(node_id, None)
        self._count(rebalanced_keys=moved)
        return moved

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def drain(self) -> Dict[str, Any]:
        """Graceful pre-shutdown pass: sweep expired entries on every
        live node and return a final stats snapshot.  Leaves the
        service open — :meth:`close` does the teardown."""
        self._ensure_open()
        self.sweep()
        return self.stats()

    def close(self, timeout: float = 5.0) -> None:
        """Stop every node; idempotent, safe after crashes."""
        if self._closed:
            return
        self._closed = True
        self._teardown(timeout)

    def _teardown(self, timeout: float = 5.0) -> None:
        for nid in sorted(self._nodes):
            node = self._nodes[nid]
            with node.lock:
                if node.alive:
                    try:
                        node.conn.send(("close",))
                    except (OSError, ValueError, BrokenPipeError):
                        pass
                try:
                    node.conn.close()
                except OSError:
                    pass
        deadline = time.monotonic() + timeout
        for node in self._nodes.values():
            node.proc.join(
                timeout=max(0.0, deadline - time.monotonic())
            )
        for node in self._nodes.values():
            if node.proc.is_alive():
                node.proc.terminate()
                node.proc.join(timeout=1.0)
        for node in self._nodes.values():
            node.alive = False
            try:
                node.proc.close()
            except ValueError:
                pass

    def __enter__(self) -> "ClusterCacheService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort; never raise from GC
        try:
            self.close(timeout=1.0)
        except Exception:
            pass

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"ClusterCacheService({self.policy_name}, "
            f"capacity={self.capacity}, nodes={len(self._nodes)}, "
            f"replication={self.replication}, {state})"
        )
