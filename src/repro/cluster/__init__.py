"""Cluster tier: consistent-hash placement, replication, failover.

``repro.cluster`` turns the single-host service stack into a
replicated multi-node cache: :class:`~repro.cluster.ring.HashRing`
places keys on a consistent-hash ring with virtual nodes, and
:class:`~repro.cluster.service.ClusterCacheService` runs N node
processes with R-way replication, fault-driven failover, read-repair,
and bounded-movement rebalancing.  See ``docs/RESILIENCE.md``.
"""

from repro.cluster.ring import DEFAULT_VNODES, HashRing, key_movement
from repro.cluster.service import ClusterCacheService

__all__ = [
    "DEFAULT_VNODES",
    "HashRing",
    "key_movement",
    "ClusterCacheService",
]
